//! Failure-injection tests: malformed inputs must fail loudly and
//! precisely, not corrupt results downstream.

use dscts::netlist::def::parse_def;
use dscts::netlist::lef::parse_lef;
use dscts::{BenchmarkSpec, CtsError, DsCts, Technology};

#[test]
fn def_parser_rejects_garbage_inputs() {
    // Truncated / corrupt DEFs produce errors, never panics.
    for text in [
        "",
        "VERSION 5.8 ;",
        "DESIGN x ;\nDIEAREA ( a b ) ( c d ) ;",
        "DESIGN x ;\nDIEAREA ( 0 0 ) ;",
        "DIEAREA ( 0 0 ) ( 5 5 ) ;\nCOMPONENTS 1 ;\n- broken",
    ] {
        assert!(parse_def(text).is_err(), "accepted: {text:?}");
    }
}

#[test]
fn def_parser_survives_binary_noise() {
    let design = BenchmarkSpec::c4_riscv32i().generate();
    let mut text = dscts::netlist::def::write_def(&design);
    // Splice noise into the middle of the component section; the parser
    // must either error or skip cleanly — never panic.
    let mid = text.len() / 2;
    text.insert_str(mid, "\n@@@@ \u{FFFD}\u{FFFD} ;;; \n");
    let _ = parse_def(&text);
}

#[test]
fn lef_parser_reports_bad_size_line() {
    let err = parse_lef("MACRO M\n SIZE x BY y ;\nEND M").unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn router_rejects_empty_designs() {
    // The typed surface: an empty design is a precise input error, not a
    // panic-message string to match on.
    let mut design = BenchmarkSpec::c4_riscv32i().generate();
    design.sinks.clear();
    let err = DsCts::new(Technology::asap7())
        .try_run(&design)
        .expect_err("empty design must not route");
    assert_eq!(err, CtsError::EmptyDesign);
}

#[test]
#[should_panic(expected = "no clock sinks")]
fn legacy_run_still_panics_with_display_text_on_empty_designs() {
    // The panicking `run` wrapper is the legacy surface: its message is
    // the CtsError display text, pinned here so scripts that grep logs
    // keep working.
    let mut design = BenchmarkSpec::c4_riscv32i().generate();
    design.sinks.clear();
    let _ = DsCts::new(Technology::asap7()).run(&design);
}

#[test]
fn sink_heavy_design_stays_feasible() {
    // Sinks with 20x the usual pin cap: the load budget must force tiny
    // clusters rather than producing an infeasible DP.
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = 200;
    spec.sink_cap_ff = 22.0;
    let design = spec.generate();
    let outcome = DsCts::new(Technology::asap7()).run(&design);
    assert_eq!(outcome.tree.validate_sides(), Ok(()));
    // Max three sinks fit under the 0.85 * 80 fF budget.
    assert!(outcome.tree.topo.stars.iter().all(|s| s.sinks.len() <= 3));
}

#[test]
fn degenerate_single_sink_design_works() {
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = 1;
    spec.num_cells = 100;
    let design = spec.generate();
    let outcome = DsCts::new(Technology::asap7()).run(&design);
    assert_eq!(outcome.metrics.arrivals.len(), 1);
    assert_eq!(outcome.metrics.skew_ps, 0.0);
}

#[test]
fn coincident_sinks_do_not_break_dme() {
    let mut design = BenchmarkSpec::c4_riscv32i().generate();
    // Pile 50 sinks onto one point.
    let p = design.sinks[0].pos;
    for s in design.sinks.iter_mut().take(50) {
        s.pos = p;
    }
    let outcome = DsCts::new(Technology::asap7()).run(&design);
    assert_eq!(outcome.tree.validate_sides(), Ok(()));
}

#[test]
fn tiny_max_load_panics_with_clear_message() {
    // A max load below a single sink's capacitance is unsatisfiable; the
    // DP must say so rather than emit an illegal tree.
    let tech = Technology::builder()
        .layer(dscts::Layer::new("MF", 0.024222, 0.12918))
        .layer(dscts::Layer::new("MB", 0.000384, 0.116264))
        .max_load_ff(0.5)
        .build()
        .unwrap();
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = 16;
    let design = spec.generate();
    let result = std::panic::catch_unwind(|| DsCts::new(tech).run(&design));
    let err = result.expect_err("must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("feasible") || msg.contains("infeasible"),
        "unhelpful panic message: {msg}"
    );
}
