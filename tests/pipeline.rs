//! End-to-end integration tests across the whole workspace: every flow on
//! generated designs, with legality, determinism and metric-ordering
//! invariants.

use dscts::baseline::{flip_backside, FlipMethod, HTreeCts};
use dscts::core::skew::SkewConfig;
use dscts::{BenchmarkSpec, DsCts, EvalModel, ModeRule, Side, Technology};

fn small_design() -> dscts::Design {
    BenchmarkSpec::c4_riscv32i().generate()
}

#[test]
fn full_flow_produces_legal_tree_on_every_benchmark_spec() {
    // C4 and C5 keep debug-mode runtime reasonable; table3 covers all five
    // in release mode.
    let tech = Technology::asap7();
    for spec in [BenchmarkSpec::c4_riscv32i(), BenchmarkSpec::c5_aes()] {
        let design = spec.generate();
        let outcome = DsCts::new(tech.clone()).run(&design);
        assert_eq!(outcome.tree.topo.validate(), Ok(()), "{}", design.name);
        assert_eq!(outcome.tree.validate_sides(), Ok(()), "{}", design.name);
        assert_eq!(outcome.metrics.arrivals.len(), design.sink_count());
        assert!(outcome.metrics.latency_ps > 0.0);
        assert!(outcome.metrics.skew_ps >= 0.0);
        assert!(outcome.metrics.skew_ps <= outcome.metrics.latency_ps);
    }
}

#[test]
fn flows_order_as_in_table3() {
    // The paper's headline ordering on any design:
    //   ours < our-bct + flip < our-bct   (latency)
    let tech = Technology::asap7();
    let design = small_design();
    let ours = DsCts::new(tech.clone()).run(&design);
    let bct = DsCts::new(tech.clone()).single_side(true).run(&design);
    let flipped = flip_backside(&bct.tree, &tech, FlipMethod::Latency);
    let flipped_m = flipped.tree.evaluate(&tech, EvalModel::Elmore);

    assert!(
        ours.metrics.latency_ps < bct.metrics.latency_ps,
        "double-side {} must beat front-only {}",
        ours.metrics.latency_ps,
        bct.metrics.latency_ps
    );
    assert!(
        flipped_m.latency_ps < bct.metrics.latency_ps,
        "flipping must improve the front-side tree"
    );
    assert!(
        ours.metrics.latency_ps < flipped_m.latency_ps,
        "concurrent insertion {} must beat post-CTS flipping {}",
        ours.metrics.latency_ps,
        flipped_m.latency_ps
    );
}

#[test]
fn openroad_like_baseline_is_weaker_than_ours() {
    let tech = Technology::asap7();
    let design = small_design();
    let htree = HTreeCts::default()
        .synthesize(&design, &tech)
        .evaluate(&tech, EvalModel::Elmore);
    let ours = DsCts::new(tech).run(&design);
    assert!(ours.metrics.latency_ps < htree.latency_ps);
}

#[test]
fn whole_pipeline_is_deterministic_across_runs() {
    let tech = Technology::asap7();
    let design = small_design();
    let a = DsCts::new(tech.clone()).run(&design);
    let b = DsCts::new(tech).run(&design);
    assert_eq!(a.tree, b.tree);
    assert_eq!(a.metrics.arrivals, b.metrics.arrivals);
}

#[test]
fn dse_thresholds_interpolate_between_intra_and_full() {
    let tech = Technology::asap7();
    let design = small_design();
    let intra = DsCts::new(tech.clone())
        .mode_rule(ModeRule::AllIntraSide)
        .run(&design);
    let tight = DsCts::new(tech.clone())
        .mode_rule(ModeRule::FanoutThreshold(1))
        .run(&design);
    let full = DsCts::new(tech.clone()).run(&design);
    let mid = DsCts::new(tech)
        .mode_rule(ModeRule::FanoutThreshold(100))
        .run(&design);
    // Strict intra-side uses no nTSVs; a tight threshold keeps only the
    // designer-level top net flexible; full mode uses the most.
    assert_eq!(intra.metrics.ntsvs, 0);
    assert!(tight.metrics.ntsvs <= mid.metrics.ntsvs);
    assert!(full.metrics.ntsvs > 0);
    assert!(mid.metrics.ntsvs <= full.metrics.ntsvs.max(1) * 2);
    // Full back-side freedom should not be slower than no back side.
    assert!(full.metrics.latency_ps <= intra.metrics.latency_ps + 1e-9);
}

#[test]
fn skew_refinement_never_hurts_latency_or_skew() {
    let tech = Technology::asap7();
    let design = small_design();
    let without = DsCts::new(tech.clone()).skew_refinement(None).run(&design);
    let with = DsCts::new(tech)
        .skew_refinement(Some(SkewConfig {
            trigger_percent: 0.0,
            ..SkewConfig::default()
        }))
        .run(&design);
    assert!(with.metrics.skew_ps <= without.metrics.skew_ps + 1e-9);
    assert!(with.metrics.latency_ps <= without.metrics.latency_ps + 1e-9);
    assert!(with.metrics.buffers >= without.metrics.buffers);
}

#[test]
fn nldm_and_elmore_agree_on_structure() {
    let tech = Technology::asap7();
    let design = small_design();
    let outcome = DsCts::new(tech.clone()).run(&design);
    let elmore = outcome.tree.evaluate(&tech, EvalModel::Elmore);
    let nldm = outcome.tree.evaluate(&tech, EvalModel::Nldm);
    assert_eq!(elmore.buffers, nldm.buffers);
    assert_eq!(elmore.ntsvs, nldm.ntsvs);
    let rel = (elmore.latency_ps - nldm.latency_ps).abs() / elmore.latency_ps;
    assert!(
        rel < 0.3,
        "Elmore {} vs NLDM {}",
        elmore.latency_ps,
        nldm.latency_ps
    );
}

#[test]
fn pattern_sides_and_sites_are_consistent_everywhere() {
    let tech = Technology::asap7();
    let design = small_design();
    let outcome = DsCts::new(tech.clone()).run(&design);
    let tree = &outcome.tree;
    // Roots and leaf stars live on the front side.
    let first_edge = tree.topo.csr().children(0)[0] as usize;
    assert_eq!(tree.patterns[first_edge].unwrap().root_side(), Side::Front);
    for s in &tree.topo.stars {
        assert_eq!(
            tree.patterns[s.node as usize].unwrap().sink_side(),
            Side::Front
        );
    }
    // Buffer / nTSV site counts equal metric counts.
    let m = &outcome.metrics;
    assert_eq!(tree.buffer_sites().len() as u32, m.buffers);
    assert_eq!(tree.ntsv_sites().len() as u32, m.ntsvs);
}

#[test]
fn def_roundtrip_preserves_synthesis_inputs() {
    let design = small_design();
    let text = dscts::netlist::def::write_def(&design);
    let parsed = dscts::netlist::def::parse_def(&text).expect("parse");
    let tech = Technology::asap7();
    let a = DsCts::new(tech.clone()).run(&design);
    let b = DsCts::new(tech).run(&parsed);
    // Same sinks and root -> identical synthesis result.
    assert_eq!(a.metrics.latency_ps, b.metrics.latency_ps);
    assert_eq!(a.metrics.buffers, b.metrics.buffers);
}

#[test]
fn every_flip_method_preserves_wirelength_and_buffers() {
    let tech = Technology::asap7();
    let design = small_design();
    let bct = DsCts::new(tech.clone()).single_side(true).run(&design);
    for method in [
        FlipMethod::Latency,
        FlipMethod::Fanout { threshold: 50 },
        FlipMethod::Criticality { fraction: 0.3 },
        FlipMethod::CriticalityPdn {
            fraction: 0.3,
            pdn_ntsv_overhead: 0.15,
        },
    ] {
        let f = flip_backside(&bct.tree, &tech, method);
        assert_eq!(f.tree.validate_sides(), Ok(()));
        let m = f.tree.evaluate(&tech, EvalModel::Elmore);
        assert_eq!(m.buffers, bct.metrics.buffers);
        assert_eq!(m.wirelength_nm, bct.metrics.wirelength_nm);
    }
}
