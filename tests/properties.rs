//! Cross-crate property tests: the full pipeline holds its invariants on
//! randomly generated designs, not just the Table II presets.

use dscts::{BenchmarkSpec, DsCts, EvalModel, Technology};
use proptest::prelude::*;

fn random_spec(ffs: usize, util_pct: u64, seed: u64, banks: usize) -> BenchmarkSpec {
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.name = format!("rand-{seed}");
    spec.num_ffs = ffs;
    spec.num_cells = (ffs * 11).max(100);
    spec.utilization = util_pct as f64 / 100.0;
    spec.seed = seed;
    spec.bank_count = banks;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_invariants_on_random_designs(
        ffs in 40usize..400,
        util in 30u64..70,
        seed in 0u64..10_000,
        banks in 1usize..6,
    ) {
        let design = random_spec(ffs, util, seed, banks).generate();
        prop_assert_eq!(design.validate(), Ok(()));
        let tech = Technology::asap7();
        let outcome = DsCts::new(tech.clone()).run(&design);
        // Structural legality.
        prop_assert_eq!(outcome.tree.topo.validate(), Ok(()));
        prop_assert_eq!(outcome.tree.validate_sides(), Ok(()));
        // Every sink served exactly once.
        prop_assert_eq!(outcome.metrics.arrivals.len(), ffs);
        prop_assert!(outcome.metrics.arrivals.iter().all(|a| a.is_finite() && *a > 0.0));
        // Skew is bounded by latency; resources are sane.
        prop_assert!(outcome.metrics.skew_ps <= outcome.metrics.latency_ps);
        prop_assert!(outcome.metrics.buffers >= 1);
        prop_assert!(outcome.metrics.wirelength_nm > 0);
    }

    #[test]
    fn scaled_designs_validate_and_generate_deterministically(
        n in 1_000usize..50_000,
        seed in 0u64..1_000,
    ) {
        let spec = BenchmarkSpec::scaled(n, seed);
        let design = spec.generate();
        // Structural legality at scale: sinks in-core, outside macros,
        // macros on-die, positive caps.
        prop_assert_eq!(design.validate(), Ok(()));
        prop_assert_eq!(design.sink_count(), n);
        prop_assert_eq!(design.name.as_str(), format!("scaled-{n}").as_str());
        // Same (n, seed) must reproduce the fixture bit-identically.
        let again = BenchmarkSpec::scaled(n, seed).generate();
        prop_assert_eq!(&design, &again);
    }

    #[test]
    fn scaled_designs_synthesize_side_legal(
        n in 400usize..3_000,
        seed in 0u64..1_000,
    ) {
        let design = BenchmarkSpec::scaled(n, seed).generate();
        let outcome = DsCts::new(Technology::asap7()).skew_refinement(None).run(&design);
        prop_assert_eq!(outcome.tree.topo.validate(), Ok(()));
        prop_assert_eq!(outcome.tree.validate_sides(), Ok(()));
        prop_assert_eq!(outcome.metrics.arrivals.len(), n);
    }

    #[test]
    fn double_side_never_slower_than_single_side(
        ffs in 60usize..250,
        seed in 0u64..5_000,
    ) {
        let design = random_spec(ffs, 50, seed, 3).generate();
        let tech = Technology::asap7();
        let ds = DsCts::new(tech.clone()).skew_refinement(None).run(&design);
        let ss = DsCts::new(tech).single_side(true).skew_refinement(None).run(&design);
        // The double-side design space strictly contains the single-side
        // one; with latency-optimal pruning the MOES pick may differ, but
        // the minimum-latency root candidate cannot be worse.
        let min = |o: &dscts::Outcome| {
            o.root_candidates
                .iter()
                .map(|c| c.latency_ps)
                .fold(f64::INFINITY, f64::min)
        };
        prop_assert!(min(&ds) <= min(&ss) + 1e-6,
            "double-side min {} vs single-side min {}", min(&ds), min(&ss));
    }

    #[test]
    fn evaluation_models_stay_close(
        ffs in 60usize..200,
        seed in 0u64..5_000,
    ) {
        let design = random_spec(ffs, 50, seed, 2).generate();
        let tech = Technology::asap7();
        let outcome = DsCts::new(tech.clone()).run(&design);
        let e = outcome.tree.evaluate(&tech, EvalModel::Elmore);
        let n = outcome.tree.evaluate(&tech, EvalModel::Nldm);
        let rel = (e.latency_ps - n.latency_ps).abs() / e.latency_ps;
        prop_assert!(rel < 0.35, "Elmore {} vs NLDM {}", e.latency_ps, n.latency_ps);
    }
}
