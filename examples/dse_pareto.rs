//! Design space exploration (§III-E): sweep the fanout threshold that
//! switches DP nodes between full and intra-side insertion modes, then
//! extract the Pareto frontier trading latency against insertion resources.
//!
//! Run with `cargo run --release --example dse_pareto`.

use dscts::core::dse;
use dscts::{BenchmarkSpec, DsCts, Technology};

fn main() {
    let tech = Technology::asap7();
    let design = BenchmarkSpec::c4_riscv32i().generate();

    // A coarse sweep for example purposes; `fig12` runs the paper's full
    // 20..=1000 step 10 sweep.
    let thresholds = (20..=1000).step_by(70);
    let base = DsCts::new(tech);
    let points = dse::sweep_fanout(&base, &design, thresholds);

    println!("threshold  latency(ps)  skew(ps)  buffers  nTSVs");
    for p in &points {
        println!(
            "{:>9}  {:>11.2}  {:>8.2}  {:>7}  {:>5}",
            p.threshold, p.latency_ps, p.skew_ps, p.buffers, p.ntsvs
        );
    }

    let frontier = dse::pareto_frontier(&points, |p| (p.resources() as f64, p.latency_ps));
    println!("\nPareto frontier (resources vs latency):");
    for &i in &frontier {
        let p = &points[i];
        println!(
            "  threshold {:>4}: {} buffers + {} nTSVs -> {:.2} ps",
            p.threshold, p.buffers, p.ntsvs, p.latency_ps
        );
    }
    println!(
        "frontier spread (normalised area coverage): {:.3}",
        dse::frontier_spread(&points, |p| (p.resources() as f64, p.latency_ps))
    );
}
