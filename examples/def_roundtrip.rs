//! Substrate tour: write a placed design to DEF, parse it back, synthesize
//! a clock tree for the parsed design, and emit a post-CTS DEF carrying the
//! inserted buffers and nTSVs — the file exchange the paper's flow performs
//! around OpenROAD (\[37\]).
//!
//! Run with `cargo run --release --example def_roundtrip`.

use dscts::netlist::def::{parse_def, write_def, write_def_with_extras, ExtraComponent};
use dscts::netlist::lef::write_lef;
use dscts::{BenchmarkSpec, DsCts, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::asap7();

    // Post-placement DEF out, and back in.
    let design = BenchmarkSpec::c4_riscv32i().generate();
    let def_text = write_def(&design);
    println!(
        "post-place DEF: {} lines, {} bytes",
        def_text.lines().count(),
        def_text.len()
    );
    let parsed = parse_def(&def_text)?;
    assert_eq!(parsed.sinks.len(), design.sinks.len());
    println!("parsed back {} sinks from DEF", parsed.sinks.len());

    // Synthesize on the parsed design (proving the DEF carries everything
    // the flow needs).
    let outcome = DsCts::new(tech.clone()).run(&parsed);
    println!("synthesized: {}", outcome.metrics);

    // Emit the post-CTS DEF with clock cells placed.
    let mut extras = Vec::new();
    for (i, pos) in outcome.tree.buffer_sites().into_iter().enumerate() {
        extras.push(ExtraComponent {
            name: format!("clkbuf_{i}"),
            cell: tech.buffer().name().to_owned(),
            pos,
        });
    }
    for (i, pos) in outcome.tree.ntsv_sites().into_iter().enumerate() {
        extras.push(ExtraComponent {
            name: format!("ntsv_{i}"),
            cell: "NTSV".to_owned(),
            pos,
        });
    }
    let post_cts = write_def_with_extras(&parsed, &extras);
    println!(
        "post-CTS DEF: {} lines ({} clock cells added)",
        post_cts.lines().count(),
        extras.len()
    );

    // The matching LEF snippet for the clock cells.
    let lef = write_lef(&tech);
    println!(
        "LEF: {} lines (buffer, nTSV, DFF macros)",
        lef.lines().count()
    );
    Ok(())
}
