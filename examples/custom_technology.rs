//! Building a custom process: how much does double-side CTS help as the
//! back-side metal quality varies? Sweeps the back-side unit resistance
//! from "as bad as M3" to the paper's BM1~BM3 value and reports the
//! latency gain of the double-side flow at each point.
//!
//! Run with `cargo run --release --example custom_technology`.

use dscts::{BenchmarkSpec, BufferModel, DsCts, Layer, NtsvModel, Technology};

fn main() {
    let design = BenchmarkSpec::c4_riscv32i().generate();

    println!("back-side R (kΩ/µm)  double-side (ps)  front-only (ps)  gain");
    for scale in [1.0, 0.25, 0.06, 0.0158] {
        // M3 resistance scaled down toward the Table I back-side value
        // (0.024222 -> 0.000384 is a 63x reduction, scale ~= 0.0158).
        let back_res = 0.024222 * scale;
        let tech = Technology::builder()
            .name(format!("custom-bs-{scale}"))
            .layer(Layer::new("M3", 0.024222, 0.12918))
            .layer(Layer::new("BSM", back_res, 0.116264))
            .front_layer("M3")
            .back_layer("BSM")
            .buffer(BufferModel::asap7_bufx4())
            .ntsv(NtsvModel::iedm21())
            .build()
            .expect("valid technology");

        let double = DsCts::new(tech.clone()).run(&design);
        let single = DsCts::new(tech).single_side(true).run(&design);
        println!(
            "{back_res:>19.6}  {:>16.2}  {:>15.2}  {:.2}x ({} nTSVs)",
            double.metrics.latency_ps,
            single.metrics.latency_ps,
            single.metrics.latency_ps / double.metrics.latency_ps,
            double.metrics.ntsvs,
        );
    }
    println!(
        "\nAs the back side degrades toward front-side RC, the DP stops\n\
         spending nTSVs — the design space collapses to the single-side one."
    );
}
