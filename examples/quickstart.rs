//! Quickstart: synthesize a double-side clock tree for a Table II design
//! and print its quality metrics next to the front-side-only flow.
//!
//! Run with `cargo run --release --example quickstart`.

use dscts::{BenchmarkSpec, DsCts, Technology};

fn main() {
    // The ASAP7-like technology from the paper's Table I, with back-side
    // metal (BM1~BM3) and the IEDM'21 nTSV.
    let tech = Technology::asap7();

    // C5 (aes): 29 306 cells, 2 072 flip-flops, utilization 0.5.
    let design = BenchmarkSpec::c5_aes().generate();
    println!(
        "design {}: {} sinks on a {:.0} x {:.0} um core",
        design.name,
        design.sink_count(),
        design.core.width() as f64 / 1000.0,
        design.core.height() as f64 / 1000.0
    );

    // Full double-side flow: hierarchical routing, concurrent buffer+nTSV
    // insertion, skew refinement.
    let double = DsCts::new(tech.clone()).run(&design);
    println!("double-side : {}", double.metrics);

    // Same pipeline restricted to the front side.
    let single = DsCts::new(tech).single_side(true).run(&design);
    println!("front-only  : {}", single.metrics);

    let speedup = single.metrics.latency_ps / double.metrics.latency_ps;
    println!(
        "back-side metal improves clock latency by {speedup:.2}x \
         using {} nTSVs",
        double.metrics.ntsvs
    );
}
