//! The conventional flow versus the systematic flow (Fig. 1) on one
//! design: synthesize a front-side tree, apply each published post-CTS
//! back-side flipper, and compare against concurrent insertion.
//!
//! Run with `cargo run --release --example baseline_comparison`.

use dscts::baseline::{flip_backside, FlipMethod, HTreeCts};
use dscts::{BenchmarkSpec, DsCts, EvalModel, Technology};

fn main() {
    let tech = Technology::asap7();
    let design = BenchmarkSpec::c5_aes().generate();
    let model = EvalModel::Elmore;

    println!(
        "{:<28} {:>12} {:>9} {:>8} {:>6}",
        "flow", "latency(ps)", "skew(ps)", "buffers", "nTSVs"
    );
    let row = |name: &str, m: &dscts::TreeMetrics| {
        println!(
            "{:<28} {:>12.2} {:>9.2} {:>8} {:>6}",
            name, m.latency_ps, m.skew_ps, m.buffers, m.ntsvs
        );
    };

    // OpenROAD-like H-tree and the latency-driven flip of [2].
    let htree = HTreeCts::default().synthesize(&design, &tech);
    row("openroad-like h-tree", &htree.evaluate(&tech, model));
    let flipped = flip_backside(&htree, &tech, FlipMethod::Latency);
    row(
        "  + [2] latency-driven",
        &flipped.tree.evaluate(&tech, model),
    );

    // Our front-side buffered tree and the three flippers on it.
    let bct = DsCts::new(tech.clone()).single_side(true).run(&design);
    row("our buffered clock tree", &bct.metrics);
    for (name, method) in [
        ("  + [2] latency-driven", FlipMethod::Latency),
        (
            "  + [7] fanout >= 100",
            FlipMethod::Fanout { threshold: 100 },
        ),
        (
            "  + [6] criticality 0.5",
            FlipMethod::Criticality { fraction: 0.5 },
        ),
    ] {
        let f = flip_backside(&bct.tree, &tech, method);
        row(name, &f.tree.evaluate(&tech, model));
    }

    // The systematic flow: everything decided concurrently.
    let ours = DsCts::new(tech).run(&design);
    row("ours (concurrent)", &ours.metrics);

    println!(
        "\nThe flippers are pinned to the buffered tree's structure; the\n\
         concurrent DP re-decides buffers and nTSVs together and wins on\n\
         latency at comparable resources (Table III's story)."
    );
}
