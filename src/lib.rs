//! **dscts** — systematic multi-objective double-side clock tree synthesis.
//!
//! A Rust implementation of *"A Systematic Approach for Multi-objective
//! Double-side Clock Tree Synthesis"* (Jiang et al., DAC 2025): clock trees
//! that use back-side metal layers through nano-TSVs, designed
//! *concurrently* (routing, buffers and nTSVs in one multi-objective
//! dynamic program) instead of flipping nets of a finished front-side tree.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`geom`] | `dscts-geom` | Manhattan geometry, tilted-rectangle regions |
//! | [`tech`] | `dscts-tech` | ASAP7-like PDK, buffer / nTSV / NLDM models |
//! | [`netlist`] | `dscts-netlist` | design DB, DEF/LEF subset, Table II benchmarks |
//! | [`timing`] | `dscts-timing` | L-type Elmore engine, slew, arrival stats |
//! | [`cluster`] | `dscts-cluster` | capacity-bounded k-means, dual-level hierarchy |
//! | [`dme`] | `dscts-dme` | zero-skew deferred-merge embedding |
//! | [`vanginneken`] | `dscts-buffer` | classic single-side buffer insertion |
//! | [`core`] | `dscts-core` | the staged CTS engine: stages, patterns, DP, the composable `opt` pass layer, the `mcmm` multi-corner subsystem, DSE, baselines, errors |
//! | [`learn`] | `dscts-learn` | learned DSE: feature extraction, pure-Rust ridge / GBDT regressors, model files |
//! | [`service`] | `dscts-service` | multi-tenant job service: route-once design cache, bounded worker pool, admission control, quarantine, graceful drain |
//! | [`telemetry`] | `dscts-telemetry` | zero-dependency observability: spans, metrics registry, JSON-lines export |
//!
//! The synthesis flow itself is a **staged engine**: [`DsCts`] executes
//! `route → insertion → optimize → evaluate`, where each phase is a
//! [`Stage`] over a shared [`PipelineCtx`] blackboard and is wall-clocked
//! individually into [`Outcome::stages`]. The optimize stage runs a
//! composable schedule of [`core::opt::OptPass`]es (by default the
//! paper's §III-D skew refinement; custom schedules plug in via
//! `DsCts::schedule`), reporting one `opt:<name>` timing per pass.
//! Unsatisfiable inputs surface as [`CtsError`] from [`DsCts::try_run`]
//! (the panicking [`DsCts::run`] wrapper remains for callers that treat
//! them as bugs). Routing and DP hot paths are rayon-parallel and
//! bit-identical at any thread count; set `RAYON_NUM_THREADS=1` to
//! reproduce the serial engine exactly.
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use dscts::{BenchmarkSpec, DsCts, Technology};
//!
//! let design = BenchmarkSpec::c4_riscv32i().generate();
//! let outcome = DsCts::new(Technology::asap7()).run(&design);
//! println!("{}", outcome.metrics);
//! assert!(outcome.metrics.ntsvs > 0);
//! // Per-stage wall clock: route, insertion, optimize (plus its one
//! // default opt:endpoint-refine pass), evaluate.
//! assert_eq!(outcome.stages.len(), 5);
//! assert!(outcome.stage_seconds("opt:endpoint-refine").is_some());
//! ```
//!
//! Fallible embedding (services, sweeps) goes through [`DsCts::try_run`]:
//!
//! ```
//! use dscts::{BenchmarkSpec, CtsError, DsCts, Technology};
//!
//! let mut design = BenchmarkSpec::c4_riscv32i().generate();
//! design.sinks.clear();
//! let err = DsCts::new(Technology::asap7()).try_run(&design);
//! assert_eq!(err.unwrap_err(), CtsError::EmptyDesign);
//! ```
//!
//! # Multi-corner (MCMM) robust synthesis
//!
//! Expand the technology into PVT corners ([`CornerSet`]) and the same
//! pipeline — and any optimization schedule — becomes corner-aware:
//! every trial move fans out to all corners over one resident
//! multi-corner evaluator ([`core::mcmm::MultiCornerEval`]) and is
//! scored on the worst corner, so the robust-sized tree holds up at SS
//! instead of only at nominal. Here a three-corner robust-sizing run
//! (end-point refinement plus annealed sizing, both fanned out):
//!
//! ```
//! use dscts::core::opt::{AnnealConfig, AnnealedSizingPass};
//! use dscts::core::skew::SkewConfig;
//! use dscts::{BenchmarkSpec, CornerSet, DsCts, OptSchedule, Technology};
//!
//! let design = BenchmarkSpec::c4_riscv32i().generate();
//! let tech = Technology::asap7();
//! let outcome = DsCts::new(tech.clone())
//!     .corners(CornerSet::asap7_pvt(&tech)) // SS / TT / FF
//!     .schedule(
//!         OptSchedule::default_post_cts(SkewConfig::default())
//!             .with(AnnealedSizingPass::new(AnnealConfig {
//!                 moves: 1_500,
//!                 ..AnnealConfig::default()
//!             }))
//!             .seed(7),
//!     )
//!     .run(&design);
//! let report = outcome.corners.as_ref().expect("corner-aware run");
//! assert_eq!(report.corner_names, ["SS", "TT", "FF"]);
//! // The worst corner (SS) dominates the nominal view, and the spread
//! // across corners is the OCV proxy the robust objective controls:
//! assert!(report.robust.worst_latency_ps >= outcome.metrics.latency_ps);
//! assert!(report.robust.arrival_spread_ps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dscts_cluster as cluster;
pub use dscts_core as core;
pub use dscts_dme as dme;
pub use dscts_geom as geom;
pub use dscts_learn as learn;
pub use dscts_netlist as netlist;
pub use dscts_service as service;
pub use dscts_tech as tech;
pub use dscts_telemetry as telemetry;
pub use dscts_timing as timing;

/// Classic van Ginneken single-side buffer insertion (oracle / baseline).
pub use dscts_buffer as vanginneken;

pub use dscts_core::{
    baseline, dse, mcmm, opt, resilience, skew, CancelToken, CornerReport, CtsError, DsCts,
    EvalModel, HierarchicalRouter, IncrementalEval, Mode, ModeRule, MoesWeights, MultiCornerEval,
    OptSchedule, Outcome, Pattern, PatternSet, PipelineCtx, PruneMode, RecoveryPolicy,
    RecoveryStep, Relaxation, RobustMetrics, RobustObjective, RootCand, RoutingStyle, RunBudget,
    Stage, StageTiming, SynthesizedTree, TreeMetrics, TrialEval,
};
pub use dscts_netlist::{BenchmarkSpec, Design};
pub use dscts_tech::{
    BufferModel, Corner, CornerSet, DerateFactors, Layer, NtsvModel, Side, Technology, WireDerate,
};
