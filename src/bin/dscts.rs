//! `dscts` — command-line double-side CTS driver.
//!
//! Reads a placed DEF (or generates a named Table II benchmark), runs the
//! selected flow, prints the quality report, and optionally writes the
//! post-CTS DEF with the inserted clock cells.
//!
//! ```text
//! USAGE:
//!   dscts --design <c1|c2|c3|c4|c5>          run a built-in benchmark
//!   dscts --def <placed.def>                 run on a placed DEF file
//!   dscts --design c3 --sweep 10             exact DSE threshold sweep
//!   dscts --train log.jsonl --model m.json   train a metric predictor
//!   dscts --design c3 --predict --model m.json   predictor-pruned sweep
//!
//! OPTIONS:
//!   --flow <ours|front|openroad|flip2|flip7|flip6>   flow to run   [ours]
//!   --fanout <N>       DSE fanout threshold (full/intra mode split)
//!   --out <file.def>   write the post-CTS DEF
//!   --nldm             evaluate with NLDM + slew instead of Elmore
//!   --size             run the post-CTS buffer-sizing pass
//!   --deadline-ms <N>  wall-clock run budget (degraded-but-valid on expiry)
//!   --recover          retry infeasible runs down the relaxation ladder
//!   --telemetry <file> write a JSON-lines telemetry snapshot of the run
//!   --sweep <step>     sweep fanout thresholds 20..=1000 by <step>
//!   --train <jsonl>    train on a telemetry log (requires --model)
//!   --predict          prune the sweep with a trained --model
//!   --model <file>     model file to write (--train) or read (--predict)
//!   --gbdt             train the GBDT ensemble instead of ridge
//!   --seed <N>         training seed (default 7)
//! ```

use dscts::baseline::{flip_backside, FlipMethod, HTreeCts};
use dscts::core::sizing::{resize_for_skew, SizingConfig};
use dscts::netlist::def::{parse_def, write_def_with_extras, ExtraComponent};
use dscts::{
    BenchmarkSpec, Design, DsCts, EvalModel, ModeRule, RecoveryPolicy, RunBudget, Technology,
};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run with --help for usage");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", USAGE);
        return Ok(());
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    // Observability: with --telemetry, the whole run executes under a
    // live collector and the snapshot (stage/pass/DP span histograms,
    // counters, peak RSS) is written as JSON lines at exit.
    let telemetry_out = get("--telemetry");
    let collector = telemetry_out
        .is_some()
        .then(|| std::sync::Arc::new(dscts::telemetry::Telemetry::new()));
    let _telemetry_guard = collector
        .as_ref()
        .map(|c| dscts::telemetry::install(std::sync::Arc::clone(c)));

    // Model training runs standalone — no design, just a JSONL telemetry
    // log from a previous `--sweep --telemetry` run (or the service).
    if let Some(data_path) = get("--train") {
        return train_model(&data_path, get("--model"), has("--gbdt"), get("--seed"));
    }

    let design = load_design(get("--design"), get("--def"))?;
    let tech = Technology::asap7();
    let model = if has("--nldm") {
        EvalModel::Nldm
    } else {
        EvalModel::Elmore
    };
    let flow = get("--flow").unwrap_or_else(|| "ours".to_owned());

    println!(
        "design {}: {} sinks, core {:.0} x {:.0} um",
        design.name,
        design.sink_count(),
        design.core.width() as f64 / 1000.0,
        design.core.height() as f64 / 1000.0
    );

    let mut pipeline = DsCts::new(tech.clone()).eval_model(model);
    if let Some(f) = get("--fanout") {
        let t: u32 = f.parse().map_err(|_| format!("bad --fanout value `{f}`"))?;
        pipeline = pipeline.mode_rule(ModeRule::FanoutThreshold(t));
    }
    if let Some(ms) = get("--deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad --deadline-ms value `{ms}`"))?;
        pipeline = pipeline.budget(RunBudget::new().with_deadline(Duration::from_millis(ms)));
    }
    if has("--recover") {
        pipeline = pipeline.recovery(RecoveryPolicy::default());
    }

    // DSE sweeps: `--sweep` runs the exact batched engine (recording
    // per-class training rows when --telemetry is set); `--predict`
    // prunes the same grid with a trained model instead.
    if has("--predict") || get("--sweep").is_some() {
        let step: usize = match get("--sweep") {
            Some(s) => s.parse().map_err(|_| format!("bad --sweep value `{s}`"))?,
            None => 10,
        };
        if step == 0 {
            return Err("--sweep step must be positive".to_owned());
        }
        let thresholds: Vec<u32> = (20..=1000).step_by(step).collect();
        let base = DsCts::new(tech.clone()).eval_model(model);
        let engine = dscts::core::dse::SweepEngine::new(&base);
        let frontier = if has("--predict") {
            let model_path = get("--model").ok_or("--predict requires --model <file>")?;
            let text = std::fs::read_to_string(&model_path)
                .map_err(|e| format!("cannot read `{model_path}`: {e}"))?;
            let predictor = dscts::learn::LearnedModel::from_json(&text)?;
            let cfg = dscts::core::dse::PruneConfig::default();
            let learned = engine
                .sweep_fanout_learned(&design, thresholds.iter().copied(), &predictor, &cfg)
                .map_err(|e| e.to_string())?;
            println!(
                "learned sweep ({} model): {} thresholds, {} mode classes, {} evaluated, {} skipped",
                predictor.kind(),
                thresholds.len(),
                learned.classes.len(),
                learned.classes.len() - learned.classes_skipped,
                learned.classes_skipped,
            );
            println!(
                "guaranteed-vs-predicted frontier distance: {:.6}",
                learned.guaranteed_vs_predicted
            );
            dscts::core::dse::frontier_pairs(&learned.points)
        } else {
            let sweep = engine
                .try_sweep(&design, thresholds.iter().copied())
                .map_err(|e| e.to_string())?;
            println!(
                "exact sweep: {} thresholds collapsed into {} mode-class DP runs",
                thresholds.len(),
                sweep.classes.len(),
            );
            dscts::core::dse::frontier_pairs(&sweep.points)
        };
        println!("Pareto frontier ({} points):", frontier.len());
        for (res, lat) in frontier {
            println!("  {res:>6} resources  {lat:>10.3} ps latency");
        }
        if let (Some(path), Some(collector)) = (&telemetry_out, &collector) {
            std::fs::write(path, collector.snapshot().to_jsonl())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("telemetry snapshot written to {path} (feed it to --train)");
        }
        return Ok(());
    }

    // Staged flows report which phase failed via CtsError instead of
    // panicking; per-stage wall clocks come along for free.
    let report_stages = |o: &dscts::Outcome| {
        let cells: Vec<String> = o
            .stages
            .iter()
            .map(|s| format!("{} {:.1} ms", s.name, s.seconds * 1e3))
            .collect();
        println!(
            "stages: {} | total {:.1} ms",
            cells.join(" | "),
            o.runtime_s * 1e3
        );
        if o.degraded {
            println!("NOTE: run budget expired mid-optimization; schedule truncated (tree is valid, metrics complete)");
        }
        for step in &o.recovery {
            println!(
                "recovered: {} -> retried with {:?}",
                step.error, step.relaxation
            );
        }
    };
    let mut tree = match flow.as_str() {
        "ours" => {
            let o = pipeline.try_run(&design).map_err(|e| e.to_string())?;
            report_stages(&o);
            o.tree
        }
        "front" => {
            let o = pipeline
                .single_side(true)
                .try_run(&design)
                .map_err(|e| e.to_string())?;
            report_stages(&o);
            o.tree
        }
        "openroad" => HTreeCts::default().synthesize(&design, &tech),
        "flip2" | "flip7" | "flip6" => {
            let bct = pipeline
                .single_side(true)
                .try_run(&design)
                .map_err(|e| e.to_string())?
                .tree;
            let method = match flow.as_str() {
                "flip2" => FlipMethod::Latency,
                "flip7" => FlipMethod::Fanout { threshold: 100 },
                _ => FlipMethod::Criticality { fraction: 0.5 },
            };
            flip_backside(&bct, &tech, method).tree
        }
        other => return Err(format!("unknown flow `{other}`")),
    };

    if has("--size") {
        let report = resize_for_skew(&mut tree, &tech, model, &SizingConfig::default());
        println!(
            "sizing: {} buffers resized, skew {:.3} -> {:.3} ps",
            report.resized, report.before.skew_ps, report.after.skew_ps
        );
    }

    let m = tree.evaluate(&tech, model);
    println!("{m}");
    println!(
        "trunk WL {:.3}e6 nm | switched cap {:.1} fF | cell area {:.1} um^2 | worst sink slew {:.1} ps",
        m.trunk_wirelength_nm as f64 / 1e6,
        m.switched_cap_ff,
        m.cell_area_nm2 as f64 / 1e6,
        m.max_sink_slew_ps
    );
    println!(
        "clock power at 2 GHz, 0.7 V: {:.1} uW",
        m.clock_power_uw(0.7, 2.0)
    );

    if let Some(out) = get("--out") {
        let mut extras = Vec::new();
        for (i, pos) in tree.buffer_sites().into_iter().enumerate() {
            extras.push(ExtraComponent {
                name: format!("clkbuf_{i}"),
                cell: tech.buffer().name().to_owned(),
                pos,
            });
        }
        for (i, pos) in tree.ntsv_sites().into_iter().enumerate() {
            extras.push(ExtraComponent {
                name: format!("ntsv_{i}"),
                cell: "NTSV".to_owned(),
                pos,
            });
        }
        std::fs::write(&out, write_def_with_extras(&design, &extras))
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!("post-CTS DEF written to {out}");
    }

    if let (Some(path), Some(collector)) = (telemetry_out, collector) {
        std::fs::write(&path, collector.snapshot().to_jsonl())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("telemetry snapshot written to {path}");
    }
    Ok(())
}

/// Trains a metric predictor on a JSONL telemetry log and writes the
/// model file (`--train`). Ridge by default; `--gbdt` for the boosted
/// ensemble.
fn train_model(
    data_path: &str,
    model_out: Option<String>,
    gbdt: bool,
    seed: Option<String>,
) -> Result<(), String> {
    use dscts::learn::{Dataset, GbdtConfig, GbdtPredictor, LearnedModel, RidgePredictor};
    let out = model_out.ok_or("--train requires --model <file>")?;
    let seed: u64 = match seed {
        Some(s) => s.parse().map_err(|_| format!("bad --seed value `{s}`"))?,
        None => 7,
    };
    let text = std::fs::read_to_string(data_path)
        .map_err(|e| format!("cannot read `{data_path}`: {e}"))?;
    let data = Dataset::from_jsonl(&text)?;
    let model = if gbdt {
        let cfg = GbdtConfig {
            seed,
            ..GbdtConfig::default()
        };
        LearnedModel::Gbdt(GbdtPredictor::train(&data, &cfg)?)
    } else {
        LearnedModel::Ridge(Box::new(RidgePredictor::train(&data, 1.0, seed)?))
    };
    std::fs::write(&out, model.to_json()).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "trained {} model on {} sweep records; written to {out}",
        model.kind(),
        data.len()
    );
    Ok(())
}

fn load_design(named: Option<String>, def_path: Option<String>) -> Result<Design, String> {
    match (named, def_path) {
        (Some(name), None) => {
            let spec = match name.to_lowercase().as_str() {
                "c1" | "jpeg" => BenchmarkSpec::c1_jpeg(),
                "c2" | "swerv" | "swerv_wrapper" => BenchmarkSpec::c2_swerv_wrapper(),
                "c3" | "ethmac" => BenchmarkSpec::c3_ethmac(),
                "c4" | "riscv32i" => BenchmarkSpec::c4_riscv32i(),
                "c5" | "aes" => BenchmarkSpec::c5_aes(),
                other => return Err(format!("unknown design `{other}`")),
            };
            Ok(spec.generate())
        }
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            parse_def(&text).map_err(|e| e.to_string())
        }
        (None, None) => Err("one of --design or --def is required".to_owned()),
        (Some(_), Some(_)) => Err("--design and --def are mutually exclusive".to_owned()),
    }
}

const USAGE: &str = "\
dscts - systematic multi-objective double-side clock tree synthesis

USAGE:
  dscts --design <c1|c2|c3|c4|c5> [options]   run a built-in benchmark
  dscts --def <placed.def> [options]          run on a placed DEF file
  dscts --design c3 --sweep 10 --telemetry log.jsonl   exact DSE sweep,
                   recording per-class training rows
  dscts --train log.jsonl --model m.json [--gbdt] [--seed N]
                   train a metric predictor on a telemetry log
  dscts --design c3 --predict --model m.json  predictor-pruned sweep
                   (prints classes skipped + frontier distance)

OPTIONS:
  --flow <ours|front|openroad|flip2|flip7|flip6>   flow to run (default ours)
  --fanout <N>     DSE fanout threshold (nodes above it are intra-side)
  --out <file>     write the post-CTS DEF with inserted clock cells
  --nldm           evaluate with NLDM tables + slew propagation
  --size           run the post-CTS buffer-sizing pass
  --deadline-ms <N>  wall-clock run budget; expiry mid-optimization yields a
                     degraded-but-valid tree, earlier expiry aborts typed
  --recover        on infeasibility, retry down the relaxation ladder
                   (extended patterns, more candidates, single-side)
  --telemetry <file>  run under a telemetry collector and write its
                      JSON-lines snapshot (span histograms, counters;
                      with --sweep, per-class training rows)
  --sweep <step>   sweep fanout thresholds 20..=1000 by <step> with the
                   batched DSE engine and print the Pareto frontier
  --train <jsonl>  train a metric predictor on a telemetry log and write
                   it to --model (ridge unless --gbdt; exits afterwards)
  --predict        prune the --sweep grid with the trained --model: only
                   predicted-frontier classes are evaluated exactly
  --model <file>   model file to write (--train) or read (--predict)
  --gbdt           train the hand-rolled GBDT ensemble instead of ridge
  --seed <N>       training seed for reproducible model files (default 7)
  -h, --help       show this help
";
