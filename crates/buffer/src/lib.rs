//! Classic van Ginneken buffer insertion (single side).
//!
//! The paper's concurrent buffer-and-nTSV dynamic program (§III-C) extends
//! van Ginneken's 1990 algorithm (\[16\]): candidate `(capacitance, delay)`
//! solutions propagate bottom-up through the tree, merge at branch points,
//! gain buffer options along edges, and dominated candidates are pruned.
//! This crate implements the classic single-side form, which serves two
//! roles in the workspace:
//!
//! * a **baseline substrate**: the OpenROAD-like H-tree baseline buffers
//!   its trunk with it;
//! * an **oracle** for the core DP: restricted to front-side patterns, the
//!   multi-objective DP must reproduce van Ginneken's optimal latency
//!   (tested in `dscts-core`).
//!
//! # Example
//!
//! ```
//! use dscts_buffer::{VgTree, insert_buffers};
//! use dscts_tech::BufferModel;
//!
//! // A 400 µm line with a heavy sink: buffering must pay off.
//! let buf = BufferModel::asap7_bufx4();
//! let mut tree = VgTree::new();
//! let rc = (0.024222e-3, 0.12918e-3);
//! let mut cur = VgTree::ROOT;
//! for _ in 0..8 {
//!     cur = tree.add_wire(cur, rc.0 * 50_000.0, rc.1 * 50_000.0);
//! }
//! tree.set_sink(cur, 30.0);
//! let unbuffered = insert_buffers(&tree, &buf, f64::INFINITY, 0).latency_ps;
//! let buffered = insert_buffers(&tree, &buf, f64::INFINITY, usize::MAX).latency_ps;
//! assert!(buffered < unbuffered / 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dscts_geom::TreeCsr;
use dscts_tech::BufferModel;

/// Node handle within a [`VgTree`].
pub type VgNodeId = u32;

#[derive(Debug, Clone)]
struct VgNode {
    parent: Option<VgNodeId>,
    wire_res: f64,
    wire_cap: f64,
    sink_cap: f64,
}

/// A buffering problem instance: a tree of wire elements with sink loads.
///
/// Node 0 ([`VgTree::ROOT`]) is the driver output. Each added node carries
/// the wire element connecting it to its parent (L-type: resistance in
/// series, capacitance at the node).
#[derive(Debug, Clone, Default)]
pub struct VgTree {
    nodes: Vec<VgNode>,
}

impl VgTree {
    /// The driver node.
    pub const ROOT: VgNodeId = 0;

    /// Creates an instance containing only the driver node.
    pub fn new() -> Self {
        VgTree {
            nodes: vec![VgNode {
                parent: None,
                wire_res: 0.0,
                wire_cap: 0.0,
                sink_cap: 0.0,
            }],
        }
    }

    /// Appends a wire element under `parent`; returns the new node.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist or parasitics are negative.
    pub fn add_wire(&mut self, parent: VgNodeId, res: f64, cap: f64) -> VgNodeId {
        assert!((parent as usize) < self.nodes.len(), "unknown parent");
        assert!(res >= 0.0 && cap >= 0.0, "negative parasitics");
        self.nodes.push(VgNode {
            parent: Some(parent),
            wire_res: res,
            wire_cap: cap,
            sink_cap: 0.0,
        });
        (self.nodes.len() - 1) as VgNodeId
    }

    /// Attaches sink load at a node.
    pub fn set_sink(&mut self, node: VgNodeId, cap: f64) {
        assert!(cap >= 0.0, "negative sink cap");
        self.nodes[node as usize].sink_cap += cap;
    }

    /// Number of nodes including the driver.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the driver exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn csr(&self) -> TreeCsr {
        TreeCsr::from_parents(self.nodes.iter().map(|n| n.parent))
    }
}

/// One non-dominated candidate during the bottom-up pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Capacitance presented upstream (fF).
    pub cap: f64,
    /// Worst delay from here to any downstream sink (ps).
    pub delay: f64,
    /// Buffers used downstream.
    pub buffers: u32,
}

/// Result of [`insert_buffers`].
#[derive(Debug, Clone, PartialEq)]
pub struct VgSolution {
    /// Source-to-worst-sink delay, excluding the external driver cell (ps).
    pub latency_ps: f64,
    /// Number of inserted buffers.
    pub buffer_count: u32,
    /// Capacitance presented to the driver (fF).
    pub root_cap_ff: f64,
    /// Nodes at which a buffer was placed (driving that node's subtree).
    pub buffer_nodes: Vec<VgNodeId>,
}

/// Runs van Ginneken insertion over `tree`, allowing a buffer to be placed
/// at any node (driving its subtree). Inserted buffers respect their own
/// [`BufferModel::max_load_ff`]; `max_load` bounds the capacitance the
/// **root driver** may see; `max_buffers` caps insertion count (use
/// `usize::MAX` for unlimited, `0` to forbid buffering).
///
/// Returns the minimum-latency solution at the root. If no candidate can
/// meet `max_load` at the driver, the minimum-latency infeasible solution
/// is returned instead (callers can check `root_cap_ff`).
pub fn insert_buffers(
    tree: &VgTree,
    buffer: &BufferModel,
    max_load: f64,
    max_buffers: usize,
) -> VgSolution {
    let csr = tree.csr();
    let n = tree.nodes.len();
    // Per-node candidate sets, plus back-pointers for reconstruction:
    // (buffer_here, child candidate indices aligned with `children[node]`).
    #[derive(Clone)]
    struct Tagged {
        cand: Candidate,
        buffered: bool,
        child_choice: Vec<u32>,
    }
    let mut sets: Vec<Vec<Tagged>> = vec![Vec::new(); n];

    // Bottom-up over the implicit ordering: children have larger indices
    // than parents (guaranteed by the builder), so sweep in reverse.
    for i in (0..n).rev() {
        let node = &tree.nodes[i];
        // Merge children candidate sets (cross product, then prune).
        let mut merged: Vec<Tagged> = vec![Tagged {
            cand: Candidate {
                cap: node.sink_cap,
                delay: 0.0,
                buffers: 0,
            },
            buffered: false,
            child_choice: Vec::new(),
        }];
        for &ch in csr.children(i as u32) {
            let mut next = Vec::new();
            for m in &merged {
                for (ci, c) in sets[ch as usize].iter().enumerate() {
                    let mut choice = m.child_choice.clone();
                    choice.push(ci as u32);
                    next.push(Tagged {
                        cand: Candidate {
                            cap: m.cand.cap + c.cand.cap,
                            delay: m.cand.delay.max(c.cand.delay),
                            buffers: m.cand.buffers + c.cand.buffers,
                        },
                        buffered: false,
                        child_choice: choice,
                    });
                }
            }
            merged = next;
            prune(&mut merged, |t| t.cand);
        }
        // Option: buffer at this node, driving the merged subtree.
        let mut with_buf: Vec<Tagged> = merged
            .iter()
            .filter(|m| {
                m.cand.buffers < max_buffers.min(u32::MAX as usize) as u32
                    && m.cand.cap <= buffer.max_load_ff()
            })
            .map(|m| Tagged {
                cand: Candidate {
                    cap: buffer.input_cap_ff(),
                    delay: m.cand.delay + buffer.delay_ps(m.cand.cap),
                    buffers: m.cand.buffers + 1,
                },
                buffered: true,
                child_choice: m.child_choice.clone(),
            })
            .collect();
        merged.append(&mut with_buf);
        // Wire element toward the parent.
        for t in &mut merged {
            t.cand.cap += node.wire_cap;
            t.cand.delay += node.wire_res * t.cand.cap;
        }
        prune(&mut merged, |t| t.cand);
        sets[i] = merged;
    }

    // Pick min latency among root candidates that respect the driver limit.
    let root_set = &sets[0];
    let best_idx = root_set
        .iter()
        .enumerate()
        .filter(|(_, t)| t.cand.cap <= max_load)
        .min_by(|a, b| a.1.cand.delay.total_cmp(&b.1.cand.delay))
        .map(|(i, _)| i)
        .unwrap_or_else(|| {
            root_set
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cand.delay.total_cmp(&b.1.cand.delay))
                .map(|(i, _)| i)
                .expect("root always has candidates")
        });

    // Top-down reconstruction of buffer placements.
    let mut buffer_nodes = Vec::new();
    let mut stack = vec![(0usize, best_idx)];
    while let Some((node, idx)) = stack.pop() {
        let t = &sets[node][idx];
        if t.buffered {
            buffer_nodes.push(node as VgNodeId);
        }
        for (k, &ch) in csr.children(node as u32).iter().enumerate() {
            stack.push((ch as usize, t.child_choice[k] as usize));
        }
    }
    buffer_nodes.sort_unstable();

    let best = &sets[0][best_idx];
    VgSolution {
        latency_ps: best.cand.delay,
        buffer_count: best.cand.buffers,
        root_cap_ff: best.cand.cap,
        buffer_nodes,
    }
}

/// Dominance pruning on `(cap, delay)` with buffer count as tie-breaker:
/// keeps the lower-left staircase.
fn prune<T>(cands: &mut Vec<T>, key: impl Fn(&T) -> Candidate) {
    if cands.len() <= 1 {
        return;
    }
    let mut idx: Vec<usize> = (0..cands.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ka, kb) = (key(&cands[a]), key(&cands[b]));
        ka.cap
            .total_cmp(&kb.cap)
            .then(ka.delay.total_cmp(&kb.delay))
            .then(ka.buffers.cmp(&kb.buffers))
    });
    let mut keep = vec![false; cands.len()];
    let mut best_delay = f64::INFINITY;
    let mut best_bufs = u32::MAX;
    for &i in &idx {
        let k = key(&cands[i]);
        if k.delay < best_delay - 1e-12 || (k.delay <= best_delay + 1e-12 && k.buffers < best_bufs)
        {
            keep[i] = true;
            if k.delay < best_delay {
                best_delay = k.delay;
            }
            best_bufs = best_bufs.min(k.buffers);
        }
    }
    let mut j = 0;
    cands.retain(|_| {
        let k = keep[j];
        j += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m3() -> (f64, f64) {
        (0.024222e-3, 0.12918e-3)
    }

    fn line(segments: usize, seg_nm: f64, sink: f64) -> VgTree {
        let (r, c) = m3();
        let mut t = VgTree::new();
        let mut cur = VgTree::ROOT;
        for _ in 0..segments {
            cur = t.add_wire(cur, r * seg_nm, c * seg_nm);
        }
        t.set_sink(cur, sink);
        t
    }

    #[test]
    fn no_buffers_equals_plain_elmore() {
        let t = line(4, 25_000.0, 10.0);
        let sol = insert_buffers(&t, &BufferModel::asap7_bufx4(), f64::INFINITY, 0);
        assert_eq!(sol.buffer_count, 0);
        // Hand Elmore: 4 segments of 25 µm.
        let (r, c) = m3();
        let (rs, cs) = (r * 25_000.0, c * 25_000.0);
        let mut cap = 10.0;
        let mut d = 0.0;
        for _ in 0..4 {
            cap += cs;
            d += rs * cap;
        }
        assert!((sol.latency_ps - d).abs() < 1e-9);
    }

    #[test]
    fn buffering_long_line_helps() {
        let t = line(10, 50_000.0, 30.0);
        let buf = BufferModel::asap7_bufx4();
        let none = insert_buffers(&t, &buf, f64::INFINITY, 0);
        let some = insert_buffers(&t, &buf, f64::INFINITY, usize::MAX);
        assert!(some.buffer_count >= 2);
        assert!(some.latency_ps < none.latency_ps / 2.0);
    }

    #[test]
    fn buffer_budget_is_respected() {
        let t = line(10, 50_000.0, 30.0);
        let buf = BufferModel::asap7_bufx4();
        let sol = insert_buffers(&t, &buf, f64::INFINITY, 1);
        assert!(sol.buffer_count <= 1);
    }

    #[test]
    fn max_load_forces_shielding() {
        // 60 fF of sinks at the end of a branch; driver limit 30 fF means a
        // buffer *must* shield.
        let t = line(2, 10_000.0, 60.0);
        let buf = BufferModel::asap7_bufx4();
        let sol = insert_buffers(&t, &buf, 30.0, usize::MAX);
        assert!(sol.buffer_count >= 1);
        assert!(sol.root_cap_ff <= 30.0);
    }

    #[test]
    fn branch_merge_takes_worst_delay() {
        let (r, c) = m3();
        let mut t = VgTree::new();
        let near = t.add_wire(VgTree::ROOT, r * 5_000.0, c * 5_000.0);
        t.set_sink(near, 2.0);
        let far1 = t.add_wire(VgTree::ROOT, r * 80_000.0, c * 80_000.0);
        let far2 = t.add_wire(far1, r * 80_000.0, c * 80_000.0);
        t.set_sink(far2, 2.0);
        let sol = insert_buffers(&t, &BufferModel::asap7_bufx4(), f64::INFINITY, 0);
        // Latency is governed by the far sink.
        let direct = {
            let mut cap = 2.0;
            let mut d = 0.0;
            for _ in 0..2 {
                cap += c * 80_000.0;
                d += r * 80_000.0 * cap;
            }
            d
        };
        assert!(sol.latency_ps >= direct - 1e-9);
    }

    #[test]
    fn buffer_nodes_reconstruction_is_consistent() {
        let t = line(10, 50_000.0, 30.0);
        let buf = BufferModel::asap7_bufx4();
        let sol = insert_buffers(&t, &buf, f64::INFINITY, usize::MAX);
        assert_eq!(sol.buffer_nodes.len(), sol.buffer_count as usize);
        for &n in &sol.buffer_nodes {
            assert!((n as usize) < t.len());
        }
    }

    #[test]
    fn pruning_keeps_min_delay() {
        let mut cands = vec![
            Candidate {
                cap: 10.0,
                delay: 5.0,
                buffers: 1,
            },
            Candidate {
                cap: 5.0,
                delay: 9.0,
                buffers: 0,
            },
            Candidate {
                cap: 12.0,
                delay: 6.0,
                buffers: 0,
            }, // dominated by first
            Candidate {
                cap: 3.0,
                delay: 20.0,
                buffers: 0,
            },
        ];
        prune(&mut cands, |c| *c);
        assert!(cands.iter().any(|c| (c.delay - 5.0).abs() < 1e-12));
        assert!(!cands
            .iter()
            .any(|c| (c.cap - 12.0).abs() < 1e-12 && (c.delay - 6.0).abs() < 1e-12));
    }
}
