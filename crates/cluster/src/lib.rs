//! Sink clustering for hierarchical clock routing.
//!
//! §III-B of the paper clusters clock sinks at two levels before routing:
//! *high-level* clusters of size `Hc` (3 000 in the experiments) and, inside
//! each, *low-level* clusters of size `Lc` (30). Both steps use k-means as
//! the backbone; the centroids become the leaf and root terminals of the
//! hierarchical DME step.
//!
//! This crate provides:
//!
//! * [`KMeans`] — seeded k-means++ with Lloyd iterations and an optional
//!   hard **size cap** per cluster (the paper's `Hc`/`Lc` are capacity
//!   bounds, not cluster counts);
//! * [`Clustering`] — the assignment + centroid result, with intra-cluster
//!   wirelength metrics;
//! * [`DualHierarchy`] — the two-level structure consumed by the router.
//!
//! # Example
//!
//! ```
//! use dscts_cluster::{DualHierarchy, KMeans};
//! use dscts_geom::Point;
//!
//! let sinks: Vec<Point> = (0..200)
//!     .map(|i| Point::new((i % 20) * 1000, (i / 20) * 1000))
//!     .collect();
//! let h = DualHierarchy::build(&sinks, 3000, 30, 42);
//! // 200 sinks with Hc=3000 -> a single high cluster; Lc=30 -> ceil(200/30)=7 low clusters.
//! assert_eq!(h.high.k(), 1);
//! assert_eq!(h.low_clusters().count(), 7);
//! let km = KMeans::new(4).with_seed(7).with_cap(60);
//! let c = km.run(&sinks);
//! assert!(c.sizes().iter().all(|&s| s <= 60));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dscts_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded k-means++ clustering with optional per-cluster size caps.
///
/// The algorithm is deterministic for a given `(points, k, seed, cap)`
/// configuration, which keeps every downstream experiment reproducible.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    seed: u64,
    cap: Option<usize>,
}

impl KMeans {
    /// Creates a k-means runner for `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeans {
            k,
            max_iter: 40,
            seed: 0,
            cap: None,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Lloyd iteration budget (default 40).
    pub fn with_max_iter(mut self, iters: usize) -> Self {
        self.max_iter = iters.max(1);
        self
    }

    /// Enforces a hard maximum cluster size.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "cap must be positive");
        self.cap = Some(cap);
        self
    }

    /// Runs clustering over `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, or if a size cap is configured and
    /// `k * cap < points.len()` (infeasible).
    pub fn run(&self, points: &[Point]) -> Clustering {
        assert!(!points.is_empty(), "cannot cluster zero points");
        if let Some(cap) = self.cap {
            assert!(
                self.k.saturating_mul(cap) >= points.len(),
                "infeasible: k*cap ({} * {cap}) < n ({})",
                self.k,
                points.len()
            );
        }
        let k = self.k.min(points.len());
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut centroids = kmeanspp_seed(points, k, &mut rng);
        let mut assignment = vec![0u32; points.len()];
        for _ in 0..self.max_iter {
            let changed = assign(points, &centroids, &mut assignment);
            recentre(points, &assignment, &mut centroids);
            if !changed {
                break;
            }
        }
        let mut clustering = Clustering {
            centroids,
            assignment,
        };
        if let Some(cap) = self.cap {
            rebalance(points, &mut clustering, cap);
            recentre(points, &clustering.assignment, &mut clustering.centroids);
        }
        clustering
    }
}

/// The result of a clustering run: per-point assignment plus centroids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    centroids: Vec<Point>,
    assignment: Vec<u32>,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Centroid of cluster `c`.
    pub fn centroid(&self, c: usize) -> Point {
        self.centroids[c]
    }

    /// All centroids.
    pub fn centroids(&self) -> &[Point] {
        &self.centroids
    }

    /// Cluster index of point `i`.
    pub fn cluster_of(&self, i: usize) -> usize {
        self.assignment[i] as usize
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Point indices belonging to each cluster.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut m = vec![Vec::new(); self.k()];
        for (i, &c) in self.assignment.iter().enumerate() {
            m[c as usize].push(i as u32);
        }
        m
    }

    /// Cluster cardinalities.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k()];
        for &c in &self.assignment {
            s[c as usize] += 1;
        }
        s
    }

    /// Total intra-cluster wirelength: Σ L1(point, its centroid). This is
    /// the quantity the paper's high-level clustering approximately
    /// minimises.
    pub fn intra_wirelength(&self, points: &[Point]) -> i64 {
        self.assignment
            .iter()
            .enumerate()
            .map(|(i, &c)| points[i].manhattan(self.centroids[c as usize]))
            .sum()
    }
}

fn kmeanspp_seed(points: &[Point], k: usize, rng: &mut SmallRng) -> Vec<Point> {
    let first = points[rng.random_range(0..points.len())];
    let mut centroids = vec![first];
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| {
            let d = p.manhattan(first) as f64;
            d * d
        })
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; any point works.
            points[rng.random_range(0..points.len())]
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            points[chosen]
        };
        centroids.push(next);
        for (i, p) in points.iter().enumerate() {
            let d = p.manhattan(next) as f64;
            d2[i] = d2[i].min(d * d);
        }
    }
    centroids
}

fn assign(points: &[Point], centroids: &[Point], assignment: &mut [u32]) -> bool {
    let mut changed = false;
    for (i, p) in points.iter().enumerate() {
        let mut best = 0u32;
        let mut best_d = i64::MAX;
        for (c, ctr) in centroids.iter().enumerate() {
            let d = p.manhattan(*ctr);
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
        if assignment[i] != best {
            assignment[i] = best;
            changed = true;
        }
    }
    changed
}

fn recentre(points: &[Point], assignment: &[u32], centroids: &mut [Point]) {
    let k = centroids.len();
    let mut sx = vec![0i128; k];
    let mut sy = vec![0i128; k];
    let mut n = vec![0i64; k];
    for (i, &c) in assignment.iter().enumerate() {
        sx[c as usize] += points[i].x as i128;
        sy[c as usize] += points[i].y as i128;
        n[c as usize] += 1;
    }
    for c in 0..k {
        if n[c] > 0 {
            centroids[c] = Point::new((sx[c] / n[c] as i128) as i64, (sy[c] / n[c] as i128) as i64);
        }
        // Empty clusters keep their previous centroid; the next assignment
        // pass may repopulate them.
    }
}

/// Moves overflow points (farthest from their centroid first) to the
/// nearest cluster with spare capacity.
fn rebalance(points: &[Point], clustering: &mut Clustering, cap: usize) {
    let k = clustering.k();
    let mut sizes = clustering.sizes();
    // Collect overflow points, farthest-first so the cheapest stay.
    let members = clustering.members();
    let mut overflow: Vec<u32> = Vec::new();
    for (c, mut mem) in members.into_iter().enumerate() {
        if mem.len() > cap {
            let ctr = clustering.centroids[c];
            mem.sort_by_key(|&i| std::cmp::Reverse(points[i as usize].manhattan(ctr)));
            let excess = mem.len() - cap;
            overflow.extend(mem.into_iter().take(excess));
            sizes[c] = cap;
        }
    }
    for i in overflow {
        let p = points[i as usize];
        let mut best: Option<(i64, usize)> = None;
        for (c, &size) in sizes.iter().enumerate().take(k) {
            if size < cap {
                let d = p.manhattan(clustering.centroids[c]);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, c));
                }
            }
        }
        let (_, c) = best.expect("feasibility checked in run()");
        clustering.assignment[i as usize] = c as u32;
        sizes[c] += 1;
    }
}

/// A low-level cluster inside the dual hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowCluster {
    /// Index of the parent high-level cluster.
    pub high: u32,
    /// Centroid of this low-level cluster (a DME leaf terminal).
    pub centroid: Point,
    /// Global sink indices belonging to this cluster.
    pub sinks: Vec<u32>,
}

/// The dual-level clustering of §III-B: high-level clusters of size ≤ `Hc`,
/// each subdivided into low-level clusters of size ≤ `Lc`.
#[derive(Debug, Clone)]
pub struct DualHierarchy {
    /// High-level clustering over all sinks.
    pub high: Clustering,
    low: Vec<LowCluster>,
}

impl DualHierarchy {
    /// Builds the hierarchy. `hc`/`lc` are **maximum cluster sizes** (the
    /// paper uses 3 000 and 30); cluster counts are `ceil(n/size)`.
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty or `hc`/`lc` are zero.
    pub fn build(sinks: &[Point], hc: usize, lc: usize, seed: u64) -> Self {
        assert!(!sinks.is_empty(), "cannot cluster zero sinks");
        assert!(hc > 0 && lc > 0, "cluster size bounds must be positive");
        let k_high = sinks.len().div_ceil(hc);
        let high = KMeans::new(k_high).with_seed(seed).with_cap(hc).run(sinks);
        let mut low = Vec::new();
        for (h, members) in high.members().into_iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let pts: Vec<Point> = members.iter().map(|&i| sinks[i as usize]).collect();
            let k_low = pts.len().div_ceil(lc);
            let lowc = KMeans::new(k_low)
                .with_seed(seed.wrapping_add(h as u64 + 1))
                .with_cap(lc)
                .run(&pts);
            for (c, local) in lowc.members().into_iter().enumerate() {
                if local.is_empty() {
                    continue;
                }
                low.push(LowCluster {
                    high: h as u32,
                    centroid: lowc.centroid(c),
                    sinks: local.iter().map(|&j| members[j as usize]).collect(),
                });
            }
        }
        DualHierarchy { high, low }
    }

    /// Iterates over the low-level clusters (DME leaf terminals).
    pub fn low_clusters(&self) -> impl ExactSizeIterator<Item = &LowCluster> {
        self.low.iter()
    }

    /// Low-level clusters grouped by their parent high-level cluster.
    pub fn low_by_high(&self) -> Vec<Vec<&LowCluster>> {
        let mut groups = vec![Vec::new(); self.high.k()];
        for lc in &self.low {
            groups[lc.high as usize].push(lc);
        }
        groups
    }

    /// Total number of sinks covered (for invariant checks).
    pub fn sink_count(&self) -> usize {
        self.low.iter().map(|l| l.sinks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, pitch: i64) -> Vec<Point> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| Point::new((i % side) as i64 * pitch, (i / side) as i64 * pitch))
            .collect()
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts = grid(300, 500);
        let a = KMeans::new(7).with_seed(11).run(&pts);
        let b = KMeans::new(7).with_seed(11).run(&pts);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_may_differ_but_cover_all() {
        let pts = grid(100, 500);
        let c = KMeans::new(5).with_seed(3).run(&pts);
        assert_eq!(c.assignment().len(), 100);
        assert_eq!(c.sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn cap_is_respected() {
        let pts = grid(100, 10);
        let c = KMeans::new(10).with_seed(1).with_cap(12).run(&pts);
        assert!(c.sizes().iter().all(|&s| s <= 12), "sizes {:?}", c.sizes());
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_cap_panics() {
        let pts = grid(100, 10);
        let _ = KMeans::new(2).with_cap(10).run(&pts);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let pts = grid(3, 10);
        let c = KMeans::new(10).run(&pts);
        assert!(c.k() <= 3);
    }

    #[test]
    fn clustering_reduces_wirelength_vs_single_cluster() {
        let pts = grid(400, 1000);
        let one = KMeans::new(1).run(&pts);
        let many = KMeans::new(16).with_seed(5).run(&pts);
        assert!(many.intra_wirelength(&pts) < one.intra_wirelength(&pts) / 2);
    }

    #[test]
    fn dual_hierarchy_counts_match_paper_formula() {
        // 4380 sinks (C1 jpeg): Hc=3000 -> 2 high clusters; the low count is
        // near ceil(4380/30)=146 (caps can split a few extra).
        let pts = grid(4380, 700);
        let h = DualHierarchy::build(&pts, 3000, 30, 42);
        assert_eq!(h.high.k(), 2);
        let lows = h.low_clusters().len();
        assert!(
            (146..=165).contains(&lows),
            "expected ~146 low clusters, got {lows}"
        );
        assert_eq!(h.sink_count(), 4380);
    }

    #[test]
    fn low_clusters_partition_sinks() {
        let pts = grid(500, 333);
        let h = DualHierarchy::build(&pts, 120, 16, 9);
        let mut seen = vec![false; pts.len()];
        for lc in h.low_clusters() {
            assert!(lc.sinks.len() <= 16);
            for &s in &lc.sinks {
                assert!(!seen[s as usize], "sink {s} in two low clusters");
                seen[s as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn low_by_high_groups_consistently() {
        let pts = grid(200, 100);
        let h = DualHierarchy::build(&pts, 80, 10, 1);
        let groups = h.low_by_high();
        assert_eq!(groups.len(), h.high.k());
        let total: usize = groups
            .iter()
            .flat_map(|g| g.iter())
            .map(|l| l.sinks.len())
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn single_point_everything() {
        let pts = vec![Point::new(5, 5)];
        let h = DualHierarchy::build(&pts, 3000, 30, 0);
        assert_eq!(h.low_clusters().len(), 1);
        let lc = h.low_clusters().next().unwrap();
        assert_eq!(lc.centroid, Point::new(5, 5));
    }

    #[test]
    fn coincident_points_do_not_crash() {
        let pts = vec![Point::new(7, 7); 50];
        let c = KMeans::new(4).with_seed(2).run(&pts);
        assert_eq!(c.assignment().len(), 50);
    }
}
