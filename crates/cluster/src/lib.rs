//! Sink clustering for hierarchical clock routing.
//!
//! §III-B of the paper clusters clock sinks at two levels before routing:
//! *high-level* clusters of size `Hc` (3 000 in the experiments) and, inside
//! each, *low-level* clusters of size `Lc` (30). Both steps use k-means as
//! the backbone; the centroids become the leaf and root terminals of the
//! hierarchical DME step.
//!
//! This crate provides:
//!
//! * [`KMeans`] — seeded k-means++ with Lloyd iterations and an optional
//!   hard **size cap** per cluster (the paper's `Hc`/`Lc` are capacity
//!   bounds, not cluster counts);
//! * [`Clustering`] — the assignment + centroid result, with intra-cluster
//!   wirelength metrics;
//! * [`DualHierarchy`] — the two-level structure consumed by the router.
//!
//! # Example
//!
//! ```
//! use dscts_cluster::{DualHierarchy, KMeans};
//! use dscts_geom::Point;
//!
//! let sinks: Vec<Point> = (0..200)
//!     .map(|i| Point::new((i % 20) * 1000, (i / 20) * 1000))
//!     .collect();
//! let h = DualHierarchy::build(&sinks, 3000, 30, 42);
//! // 200 sinks with Hc=3000 -> a single high cluster; Lc=30 -> ceil(200/30)=7 low clusters.
//! assert_eq!(h.high.k(), 1);
//! assert_eq!(h.low_clusters().count(), 7);
//! let km = KMeans::new(4).with_seed(7).with_cap(60);
//! let c = km.run(&sinks);
//! assert!(c.sizes().iter().all(|&s| s <= 60));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dscts_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Above this point count, k-means++ seeding scans a deterministic stride
/// subsample instead of every point. Chosen above every Table II preset and
/// the property-test sizes so their seeding (and thus every downstream
/// result) stays bit-identical to the dense scan; only the new `scaled`
/// 100k+-sink designs take the subsampled path.
const SEED_SAMPLE_LIMIT: usize = 65_536;

/// Below this centroid count the naive O(n·k) assignment scan is faster
/// than building the centroid grid; the two paths compute the same exact
/// argmin either way.
const GRID_MIN_K: usize = 16;

/// Seeded k-means++ clustering with optional per-cluster size caps.
///
/// The algorithm is deterministic for a given `(points, k, seed, cap)`
/// configuration, which keeps every downstream experiment reproducible.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    seed: u64,
    cap: Option<usize>,
}

impl KMeans {
    /// Creates a k-means runner for `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeans {
            k,
            max_iter: 40,
            seed: 0,
            cap: None,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Lloyd iteration budget (default 40).
    pub fn with_max_iter(mut self, iters: usize) -> Self {
        self.max_iter = iters.max(1);
        self
    }

    /// Enforces a hard maximum cluster size.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "cap must be positive");
        self.cap = Some(cap);
        self
    }

    /// Runs clustering over `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, or if a size cap is configured and
    /// `k * cap < points.len()` (infeasible).
    pub fn run(&self, points: &[Point]) -> Clustering {
        assert!(!points.is_empty(), "cannot cluster zero points");
        if let Some(cap) = self.cap {
            assert!(
                self.k.saturating_mul(cap) >= points.len(),
                "infeasible: k*cap ({} * {cap}) < n ({})",
                self.k,
                points.len()
            );
        }
        let k = self.k.min(points.len());
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut centroids = kmeanspp_seed(points, k, &mut rng);
        let mut assignment = vec![0u32; points.len()];
        for _ in 0..self.max_iter {
            let changed = assign(points, &centroids, &mut assignment);
            recentre(points, &assignment, &mut centroids);
            if !changed {
                break;
            }
        }
        let mut clustering = Clustering {
            centroids,
            assignment,
        };
        if let Some(cap) = self.cap {
            rebalance(points, &mut clustering, cap);
            recentre(points, &clustering.assignment, &mut clustering.centroids);
        }
        clustering
    }
}

/// The result of a clustering run: per-point assignment plus centroids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    centroids: Vec<Point>,
    assignment: Vec<u32>,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Centroid of cluster `c`.
    pub fn centroid(&self, c: usize) -> Point {
        self.centroids[c]
    }

    /// All centroids.
    pub fn centroids(&self) -> &[Point] {
        &self.centroids
    }

    /// Cluster index of point `i`.
    pub fn cluster_of(&self, i: usize) -> usize {
        self.assignment[i] as usize
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Point indices belonging to each cluster.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut m = vec![Vec::new(); self.k()];
        for (i, &c) in self.assignment.iter().enumerate() {
            m[c as usize].push(i as u32);
        }
        m
    }

    /// Cluster cardinalities.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k()];
        for &c in &self.assignment {
            s[c as usize] += 1;
        }
        s
    }

    /// Total intra-cluster wirelength: Σ L1(point, its centroid). This is
    /// the quantity the paper's high-level clustering approximately
    /// minimises.
    pub fn intra_wirelength(&self, points: &[Point]) -> i64 {
        self.assignment
            .iter()
            .enumerate()
            .map(|(i, &c)| points[i].manhattan(self.centroids[c as usize]))
            .sum()
    }
}

/// k-means++ seeding. For huge inputs the D²-weighted scan is O(n·k) —
/// quadratic once k grows with n — so past [`SEED_SAMPLE_LIMIT`] the seeds
/// are drawn from a deterministic stride subsample. Seeds only steer the
/// Lloyd iterations, which still see every point, so quality is unaffected;
/// determinism is preserved because the stride depends only on `n`.
fn kmeanspp_seed(points: &[Point], k: usize, rng: &mut SmallRng) -> Vec<Point> {
    if points.len() > SEED_SAMPLE_LIMIT {
        let stride = points.len().div_ceil(SEED_SAMPLE_LIMIT);
        let sample: Vec<Point> = points.iter().copied().step_by(stride).collect();
        if sample.len() >= k {
            return kmeanspp_seed_dense(&sample, k, rng);
        }
    }
    kmeanspp_seed_dense(points, k, rng)
}

fn kmeanspp_seed_dense(points: &[Point], k: usize, rng: &mut SmallRng) -> Vec<Point> {
    let first = points[rng.random_range(0..points.len())];
    let mut centroids = vec![first];
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| {
            let d = p.manhattan(first) as f64;
            d * d
        })
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; any point works.
            points[rng.random_range(0..points.len())]
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            points[chosen]
        };
        centroids.push(next);
        for (i, p) in points.iter().enumerate() {
            let d = p.manhattan(next) as f64;
            d2[i] = d2[i].min(d * d);
        }
    }
    centroids
}

/// Assigns every point to its nearest centroid (L1, lowest index wins
/// ties). Dispatches between the naive scan and the grid-accelerated
/// search; both compute the identical argmin, so results are bit-identical
/// regardless of which path runs.
fn assign(points: &[Point], centroids: &[Point], assignment: &mut [u32]) -> bool {
    if centroids.len() >= GRID_MIN_K && points.len() >= 64 {
        let grid = CentroidGrid::build(centroids);
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = grid.nearest(*p, centroids);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        changed
    } else {
        assign_naive(points, centroids, assignment)
    }
}

fn assign_naive(points: &[Point], centroids: &[Point], assignment: &mut [u32]) -> bool {
    let mut changed = false;
    for (i, p) in points.iter().enumerate() {
        let mut best = 0u32;
        let mut best_d = i64::MAX;
        for (c, ctr) in centroids.iter().enumerate() {
            let d = p.manhattan(*ctr);
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
        if assignment[i] != best {
            assignment[i] = best;
            changed = true;
        }
    }
    changed
}

/// A uniform grid over the centroid bounding box for exact nearest-centroid
/// queries in roughly O(1) per point (vs the naive O(k) scan).
///
/// The query expands square rings of cells outward from the query point's
/// cell. Any centroid in a ring `r ≥ 1` cell is at L1 distance at least
/// `(r-1)·cell` from the query point, so the search stops as soon as that
/// lower bound strictly exceeds the best distance found — equality must
/// keep searching because a tied centroid with a *lower index* would win
/// under the naive scan's tie-break, and bit-identity with that scan is
/// load-bearing for reproducibility.
struct CentroidGrid {
    x0: i64,
    y0: i64,
    cell: i64,
    gw: usize,
    gh: usize,
    /// CSR offsets into `idx`, one slot per grid cell (row-major).
    off: Vec<u32>,
    /// Centroid indices, grouped by cell, ascending within each cell.
    idx: Vec<u32>,
}

impl CentroidGrid {
    fn build(centroids: &[Point]) -> Self {
        let (mut min_x, mut min_y) = (i64::MAX, i64::MAX);
        let (mut max_x, mut max_y) = (i64::MIN, i64::MIN);
        for c in centroids {
            min_x = min_x.min(c.x);
            min_y = min_y.min(c.y);
            max_x = max_x.max(c.x);
            max_y = max_y.max(c.y);
        }
        // ~1 centroid per cell on average: sqrt(k) cells per side.
        let side_cells = ((centroids.len() as f64).sqrt().ceil() as i64).max(1);
        let span = (max_x - min_x).max(max_y - min_y).max(1);
        let cell = (span / side_cells).max(1);
        let gw = ((max_x - min_x) / cell) as usize + 1;
        let gh = ((max_y - min_y) / cell) as usize + 1;
        // Counting sort by cell keeps indices ascending within each cell.
        let cell_of = |p: Point| -> usize {
            let cx = ((p.x - min_x) / cell) as usize;
            let cy = ((p.y - min_y) / cell) as usize;
            cy * gw + cx
        };
        let mut off = vec![0u32; gw * gh + 1];
        for c in centroids {
            off[cell_of(*c) + 1] += 1;
        }
        for i in 1..off.len() {
            off[i] += off[i - 1];
        }
        let mut idx = vec![0u32; centroids.len()];
        let mut cursor = off.clone();
        for (i, c) in centroids.iter().enumerate() {
            let slot = cell_of(*c);
            idx[cursor[slot] as usize] = i as u32;
            cursor[slot] += 1;
        }
        CentroidGrid {
            x0: min_x,
            y0: min_y,
            cell,
            gw,
            gh,
            off,
            idx,
        }
    }

    /// Exact nearest centroid to `p`: minimum by `(distance, index)`, the
    /// same total order the naive scan realises.
    fn nearest(&self, p: Point, centroids: &[Point]) -> u32 {
        let cx = (((p.x - self.x0) / self.cell).max(0) as usize).min(self.gw - 1);
        let cy = (((p.y - self.y0) / self.cell).max(0) as usize).min(self.gh - 1);
        let mut best = u32::MAX;
        let mut best_d = i64::MAX;
        let max_ring = cx.max(self.gw - 1 - cx).max(cy).max(self.gh - 1 - cy);
        for r in 0..=max_ring {
            if best != u32::MAX && (r as i64 - 1) * self.cell > best_d {
                break;
            }
            let lo_x = cx.saturating_sub(r);
            let hi_x = (cx + r).min(self.gw - 1);
            let lo_y = cy.saturating_sub(r);
            let hi_y = (cy + r).min(self.gh - 1);
            let mut scan_cell = |gx: usize, gy: usize| {
                let slot = gy * self.gw + gx;
                for &c in &self.idx[self.off[slot] as usize..self.off[slot + 1] as usize] {
                    let d = p.manhattan(centroids[c as usize]);
                    if d < best_d || (d == best_d && c < best) {
                        best_d = d;
                        best = c;
                    }
                }
            };
            for gy in lo_y..=hi_y {
                if r == 0 || gy == lo_y || gy == hi_y {
                    // Top/bottom edges of the ring: full row span.
                    for gx in lo_x..=hi_x {
                        scan_cell(gx, gy);
                    }
                } else {
                    // Interior rows: only the left/right ring columns, and
                    // only when they actually lie on this ring (not clamped
                    // away at the grid border).
                    if cx >= r {
                        scan_cell(lo_x, gy);
                    }
                    if cx + r < self.gw {
                        scan_cell(hi_x, gy);
                    }
                }
            }
        }
        best
    }
}

fn recentre(points: &[Point], assignment: &[u32], centroids: &mut [Point]) {
    let k = centroids.len();
    let mut sx = vec![0i128; k];
    let mut sy = vec![0i128; k];
    let mut n = vec![0i64; k];
    for (i, &c) in assignment.iter().enumerate() {
        sx[c as usize] += points[i].x as i128;
        sy[c as usize] += points[i].y as i128;
        n[c as usize] += 1;
    }
    for c in 0..k {
        if n[c] > 0 {
            centroids[c] = Point::new((sx[c] / n[c] as i128) as i64, (sy[c] / n[c] as i128) as i64);
        }
        // Empty clusters keep their previous centroid; the next assignment
        // pass may repopulate them.
    }
}

/// Moves overflow points (farthest from their centroid first) to the
/// nearest cluster with spare capacity.
fn rebalance(points: &[Point], clustering: &mut Clustering, cap: usize) {
    let k = clustering.k();
    let mut sizes = clustering.sizes();
    // Collect overflow points, farthest-first so the cheapest stay.
    let members = clustering.members();
    let mut overflow: Vec<u32> = Vec::new();
    for (c, mut mem) in members.into_iter().enumerate() {
        if mem.len() > cap {
            let ctr = clustering.centroids[c];
            mem.sort_by_key(|&i| std::cmp::Reverse(points[i as usize].manhattan(ctr)));
            let excess = mem.len() - cap;
            overflow.extend(mem.into_iter().take(excess));
            sizes[c] = cap;
        }
    }
    for i in overflow {
        let p = points[i as usize];
        let mut best: Option<(i64, usize)> = None;
        for (c, &size) in sizes.iter().enumerate().take(k) {
            if size < cap {
                let d = p.manhattan(clustering.centroids[c]);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, c));
                }
            }
        }
        let (_, c) = best.expect("feasibility checked in run()");
        clustering.assignment[i as usize] = c as u32;
        sizes[c] += 1;
    }
}

/// A low-level cluster inside the dual hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowCluster {
    /// Index of the parent high-level cluster.
    pub high: u32,
    /// Centroid of this low-level cluster (a DME leaf terminal).
    pub centroid: Point,
    /// Global sink indices belonging to this cluster.
    pub sinks: Vec<u32>,
}

/// The dual-level clustering of §III-B: high-level clusters of size ≤ `Hc`,
/// each subdivided into low-level clusters of size ≤ `Lc`.
#[derive(Debug, Clone)]
pub struct DualHierarchy {
    /// High-level clustering over all sinks.
    pub high: Clustering,
    low: Vec<LowCluster>,
}

impl DualHierarchy {
    /// Builds the hierarchy. `hc`/`lc` are **maximum cluster sizes** (the
    /// paper uses 3 000 and 30); cluster counts are `ceil(n/size)`.
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty or `hc`/`lc` are zero.
    pub fn build(sinks: &[Point], hc: usize, lc: usize, seed: u64) -> Self {
        assert!(!sinks.is_empty(), "cannot cluster zero sinks");
        assert!(hc > 0 && lc > 0, "cluster size bounds must be positive");
        let k_high = sinks.len().div_ceil(hc);
        let high = KMeans::new(k_high).with_seed(seed).with_cap(hc).run(sinks);
        // The per-high-cluster low-level runs are independent (each gets a
        // seed derived only from `h`), so fan them out. The collect is
        // order-preserving and the groups are flattened in high-cluster
        // order, making the result bit-identical to the sequential loop at
        // any thread count.
        let indexed: Vec<(usize, Vec<u32>)> = high.members().into_iter().enumerate().collect();
        let groups: Vec<Vec<LowCluster>> = indexed
            .par_iter()
            .map(|(h, members)| {
                if members.is_empty() {
                    return Vec::new();
                }
                let pts: Vec<Point> = members.iter().map(|&i| sinks[i as usize]).collect();
                let k_low = pts.len().div_ceil(lc);
                let lowc = KMeans::new(k_low)
                    .with_seed(seed.wrapping_add(*h as u64 + 1))
                    .with_cap(lc)
                    .run(&pts);
                let mut out = Vec::new();
                for (c, local) in lowc.members().into_iter().enumerate() {
                    if local.is_empty() {
                        continue;
                    }
                    out.push(LowCluster {
                        high: *h as u32,
                        centroid: lowc.centroid(c),
                        sinks: local.iter().map(|&j| members[j as usize]).collect(),
                    });
                }
                out
            })
            .collect();
        let low: Vec<LowCluster> = groups.into_iter().flatten().collect();
        DualHierarchy { high, low }
    }

    /// Iterates over the low-level clusters (DME leaf terminals).
    pub fn low_clusters(&self) -> impl ExactSizeIterator<Item = &LowCluster> {
        self.low.iter()
    }

    /// Low-level clusters grouped by their parent high-level cluster.
    pub fn low_by_high(&self) -> Vec<Vec<&LowCluster>> {
        let mut groups = vec![Vec::new(); self.high.k()];
        for lc in &self.low {
            groups[lc.high as usize].push(lc);
        }
        groups
    }

    /// Total number of sinks covered (for invariant checks).
    pub fn sink_count(&self) -> usize {
        self.low.iter().map(|l| l.sinks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, pitch: i64) -> Vec<Point> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| Point::new((i % side) as i64 * pitch, (i / side) as i64 * pitch))
            .collect()
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts = grid(300, 500);
        let a = KMeans::new(7).with_seed(11).run(&pts);
        let b = KMeans::new(7).with_seed(11).run(&pts);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_may_differ_but_cover_all() {
        let pts = grid(100, 500);
        let c = KMeans::new(5).with_seed(3).run(&pts);
        assert_eq!(c.assignment().len(), 100);
        assert_eq!(c.sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn cap_is_respected() {
        let pts = grid(100, 10);
        let c = KMeans::new(10).with_seed(1).with_cap(12).run(&pts);
        assert!(c.sizes().iter().all(|&s| s <= 12), "sizes {:?}", c.sizes());
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_cap_panics() {
        let pts = grid(100, 10);
        let _ = KMeans::new(2).with_cap(10).run(&pts);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let pts = grid(3, 10);
        let c = KMeans::new(10).run(&pts);
        assert!(c.k() <= 3);
    }

    #[test]
    fn clustering_reduces_wirelength_vs_single_cluster() {
        let pts = grid(400, 1000);
        let one = KMeans::new(1).run(&pts);
        let many = KMeans::new(16).with_seed(5).run(&pts);
        assert!(many.intra_wirelength(&pts) < one.intra_wirelength(&pts) / 2);
    }

    #[test]
    fn dual_hierarchy_counts_match_paper_formula() {
        // 4380 sinks (C1 jpeg): Hc=3000 -> 2 high clusters; the low count is
        // near ceil(4380/30)=146 (caps can split a few extra).
        let pts = grid(4380, 700);
        let h = DualHierarchy::build(&pts, 3000, 30, 42);
        assert_eq!(h.high.k(), 2);
        let lows = h.low_clusters().len();
        assert!(
            (146..=165).contains(&lows),
            "expected ~146 low clusters, got {lows}"
        );
        assert_eq!(h.sink_count(), 4380);
    }

    #[test]
    fn low_clusters_partition_sinks() {
        let pts = grid(500, 333);
        let h = DualHierarchy::build(&pts, 120, 16, 9);
        let mut seen = vec![false; pts.len()];
        for lc in h.low_clusters() {
            assert!(lc.sinks.len() <= 16);
            for &s in &lc.sinks {
                assert!(!seen[s as usize], "sink {s} in two low clusters");
                seen[s as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn low_by_high_groups_consistently() {
        let pts = grid(200, 100);
        let h = DualHierarchy::build(&pts, 80, 10, 1);
        let groups = h.low_by_high();
        assert_eq!(groups.len(), h.high.k());
        let total: usize = groups
            .iter()
            .flat_map(|g| g.iter())
            .map(|l| l.sinks.len())
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn single_point_everything() {
        let pts = vec![Point::new(5, 5)];
        let h = DualHierarchy::build(&pts, 3000, 30, 0);
        assert_eq!(h.low_clusters().len(), 1);
        let lc = h.low_clusters().next().unwrap();
        assert_eq!(lc.centroid, Point::new(5, 5));
    }

    #[test]
    fn coincident_points_do_not_crash() {
        let pts = vec![Point::new(7, 7); 50];
        let c = KMeans::new(4).with_seed(2).run(&pts);
        assert_eq!(c.assignment().len(), 50);
    }

    /// Pseudo-random (deterministic) points that do not sit on a lattice,
    /// so distance ties and cell-boundary cases actually occur.
    fn scatter(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut next = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        (0..n)
            .map(|_| Point::new((next() % 100_000) as i64, (next() % 100_000) as i64))
            .collect()
    }

    #[test]
    fn grid_assign_matches_naive_exactly() {
        let pts = scatter(5_000, 42);
        for k in [16usize, 40, 128] {
            let centroids: Vec<Point> = pts.iter().copied().step_by(pts.len() / k).collect();
            let mut grid_asn = vec![0u32; pts.len()];
            let mut naive_asn = vec![0u32; pts.len()];
            assert!(
                centroids.len() >= GRID_MIN_K,
                "gate must take the grid path"
            );
            assign(&pts, &centroids, &mut grid_asn);
            assign_naive(&pts, &centroids, &mut naive_asn);
            assert_eq!(grid_asn, naive_asn, "grid vs naive diverged at k={k}");
        }
    }

    #[test]
    fn grid_assign_breaks_ties_by_lowest_index() {
        // Two coincident centroids plus a distant one: every point tied
        // between 0 and 1 must pick 0, exactly like the naive scan.
        let pts = scatter(500, 7);
        let centroids = vec![Point::new(50_000, 50_000); GRID_MIN_K];
        let mut asn = vec![u32::MAX; pts.len()];
        assign(&pts, &centroids, &mut asn);
        assert!(asn.iter().all(|&c| c == 0));
    }

    #[test]
    fn grid_assign_handles_points_outside_centroid_bbox() {
        let mut pts = scatter(200, 3);
        // Far outside the centroid bounding box on every side.
        pts.push(Point::new(-5_000_000, -5_000_000));
        pts.push(Point::new(9_000_000, 123));
        let centroids: Vec<Point> = pts.iter().copied().take(20).collect();
        let mut grid_asn = vec![0u32; pts.len()];
        let mut naive_asn = vec![0u32; pts.len()];
        assign(&pts, &centroids, &mut grid_asn);
        assign_naive(&pts, &centroids, &mut naive_asn);
        assert_eq!(grid_asn, naive_asn);
    }

    #[test]
    fn subsampled_seeding_is_deterministic_and_covers() {
        let pts = scatter(SEED_SAMPLE_LIMIT + 5_000, 11);
        let a = KMeans::new(4).with_seed(9).with_max_iter(3).run(&pts);
        let b = KMeans::new(4).with_seed(9).with_max_iter(3).run(&pts);
        assert_eq!(a, b);
        assert_eq!(a.sizes().iter().sum::<usize>(), pts.len());
    }

    #[test]
    fn dual_hierarchy_is_thread_count_invariant_by_construction() {
        // The parallel low-level fan-out must be order-preserving: the
        // result may not depend on how many threads the shim uses.
        let pts = grid(2_000, 311);
        let base = DualHierarchy::build(&pts, 400, 25, 5);
        let again = DualHierarchy::build(&pts, 400, 25, 5);
        assert_eq!(base.high, again.high);
        assert_eq!(
            base.low_clusters().collect::<Vec<_>>(),
            again.low_clusters().collect::<Vec<_>>()
        );
    }
}
