//! RC-tree timing engine for clock tree evaluation.
//!
//! The paper computes wire delays with the classic **L-type Elmore model**
//! (§II-B): every element (wire segment, nTSV) is a series resistance with
//! its capacitance lumped at the far end, so the delay through a path is
//!
//! ```text
//! delay(n) = Σ over elements e on the path  R_e · C_downstream(far end of e)
//! ```
//!
//! which reproduces the paper's Eq. (1) and Eq. (2) closed forms exactly
//! (verified by unit and property tests in this crate). Slew is propagated
//! with the PERI rule (`slew² = slew_in² + (ln 9 · elmore)²`), following the
//! voltage-scaled clock network methodology the paper cites (\[34\]).
//!
//! Three layers of API:
//!
//! * [`RcTree`] — arena-based RC tree with downstream-capacitance, Elmore
//!   and slew propagation passes;
//! * [`chain_delay`] / [`Element`] — straight-line chains, used by the DP's
//!   closed-form pattern delays and as their test oracle;
//! * [`ArrivalStats`] — latency / skew summaries over per-sink arrivals.
//!
//! # Example
//!
//! ```
//! use dscts_timing::{Element, chain_delay};
//!
//! // Eq. (2): two nTSVs around a back-side wire.
//! let (r_t, c_t) = (0.020, 0.004);
//! let (r_w, c_w) = (0.000384e-3 * 50_000.0, 0.116264e-3 * 50_000.0);
//! let cd = 10.0;
//! let chain = [Element::new(r_t, c_t), Element::new(r_w, c_w), Element::new(r_t, c_t)];
//! let (delay, cap) = chain_delay(&chain, cd);
//! assert!((cap - (2.0 * c_t + c_w + cd)).abs() < 1e-12);
//! assert!(delay > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod metrics;
mod rctree;

pub use chain::{chain_delay, chain_delay_profile, Element};
pub use metrics::ArrivalStats;
pub use rctree::{NodeId, RcTree};

/// `ln 9` — converts an Elmore time constant to a 10–90 % transition time.
pub const LN9: f64 = 2.197_224_577_336_22;

/// PERI slew composition: the output transition of a stage with input slew
/// `slew_in` and internal Elmore delay `elmore` (both ps).
///
/// ```
/// use dscts_timing::wire_slew;
/// assert_eq!(wire_slew(0.0, 0.0), 0.0);
/// assert!(wire_slew(10.0, 5.0) > 10.0);
/// ```
pub fn wire_slew(slew_in: f64, elmore: f64) -> f64 {
    let w = LN9 * elmore;
    (slew_in * slew_in + w * w).sqrt()
}
