use crate::{wire_slew, LN9};

/// Opaque handle to a node of an [`RcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index form, for use with external side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<NodeId>,
    res_from_parent: f64,
    cap: f64,
}

/// An arena-based RC tree rooted at a driver output.
///
/// Nodes are added in topological order (parent before child), which lets
/// every analysis pass run as two linear sweeps. Caps are lumped at nodes;
/// each edge carries the series resistance from the parent — the L-type
/// Elmore convention of §II-B.
///
/// ```
/// use dscts_timing::RcTree;
/// let mut t = RcTree::new(0.0);
/// let a = t.add_node(t.root(), 2.0, 3.0);
/// let b = t.add_node(a, 1.0, 5.0);
/// // delay(b) = 2·(3+5) + 1·5 = 21
/// let d = t.elmore();
/// assert_eq!(d[b.index()], 21.0);
/// ```
#[derive(Debug, Clone)]
pub struct RcTree {
    nodes: Vec<Node>,
}

impl RcTree {
    /// Creates a tree whose root (the driver output node) carries `root_cap`.
    pub fn new(root_cap: f64) -> Self {
        RcTree {
            nodes: vec![Node {
                parent: None,
                res_from_parent: 0.0,
                cap: root_cap,
            }],
        }
    }

    /// The root node (driver output).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Adds a node under `parent` connected through `res` (kΩ) and carrying
    /// `cap` (fF). Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this tree or `res`/`cap` are
    /// negative.
    pub fn add_node(&mut self, parent: NodeId, res: f64, cap: f64) -> NodeId {
        assert!(
            (parent.0 as usize) < self.nodes.len(),
            "parent must belong to this tree"
        );
        assert!(res >= 0.0 && cap >= 0.0, "parasitics must be non-negative");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent: Some(parent),
            res_from_parent: res,
            cap,
        });
        id
    }

    /// Adds extra capacitance to an existing node (e.g. a fanout pin).
    pub fn add_cap(&mut self, node: NodeId, cap: f64) {
        assert!(cap >= 0.0, "capacitance must be non-negative");
        self.nodes[node.0 as usize].cap += cap;
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0 as usize].parent
    }

    /// Total capacitance hanging at or below each node; `[0]` is the load
    /// the driver sees.
    pub fn downstream_cap(&self) -> Vec<f64> {
        let mut caps = Vec::new();
        self.downstream_cap_into(&mut caps);
        caps
    }

    /// Buffer-reusing form of [`RcTree::downstream_cap`]: clears and fills
    /// `out`, reusing its allocation across calls.
    pub fn downstream_cap_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.nodes.iter().map(|n| n.cap));
        for i in (1..self.nodes.len()).rev() {
            let p = self.nodes[i].parent.expect("non-root has parent").0 as usize;
            out[p] += out[i];
        }
    }

    /// Total capacitance presented to the driver.
    pub fn total_cap(&self) -> f64 {
        self.downstream_cap()[0]
    }

    /// L-type Elmore delay from the root to every node (ps).
    pub fn elmore(&self) -> Vec<f64> {
        let mut caps = Vec::new();
        let mut delay = Vec::new();
        self.elmore_into(&mut caps, &mut delay);
        delay
    }

    /// Buffer-reusing form of [`RcTree::elmore`]: `caps_scratch` receives
    /// the downstream capacitances, `out` the per-node delays. Both are
    /// cleared first, so the same buffers can serve many trees.
    pub fn elmore_into(&self, caps_scratch: &mut Vec<f64>, out: &mut Vec<f64>) {
        self.downstream_cap_into(caps_scratch);
        out.clear();
        out.resize(self.nodes.len(), 0.0);
        for i in 1..self.nodes.len() {
            let n = &self.nodes[i];
            let p = n.parent.expect("non-root has parent").0 as usize;
            out[i] = out[p] + n.res_from_parent * caps_scratch[i];
        }
    }

    /// PERI slew at every node given the driver's output slew (ps).
    ///
    /// Each node's transition is the composition of the driver edge with the
    /// `ln 9 ×` Elmore ramp of the wire path to that node.
    pub fn slews(&self, driver_slew: f64) -> Vec<f64> {
        let mut caps = Vec::new();
        let mut out = Vec::new();
        self.slews_into(driver_slew, &mut caps, &mut out);
        out
    }

    /// Buffer-reusing form of [`RcTree::slews`]: one Elmore pass into
    /// `out` (via `caps_scratch`), then the PERI composition in place —
    /// no intermediate delay vector per call.
    pub fn slews_into(&self, driver_slew: f64, caps_scratch: &mut Vec<f64>, out: &mut Vec<f64>) {
        self.elmore_into(caps_scratch, out);
        for d in out.iter_mut() {
            *d = wire_slew(driver_slew, *d);
        }
    }

    /// The wire's own 10–90 % ramp at a node (no driver edge), `ln 9 ·
    /// elmore`. Convenience one-shot form: internally computes the full
    /// Elmore vector, so for repeated queries compute [`RcTree::elmore`]
    /// (or [`RcTree::elmore_into`]) once and use
    /// [`RcTree::wire_ramp_from`].
    pub fn wire_ramp(&self, node: NodeId) -> f64 {
        Self::wire_ramp_from(&self.elmore(), node)
    }

    /// The ramp at `node` given a precomputed Elmore vector — the
    /// amortized form of [`RcTree::wire_ramp`].
    pub fn wire_ramp_from(elmore: &[f64], node: NodeId) -> f64 {
        LN9 * elmore[node.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_tree() {
        let t = RcTree::new(4.0);
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.total_cap(), 4.0);
        assert_eq!(t.elmore(), vec![0.0]);
    }

    #[test]
    fn branching_tree_downstream_caps() {
        let mut t = RcTree::new(1.0);
        let a = t.add_node(t.root(), 1.0, 2.0);
        let _b = t.add_node(a, 1.0, 3.0);
        let _c = t.add_node(a, 1.0, 4.0);
        let caps = t.downstream_cap();
        assert_eq!(caps[0], 10.0);
        assert_eq!(caps[a.index()], 9.0);
    }

    #[test]
    fn elmore_matches_hand_computation() {
        // root -(R=2)- a(C=3) -(R=1)- b(C=5)
        //                \---(R=4)--- c(C=1)
        let mut t = RcTree::new(0.0);
        let a = t.add_node(t.root(), 2.0, 3.0);
        let b = t.add_node(a, 1.0, 5.0);
        let c = t.add_node(a, 4.0, 1.0);
        let d = t.elmore();
        assert_eq!(d[a.index()], 2.0 * 9.0);
        assert_eq!(d[b.index()], 18.0 + 1.0 * 5.0);
        assert_eq!(d[c.index()], 18.0 + 4.0 * 1.0);
    }

    #[test]
    fn add_cap_increases_upstream_delay_only() {
        let mut t = RcTree::new(0.0);
        let a = t.add_node(t.root(), 2.0, 1.0);
        let b = t.add_node(a, 3.0, 1.0);
        let before = t.elmore();
        t.add_cap(b, 10.0);
        let after = t.elmore();
        assert!(after[a.index()] > before[a.index()]);
        assert!(after[b.index()] > before[b.index()]);
        assert_eq!(t.total_cap(), 12.0);
    }

    #[test]
    fn slews_compose_monotonically() {
        let mut t = RcTree::new(0.0);
        let a = t.add_node(t.root(), 5.0, 10.0);
        let s = t.slews(10.0);
        assert_eq!(s[0], 10.0);
        assert!(s[a.index()] > 10.0);
        assert!((t.wire_ramp(a) - LN9 * 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_resistance() {
        let mut t = RcTree::new(0.0);
        let _ = t.add_node(t.root(), -1.0, 0.0);
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let mut t = RcTree::new(1.0);
        let a = t.add_node(t.root(), 2.0, 3.0);
        let b = t.add_node(a, 1.0, 5.0);
        let _c = t.add_node(a, 4.0, 1.0);
        let (mut caps, mut delays, mut slews) = (Vec::new(), Vec::new(), Vec::new());
        t.downstream_cap_into(&mut caps);
        assert_eq!(caps, t.downstream_cap());
        t.elmore_into(&mut caps, &mut delays);
        assert_eq!(delays, t.elmore());
        t.slews_into(7.0, &mut caps, &mut slews);
        assert_eq!(slews, t.slews(7.0));
        assert_eq!(RcTree::wire_ramp_from(&delays, b), t.wire_ramp(b));
        // Buffers are reused across trees of different sizes.
        let small = RcTree::new(0.5);
        small.elmore_into(&mut caps, &mut delays);
        assert_eq!(delays, small.elmore());
    }

    #[test]
    fn equivalence_with_chain_delay() {
        use crate::chain::{chain_delay, Element};
        let elems = [
            Element::new(0.5, 1.0),
            Element::new(2.0, 0.2),
            Element::new(0.1, 3.0),
        ];
        let load = 4.0;
        let (cd, cc) = chain_delay(&elems, load);
        let mut t = RcTree::new(0.0);
        let mut cur = t.root();
        for e in elems {
            cur = t.add_node(cur, e.res, e.cap);
        }
        t.add_cap(cur, load);
        assert!((t.elmore()[cur.index()] - cd).abs() < 1e-12);
        assert!((t.total_cap() - cc).abs() < 1e-12);
    }
}
