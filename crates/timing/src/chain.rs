/// One series element of an RC chain: a resistance with its capacitance
/// lumped at the far (downstream) end — the L-type convention of §II-B.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Element {
    /// Series resistance (kΩ).
    pub res: f64,
    /// Capacitance lumped at the downstream end (fF).
    pub cap: f64,
}

impl Element {
    /// Creates an element.
    pub const fn new(res: f64, cap: f64) -> Self {
        Element { res, cap }
    }
}

/// L-type Elmore delay through a straight chain of elements into a lumped
/// load, ordered **from the driver toward the load**.
///
/// Returns `(delay_ps, total_cap_ff)` where `total_cap_ff` is the
/// capacitance the chain presents to its driver (all element caps plus the
/// load — no shielding, matching §II-B's observation that nTSVs, unlike
/// buffers, cannot hide downstream capacitance).
///
/// ```
/// use dscts_timing::{chain_delay, Element};
/// // A single wire segment: delay = R·(C + C_load).
/// let (d, c) = chain_delay(&[Element::new(2.0, 3.0)], 5.0);
/// assert_eq!(d, 2.0 * (3.0 + 5.0));
/// assert_eq!(c, 8.0);
/// ```
pub fn chain_delay(elements: &[Element], load_ff: f64) -> (f64, f64) {
    let mut downstream = load_ff;
    let mut delay = 0.0;
    for e in elements.iter().rev() {
        downstream += e.cap;
        delay += e.res * downstream;
    }
    (delay, downstream)
}

/// Like [`chain_delay`], but also returns the cumulative delay at the far
/// end of every element (driver side first), useful for placing taps.
pub fn chain_delay_profile(elements: &[Element], load_ff: f64) -> (Vec<f64>, f64) {
    // First pass: downstream cap at the far end of each element.
    let mut caps = vec![0.0; elements.len()];
    let mut downstream = load_ff;
    for (i, e) in elements.iter().enumerate().rev() {
        downstream += e.cap;
        caps[i] = downstream;
    }
    let total_cap = downstream;
    // Second pass: prefix sums of R_i * C_downstream(i).
    let mut acc = 0.0;
    let profile = elements
        .iter()
        .zip(caps)
        .map(|(e, c)| {
            acc += e.res * c;
            acc
        })
        .collect();
    (profile, total_cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Paper constants for the closed-form cross-checks.
    const RF: f64 = 0.024222e-3; // M3, kΩ/nm
    const CF: f64 = 0.12918e-3; // M3, fF/nm
    const RB: f64 = 0.000384e-3; // BM1~BM3, kΩ/nm
    const CB: f64 = 0.116264e-3; // BM1~BM3, fF/nm
    const RT: f64 = 0.020; // nTSV, kΩ
    const CT: f64 = 0.004; // nTSV, fF

    #[test]
    fn empty_chain_is_free() {
        let (d, c) = chain_delay(&[], 7.0);
        assert_eq!(d, 0.0);
        assert_eq!(c, 7.0);
    }

    #[test]
    fn eq1_buffer_wire_halves_closed_form() {
        // Eq. (1) wire part: each half contributes rf·L/2·(cf·L/2 + C_end).
        let l = 40_000.0; // 40 µm
        let cb_in = 2.0; // buffer input cap
        let cd = 9.0; // downstream load
        let half = |c_end: f64| {
            let (d, _) = chain_delay(&[Element::new(RF * l / 2.0, CF * l / 2.0)], c_end);
            d
        };
        let up = half(cb_in);
        let down = half(cd);
        let expect_up = RF * l / 2.0 * (CF * l / 2.0 + cb_in);
        let expect_down = RF * l / 2.0 * (CF * l / 2.0 + cd);
        assert!((up - expect_up).abs() < 1e-9);
        assert!((down - expect_down).abs() < 1e-9);
        // Quadratic form of Eq. (1): rf·cf/2·L² + rf(Cb+Cd)/2·L.
        let total_wire = up + down;
        let closed = RF * CF / 2.0 * l * l + RF * (cb_in + cd) / 2.0 * l;
        assert!((total_wire - closed).abs() < 1e-9);
    }

    #[test]
    fn eq2_two_ntsv_back_wire_closed_form() {
        // Eq. (2): DnTSV_On = rb·cb·L² + (rb·C_T + rb·C_d + R_T·cb)·L
        //                    + R_T·(3·C_T + 2·C_d)
        let l = 120_000.0; // 120 µm
        let cd = 14.0;
        let chain = [
            Element::new(RT, CT),
            Element::new(RB * l, CB * l),
            Element::new(RT, CT),
        ];
        let (d, cap) = chain_delay(&chain, cd);
        let closed =
            (RB * CB) * l * l + (RB * CT + RB * cd + RT * CB) * l + RT * (3.0 * CT + 2.0 * cd);
        assert!(
            (d - closed).abs() < 1e-9,
            "chain {d} vs closed-form {closed}"
        );
        assert!((cap - (2.0 * CT + CB * l + cd)).abs() < 1e-12);
    }

    #[test]
    fn profile_last_entry_equals_total_delay() {
        let chain = [
            Element::new(1.0, 2.0),
            Element::new(3.0, 4.0),
            Element::new(0.5, 1.0),
        ];
        let (d, c) = chain_delay(&chain, 6.0);
        let (profile, cap) = chain_delay_profile(&chain, 6.0);
        assert_eq!(profile.len(), 3);
        assert!((profile[2] - d).abs() < 1e-12);
        assert_eq!(cap, c);
        // Profile is non-decreasing.
        assert!(profile.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn back_side_beats_front_side_for_long_wires() {
        // The motivating physics: rb·cb << rf·cf.
        let l = 100_000.0;
        let cd = 20.0;
        let (front, _) = chain_delay(&[Element::new(RF * l, CF * l)], cd);
        let (back, _) = chain_delay(
            &[
                Element::new(RT, CT),
                Element::new(RB * l, CB * l),
                Element::new(RT, CT),
            ],
            cd,
        );
        assert!(
            back < front / 10.0,
            "100 µm back-side path ({back:.2} ps) should be >10x faster than front ({front:.2} ps)"
        );
    }
}
