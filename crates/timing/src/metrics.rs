use std::fmt;

/// Latency / skew summary over a set of per-sink arrival times.
///
/// * **latency** — the maximum source-to-sink delay (the paper's "Latency"
///   column);
/// * **skew** — the difference between the latest and earliest arrivals
///   (global skew, the paper's "Skew" column).
///
/// ```
/// use dscts_timing::ArrivalStats;
/// let s = ArrivalStats::from_arrivals([10.0, 14.0, 12.0]).unwrap();
/// assert_eq!(s.latency(), 14.0);
/// assert_eq!(s.skew(), 4.0);
/// assert_eq!(s.min_arrival(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalStats {
    min: f64,
    max: f64,
    mean: f64,
    count: usize,
}

impl ArrivalStats {
    /// Summarises a non-empty arrival set; `None` when empty or when any
    /// arrival is not finite.
    pub fn from_arrivals<I: IntoIterator<Item = f64>>(arrivals: I) -> Option<Self> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for a in arrivals {
            if !a.is_finite() {
                return None;
            }
            min = min.min(a);
            max = max.max(a);
            sum += a;
            count += 1;
        }
        if count == 0 {
            return None;
        }
        Some(ArrivalStats {
            min,
            max,
            mean: sum / count as f64,
            count,
        })
    }

    /// Maximum arrival (clock latency, ps).
    pub fn latency(&self) -> f64 {
        self.max
    }

    /// Global skew `max − min` (ps).
    pub fn skew(&self) -> f64 {
        self.max - self.min
    }

    /// Earliest arrival (ps).
    pub fn min_arrival(&self) -> f64 {
        self.min
    }

    /// Mean arrival (ps).
    pub fn mean_arrival(&self) -> f64 {
        self.mean
    }

    /// Number of sinks summarised.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl fmt::Display for ArrivalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency {:.3} ps, skew {:.3} ps over {} sinks",
            self.latency(),
            self.skew(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(ArrivalStats::from_arrivals(std::iter::empty()).is_none());
    }

    #[test]
    fn non_finite_is_none() {
        assert!(ArrivalStats::from_arrivals([1.0, f64::NAN]).is_none());
        assert!(ArrivalStats::from_arrivals([1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sink_zero_skew() {
        let s = ArrivalStats::from_arrivals([42.0]).unwrap();
        assert_eq!(s.skew(), 0.0);
        assert_eq!(s.latency(), 42.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn mean_is_arithmetic() {
        let s = ArrivalStats::from_arrivals([1.0, 2.0, 3.0, 6.0]).unwrap();
        assert_eq!(s.mean_arrival(), 3.0);
    }

    #[test]
    fn display_mentions_latency() {
        let s = ArrivalStats::from_arrivals([5.0, 7.0]).unwrap();
        assert!(s.to_string().contains("latency"));
    }
}
