//! Property tests: the RC-tree engine agrees with closed forms and behaves
//! monotonically.

use dscts_timing::{chain_delay, chain_delay_profile, ArrivalStats, Element, RcTree};
use proptest::prelude::*;

fn elem() -> impl Strategy<Value = Element> {
    (0.0f64..10.0, 0.0f64..50.0).prop_map(|(r, c)| Element::new(r, c))
}

proptest! {
    #[test]
    fn chain_matches_rctree(elems in prop::collection::vec(elem(), 0..12), load in 0.0f64..100.0) {
        let (cd, cc) = chain_delay(&elems, load);
        let mut t = RcTree::new(0.0);
        let mut cur = t.root();
        for e in &elems {
            cur = t.add_node(cur, e.res, e.cap);
        }
        t.add_cap(cur, load);
        let delay = t.elmore();
        prop_assert!((delay[cur.index()] - cd).abs() < 1e-9);
        prop_assert!((t.total_cap() - cc).abs() < 1e-9);
    }

    #[test]
    fn delay_monotone_in_load(elems in prop::collection::vec(elem(), 1..12),
                              load in 0.0f64..100.0, extra in 0.0f64..100.0) {
        let (d1, c1) = chain_delay(&elems, load);
        let (d2, c2) = chain_delay(&elems, load + extra);
        prop_assert!(d2 >= d1);
        prop_assert!((c2 - c1 - extra).abs() < 1e-9);
    }

    #[test]
    fn delay_monotone_in_length(r in 0.001f64..1.0, c in 0.001f64..1.0,
                                l1 in 1.0f64..100_000.0, l2 in 1.0f64..100_000.0,
                                load in 0.0f64..100.0) {
        // A longer wire of the same stock is never faster.
        let (ls, ll) = (l1.min(l2), l1.max(l2));
        let mk = |l: f64| chain_delay(&[Element::new(r * l * 1e-3, c * l * 1e-3)], load).0;
        prop_assert!(mk(ll) >= mk(ls));
    }

    #[test]
    fn profile_is_nondecreasing_and_ends_at_total(
        elems in prop::collection::vec(elem(), 1..12), load in 0.0f64..100.0)
    {
        let (profile, cap) = chain_delay_profile(&elems, load);
        let (d, c) = chain_delay(&elems, load);
        prop_assert!((profile.last().unwrap() - d).abs() < 1e-9);
        prop_assert!((cap - c).abs() < 1e-9);
        for w in profile.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn splitting_a_wire_preserves_delay(r in 0.0f64..5.0, c in 0.0f64..20.0,
                                        frac in 0.01f64..0.99, load in 0.0f64..100.0) {
        // L-model subtlety: splitting R,C (lumped at far end) into two L
        // sections moves capacitance closer to the driver, so delay can only
        // decrease (never increase), and total cap is conserved.
        let (whole, cap1) = chain_delay(&[Element::new(r, c)], load);
        let (split, cap2) = chain_delay(&[
            Element::new(r * frac, c * frac),
            Element::new(r * (1.0 - frac), c * (1.0 - frac)),
        ], load);
        prop_assert!(split <= whole + 1e-9);
        prop_assert!((cap1 - cap2).abs() < 1e-9);
    }

    #[test]
    fn elmore_increases_along_root_to_leaf_paths(
        caps in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..30))
    {
        // Random path tree: each node hangs off the previous one.
        let mut t = RcTree::new(0.0);
        let mut cur = t.root();
        let mut ids = vec![cur];
        for (r, c) in caps {
            cur = t.add_node(cur, r, c);
            ids.push(cur);
        }
        let d = t.elmore();
        for w in ids.windows(2) {
            prop_assert!(d[w[1].index()] >= d[w[0].index()]);
        }
    }

    #[test]
    fn arrival_stats_bounds(arrivals in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let s = ArrivalStats::from_arrivals(arrivals.iter().copied()).unwrap();
        prop_assert!(s.skew() >= 0.0);
        prop_assert!(s.latency() >= s.mean_arrival());
        prop_assert!(s.mean_arrival() >= s.min_arrival());
        prop_assert_eq!(s.count(), arrivals.len());
    }
}
