//! Property tests: [`IncrementalEval`] is bit-identical to the batch
//! evaluator under arbitrary interleaved mutations and undos.
//!
//! Random small designs are routed and DP-assigned; a random sequence of
//! buffer-scale / star-buffer / pattern mutations (some undone, some
//! committed) is applied through the incremental evaluator; after every
//! step and at the end, the evaluator's metrics must equal — as exact
//! `f64`s, via `TreeMetrics: PartialEq` — a from-scratch
//! `SynthesizedTree::evaluate` of the mutated tree, for both delay models.

use dscts_core::sizing::{resize_for_skew, SizingConfig};
use dscts_core::{
    run_dp, DpConfig, EvalModel, HierarchicalRouter, IncrementalEval, MoesWeights, Pattern,
    SynthesizedTree,
};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::Technology;
use proptest::prelude::*;

/// A small random design: C4 geometry scaled down, varied by seed.
fn small_tree(sinks: usize, seed: u64) -> (SynthesizedTree, Technology) {
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = sinks;
    spec.num_cells = sinks * 12;
    spec.seed = seed;
    let design = spec.generate();
    let tech = Technology::asap7();
    let mut topo = HierarchicalRouter::new()
        .seed(seed ^ 0x5eed)
        .route(&design, &tech);
    topo.subdivide(40_000);
    // Latency-greedy MOES: more buffered edges for sizing moves to touch.
    let cfg = DpConfig {
        moes: MoesWeights {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            delta: 0.0,
        },
        ..DpConfig::default()
    };
    let res = run_dp(&topo, &tech, &cfg);
    (SynthesizedTree::new(topo, res.assignment), tech)
}

/// One scripted mutation, drawn from raw randomness and resolved against
/// the concrete tree at application time.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Scale the buffer of the i-th buffered edge (mod count).
    Scale(usize, f64),
    /// Toggle the refinement buffer of star i (mod count).
    StarBuffer(usize, bool),
    /// Re-pattern the i-th edge (mod count) with the k-th front-compatible
    /// pattern. Patterns are restricted to (F, F) endpoints so the tree
    /// stays structurally sensible; electrical infeasibility is exercised
    /// and must roll back.
    Pattern(usize, usize),
    /// Undo the previous mutation.
    Undo,
    /// Commit everything so far.
    Commit,
}

fn op() -> impl Strategy<Value = Op> {
    (0usize..5, 0usize..4096, 0.2f64..4.0, 0usize..4).prop_map(|(kind, i, scale, k)| match kind {
        0 | 1 => Op::Scale(i, scale),
        2 => Op::StarBuffer(i, scale > 1.0),
        3 => Op::Pattern(i, k),
        4 if i % 3 == 0 => Op::Commit,
        _ => Op::Undo,
    })
}

fn apply_ops(tree: &mut SynthesizedTree, tech: &Technology, model: EvalModel, ops: &[Op]) {
    let buffered: Vec<usize> = (1..tree.topo.nodes.len())
        .filter(|&i| tree.patterns[i].is_some_and(|p| p.buffers() > 0))
        .collect();
    let n_edges = tree.topo.nodes.len() - 1;
    let n_stars = tree.topo.stars.len();
    // Patterns with front-side endpoints at both ends keep leaf/root
    // constraints intact while still changing the electrical shape.
    const FF_PATTERNS: [Pattern; 3] = [Pattern::Buffer, Pattern::WiringF, Pattern::Ntsv1];

    let mut eval = IncrementalEval::new(tree, tech, model);
    for &op in ops {
        match op {
            Op::Scale(i, s) if !buffered.is_empty() => {
                let edge = buffered[i % buffered.len()];
                let _ = eval.set_buffer_scale(edge, s);
            }
            Op::Scale(..) => {}
            Op::StarBuffer(i, on) => {
                let _ = eval.set_star_buffer(i % n_stars, on);
            }
            Op::Pattern(i, k) => {
                let edge = 1 + (i % n_edges);
                // Only re-pattern edges that are already (F, F) so star /
                // side constraints stay representative.
                let cur = eval.tree().patterns[edge].expect("assigned");
                if cur.root_side() == dscts_tech::Side::Front
                    && cur.sink_side() == dscts_tech::Side::Front
                {
                    let _ = eval.set_pattern(edge, FF_PATTERNS[k % FF_PATTERNS.len()]);
                }
            }
            Op::Undo => eval.undo(),
            Op::Commit => eval.commit(),
        }
        // The evaluator's cheap queries agree with its own metrics.
        let m = eval.metrics();
        assert_eq!(eval.latency_ps(), m.latency_ps);
        assert_eq!(eval.skew_ps(), m.skew_ps);
    }
    let incremental = eval.metrics();
    drop(eval);
    // Bit-identical to a from-scratch batch evaluation of the mutated tree.
    let batch = tree.evaluate(tech, model);
    assert_eq!(incremental, batch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_matches_batch_elmore(
        sinks in 60usize..220,
        seed in 0u64..1_000,
        ops in prop::collection::vec(op(), 1..40),
    ) {
        let (mut tree, tech) = small_tree(sinks, seed);
        apply_ops(&mut tree, &tech, EvalModel::Elmore, &ops);
    }

    #[test]
    fn incremental_matches_batch_nldm(
        sinks in 60usize..220,
        seed in 0u64..1_000,
        ops in prop::collection::vec(op(), 1..40),
    ) {
        let (mut tree, tech) = small_tree(sinks, seed);
        apply_ops(&mut tree, &tech, EvalModel::Nldm, &ops);
    }

    #[test]
    fn sizing_on_incremental_engine_stays_batch_consistent(
        sinks in 60usize..160,
        seed in 0u64..500,
    ) {
        // The rewired sizing pass must report exactly what a batch
        // evaluation of its output tree reports.
        for model in [EvalModel::Elmore, EvalModel::Nldm] {
            let (mut tree, tech) = small_tree(sinks, seed);
            let report = resize_for_skew(&mut tree, &tech, model, &SizingConfig::default());
            let batch = tree.evaluate(&tech, model);
            prop_assert_eq!(&report.after, &batch);
            prop_assert!(report.after.skew_ps <= report.before.skew_ps + 1e-9);
        }
    }
}
