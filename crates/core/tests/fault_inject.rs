//! Deterministic fault-injection harness tests (`--features fault-inject`).
//!
//! Every named site must fail *typed*: an armed `Error` surfaces as
//! [`CtsError::Internal`] from `try_run`, an armed `Panic` is caught at
//! the nearest isolation boundary (stage or DP worker) and converted to
//! the same typed error, and an armed `Infeasible` makes the evaluator
//! mutation report `false` with its journal — and every corner replica —
//! rolled back bit-identically. Arms fire once and disarm, so the same
//! pipeline retried under an exhausted plan succeeds.

#![cfg(feature = "fault-inject")]

use dscts_core::resilience::fault::{
    FaultKind, FaultPlan, SITE_DP, SITE_EVAL, SITE_INCREMENTAL, SITE_MCMM, SITE_ROUTE, SITE_SYNTH,
};
use dscts_core::{
    run_dp, CtsError, DpConfig, DsCts, EvalModel, HierarchicalRouter, IncrementalEval, MoesWeights,
    MultiCornerEval, Pattern, SynthesizedTree, TreeMetrics,
};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::{CornerSet, Technology};
use proptest::prelude::*;

fn design() -> dscts_netlist::Design {
    BenchmarkSpec::c4_riscv32i().generate()
}

/// A synthesized tree built outside the pipeline, for evaluator tests.
fn tree() -> (SynthesizedTree, Technology) {
    let d = design();
    let tech = Technology::asap7();
    let mut topo = HierarchicalRouter::new().route(&d, &tech);
    topo.subdivide(40_000);
    let cfg = DpConfig {
        moes: MoesWeights {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            delta: 0.0,
        },
        ..DpConfig::default()
    };
    let res = run_dp(&topo, &tech, &cfg);
    (SynthesizedTree::new(topo, res.assignment), tech)
}

/// A buffered edge (scale and pattern mutations need one).
fn buffered_edge(t: &SynthesizedTree) -> usize {
    (1..t.topo.nodes.len())
        .find(|&i| t.patterns[i].is_some_and(|p| p.buffers() > 0))
        .expect("some buffered edge")
}

#[test]
fn error_faults_surface_as_typed_internal_errors() {
    // `Error` arms return `CtsError::Internal` tagged with the *site*
    // name — the error is constructed at the injection point itself.
    let d = design();
    for site in [SITE_ROUTE, SITE_DP, SITE_SYNTH, SITE_EVAL] {
        let _guard = FaultPlan::new().arm(site, FaultKind::Error).install();
        let err = DsCts::new(Technology::asap7())
            .try_run(&d)
            .expect_err("armed site must fail the run");
        match err {
            CtsError::Internal { stage, payload } => {
                assert_eq!(stage, site);
                assert_eq!(payload, format!("injected fault at `{site}`"));
            }
            other => panic!("site {site}: expected Internal, got {other}"),
        }
    }
}

#[test]
fn panic_faults_are_caught_at_isolation_boundaries() {
    // `Panic` arms unwind to the nearest `catch_unwind` boundary — the
    // per-stage wrapper in `try_run_once`, or the DP worker closure —
    // and come back as `Internal` tagged with the *boundary*'s name.
    let d = design();
    for (site, boundary) in [
        (SITE_ROUTE, "route"),
        (SITE_DP, "dp"),
        (SITE_SYNTH, "insertion"),
        (SITE_EVAL, "evaluate"),
    ] {
        let _guard = FaultPlan::new().arm(site, FaultKind::Panic).install();
        let err = DsCts::new(Technology::asap7())
            .try_run(&d)
            .expect_err("armed site must fail the run");
        match err {
            CtsError::Internal { stage, payload } => {
                assert_eq!(stage, boundary, "site {site}");
                assert!(
                    payload.contains(&format!("injected panic at `{site}`")),
                    "site {site}: payload {payload:?}"
                );
            }
            other => panic!("site {site}: expected Internal, got {other}"),
        }
    }
}

#[test]
fn arms_fire_once_then_disarm() {
    // One plan, two runs: the first trips the arm, the second sails
    // through — and matches a run that never saw a fault, bit for bit.
    let d = design();
    let clean = DsCts::new(Technology::asap7()).run(&d);
    let _guard = FaultPlan::new().arm(SITE_EVAL, FaultKind::Error).install();
    let pipe = DsCts::new(Technology::asap7());
    assert!(pipe.try_run(&d).is_err());
    let second = pipe.try_run(&d).expect("arm disarmed after firing");
    assert_eq!(second.tree, clean.tree);
    assert_eq!(second.metrics, clean.metrics);
}

#[test]
fn arm_after_skips_a_deterministic_number_of_visits() {
    // `arm_after(_, _, k)` lets exactly k visits pass. The incremental
    // site is visited once per mutation, so skips=1 means: first
    // mutation clean, second rejected, third clean again (disarmed).
    let (mut t, tech) = tree();
    let edge = buffered_edge(&t);
    let mut inc = IncrementalEval::new(&mut t, &tech, EvalModel::Elmore);
    let _guard = FaultPlan::new()
        .arm_after(SITE_INCREMENTAL, FaultKind::Infeasible, 1)
        .install();
    assert!(inc.set_buffer_scale(edge, 2.0), "visit 0 passes");
    assert!(!inc.set_buffer_scale(edge, 1.5), "visit 1 fires");
    assert!(inc.set_buffer_scale(edge, 1.5), "visit 2: disarmed");
}

/// One evaluator mutation, chosen by the proptest case.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    Scale(usize, f64),
    Star(usize),
    Pattern(usize),
}

fn mutations() -> impl Strategy<Value = Vec<(u8, usize, f64)>> {
    // (op selector, index selector, scale) — resolved against the tree's
    // actual edge/star counts inside the test.
    prop::collection::vec((0u8..3, 0usize..64, 1.2f64..2.5), 1..5)
}

fn resolve(t: &SynthesizedTree, raw: &[(u8, usize, f64)]) -> Vec<Mutation> {
    let edges: Vec<usize> = (1..t.topo.nodes.len())
        .filter(|&i| t.patterns[i].is_some_and(|p| p.buffers() > 0))
        .collect();
    let stars = t.topo.stars.len();
    raw.iter()
        .map(|&(op, idx, scale)| match op {
            0 => Mutation::Scale(edges[idx % edges.len()], scale),
            1 => Mutation::Star(idx % stars),
            _ => Mutation::Pattern(edges[idx % edges.len()]),
        })
        .collect()
}

proptest! {
    // Each case rebuilds the tree (route + DP), so keep the count small;
    // the per-case mutation vector still explores the op space.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn injected_infeasibility_rolls_back_the_incremental_journal(raw in mutations()) {
        let (mut t, tech) = tree();
        let ops = resolve(&t, &raw);
        let baseline = t.evaluate(&tech, EvalModel::Elmore);
        let mut inc = IncrementalEval::new(&mut t, &tech, EvalModel::Elmore);
        for op in ops {
            let before: TreeMetrics = inc.metrics();
            let mark = inc.mark();
            let _guard = FaultPlan::new()
                .arm(SITE_INCREMENTAL, FaultKind::Infeasible)
                .install();
            // The fault fires *after* the repropagation succeeded, so a
            // fully-propagated dirty path must be unwound.
            let ok = match op {
                Mutation::Scale(edge, s) => inc.set_buffer_scale(edge, s),
                Mutation::Star(si) => {
                    let on = !inc.tree().star_buffers[si];
                    inc.set_star_buffer(si, on)
                }
                // A *different* pattern: re-assigning the current one is
                // a no-op that never reaches the injection site.
                Mutation::Pattern(edge) => inc.set_pattern(edge, flip(&inc.tree().patterns, edge)),
            };
            prop_assert!(!ok, "armed mutation must report infeasible");
            prop_assert_eq!(inc.metrics(), before.clone(), "metrics not rolled back");
            prop_assert_eq!(inc.mark(), mark, "journal not rolled back");
        }
        drop(inc);
        // Nothing was ever applied: the tree still evaluates at baseline.
        prop_assert_eq!(t.evaluate(&tech, EvalModel::Elmore), baseline);
    }

    #[test]
    fn injected_infeasibility_rolls_back_every_corner(raw in mutations()) {
        let (mut t, tech) = tree();
        let ops = resolve(&t, &raw);
        let corners = CornerSet::asap7_pvt(&tech);
        let mut mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore);
        let before: Vec<TreeMetrics> = (0..mc.corner_count())
            .map(|k| mc.corner_metrics(k))
            .collect();
        for op in ops {
            let mark = mc.mark();
            let _guard = FaultPlan::new()
                .arm(SITE_MCMM, FaultKind::Infeasible)
                .install();
            let ok = match op {
                Mutation::Scale(edge, s) => mc.set_buffer_scale(edge, s),
                Mutation::Star(si) => {
                    let on = !mc.tree().star_buffers[si];
                    mc.set_star_buffer(si, on)
                }
                Mutation::Pattern(edge) => mc.set_pattern(edge, flip(&mc.tree().patterns, edge)),
            };
            prop_assert!(!ok, "armed mutation must report infeasible");
            for (k, b) in before.iter().enumerate() {
                prop_assert_eq!(&mc.corner_metrics(k), b, "corner {} not rolled back", k);
            }
            prop_assert_eq!(mc.mark(), mark, "journal not rolled back");
        }
    }
}

/// A pattern different from `patterns[edge]`'s current assignment, so
/// the mutation actually propagates instead of no-op'ing.
fn flip(patterns: &[Option<Pattern>], edge: usize) -> Pattern {
    match patterns[edge].expect("buffered edge") {
        Pattern::Buffer => Pattern::WiringF,
        _ => Pattern::Buffer,
    }
}
