//! Property tests: telemetry is an observer, never a participant.
//!
//! Installing a collector, running the pipeline, and uninstalling it must
//! leave every outcome bit-identical to a never-instrumented run — the
//! same invariant the budget/recovery layers honor for unconfigured
//! features. The tests also assert the collector actually observed the
//! instrumented run (non-trivial counters, span histograms, sweep
//! training rows) and was frozen at uninstall.

use dscts_core::dse::SweepEngine;
use dscts_core::skew::SkewConfig;
use dscts_core::telemetry;
use dscts_core::{AnnealConfig, AnnealedSizingPass, DsCts, OptSchedule};
use dscts_netlist::{BenchmarkSpec, Design};
use dscts_tech::{CornerSet, Technology};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// The collector slot is process-global and the harness runs tests in
/// parallel; every test that installs a collector holds this lock.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

/// A small random design: C4 geometry scaled down, varied by seed.
fn small_design(sinks: usize, seed: u64) -> Design {
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = sinks;
    spec.num_cells = sinks * 12;
    spec.seed = seed;
    spec.generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn collector_presence_never_perturbs_outcomes(
        sinks in 60usize..160,
        seed in 0u64..1_000,
    ) {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let design = small_design(sinks, seed);
        let tech = Technology::asap7();
        // The annealed-sizing pass guarantees a fixed trial-move budget,
        // so the optimization and multi-corner fan-out counters are
        // exercised even on designs the refine pass leaves untouched.
        let pipeline = DsCts::new(tech.clone())
            .corners(CornerSet::asap7_pvt(&tech))
            .schedule(
                OptSchedule::default_post_cts(SkewConfig::default())
                    .with(AnnealedSizingPass::new(AnnealConfig {
                        moves: 64,
                        ..AnnealConfig::default()
                    }))
                    .seed(7),
            );

        let baseline = pipeline.try_run(&design).expect("random designs stay feasible");
        let collector = Arc::new(telemetry::Telemetry::new());
        let observed = {
            let _guard = telemetry::install(Arc::clone(&collector));
            pipeline.try_run(&design).expect("random designs stay feasible")
        };
        // Installed-then-uninstalled ≡ never-installed, bit for bit.
        prop_assert_eq!(&observed.metrics, &baseline.metrics);
        prop_assert_eq!(
            observed.corners.as_ref().map(|c| &c.robust),
            baseline.corners.as_ref().map(|c| &c.robust)
        );

        // The collector did observe the instrumented run: exactly one
        // pipeline run, with per-stage span histograms populated.
        let snap = collector.snapshot();
        prop_assert_eq!(snap.counter("pipeline.runs"), Some(1));
        for span in ["span.route", "span.insertion", "span.optimize", "span.evaluate"] {
            prop_assert!(
                snap.histogram(span).is_some_and(|h| h.count == 1),
                "missing or empty {}", span
            );
        }
        prop_assert!(snap.counter("dp.nodes").unwrap_or(0) > 0);
        prop_assert!(snap.counter("opt.trials_attempted").unwrap_or(0) > 0);
        prop_assert!(snap.counter("mcmm.corner_evals").unwrap_or(0) > 0);

        // Uninstalled means frozen: a later run leaves no trace.
        let after = pipeline.try_run(&design).expect("random designs stay feasible");
        prop_assert_eq!(&after.metrics, &baseline.metrics);
        prop_assert_eq!(collector.snapshot().counter("pipeline.runs"), Some(1));
    }

    #[test]
    fn sweeps_stay_identical_and_log_training_rows(
        sinks in 60usize..140,
        seed in 0u64..500,
    ) {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let design = small_design(sinks, seed);
        let base = DsCts::new(Technology::asap7());
        let grid: Vec<u32> = (1..=(sinks as u32 + 40)).step_by(9).collect();

        let baseline = SweepEngine::new(&base)
            .try_sweep(&design, grid.iter().copied())
            .expect("random designs stay feasible");
        let collector = Arc::new(telemetry::Telemetry::new());
        let observed = {
            let _guard = telemetry::install(Arc::clone(&collector));
            SweepEngine::new(&base)
                .try_sweep(&design, grid.iter().copied())
                .expect("random designs stay feasible")
        };
        prop_assert_eq!(observed.points, baseline.points);

        // One sweep-outcome training row per mode-equivalence class.
        let snap = collector.snapshot();
        prop_assert_eq!(snap.sweeps.len(), baseline.classes.len());
        prop_assert_eq!(
            snap.counter("dse.classes"),
            Some(baseline.classes.len() as u64)
        );
        for (row, class) in snap.sweeps.iter().zip(&baseline.classes) {
            prop_assert_eq!(row.design.as_str(), design.name.as_str());
            prop_assert_eq!(row.sinks, design.sinks.len() as u64);
            prop_assert_eq!(
                row.threshold_lo,
                class.thresholds.iter().copied().min().unwrap_or(0)
            );
            prop_assert_eq!(
                row.threshold_hi,
                class.thresholds.iter().copied().max().unwrap_or(0)
            );
        }
    }
}
