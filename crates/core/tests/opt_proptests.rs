//! Property tests for the composable optimization pass API.
//!
//! Two invariants the `opt` redesign promises:
//!
//! * **Schedule equivalence.** A `PassManager` schedule of
//!   `SizingPass + EndpointRefinePass` over one shared evaluator is
//!   bit-identical — trees *and* metrics, as `f64`s — to the legacy
//!   `resize_for_skew` followed by `refine` chain (each of which builds
//!   its own evaluator). Checked on random small designs under both
//!   [`EvalModel`]s.
//! * **Annealing discipline.** `AnnealedSizingPass` is deterministic per
//!   seed, never degrades the MOES objective it anneals on (it reverts to
//!   the best accepted state), and with star moves disabled never changes
//!   resource counts.

use dscts_core::opt::{
    moes_objective_of, AnnealConfig, AnnealedSizingPass, OptSchedule, PassManager,
};
use dscts_core::sizing::{resize_for_skew, SizingConfig, SizingPass};
use dscts_core::skew::{refine, EndpointRefinePass, SkewConfig};
use dscts_core::{run_dp, DpConfig, EvalModel, HierarchicalRouter, MoesWeights, SynthesizedTree};
use dscts_netlist::{BenchmarkSpec, Design};
use dscts_tech::Technology;
use proptest::prelude::*;

/// A small random design: C4 geometry scaled down, varied by seed.
fn small_design(sinks: usize, seed: u64) -> Design {
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = sinks;
    spec.num_cells = sinks * 12;
    spec.seed = seed;
    spec.generate()
}

/// Routes and DP-assigns with latency-greedy MOES weights, which leaves
/// skew on the table so every optimization pass does real work.
fn workload(design: &Design, tech: &Technology) -> SynthesizedTree {
    let cfg = DpConfig {
        moes: MoesWeights {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            delta: 0.0,
        },
        ..DpConfig::default()
    };
    let mut topo = HierarchicalRouter::new().route(design, tech);
    topo.subdivide(40_000);
    let res = run_dp(&topo, tech, &cfg);
    SynthesizedTree::new(topo, res.assignment)
}

/// Forced-trigger refinement config so the pass fires on small designs.
fn forced_skew_cfg() -> SkewConfig {
    SkewConfig {
        trigger_percent: 0.0,
        max_rounds: 2,
        ..SkewConfig::default()
    }
}

fn check_schedule_equivalence(design: &Design, model: EvalModel) {
    let tech = Technology::asap7();
    let base = workload(design, &tech);

    // Legacy chain: each optimizer builds its own evaluator.
    let mut legacy = base.clone();
    let sizing_rep = resize_for_skew(&mut legacy, &tech, model, &SizingConfig::default());
    let refine_rep = refine(&mut legacy, &tech, model, &forced_skew_cfg());

    // Pass manager: one shared evaluator across the same two passes.
    let mut managed = base.clone();
    let schedule = OptSchedule::new()
        .with(SizingPass::new(SizingConfig::default()))
        .with(EndpointRefinePass::new(forced_skew_cfg()));
    let report = PassManager::new(&schedule).run(&mut managed, &tech, model);

    // Bit-identical trees (patterns, scales, star buffers) and metrics.
    assert_eq!(legacy, managed);
    assert_eq!(report.before, sizing_rep.before);
    assert_eq!(report.passes[0].after, sizing_rep.after);
    assert_eq!(report.passes[1].before, refine_rep.before);
    assert_eq!(report.after, refine_rep.after);
    assert_eq!(report.passes[0].accepted, sizing_rep.resized);
    assert_eq!(report.passes[1].accepted, refine_rep.buffers_added);
    assert_eq!(report.passes[1].triggered, refine_rep.triggered);
    // And the final tree re-evaluates to exactly the reported metrics.
    assert_eq!(managed.evaluate(&tech, model), report.after);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn default_schedule_matches_legacy_elmore(
        sinks in 60usize..200,
        seed in 0u64..1_000,
    ) {
        let design = small_design(sinks, seed);
        check_schedule_equivalence(&design, EvalModel::Elmore);
    }

    #[test]
    fn default_schedule_matches_legacy_nldm(
        sinks in 60usize..200,
        seed in 0u64..1_000,
    ) {
        let design = small_design(sinks, seed);
        check_schedule_equivalence(&design, EvalModel::Nldm);
    }

    #[test]
    fn annealed_sizing_deterministic_and_monotone(
        sinks in 60usize..160,
        design_seed in 0u64..500,
        anneal_seed in 0u64..1_000,
        star_choice in 0usize..2,
    ) {
        let star_prob = if star_choice == 0 { 0.0 } else { 0.25 };
        let design = small_design(sinks, design_seed);
        let tech = Technology::asap7();
        let base = workload(&design, &tech);
        let cfg = AnnealConfig {
            moves: 600,
            star_prob,
            ..AnnealConfig::default()
        };
        let w = cfg.weights;
        let run_once = || {
            let mut t = base.clone();
            let schedule = OptSchedule::new()
                .seed(anneal_seed)
                .with(AnnealedSizingPass::new(cfg.clone()));
            let rep = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
            (t, rep)
        };
        let (t1, r1) = run_once();
        let (t2, r2) = run_once();
        // Deterministic per seed: bit-identical trees and metrics.
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(&r1.after, &r2.after);
        // Never degrades the objective it accepts on.
        prop_assert!(moes_objective_of(&w, &r1.after) <= moes_objective_of(&w, &r1.before) + 1e-9);
        // Pure sizing keeps resource counts bit-equal.
        if star_prob == 0.0 {
            prop_assert_eq!(r1.after.buffers, r1.before.buffers);
            prop_assert_eq!(r1.after.ntsvs, r1.before.ntsvs);
        }
        // Side legality is untouched by sizing/star moves.
        prop_assert_eq!(t1.validate_sides(), Ok(()));
    }
}
