//! Property tests: DP suffix-cache reuse is bit-identical to uncached DP.
//!
//! The claim behind [`dscts_core::try_run_dp_suffix_cached`] is that a
//! node's candidate set is a pure function of its subtree (geometry,
//! tech, config, and the modes of every node under it), so copying a
//! cached set for a mode-identical subtree *is* the recomputation. These
//! tests check the claim the only way that matters: random small designs
//! and random fanout-threshold pairs, comparing the cache-reusing run
//! against the plain entry point as exact `f64`s via `DpResult:
//! PartialEq` — across thread counts, because the batched DSE engine
//! lends one class's cache to a parallel fan-out over all others.

use dscts_core::{
    mode_vector, try_run_dp_suffix_cached, try_run_dp_with_modes, DpConfig, DsCts, ModeRule,
};
use dscts_netlist::{BenchmarkSpec, Design};
use dscts_tech::Technology;
use proptest::prelude::*;

/// A small random design: C4 geometry scaled down, varied by seed.
fn small_design(sinks: usize, seed: u64) -> Design {
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = sinks;
    spec.num_cells = sinks * 12;
    spec.seed = seed;
    spec.generate()
}

/// Serializes `RAYON_NUM_THREADS` manipulation (the pipeline crate's
/// `ScopedEnv` is crate-private).
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cached_dp_is_bit_identical_to_uncached(
        sinks in 60usize..180,
        seed in 0u64..1_000,
        t_base in 1u32..400,
        t_other in 1u32..400,
    ) {
        let design = small_design(sinks, seed);
        let tech = Technology::asap7();
        let topo = DsCts::new(tech.clone())
            .route(&design)
            .expect("random designs stay routable");
        let cfg = DpConfig::default();
        let modes_base = mode_vector(&topo, ModeRule::FanoutThreshold(t_base));
        let modes_other = mode_vector(&topo, ModeRule::FanoutThreshold(t_other));

        // The cache-producing run itself matches the plain entry point.
        let (base_res, cache) =
            try_run_dp_suffix_cached(&topo, &tech, &cfg, &modes_base, None, None)
                .expect("feasible");
        let plain_base =
            try_run_dp_with_modes(&topo, &tech, &cfg, &modes_base).expect("feasible");
        prop_assert_eq!(&base_res, &plain_base);

        let plain_other =
            try_run_dp_with_modes(&topo, &tech, &cfg, &modes_other).expect("feasible");
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for threads in ["1", "2", "4"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let cached = try_run_dp_suffix_cached(
                &topo, &tech, &cfg, &modes_other, None, Some(&cache),
            );
            std::env::remove_var("RAYON_NUM_THREADS");
            let (cached_res, _) = cached.expect("feasible");
            prop_assert_eq!(
                &cached_res, &plain_other,
                "cache reuse diverged at {} threads (t_base={}, t_other={})",
                threads, t_base, t_other
            );
        }
    }

    #[test]
    fn identical_modes_reuse_everything_and_still_match(
        sinks in 60usize..150,
        seed in 0u64..1_000,
        t in 1u32..400,
    ) {
        // The all-clean extreme: reusing a cache built from the *same*
        // mode vector must short-circuit every non-root node and still
        // reproduce the full result.
        let design = small_design(sinks, seed);
        let tech = Technology::asap7();
        let topo = DsCts::new(tech.clone())
            .route(&design)
            .expect("random designs stay routable");
        let cfg = DpConfig::default();
        let modes = mode_vector(&topo, ModeRule::FanoutThreshold(t));
        let (first, cache) =
            try_run_dp_suffix_cached(&topo, &tech, &cfg, &modes, None, None).expect("feasible");
        let (second, _) =
            try_run_dp_suffix_cached(&topo, &tech, &cfg, &modes, None, Some(&cache))
                .expect("feasible");
        prop_assert_eq!(first, second);
    }
}
