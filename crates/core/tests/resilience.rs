//! Integration tests for the fault-tolerant execution layer: run
//! budgets (deadline and trial), degraded-but-valid outcomes, and the
//! deterministic recovery ladder.

use dscts_core::{
    AnnealConfig, AnnealedSizingPass, CtsError, DsCts, OptSchedule, RecoveryPolicy, Relaxation,
    RunBudget,
};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::{Layer, Technology};
use std::time::{Duration, Instant};

fn design() -> dscts_netlist::Design {
    BenchmarkSpec::c4_riscv32i().generate()
}

/// Two tight 8-sink clusters ~68 µm apart with the clock root at their
/// centroid: the binding DP edges are the two long *interior* trunk
/// spans, not the (near-zero-length) top net. On those edges the
/// extended buffered-nTSV patterns have strictly more feasible room
/// than the base alphabet — the buffer's output half runs on the
/// low-capacitance back side — so a max load in the window below makes
/// the base set infeasible while `PatternSet::Extended` synthesizes.
fn two_cluster_design() -> dscts_netlist::Design {
    use dscts_geom::Point;
    let mut d = design();
    let cx = (d.core.xlo + d.core.xhi) / 2;
    let cy = (d.core.ylo + d.core.yhi) / 2;
    let half = 34_165;
    d.sinks.truncate(16);
    for (i, s) in d.sinks.iter_mut().enumerate() {
        let side = if i < 8 { -1 } else { 1 };
        let j = (i % 8) as i64;
        s.pos = Point::new(cx + side * half + (j % 4) * 200, cy + (j / 4) * 200);
        s.cap_ff = 0.1;
    }
    d.clock_root = Point::new(cx, cy);
    d
}

/// A max load inside the base-infeasible / extended-feasible window of
/// [`two_cluster_design`] (empirically ~[4.0, 4.2] fF).
fn window_tech() -> Technology {
    Technology::builder()
        .layer(Layer::new("MF", 0.024222, 0.12918))
        .layer(Layer::new("MB", 0.000384, 0.116264))
        .max_load_ff(4.1)
        .build()
        .unwrap()
}

/// A schedule whose optimize stage dominates the run, so budgets that
/// expire mid-run land inside it (the degraded-outcome regime).
fn heavy_schedule(moves: usize) -> OptSchedule {
    OptSchedule::new().with(AnnealedSizingPass::new(AnnealConfig {
        moves,
        ..AnnealConfig::default()
    }))
}

#[test]
fn zero_deadline_cancels_before_any_tree_exists() {
    // An already-expired deadline trips the very first stage-boundary
    // check: no partial tree to salvage, so the run reports Cancelled.
    let err = DsCts::new(Technology::asap7())
        .budget(RunBudget::new().with_deadline(Duration::ZERO))
        .try_run(&design())
        .expect_err("expired budget must cancel");
    assert_eq!(err, CtsError::Cancelled { stage: "route" });
}

#[test]
fn trial_budget_truncates_optimization_into_a_degraded_outcome() {
    // Route and insertion record no trials, so a tiny trial budget
    // always survives to the optimize stage — then trips inside the
    // anneal loop. The run must still complete: valid tree, full
    // metrics, degraded flag raised.
    let d = design();
    let o = DsCts::new(Technology::asap7())
        .schedule(heavy_schedule(50_000))
        .budget(RunBudget::new().with_max_trials(10))
        .try_run(&d)
        .expect("budget truncation must not fail the run");
    assert!(o.degraded, "truncated schedule must flag the outcome");
    let report = o.optimization.as_ref().expect("optimize stage ran");
    assert!(report.truncated);
    assert_eq!(o.tree.validate_sides(), Ok(()));
    assert_eq!(o.metrics.arrivals.len(), d.sinks.len());
    // The degraded tree was still fully evaluated.
    let batch = o
        .tree
        .evaluate(&Technology::asap7(), dscts_core::EvalModel::Elmore);
    assert_eq!(o.metrics, batch);
}

#[test]
fn generous_budget_is_bit_identical_to_unbudgeted() {
    // A budget that never fires must not perturb a single bit: the
    // token checks are pure reads on the accept/reject paths.
    let d = design();
    let plain = DsCts::new(Technology::asap7()).run(&d);
    let budgeted = DsCts::new(Technology::asap7())
        .budget(
            RunBudget::new()
                .with_deadline(Duration::from_secs(3600))
                .with_max_trials(u64::MAX),
        )
        .try_run(&d)
        .expect("generous budget");
    assert!(!budgeted.degraded);
    assert_eq!(budgeted.tree, plain.tree);
    assert_eq!(budgeted.metrics, plain.metrics);
    assert_eq!(budgeted.root_candidates, plain.root_candidates);
}

#[test]
fn mid_run_deadline_yields_a_partial_outcome_in_time() {
    // Deadline at ~half the known runtime: the run must come back
    // degraded-but-valid, and must not blow far past the deadline (the
    // anneal loop polls the token every move).
    let d = design();
    let full_start = Instant::now();
    let full = DsCts::new(Technology::asap7())
        .schedule(heavy_schedule(100_000))
        .run(&d);
    let full_time = full_start.elapsed();
    let deadline = full_time / 2;
    let start = Instant::now();
    let o = DsCts::new(Technology::asap7())
        .schedule(heavy_schedule(100_000))
        .budget(RunBudget::new().with_deadline(deadline))
        .try_run(&d)
        .expect("mid-optimize deadline degrades, not fails");
    let elapsed = start.elapsed();
    assert!(o.degraded, "deadline inside optimize must degrade");
    assert_eq!(o.tree.validate_sides(), Ok(()));
    assert_eq!(o.metrics.arrivals.len(), full.metrics.arrivals.len());
    // Generous bound (CI machines wobble): well under the full runtime,
    // ideally deadline + a small overshoot for the in-flight move.
    assert!(
        elapsed < full_time,
        "budgeted {elapsed:?} vs full {full_time:?}"
    );
}

#[test]
fn recovery_ladder_rescues_a_widened_pattern_set() {
    // The two-cluster design inside the max-load window: the base
    // alphabet has no feasible pattern for the long interior spans, the
    // first ladder rung widens to Extended and the run completes —
    // recording the rung it took and the error that forced it.
    let d = two_cluster_design();
    let pipe = DsCts::new(window_tech()).lc(8);
    let plain = pipe.try_run(&d).expect_err("base alphabet infeasible");
    assert!(
        matches!(plain, CtsError::NoFeasiblePattern { .. }),
        "unexpected error: {plain}"
    );
    let recovered = pipe
        .clone()
        .recovery(RecoveryPolicy::default())
        .try_run(&d)
        .expect("ladder must rescue the run");
    assert_eq!(recovered.recovery.len(), 1, "one rung suffices");
    let step = &recovered.recovery[0];
    assert_eq!(step.relaxation, Relaxation::WidenPatternSet);
    assert_eq!(step.error, plain);
    assert_eq!(recovered.tree.validate_sides(), Ok(()));
    // The rescue is exactly the explicitly-widened run, bit for bit.
    let explicit = pipe
        .clone()
        .patterns(dscts_core::PatternSet::Extended)
        .try_run(&d)
        .expect("extended alphabet feasible");
    assert_eq!(recovered.tree, explicit.tree);
    assert_eq!(recovered.metrics, explicit.metrics);
    assert!(explicit.recovery.is_empty(), "no policy, no rungs");
}

#[test]
fn recovery_is_deterministic_per_seed() {
    let d = two_cluster_design();
    let run = || {
        DsCts::new(window_tech())
            .lc(8)
            .recovery(RecoveryPolicy::default())
            .try_run(&d)
            .expect("recoverable")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.tree, b.tree);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.recovery, b.recovery);
}

#[test]
fn recovery_ladder_exhausts_on_unsatisfiable_designs() {
    // A max load below a single sink's capacitance: no relaxation can
    // help, so the ladder runs dry and reports the *last* error —
    // deterministically.
    let tech = Technology::builder()
        .layer(Layer::new("MF", 0.024222, 0.12918))
        .layer(Layer::new("MB", 0.000384, 0.116264))
        .max_load_ff(0.5)
        .build()
        .unwrap();
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = 16;
    let d = spec.generate();
    let run = || {
        DsCts::new(tech.clone())
            .recovery(RecoveryPolicy::default())
            .try_run(&d)
            .expect_err("unsatisfiable stays unsatisfiable")
    };
    let (a, b) = (run(), run());
    assert!(
        matches!(
            a,
            CtsError::NoFeasiblePattern { .. } | CtsError::NoRootCandidate
        ),
        "unexpected error: {a}"
    );
    assert_eq!(a, b, "exhausted ladder must be deterministic");
}
