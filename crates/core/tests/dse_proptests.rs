//! Property tests: the batched DSE engine is bit-identical to the naive
//! per-threshold pipeline.
//!
//! Random small designs are swept over random threshold grids with both
//! delay models; [`SweepEngine::try_sweep`] must return exactly — as
//! `f64`s, via `MetricsPoint: PartialEq` — what [`sweep_fanout_naive`]
//! computes by re-running the whole pipeline per threshold, while its
//! mode-equivalence classes must partition the requested grid.

use dscts_core::dse::{sweep_fanout_naive, SweepEngine};
use dscts_core::{DsCts, EvalModel};
use dscts_netlist::{BenchmarkSpec, Design};
use dscts_tech::Technology;
use proptest::prelude::*;

/// A small random design: C4 geometry scaled down, varied by seed.
fn small_design(sinks: usize, seed: u64) -> Design {
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = sinks;
    spec.num_cells = sinks * 12;
    spec.seed = seed;
    spec.generate()
}

fn check_sweep(design: &Design, base: &DsCts, grid: &[u32]) {
    let naive = sweep_fanout_naive(base, design, grid.iter().copied());
    let sweep = SweepEngine::new(base)
        .try_sweep(design, grid.iter().copied())
        .expect("random designs stay feasible");
    // Bit-identical points, in request order.
    assert_eq!(sweep.points, naive);
    // Classes partition the grid: every threshold in exactly one class,
    // members kept in request order within a class.
    let mut seen: Vec<u32> = Vec::new();
    for class in &sweep.classes {
        assert!(!class.thresholds.is_empty(), "empty class");
        seen.extend(&class.thresholds);
    }
    let mut seen_sorted = seen.clone();
    seen_sorted.sort_unstable();
    let mut grid_sorted = grid.to_vec();
    grid_sorted.sort_unstable();
    assert_eq!(seen_sorted, grid_sorted);
    // Equal-threshold requests always land in the same class, so the
    // class count is bounded by the distinct thresholds.
    grid_sorted.dedup();
    assert!(sweep.classes.len() <= grid_sorted.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batched_sweep_matches_naive_elmore(
        sinks in 60usize..200,
        seed in 0u64..1_000,
        start in 1u32..40,
        step in 1usize..60,
    ) {
        let design = small_design(sinks, seed);
        let base = DsCts::new(Technology::asap7());
        // Grids deliberately overshoot the design's fanout range so the
        // all-full tail exercises class merging.
        let grid: Vec<u32> = (start..=(sinks as u32 + 60)).step_by(step).collect();
        check_sweep(&design, &base, &grid);
    }

    #[test]
    fn batched_sweep_matches_naive_nldm(
        sinks in 60usize..200,
        seed in 0u64..1_000,
        step in 1usize..60,
    ) {
        let design = small_design(sinks, seed);
        let base = DsCts::new(Technology::asap7()).eval_model(EvalModel::Nldm);
        let grid: Vec<u32> = (1..=(sinks as u32 + 60)).step_by(step).collect();
        check_sweep(&design, &base, &grid);
    }

    #[test]
    fn batched_sweep_matches_naive_without_refinement(
        sinks in 60usize..160,
        seed in 0u64..500,
    ) {
        // Refinement disabled: points are scored on raw DP output on both
        // paths, and the engine must still agree.
        let design = small_design(sinks, seed);
        let base = DsCts::new(Technology::asap7()).skew_refinement(None);
        let grid: Vec<u32> = (1..=(sinks as u32 + 40)).step_by(7).collect();
        check_sweep(&design, &base, &grid);
    }
}
