//! Budget expiry inside batch loops, under concurrent load.
//!
//! PR 7's resilience suites cover single-run budget paths (stage
//! boundaries, pass trial loops). These tests cover the *batch* engines:
//! deadline expiry inside `SweepEngine`'s mode-class fan-out, trial
//! budgets truncating mid-sweep, and the MCMM corner fan-out observing a
//! shared token from several threads at once.

use dscts_core::dse::SweepEngine;
use dscts_core::opt::{OptSchedule, PassManager};
use dscts_core::{
    AnnealConfig, AnnealedSizingPass, CtsError, DsCts, EvalModel, RobustObjective, RunBudget,
};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::{CornerSet, Technology};
use std::time::Duration;

fn small_design() -> dscts_netlist::Design {
    BenchmarkSpec::scaled(600, 3).generate()
}

fn annealed_base(tech: Technology) -> DsCts {
    DsCts::new(tech).schedule(
        OptSchedule::new().with(AnnealedSizingPass::new(AnnealConfig {
            moves: 400,
            ..AnnealConfig::default()
        })),
    )
}

/// A zero deadline trips the sweep token before the first mode class
/// runs: the class loop reports `Cancelled { stage: "dse" }` instead of
/// hanging or returning a torn grid.
#[test]
fn expired_deadline_cancels_sweep_class_loop() {
    let design = small_design();
    let base =
        DsCts::new(Technology::asap7()).budget(RunBudget::new().with_deadline(Duration::ZERO));
    let err = SweepEngine::new(&base)
        .try_sweep(&design, [4, 16, 64])
        .expect_err("zero deadline must cancel the sweep");
    assert!(
        matches!(err, CtsError::Cancelled { stage: "dse" }),
        "expected Cancelled at the dse checkpoint, got {err:?}"
    );
}

/// A tiny trial budget is exhausted *inside* the first class's annealing
/// schedule. The budget is run-wide: the class that trips it degrades
/// (its optimization truncates), and the class loop then observes the
/// shared token at its next checkpoint and cancels typed — it must not
/// silently keep sweeping an exhausted budget.
#[test]
fn trial_exhaustion_mid_class_cancels_remaining_classes_typed() {
    let design = small_design();
    let budgeted = annealed_base(Technology::asap7()).budget(RunBudget::new().with_max_trials(5));
    let err = SweepEngine::new(&budgeted)
        .try_sweep(&design, [4, 16, 64])
        .expect_err("an exhausted trial budget must stop the class loop");
    assert!(
        matches!(err, CtsError::Cancelled { stage: "dse" }),
        "expected the typed dse checkpoint, got {err:?}"
    );
}

/// An ample budget is *bit-identical* to no budget at all: threading the
/// token through the class fan-out must not perturb results while the
/// token is untripped.
#[test]
fn untripped_budget_is_bit_identical_in_sweep() {
    let design = small_design();
    let thresholds = [4, 16, 64];
    let plain = annealed_base(Technology::asap7());
    let budgeted = annealed_base(Technology::asap7())
        .budget(RunBudget::new().with_deadline(Duration::from_secs(3600)));
    let a = SweepEngine::new(&plain)
        .try_sweep(&design, thresholds)
        .expect("plain sweep");
    let b = SweepEngine::new(&budgeted)
        .try_sweep(&design, thresholds)
        .expect("budgeted sweep");
    assert_eq!(a.points, b.points);
}

/// Four threads run the corner-aware schedule concurrently, each with
/// its own tree clone and a pre-tripped token: every fan-out truncates
/// typed (report.truncated), every tree stays valid (re-evaluation
/// agrees), and all threads produce the identical degraded result.
#[test]
fn mcmm_fanout_under_concurrent_load_truncates_typed() {
    let design = small_design();
    let tech = Technology::asap7();
    let corners = CornerSet::asap7_pvt(&tech);
    let base = annealed_base(tech.clone());
    let topo = base.route(&design).expect("route");
    let (tree, _dp) = base.insert(topo).expect("insert");
    let schedule = base.effective_schedule().expect("annealed schedule");

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mut tree = tree.clone();
                let corners = &corners;
                let schedule = &schedule;
                scope.spawn(move || {
                    let token = RunBudget::new().with_max_trials(1).token();
                    token.record_trial(); // trip it before the fan-out
                    let report = PassManager::new(schedule).run_corners_cancel(
                        &mut tree,
                        corners,
                        EvalModel::Elmore,
                        RobustObjective::default(),
                        Some(&token),
                    );
                    (tree, report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    let (first_tree, first_report) = &results[0];
    assert!(
        first_report.truncated,
        "a tripped token must truncate the corner fan-out"
    );
    let reference = first_tree.evaluate(&tech, EvalModel::Elmore);
    for (tree, report) in &results {
        assert!(report.truncated);
        // Valid tree invariant: a truncated schedule leaves a tree whose
        // stored state re-evaluates consistently.
        assert_eq!(tree.evaluate(&tech, EvalModel::Elmore), reference);
        assert_eq!(report.truncated, first_report.truncated);
    }
}

/// The same concurrent fan-out with an untripped token matches the
/// cancel-free corner run bit for bit, from every thread.
#[test]
fn mcmm_fanout_concurrent_untripped_matches_plain() {
    let design = small_design();
    let tech = Technology::asap7();
    let corners = CornerSet::asap7_pvt(&tech);
    let base = annealed_base(tech.clone());
    let topo = base.route(&design).expect("route");
    let (tree, _dp) = base.insert(topo).expect("insert");
    let schedule = base.effective_schedule().expect("annealed schedule");

    let mut plain_tree = tree.clone();
    let plain_report = PassManager::new(&schedule).run_corners(
        &mut plain_tree,
        &corners,
        EvalModel::Elmore,
        RobustObjective::default(),
    );
    let reference = plain_tree.evaluate(&tech, EvalModel::Elmore);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let mut tree = tree.clone();
            let corners = &corners;
            let schedule = &schedule;
            let tech = &tech;
            let plain_report = &plain_report;
            let reference = &reference;
            scope.spawn(move || {
                let token = RunBudget::new()
                    .with_deadline(Duration::from_secs(3600))
                    .token();
                let report = PassManager::new(schedule).run_corners_cancel(
                    &mut tree,
                    corners,
                    EvalModel::Elmore,
                    RobustObjective::default(),
                    Some(&token),
                );
                assert!(!report.truncated);
                assert_eq!(report.after, plain_report.after);
                assert_eq!(&tree.evaluate(tech, EvalModel::Elmore), reference);
            });
        }
    });
}
