//! Property tests for the MCMM subsystem:
//!
//! * a [`MultiCornerEval`] holding a **single identity corner** is
//!   bit-identical to [`IncrementalEval`] under arbitrary interleaved
//!   mutations and undos, for both delay models — mutation return
//!   values, per-step metrics, and the final written-through tree all
//!   agree as exact `f64`s;
//! * **monotonicity**: a uniformly slower corner (every derate ≥ 1)
//!   never reports lower latency than the nominal corner, at any point
//!   of a mutation sequence.

use dscts_core::mcmm::MultiCornerEval;
use dscts_core::{
    run_dp, DpConfig, EvalModel, HierarchicalRouter, IncrementalEval, MoesWeights, Pattern,
    SynthesizedTree,
};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::{Corner, CornerSet, DerateFactors, Technology, WireDerate};
use proptest::prelude::*;

/// A small random design: C4 geometry scaled down, varied by seed.
fn small_tree(sinks: usize, seed: u64) -> (SynthesizedTree, Technology) {
    let mut spec = BenchmarkSpec::c4_riscv32i();
    spec.num_ffs = sinks;
    spec.num_cells = sinks * 12;
    spec.seed = seed;
    let design = spec.generate();
    let tech = Technology::asap7();
    let mut topo = HierarchicalRouter::new()
        .seed(seed ^ 0x5eed)
        .route(&design, &tech);
    topo.subdivide(40_000);
    // Latency-greedy MOES: more buffered edges for sizing moves to touch.
    let cfg = DpConfig {
        moes: MoesWeights {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            delta: 0.0,
        },
        ..DpConfig::default()
    };
    let res = run_dp(&topo, &tech, &cfg);
    (SynthesizedTree::new(topo, res.assignment), tech)
}

/// One scripted mutation, drawn from raw randomness and resolved against
/// the concrete tree at application time (mirrors `incremental_proptests`).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Scale the buffer of the i-th buffered edge (mod count).
    Scale(usize, f64),
    /// Toggle the refinement buffer of star i (mod count).
    StarBuffer(usize, bool),
    /// Re-pattern the i-th edge (mod count) with the k-th front-compatible
    /// pattern.
    Pattern(usize, usize),
    /// Undo the previous mutation.
    Undo,
    /// Commit everything so far.
    Commit,
}

fn op() -> impl Strategy<Value = Op> {
    (0usize..5, 0usize..4096, 0.2f64..4.0, 0usize..4).prop_map(|(kind, i, scale, k)| match kind {
        0 | 1 => Op::Scale(i, scale),
        2 => Op::StarBuffer(i, scale > 1.0),
        3 => Op::Pattern(i, k),
        4 if i % 3 == 0 => Op::Commit,
        _ => Op::Undo,
    })
}

const FF_PATTERNS: [Pattern; 3] = [Pattern::Buffer, Pattern::WiringF, Pattern::Ntsv1];

/// Applies `ops` in lockstep to an [`IncrementalEval`] and a
/// single-identity-corner [`MultiCornerEval`] over clones of the same
/// tree, asserting bit-identity at every step.
fn lockstep(tree: &SynthesizedTree, tech: &Technology, model: EvalModel, ops: &[Op]) {
    let corners = CornerSet::nominal_only(tech);
    let buffered: Vec<usize> = (1..tree.topo.nodes.len())
        .filter(|&i| tree.patterns[i].is_some_and(|p| p.buffers() > 0))
        .collect();
    let n_edges = tree.topo.nodes.len() - 1;
    let n_stars = tree.topo.stars.len();

    let mut t_inc = tree.clone();
    let mut t_mc = tree.clone();
    let mut inc = IncrementalEval::new(&mut t_inc, tech, model);
    let mut mc = MultiCornerEval::new(&mut t_mc, &corners, model);
    for &op in ops {
        match op {
            Op::Scale(i, s) if !buffered.is_empty() => {
                let edge = buffered[i % buffered.len()];
                assert_eq!(inc.set_buffer_scale(edge, s), mc.set_buffer_scale(edge, s));
            }
            Op::Scale(..) => {}
            Op::StarBuffer(i, on) => {
                assert_eq!(
                    inc.set_star_buffer(i % n_stars, on),
                    mc.set_star_buffer(i % n_stars, on)
                );
            }
            Op::Pattern(i, k) => {
                let edge = 1 + (i % n_edges);
                let cur = inc.tree().patterns[edge].expect("assigned");
                if cur.root_side() == dscts_tech::Side::Front
                    && cur.sink_side() == dscts_tech::Side::Front
                {
                    let p = FF_PATTERNS[k % FF_PATTERNS.len()];
                    assert_eq!(inc.set_pattern(edge, p), mc.set_pattern(edge, p));
                }
            }
            Op::Undo => {
                inc.undo();
                mc.undo();
            }
            Op::Commit => {
                inc.commit();
                mc.commit();
            }
        }
        // Bit-identical state after every step.
        assert_eq!(inc.metrics(), mc.corner_metrics(0));
        assert_eq!(inc.latency_skew_ps(), mc.corner_latency_skew_ps(0));
        assert_eq!(inc.latency_skew_ps(), mc.worst_latency_skew_ps());
        let r = mc.robust_metrics();
        assert_eq!(r.arrival_spread_ps, 0.0, "one corner has no spread");
    }
    let inc_final = inc.metrics();
    drop(inc);
    drop(mc);
    // Both evaluators wrote identical knobs through to their trees, and
    // the written-through trees batch-evaluate to the same metrics.
    assert_eq!(t_inc, t_mc);
    assert_eq!(t_mc.evaluate(tech, model), inc_final);
}

/// Applies `ops` through a two-corner evaluator (identity + uniformly
/// slower), asserting the slow corner never reports lower latency.
fn monotone(tree: &SynthesizedTree, tech: &Technology, model: EvalModel, slow: f64, ops: &[Op]) {
    let derate = DerateFactors {
        front_wire: WireDerate {
            res: slow,
            cap: slow,
        },
        back_wire: WireDerate {
            res: slow,
            cap: slow,
        },
        buffer_delay: slow,
        ntsv: WireDerate {
            res: slow,
            cap: slow,
        },
    };
    let corners = CornerSet::expand(
        tech,
        vec![
            Corner::nominal("TT"),
            Corner::new("SLOW", derate).expect("valid derates"),
        ],
        0,
    )
    .expect("valid corner set");
    let buffered: Vec<usize> = (1..tree.topo.nodes.len())
        .filter(|&i| tree.patterns[i].is_some_and(|p| p.buffers() > 0))
        .collect();
    let n_stars = tree.topo.stars.len();

    let mut t = tree.clone();
    let mut mc = MultiCornerEval::new(&mut t, &corners, model);
    let check = |mc: &MultiCornerEval<'_>| {
        let (nom_lat, _) = mc.corner_latency_skew_ps(0);
        let (slow_lat, _) = mc.corner_latency_skew_ps(1);
        assert!(
            slow_lat >= nom_lat,
            "uniformly slower corner reported lower latency: {slow_lat} < {nom_lat}"
        );
        let r = mc.robust_metrics();
        assert_eq!(r.worst_latency_ps, slow_lat.max(nom_lat));
    };
    check(&mc);
    for &op in ops {
        match op {
            Op::Scale(i, s) if !buffered.is_empty() => {
                let _ = mc.set_buffer_scale(buffered[i % buffered.len()], s);
            }
            Op::StarBuffer(i, on) => {
                let _ = mc.set_star_buffer(i % n_stars, on);
            }
            Op::Undo => mc.undo(),
            Op::Commit => mc.commit(),
            // Pattern swaps change structure, not just speed; the
            // monotonicity claim is per-configuration, so skip them here.
            Op::Pattern(..) | Op::Scale(..) => {}
        }
        check(&mc);
    }
}

/// Serializes the `RAYON_NUM_THREADS` manipulation of the thread-count
/// sweep below (the pipeline crate's `ScopedEnv` is crate-private).
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn uniform_derate(f: f64) -> DerateFactors {
    DerateFactors {
        front_wire: WireDerate { res: f, cap: f },
        back_wire: WireDerate { res: f, cap: f },
        buffer_delay: f,
        ntsv: WireDerate { res: f, cap: f },
    }
}

/// Per-op mutation returns, per-step per-corner `(latency, skew)`, and
/// the final written-through tree — everything a parallel run must
/// reproduce bit-identically from the serial reference.
type ScriptTrace = (Vec<bool>, Vec<Vec<(f64, f64)>>, SynthesizedTree);

/// Applies `ops` through one K-corner evaluator with the given parallel
/// setting, recording every mutation's return value, every step's
/// per-corner `(latency, skew)`, and the final written-through tree.
fn scripted(
    tree: &SynthesizedTree,
    corners: &CornerSet,
    model: EvalModel,
    ops: &[Op],
    parallel: Option<bool>,
) -> ScriptTrace {
    let buffered: Vec<usize> = (1..tree.topo.nodes.len())
        .filter(|&i| tree.patterns[i].is_some_and(|p| p.buffers() > 0))
        .collect();
    let n_edges = tree.topo.nodes.len() - 1;
    let n_stars = tree.topo.stars.len();
    let mut t = tree.clone();
    let mut mc = MultiCornerEval::new(&mut t, corners, model).with_parallel(parallel);
    let mut rets = Vec::new();
    let mut steps = Vec::new();
    for &op in ops {
        match op {
            Op::Scale(i, s) if !buffered.is_empty() => {
                rets.push(mc.set_buffer_scale(buffered[i % buffered.len()], s));
            }
            Op::Scale(..) => {}
            Op::StarBuffer(i, on) => rets.push(mc.set_star_buffer(i % n_stars, on)),
            Op::Pattern(i, k) => {
                let edge = 1 + (i % n_edges);
                let cur = mc.tree().patterns[edge].expect("assigned");
                if cur.root_side() == dscts_tech::Side::Front
                    && cur.sink_side() == dscts_tech::Side::Front
                {
                    rets.push(mc.set_pattern(edge, FF_PATTERNS[k % FF_PATTERNS.len()]));
                }
            }
            Op::Undo => mc.undo(),
            Op::Commit => mc.commit(),
        }
        steps.push(
            (0..mc.corner_count())
                .map(|c| mc.corner_latency_skew_ps(c))
                .collect(),
        );
    }
    drop(mc);
    (rets, steps, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn corner_parallel_fanout_is_bit_identical_to_serial(
        sinks in 60usize..160,
        seed in 0u64..500,
        ops in prop::collection::vec(op(), 1..24),
    ) {
        let (tree, tech) = small_tree(sinks, seed);
        let corners = CornerSet::expand(
            &tech,
            vec![
                Corner::nominal("TT"),
                Corner::new("SS", uniform_derate(1.12)).expect("valid derates"),
                Corner::new("SF", uniform_derate(1.05)).expect("valid derates"),
            ],
            0,
        )
        .expect("valid corner set");
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let serial = scripted(&tree, &corners, EvalModel::Elmore, &ops, Some(false));
        for threads in ["1", "2", "4"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let par = scripted(&tree, &corners, EvalModel::Elmore, &ops, Some(true));
            std::env::remove_var("RAYON_NUM_THREADS");
            prop_assert_eq!(&serial.0, &par.0, "mutation outcomes differ at {} threads", threads);
            prop_assert_eq!(&serial.1, &par.1, "per-corner trajectories differ at {} threads", threads);
            prop_assert_eq!(&serial.2, &par.2, "written-through trees differ at {} threads", threads);
        }
    }

    #[test]
    fn single_nominal_corner_matches_incremental_elmore(
        sinks in 60usize..200,
        seed in 0u64..1_000,
        ops in prop::collection::vec(op(), 1..30),
    ) {
        let (tree, tech) = small_tree(sinks, seed);
        lockstep(&tree, &tech, EvalModel::Elmore, &ops);
    }

    #[test]
    fn single_nominal_corner_matches_incremental_nldm(
        sinks in 60usize..200,
        seed in 0u64..1_000,
        ops in prop::collection::vec(op(), 1..30),
    ) {
        let (tree, tech) = small_tree(sinks, seed);
        lockstep(&tree, &tech, EvalModel::Nldm, &ops);
    }

    #[test]
    fn uniformly_slower_corner_never_lowers_latency(
        sinks in 60usize..160,
        seed in 0u64..500,
        slow in 1.0f64..1.25,
        ops in prop::collection::vec(op(), 1..20),
    ) {
        let (tree, tech) = small_tree(sinks, seed);
        for model in [EvalModel::Elmore, EvalModel::Nldm] {
            monotone(&tree, &tech, model, slow, &ops);
        }
    }
}
