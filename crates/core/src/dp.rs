//! Concurrent buffer and nTSV insertion by multi-objective dynamic
//! programming (§III-C).
//!
//! The DP tree mirrors the clock-tree edges (Fig. 7): each trunk edge is a
//! DP node whose candidate solutions carry the pattern chosen for that edge
//! plus the aggregate downstream state. The four steps of the paper:
//!
//! 1. **Build heterogeneous DP tree** — every node gets an insertion
//!    [`Mode`] from a [`ModeRule`] (all-full reproduces Table III; a fanout
//!    threshold reproduces the DSE flow of §III-E);
//! 2. **Bottom-up generation** — leaf edges start from the leaf-star load
//!    with their sink end pinned to the front side (restricting them to
//!    {P1, P2, P4, P5}); merges require both children to agree on the side
//!    of the shared vertex, which makes every DP solution a *legal*
//!    double-side tree by construction;
//! 3. **Multi-objective selection** — the root candidate set is scored with
//!    the MOES (Eq. 3): `α·latency + β·buffers + γ·nTSVs` (an optional skew
//!    term extends it);
//! 4. **Top-down decision** — child choices recorded during merging retrace
//!    the full pattern assignment.
//!
//! Pruning follows van Ginneken's inferior-solution rule per side
//! ([`PruneMode::LatencyOnly`]), optionally extended with resource
//! dominance ([`PruneMode::MultiObjective`], the default) so the root set
//! keeps the buffer/nTSV diversity that Fig. 10 shows is essential in the
//! double-side design space.

use crate::error::CtsError;
use crate::pattern::{Mode, Pattern, PatternSet};
use crate::resilience::{fault, CancelToken};
use crate::tree::ClockTopo;
use dscts_geom::TreeCsr;
use dscts_tech::{Side, Technology};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How DP nodes are assigned their insertion [`Mode`] (§III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModeRule {
    /// Every node in full mode (the Table III configuration).
    #[default]
    AllFull,
    /// Every node in intra-side mode (single-side insertion).
    AllIntraSide,
    /// Nodes with fanout **below** the threshold are full mode; nodes at or
    /// above it are intra-side (the DSE knob). The *top net* — the unshared
    /// root-feed chain whose fanout equals the total sink count — always
    /// stays full mode: the paper treats top nets as designer-designated,
    /// distinct from trunk nets (§II-A), and every published flipper moves
    /// them to the back side.
    FanoutThreshold(u32),
}

impl ModeRule {
    fn mode(self, fanout: u32, total: u32) -> Mode {
        match self {
            ModeRule::AllFull => Mode::Full,
            ModeRule::AllIntraSide => Mode::IntraSide,
            ModeRule::FanoutThreshold(t) => {
                if fanout < t || fanout == total {
                    Mode::Full
                } else {
                    Mode::IntraSide
                }
            }
        }
    }
}

/// The per-node insertion [`Mode`] vector `rule` induces over `topo`.
///
/// A node's mode depends only on its fanout (and the total sink count),
/// never on the candidate sets, so the vector can be computed up front —
/// the DSE engine uses this to prove two `FanoutThreshold` values
/// equivalent (identical vectors) and run the DP once per equivalence
/// class via [`try_run_dp_with_modes`].
pub fn mode_vector(topo: &ClockTopo, rule: ModeRule) -> Vec<Mode> {
    let fanout = topo.fanout();
    let total = fanout[0];
    fanout.iter().map(|&f| rule.mode(f, total)).collect()
}

/// Candidate pruning discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// The paper's inferior-solution rule: per side, drop candidates whose
    /// effective capacitance **and** maximum delay are both dominated.
    /// Optimal in latency (the default, as in §III-C).
    #[default]
    LatencyOnly,
    /// Per side, 4-D dominance over (cap, delay, #buffers, #nTSVs):
    /// resource-incomparable candidates survive, preserving the Fig. 10
    /// diversity of the double-side space at some latency cost. Used by
    /// the MOES-effectiveness and ablation experiments.
    MultiObjective,
}

/// Weights of the multi-objective enhancement score (Eq. 3), extended with
/// an optional skew term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoesWeights {
    /// Latency weight α.
    pub alpha: f64,
    /// Buffer-count weight β.
    pub beta: f64,
    /// nTSV-count weight γ.
    pub gamma: f64,
    /// Skew weight δ (0 in the paper's formulation).
    pub delta: f64,
}

impl Default for MoesWeights {
    /// The paper's experimental setting: α, β, γ = 1, 10, 1.
    fn default() -> Self {
        MoesWeights {
            alpha: 1.0,
            beta: 10.0,
            gamma: 1.0,
            delta: 0.0,
        }
    }
}

impl MoesWeights {
    /// The weighted sum `α·latency + β·buffers + γ·nTSVs + δ·skew` —
    /// the single place the MOES objective is written down. The DP's
    /// [`MoesWeights::score`] and the optimization passes'
    /// [`crate::opt::moes_objective`]/[`crate::opt::moes_objective_of`]
    /// all delegate here, so they cannot drift apart.
    pub fn weigh(&self, latency_ps: f64, buffers: f64, ntsvs: f64, skew_ps: f64) -> f64 {
        self.alpha * latency_ps + self.beta * buffers + self.gamma * ntsvs + self.delta * skew_ps
    }

    /// The MOES value of a root candidate.
    pub fn score(&self, c: &RootCand) -> f64 {
        self.weigh(
            c.latency_ps,
            f64::from(c.buffers),
            f64::from(c.ntsvs),
            c.skew_ps,
        )
    }
}

/// DP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DpConfig {
    /// Pattern alphabet (base P1–P6 or extended).
    pub patterns: PatternSet,
    /// Pruning discipline.
    pub prune: PruneMode,
    /// Candidate-set cap per DP node (diversity-preserving truncation).
    pub max_cands: usize,
    /// Insertion-mode rule.
    pub mode_rule: ModeRule,
    /// Root-selection weights.
    pub moes: MoesWeights,
    /// Restrict to the front side entirely ({P1, P2}): the "Our Buffered
    /// Clock Tree" flow.
    pub single_side: bool,
    /// Memory-bounding frontier cap. `None` (the default) leaves candidate
    /// propagation exactly as configured by `max_cands` — bit-identical to
    /// the pre-cap DP. `Some(f)` tightens the *stored* per-node candidate
    /// budget to `max_cands.min(f)` after the provable-dominance prune,
    /// but only for nodes deeper than `FRONTIER_FULL_DIVERSITY_DEPTH`
    /// (24) edges from the root (the transient merge working set keeps the
    /// full `max_cands`-keyed budget everywhere). Near-root diversity —
    /// what root selection quality rides on — is untouched, while the
    /// deep subdivision chains of huge designs are bounded
    /// (the stored total is reported
    /// in [`DpResult::stored_candidates`]). Dominated candidates are always
    /// dropped first, so the cap only thins the resource-diverse tail.
    pub frontier: Option<usize>,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig {
            patterns: PatternSet::Base,
            prune: PruneMode::default(),
            max_cands: 64,
            mode_rule: ModeRule::AllFull,
            moes: MoesWeights::default(),
            single_side: false,
            frontier: None,
        }
    }
}

/// A candidate at the root of the DP tree (one point of Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootCand {
    /// Source-to-worst-sink latency including the root driver (ps).
    pub latency_ps: f64,
    /// Worst minus best sink delay (ps).
    pub skew_ps: f64,
    /// Buffers inserted by patterns (excluding the root driver).
    pub buffers: u32,
    /// nTSVs inserted by patterns.
    pub ntsvs: u32,
    /// Capacitance presented to the root driver (fF).
    pub cap_ff: f64,
}

/// Output of [`run_dp`].
#[derive(Debug, Clone, PartialEq)]
pub struct DpResult {
    /// Pattern for every trunk node's incoming edge (`None` for node 0).
    pub assignment: Vec<Option<Pattern>>,
    /// The surviving root candidate set (for Fig. 10 and DSE analysis).
    pub root_candidates: Vec<RootCand>,
    /// Index into `root_candidates` selected by the MOES.
    pub chosen: usize,
    /// Total candidate records stored across all DP nodes — the peak
    /// footprint of the candidate arena. This is what
    /// [`DpConfig::frontier`] bounds; the scaling bench reports it to show
    /// the cap's effect.
    pub stored_candidates: usize,
}

#[derive(Debug, Clone, Copy)]
struct Work {
    pattern: Option<Pattern>,
    side: Side,
    cap: f64,
    max_d: f64,
    min_d: f64,
    bufs: u32,
    ntsvs: u32,
    child: [u32; 2],
}

/// Runs the concurrent buffer-and-nTSV DP over a routed clock tree.
///
/// Thin panicking wrapper over [`try_run_dp`], kept for callers that treat
/// infeasibility as a bug (tests, benches, ablations).
///
/// # Panics
///
/// Panics with the [`CtsError`] display text if the trunk is malformed or
/// the max-capacitance constraint makes every candidate infeasible.
pub fn run_dp(topo: &ClockTopo, tech: &Technology, cfg: &DpConfig) -> DpResult {
    match try_run_dp(topo, tech, cfg) {
        Ok(res) => res,
        Err(e) => panic!("{e}"),
    }
}

/// Nodes within this many edges of the clock root always keep the full
/// `max_cands` budget, even under a [`DpConfig::frontier`] cap. Root
/// selection quality rides on the diversity of the sets near the root,
/// so the cap must not thin them; 24 levels of trunk (branch points plus
/// their subdivision segments) cover every Table II preset at the
/// pipeline's default granularity, so the cap engages only on the deep
/// subdivision chains of 100k+-sink floorplans — which is exactly where
/// the candidate arena bloats.
const FRONTIER_FULL_DIVERSITY_DEPTH: u32 = 24;

/// Read-only inputs shared by every per-node DP computation.
struct DpCtx<'a> {
    topo: &'a ClockTopo,
    tech: &'a Technology,
    cfg: &'a DpConfig,
    patterns: &'a [Pattern],
    csr: &'a TreeCsr,
    modes: &'a [Mode],
    /// Per-node distance from the clock root, used to gate the frontier
    /// cap; empty when `cfg.frontier` is `None` (never read then).
    depths: &'a [u32],
}

/// Candidate-set capture of one DP run, reusable by later runs over the
/// *same* topology/technology/configuration whose per-node [`Mode`]
/// vector differs only on some nodes (mode-class *suffix sharing*, the
/// PR 3 follow-on).
///
/// A node's candidate set is a pure function of its subtree: the modes
/// of the node and all its descendants, plus the shared
/// topo/tech/config inputs. When a later class's mode vector agrees
/// with the cached one on a whole subtree, that subtree's sets are
/// bit-identical by construction and are copied from the cache instead
/// of recomputed. Fanout-threshold classes differ exactly on the nodes
/// whose fanout lies between the two thresholds — the high-fanout
/// trunk near the root — so deep subtrees (the bulk of the DP work)
/// are shared.
///
/// **Caller contract:** only the mode vector may vary between the
/// cached run and a reusing run. Reusing a cache across different
/// topologies, technologies or [`DpConfig`]s is a logic error (a
/// node-count mismatch is detected and silently disables reuse; other
/// mismatches are not detectable here). [`crate::dse::SweepEngine`]
/// upholds this by building one cache per routed design.
#[derive(Debug)]
pub struct DpSuffixCache {
    modes: Vec<Mode>,
    arena: CandArena,
}

impl DpSuffixCache {
    /// Total candidate records captured (the arena footprint this cache
    /// keeps alive).
    pub fn stored_candidates(&self) -> usize {
        self.arena.works.len()
    }

    /// Trunk-node count of the topology the cache was built over.
    pub fn nodes(&self) -> usize {
        self.arena.off.len()
    }
}

/// Flat SoA arena holding every node's surviving candidate set — the
/// `TreeCsr`-style replacement for the former `Vec<Vec<Work>>`: one
/// contiguous `Work` buffer plus per-node `(offset, len)` slots. Sets are
/// appended in height order (children before parents), so by the time a
/// node is processed all of its children's slices are already resident.
#[derive(Debug)]
struct CandArena {
    off: Vec<u32>,
    len: Vec<u32>,
    works: Vec<Work>,
}

impl CandArena {
    fn with_nodes(n: usize) -> Self {
        CandArena {
            off: vec![0; n],
            len: vec![0; n],
            works: Vec::new(),
        }
    }

    fn node(&self, id: usize) -> &[Work] {
        &self.works[self.off[id] as usize..][..self.len[id] as usize]
    }

    fn push_set(&mut self, id: usize, set: Vec<Work>) {
        self.off[id] = self.works.len() as u32;
        self.len[id] = set.len() as u32;
        self.works.extend(set);
    }
}

/// The merge + insert computation for one DP node. Reads only the
/// candidate sets of the node's children, so all nodes of equal tree
/// height are independent and safe to process in parallel.
fn process_node(idu: usize, ctx: &DpCtx<'_>, sets: &CandArena) -> Result<Vec<Work>, CtsError> {
    fault::fault_check(fault::SITE_DP)?;
    let DpCtx {
        topo,
        tech,
        cfg,
        patterns,
        csr,
        modes,
        depths,
    } = *ctx;
    let rc_front = tech.rc(Side::Front);
    let max_load = tech.max_load_ff();
    let node = &topo.nodes[idu];
    let kids = csr.children(idu as u32);
    // --- Merge step: aggregate the state below this edge's sink end. ---
    let mut merged: Vec<Work> = match (kids.len(), node.star) {
        (0, Some(star)) => {
            let s = &topo.stars[star as usize];
            let mut cap = 0.0;
            let mut max_d = 0.0f64;
            let mut min_d = f64::INFINITY;
            for (&sk, &len) in s.sinks.iter().zip(&s.branch_len) {
                cap += rc_front.cap(len) + topo.sink_cap[sk as usize];
                let d = rc_front.res(len) * (rc_front.cap(len) + topo.sink_cap[sk as usize]);
                max_d = max_d.max(d);
                min_d = min_d.min(d);
            }
            vec![Work {
                pattern: None,
                side: Side::Front, // sinks live on the front side
                cap,
                max_d,
                min_d,
                bufs: 0,
                ntsvs: 0,
                child: [u32::MAX; 2],
            }]
        }
        (1, None) => sets
            .node(kids[0] as usize)
            .iter()
            .enumerate()
            .map(|(i, c)| Work {
                pattern: None,
                side: c
                    .pattern
                    .expect("stored candidates have patterns")
                    .root_side(),
                cap: c.cap,
                max_d: c.max_d,
                min_d: c.min_d,
                bufs: c.bufs,
                ntsvs: c.ntsvs,
                child: [i as u32, u32::MAX],
            })
            .collect(),
        (2, None) => {
            let (a, b) = (sets.node(kids[0] as usize), sets.node(kids[1] as usize));
            let mut out = Vec::with_capacity(a.len() * b.len() / 2);
            for (i, ca) in a.iter().enumerate() {
                let sa = ca.pattern.expect("stored").root_side();
                for (j, cb) in b.iter().enumerate() {
                    // Connectivity constraint: the shared vertex must
                    // have one side.
                    if sa != cb.pattern.expect("stored").root_side() {
                        continue;
                    }
                    out.push(Work {
                        pattern: None,
                        side: sa,
                        cap: ca.cap + cb.cap,
                        max_d: ca.max_d.max(cb.max_d),
                        min_d: ca.min_d.min(cb.min_d),
                        bufs: ca.bufs + cb.bufs,
                        ntsvs: ca.ntsvs + cb.ntsvs,
                        child: [i as u32, j as u32],
                    });
                }
            }
            out
        }
        (c, s) => {
            return Err(CtsError::MalformedTrunk {
                node: idu as u32,
                children: c,
                has_star: s.is_some(),
            })
        }
    };
    // The merge working set keeps the full `max_cands`-keyed budget even
    // under a frontier cap: the oversized intermediate is transient (it
    // never reaches the arena), and thinning it would change *which*
    // candidates survive rather than merely how many are stored.
    prune(&mut merged, cfg.prune, cfg.max_cands.max(4) * 2);
    // The frontier tightens only the stored (final) per-node budget, and
    // only beyond [`FRONTIER_FULL_DIVERSITY_DEPTH`]; with `frontier:
    // None` this is exactly `max_cands` and the DP is bit-identical to
    // the uncapped formulation.
    let budget = match cfg.frontier {
        Some(f) if depths[idu] > FRONTIER_FULL_DIVERSITY_DEPTH => cfg.max_cands.min(f),
        _ => cfg.max_cands,
    };

    // --- Insert step: assign a pattern to this edge. ---
    let mode = modes[idu];
    let mut cands: Vec<Work> = Vec::with_capacity(merged.len() * patterns.len());
    for base in &merged {
        for &p in patterns {
            if !p.allowed_in(mode) || p.sink_side() != base.side {
                continue;
            }
            let Some(ev) = p.eval(node.edge_len, base.cap, tech) else {
                continue;
            };
            // Max driven capacitance prune (§III-C pruning technique).
            if ev.up_cap_ff > max_load {
                continue;
            }
            cands.push(Work {
                pattern: Some(p),
                side: p.root_side(),
                cap: ev.up_cap_ff,
                max_d: base.max_d + ev.delay_ps,
                min_d: base.min_d + ev.delay_ps,
                bufs: base.bufs + p.buffers(),
                ntsvs: base.ntsvs + p.ntsvs(),
                child: base.child,
            });
        }
    }
    prune(&mut cands, cfg.prune, budget);
    if cands.is_empty() {
        return Err(CtsError::NoFeasiblePattern {
            node: idu as u32,
            edge_len_nm: node.edge_len,
        });
    }
    Ok(cands)
}

/// Runs the concurrent buffer-and-nTSV DP, reporting infeasibility as
/// [`CtsError`] instead of panicking.
///
/// Candidate propagation is parallel across independent subtrees: nodes
/// are grouped by tree height (leaves first), and every node within one
/// height group is processed concurrently — a node depends only on its
/// children, which all live in lower groups. The per-node computation is
/// untouched and each node's candidate set is written back in node order,
/// so the result is bit-identical at any thread count.
pub fn try_run_dp(
    topo: &ClockTopo,
    tech: &Technology,
    cfg: &DpConfig,
) -> Result<DpResult, CtsError> {
    try_run_dp_with_modes(topo, tech, cfg, &mode_vector(topo, cfg.mode_rule))
}

/// [`try_run_dp`] with a precomputed per-node [`Mode`] vector, ignoring
/// `cfg.mode_rule`.
///
/// This is the DP entry the batched DSE engine drives: the engine computes
/// one [`mode_vector`] per mode-equivalence class of the threshold sweep
/// and shares a single routed topology (with its cached CSR) across calls.
/// Bit-identical to [`try_run_dp`] when `modes == mode_vector(topo,
/// cfg.mode_rule)`.
///
/// # Panics
///
/// Panics if `modes.len() != topo.nodes.len()` (a caller bug, not a
/// data-dependent failure).
pub fn try_run_dp_with_modes(
    topo: &ClockTopo,
    tech: &Technology,
    cfg: &DpConfig,
    modes: &[Mode],
) -> Result<DpResult, CtsError> {
    try_run_dp_with_modes_cancel(topo, tech, cfg, modes, None)
}

/// [`try_run_dp_with_modes`] with a cooperative [`CancelToken`] checked
/// between height groups of the candidate propagation — the pipeline's
/// mid-insertion budget checkpoint. `None` (what every pre-existing entry
/// point passes) is bit-identical to the uncancellable path.
///
/// # Panics
///
/// Panics if `modes.len() != topo.nodes.len()` (a caller bug, not a
/// data-dependent failure).
pub fn try_run_dp_with_modes_cancel(
    topo: &ClockTopo,
    tech: &Technology,
    cfg: &DpConfig,
    modes: &[Mode],
    cancel: Option<&CancelToken>,
) -> Result<DpResult, CtsError> {
    run_dp_core(topo, tech, cfg, modes, cancel, None).map(|(res, _)| res)
}

/// [`try_run_dp_with_modes_cancel`] with mode-class suffix sharing:
/// returns the run's own [`DpSuffixCache`] (a free move of the arena the
/// run built anyway) and, when `reuse` is given, copies cached candidate
/// sets for every node whose whole subtree carries the same modes as the
/// cached run instead of recomputing them.
///
/// Bit-identical to the uncached path at any thread count: a clean
/// subtree's sets are pure functions of unchanged inputs, so the copy
/// *is* the recomputation (enforced by `dp_suffix_proptests`). See
/// [`DpSuffixCache`] for the caller contract — only the mode vector may
/// differ between the cached and the reusing run.
///
/// # Panics
///
/// Panics if `modes.len() != topo.nodes.len()` (a caller bug, not a
/// data-dependent failure).
pub fn try_run_dp_suffix_cached(
    topo: &ClockTopo,
    tech: &Technology,
    cfg: &DpConfig,
    modes: &[Mode],
    cancel: Option<&CancelToken>,
    reuse: Option<&DpSuffixCache>,
) -> Result<(DpResult, DpSuffixCache), CtsError> {
    let (res, arena) = run_dp_core(topo, tech, cfg, modes, cancel, reuse)?;
    Ok((
        res,
        DpSuffixCache {
            modes: modes.to_vec(),
            arena,
        },
    ))
}

fn run_dp_core(
    topo: &ClockTopo,
    tech: &Technology,
    cfg: &DpConfig,
    modes: &[Mode],
    cancel: Option<&CancelToken>,
    reuse: Option<&DpSuffixCache>,
) -> Result<(DpResult, CandArena), CtsError> {
    assert_eq!(modes.len(), topo.nodes.len(), "mode vector arity");
    // Whole-DP span plus per-height-group progress counters; handles
    // are resolved once here so the loop body never touches the
    // registry (and is a plain `None` branch with no collector).
    let _span = dscts_telemetry::Span::enter("dp");
    let height_counters =
        dscts_telemetry::active().map(|t| (t.counter("dp.height_groups"), t.counter("dp.nodes")));
    let csr = topo.csr();
    if csr.children(0).len() != 1 {
        return Err(CtsError::InvalidTopology(format!(
            "clock root must feed exactly one trunk edge, not {}",
            csr.children(0).len()
        )));
    }
    let order = csr.order();
    let max_load = tech.max_load_ff();

    let patterns: &[Pattern] = if cfg.single_side {
        &[Pattern::Buffer, Pattern::WiringF]
    } else {
        cfg.patterns.patterns()
    };

    let n = topo.nodes.len();

    // Group non-root nodes by height; children strictly precede parents.
    let mut height = vec![0usize; n];
    let mut max_height = 0usize;
    for &id in order.iter().rev() {
        let idu = id as usize;
        let h = csr
            .children(id)
            .iter()
            .map(|&c| height[c as usize] + 1)
            .max()
            .unwrap_or(0);
        height[idu] = h;
        max_height = max_height.max(h);
    }
    // Flat CSR-style height buckets built in one counting pass (replaces a
    // `Vec<Vec<u32>>` of per-height bucket allocations); counting sort
    // keeps node ids ascending within each bucket.
    let mut height_off = vec![0u32; max_height + 2];
    for id in 1..n {
        height_off[height[id] + 1] += 1;
    }
    for i in 1..height_off.len() {
        height_off[i] += height_off[i - 1];
    }
    let mut height_nodes = vec![0u32; n.saturating_sub(1)];
    let mut cursor = height_off.clone();
    for id in 1..n {
        height_nodes[cursor[height[id]] as usize] = id as u32;
        cursor[height[id]] += 1;
    }

    // Root distances, needed only to gate the frontier cap.
    let depths: Vec<u32> = if cfg.frontier.is_some() {
        let mut d = vec![0u32; n];
        for &id in order {
            if let Some(p) = topo.nodes[id as usize].parent {
                d[id as usize] = d[p as usize] + 1;
            }
        }
        d
    } else {
        Vec::new()
    };

    // Suffix sharing: a node is *clean* when its own mode and every
    // descendant's mode match the cached run, making its cached
    // candidate set bit-identical to what process_node would recompute.
    // Computed children-first so the check is O(n) total.
    let clean: Vec<bool> = match reuse {
        Some(cache) if cache.modes.len() == n => {
            let mut clean = vec![false; n];
            for &id in order.iter().rev() {
                let idu = id as usize;
                clean[idu] = cache.modes[idu] == modes[idu]
                    && csr.children(id).iter().all(|&c| clean[c as usize]);
            }
            clean
        }
        _ => vec![false; n],
    };
    if reuse.is_some() {
        if let Some(t) = dscts_telemetry::active() {
            t.counter("dp.suffix_reused")
                .add(clean.iter().skip(1).filter(|&&c| c).count() as u64);
        }
    }

    let ctx = DpCtx {
        topo,
        tech,
        cfg,
        patterns,
        csr,
        modes,
        depths: &depths,
    };
    let mut arena = CandArena::with_nodes(n);
    for h in 0..=max_height {
        // Budget checkpoint between height groups: the DP is the long
        // loop of the insertion stage, and a group boundary is the only
        // place where stopping leaves no half-written arena state.
        if let Some(token) = cancel {
            token.check("dp")?;
        }
        let group = &height_nodes[height_off[h] as usize..height_off[h + 1] as usize];
        if let Some((groups, nodes)) = &height_counters {
            groups.incr();
            nodes.add(group.len() as u64);
        }
        let results: Vec<(u32, Result<Vec<Work>, CtsError>)> = group
            .par_iter()
            .map(|&id| {
                // Clean subtree: lift the cached set instead of
                // recomputing (bit-identical — see the clean[] contract).
                if clean[id as usize] {
                    let cache = reuse.expect("clean nodes only exist under reuse");
                    return (id, Ok(cache.arena.node(id as usize).to_vec()));
                }
                // Panic isolation per worker closure: the rayon shim
                // re-raises worker panics on the joining thread, but
                // catching here pins the failure to the offending node's
                // computation and keeps the whole group's results typed.
                let r = catch_unwind(AssertUnwindSafe(|| process_node(id as usize, &ctx, &arena)))
                    .unwrap_or_else(|payload| {
                        Err(CtsError::Internal {
                            stage: "dp",
                            payload: crate::resilience::panic_message(payload.as_ref()),
                        })
                    });
                (id, r)
            })
            .collect();
        // Write back (and surface errors) in node order: deterministic
        // regardless of how the group was scheduled.
        for (id, r) in results {
            arena.push_set(id as usize, r?);
        }
    }

    // --- Multi-objective selection at the root. ---
    let root_edge = csr.children(0)[0] as usize;
    let buf = tech.buffer();
    let mut root_candidates = Vec::new();
    let mut root_index = Vec::new();
    for (i, c) in arena.node(root_edge).iter().enumerate() {
        // The clock source drives on the front side.
        if c.pattern.expect("stored").root_side() != Side::Front {
            continue;
        }
        if c.cap > max_load {
            continue;
        }
        root_candidates.push(RootCand {
            latency_ps: buf.delay_ps(c.cap) + c.max_d,
            skew_ps: c.max_d - c.min_d,
            buffers: c.bufs,
            ntsvs: c.ntsvs,
            cap_ff: c.cap,
        });
        root_index.push(i);
    }
    if root_candidates.is_empty() {
        return Err(CtsError::NoRootCandidate);
    }
    // invariant: the empty case returned NoRootCandidate just above.
    let chosen = root_candidates
        .iter()
        .enumerate()
        .min_by(|a, b| cfg.moes.score(a.1).total_cmp(&cfg.moes.score(b.1)))
        .map(|(i, _)| i)
        .expect("non-empty");

    // --- Top-down decision. ---
    let mut assignment: Vec<Option<Pattern>> = vec![None; n];
    let mut stack = vec![(root_edge, root_index[chosen])];
    while let Some((nid, cidx)) = stack.pop() {
        let c = &arena.node(nid)[cidx];
        assignment[nid] = c.pattern;
        for (k, &ch) in csr.children(nid as u32).iter().enumerate() {
            let ci = c.child[k];
            if ci != u32::MAX {
                stack.push((ch as usize, ci as usize));
            }
        }
    }

    let result = DpResult {
        assignment,
        root_candidates,
        chosen,
        stored_candidates: arena.works.len(),
    };
    Ok((result, arena))
}

/// Per-side dominance pruning with diversity-preserving truncation.
fn prune(cands: &mut Vec<Work>, mode: PruneMode, max_cands: usize) {
    if cands.len() <= 1 {
        return;
    }
    let mut out: Vec<Work> = Vec::with_capacity(cands.len().min(2 * max_cands));
    for side in [Side::Front, Side::Back] {
        let mut group: Vec<Work> = cands.iter().filter(|c| c.side == side).copied().collect();
        if group.is_empty() {
            continue;
        }
        group.sort_by(|a, b| {
            a.cap
                .total_cmp(&b.cap)
                .then(a.max_d.total_cmp(&b.max_d))
                .then(a.bufs.cmp(&b.bufs))
                .then(a.ntsvs.cmp(&b.ntsvs))
        });
        let mut kept: Vec<Work> = Vec::new();
        match mode {
            PruneMode::LatencyOnly => {
                let mut best = f64::INFINITY;
                for c in group {
                    if c.max_d < best - 1e-12 {
                        best = c.max_d;
                        kept.push(c);
                    }
                }
            }
            PruneMode::MultiObjective => {
                for c in group {
                    let dominated = kept.iter().any(|k| {
                        k.cap <= c.cap + 1e-12
                            && k.max_d <= c.max_d + 1e-12
                            && k.bufs <= c.bufs
                            && k.ntsvs <= c.ntsvs
                    });
                    if !dominated {
                        kept.push(c);
                    }
                }
            }
        }
        // Diversity-preserving truncation. The (cap, max_d) staircase is
        // what propagates latency optimality (van Ginneken), so it is kept
        // in full whenever it fits; the resource-diverse remainder is
        // thinned by an even stride over the delay range.
        if kept.len() > max_cands {
            let mut staircase = Vec::new();
            let mut rest = Vec::new();
            let mut best = f64::INFINITY;
            for c in kept {
                if c.max_d < best - 1e-12 {
                    best = c.max_d;
                    staircase.push(c);
                } else {
                    rest.push(c);
                }
            }
            let stride = |mut v: Vec<Work>, budget: usize| -> Vec<Work> {
                if v.len() <= budget {
                    return v;
                }
                if budget == 0 {
                    return Vec::new();
                }
                v.sort_by(|a, b| a.max_d.total_cmp(&b.max_d));
                let m = v.len();
                let mut pick: Vec<Work> = Vec::with_capacity(budget);
                let mut last = usize::MAX;
                for i in 0..budget {
                    let j = if budget == 1 {
                        0
                    } else {
                        i * (m - 1) / (budget - 1)
                    };
                    if j != last {
                        pick.push(v[j]);
                        last = j;
                    }
                }
                pick
            };
            if staircase.len() >= max_cands {
                kept = stride(staircase, max_cands);
            } else {
                let budget = max_cands - staircase.len();
                staircase.extend(stride(rest, budget));
                kept = staircase;
            }
        }
        out.extend(kept);
    }
    *cands = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::HierarchicalRouter;
    use dscts_netlist::BenchmarkSpec;
    use dscts_tech::Technology;

    fn small_topo() -> (ClockTopo, Technology) {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(20_000);
        (topo, tech)
    }

    #[test]
    fn dp_produces_full_assignment() {
        let (topo, tech) = small_topo();
        let res = run_dp(&topo, &tech, &DpConfig::default());
        assert!(res.assignment[0].is_none());
        for (i, a) in res.assignment.iter().enumerate().skip(1) {
            assert!(a.is_some(), "edge {i} unassigned");
        }
        assert!(!res.root_candidates.is_empty());
        assert!(res.chosen < res.root_candidates.len());
    }

    #[test]
    fn assignment_satisfies_connectivity() {
        let (topo, tech) = small_topo();
        let res = run_dp(&topo, &tech, &DpConfig::default());
        let csr = topo.csr();
        for v in 0..topo.nodes.len() {
            for &c in csr.children(v as u32) {
                let child_pat = res.assignment[c as usize].unwrap();
                let vertex_side = if v == 0 {
                    Side::Front
                } else {
                    res.assignment[v].unwrap().sink_side()
                };
                assert_eq!(
                    child_pat.root_side(),
                    vertex_side,
                    "side mismatch at vertex {v}"
                );
            }
        }
        // Leaf edges end on the front side.
        for (i, node) in topo.nodes.iter().enumerate() {
            if node.star.is_some() {
                assert_eq!(res.assignment[i].unwrap().sink_side(), Side::Front);
            }
        }
    }

    #[test]
    fn single_side_uses_only_front_patterns() {
        let (topo, tech) = small_topo();
        let cfg = DpConfig {
            single_side: true,
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        for a in res.assignment.iter().flatten() {
            assert!(matches!(a, Pattern::Buffer | Pattern::WiringF));
        }
        for c in &res.root_candidates {
            assert_eq!(c.ntsvs, 0);
        }
    }

    #[test]
    fn double_side_beats_single_side_latency() {
        let (topo, tech) = small_topo();
        let min_lat = |cands: &[RootCand]| {
            cands
                .iter()
                .map(|c| c.latency_ps)
                .fold(f64::INFINITY, f64::min)
        };
        let ds = run_dp(&topo, &tech, &DpConfig::default());
        let ss = run_dp(
            &topo,
            &tech,
            &DpConfig {
                single_side: true,
                ..DpConfig::default()
            },
        );
        let (dl, sl) = (min_lat(&ds.root_candidates), min_lat(&ss.root_candidates));
        assert!(
            dl < sl,
            "double-side min latency {dl} should beat single-side {sl}"
        );
    }

    #[test]
    fn intra_side_rule_yields_no_ntsvs() {
        let (topo, tech) = small_topo();
        let cfg = DpConfig {
            mode_rule: ModeRule::AllIntraSide,
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        assert!(res.root_candidates.iter().all(|c| c.ntsvs == 0));
    }

    #[test]
    fn fanout_threshold_interpolates() {
        let (topo, tech) = small_topo();
        let full = run_dp(&topo, &tech, &DpConfig::default());
        let tight = run_dp(
            &topo,
            &tech,
            &DpConfig {
                mode_rule: ModeRule::FanoutThreshold(1),
                ..DpConfig::default()
            },
        );
        // Threshold 1 puts everything except the designer-level top net
        // intra-side, so nTSV usage collapses toward the top-net minimum.
        let max_ntsvs = |r: &DpResult| r.root_candidates.iter().map(|c| c.ntsvs).max().unwrap();
        assert!(max_ntsvs(&tight) < max_ntsvs(&full));
        // Full mode finds nTSV-bearing candidates.
        assert!(full.root_candidates.iter().any(|c| c.ntsvs > 0));
        // AllIntraSide remains strictly front/back-side-free.
        let none = run_dp(
            &topo,
            &tech,
            &DpConfig {
                mode_rule: ModeRule::AllIntraSide,
                ..DpConfig::default()
            },
        );
        assert!(none.root_candidates.iter().all(|c| c.ntsvs == 0));
    }

    #[test]
    fn dp_with_precomputed_modes_matches_rule_path() {
        let (topo, tech) = small_topo();
        for rule in [
            ModeRule::AllFull,
            ModeRule::AllIntraSide,
            ModeRule::FanoutThreshold(64),
        ] {
            let cfg = DpConfig {
                mode_rule: rule,
                ..DpConfig::default()
            };
            let via_rule = try_run_dp(&topo, &tech, &cfg).unwrap();
            let modes = mode_vector(&topo, rule);
            let via_modes = try_run_dp_with_modes(&topo, &tech, &cfg, &modes).unwrap();
            assert_eq!(via_rule.assignment, via_modes.assignment);
            assert_eq!(via_rule.root_candidates, via_modes.root_candidates);
            assert_eq!(via_rule.chosen, via_modes.chosen);
        }
        // The explicit vector overrides whatever rule the config carries.
        let all_intra = mode_vector(&topo, ModeRule::AllIntraSide);
        let forced = try_run_dp_with_modes(&topo, &tech, &DpConfig::default(), &all_intra).unwrap();
        assert!(forced.root_candidates.iter().all(|c| c.ntsvs == 0));
    }

    #[test]
    fn mode_vector_respects_threshold_and_top_net() {
        let (topo, _) = small_topo();
        let fanout = topo.fanout();
        let total = fanout[0];
        let modes = mode_vector(&topo, ModeRule::FanoutThreshold(30));
        for (i, &m) in modes.iter().enumerate() {
            let expect = if fanout[i] < 30 || fanout[i] == total {
                Mode::Full
            } else {
                Mode::IntraSide
            };
            assert_eq!(m, expect, "node {i} fanout {}", fanout[i]);
        }
        assert!(modes.contains(&Mode::IntraSide));
    }

    #[test]
    fn moes_weights_steer_selection() {
        let (topo, tech) = small_topo();
        let latency_first = run_dp(
            &topo,
            &tech,
            &DpConfig {
                moes: MoesWeights {
                    alpha: 1.0,
                    beta: 0.0,
                    gamma: 0.0,
                    delta: 0.0,
                },
                ..DpConfig::default()
            },
        );
        let resource_first = run_dp(
            &topo,
            &tech,
            &DpConfig {
                moes: MoesWeights {
                    alpha: 0.0,
                    beta: 100.0,
                    gamma: 100.0,
                    delta: 0.0,
                },
                ..DpConfig::default()
            },
        );
        let lat_pick = latency_first.root_candidates[latency_first.chosen];
        let res_pick = resource_first.root_candidates[resource_first.chosen];
        assert!(lat_pick.latency_ps <= res_pick.latency_ps + 1e-9);
        assert!(
            res_pick.buffers + res_pick.ntsvs <= lat_pick.buffers + lat_pick.ntsvs,
            "resource-first pick should not use more resources"
        );
    }

    #[test]
    fn latency_only_prune_preserves_min_latency() {
        let (topo, tech) = small_topo();
        let mo = run_dp(&topo, &tech, &DpConfig::default());
        let lo = run_dp(
            &topo,
            &tech,
            &DpConfig {
                prune: PruneMode::LatencyOnly,
                max_cands: 256,
                ..DpConfig::default()
            },
        );
        let min = |r: &DpResult| {
            r.root_candidates
                .iter()
                .map(|c| c.latency_ps)
                .fold(f64::INFINITY, f64::min)
        };
        // Multi-objective pruning (with truncation) must not lose more than
        // a whisker of latency optimality.
        assert!(
            min(&mo) <= min(&lo) * 1.05 + 1e-9,
            "multi-objective min latency {} vs latency-only {}",
            min(&mo),
            min(&lo)
        );
    }

    #[test]
    fn frontier_none_is_bit_identical_and_cap_shrinks_memory() {
        let (topo, tech) = small_topo();
        let base = run_dp(&topo, &tech, &DpConfig::default());
        let explicit_none = run_dp(
            &topo,
            &tech,
            &DpConfig {
                frontier: None,
                ..DpConfig::default()
            },
        );
        assert_eq!(base.assignment, explicit_none.assignment);
        assert_eq!(base.root_candidates, explicit_none.root_candidates);
        assert_eq!(base.chosen, explicit_none.chosen);
        assert_eq!(base.stored_candidates, explicit_none.stored_candidates);
        // A cap wider than max_cands changes nothing either.
        let loose = run_dp(
            &topo,
            &tech,
            &DpConfig {
                frontier: Some(1 << 20),
                ..DpConfig::default()
            },
        );
        assert_eq!(base.assignment, loose.assignment);
        assert_eq!(base.stored_candidates, loose.stored_candidates);
        // On a shallow topology (max depth within
        // FRONTIER_FULL_DIVERSITY_DEPTH) even a tight cap never engages:
        // the run stays bit-identical, not merely equivalent.
        let tight = run_dp(
            &topo,
            &tech,
            &DpConfig {
                frontier: Some(8),
                ..DpConfig::default()
            },
        );
        assert_eq!(base.assignment, tight.assignment);
        assert_eq!(base.stored_candidates, tight.stored_candidates);
        // A finer subdivision drives the trunk chains past the
        // full-diversity depth; there the tight cap bounds the
        // stored-candidate footprint but still produces a complete,
        // feasible assignment.
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let mut deep_topo = HierarchicalRouter::new().route(&d, &tech);
        deep_topo.subdivide(2_000);
        let deep_base = run_dp(&deep_topo, &tech, &DpConfig::default());
        let deep_tight = run_dp(
            &deep_topo,
            &tech,
            &DpConfig {
                frontier: Some(8),
                ..DpConfig::default()
            },
        );
        assert!(
            deep_tight.stored_candidates < deep_base.stored_candidates,
            "cap 8 should store fewer candidates on deep chains ({} vs {})",
            deep_tight.stored_candidates,
            deep_base.stored_candidates
        );
        for a in deep_tight.assignment.iter().skip(1) {
            assert!(a.is_some());
        }
    }

    #[test]
    fn root_candidate_diversity_in_double_side() {
        // Fig. 10's premise: the double-side root set spans a wider
        // resource range than the single-side one.
        let (topo, tech) = small_topo();
        let ds = run_dp(&topo, &tech, &DpConfig::default());
        let spread = |cands: &[RootCand]| {
            let lo = cands.iter().map(|c| c.buffers + c.ntsvs).min().unwrap();
            let hi = cands.iter().map(|c| c.buffers + c.ntsvs).max().unwrap();
            hi - lo
        };
        assert!(
            spread(&ds.root_candidates) > 0,
            "double-side root set should trade resources"
        );
    }
}
