//! The synthesized double-side clock tree and its evaluation.
//!
//! A [`SynthesizedTree`] is a routed [`ClockTopo`] whose trunk edges carry
//! [`Pattern`]s (the DP's output) plus optional skew-refinement buffers at
//! the low-level centroids (§III-D). Evaluation walks the tree twice —
//! bottom-up for effective capacitances (buffers shield, nTSVs do not),
//! top-down for arrivals — under either the L-type Elmore model used inside
//! the DP or the NLDM + slew-propagation model used for final sign-off
//! numbers (§IV-A).

use crate::error::CtsError;
use crate::pattern::Pattern;
use crate::tree::ClockTopo;
use dscts_geom::Point;
use dscts_tech::{Side, Technology};
use dscts_timing::{wire_slew, ArrivalStats};
use std::fmt;

/// Delay model used by [`SynthesizedTree::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalModel {
    /// L-type Elmore everywhere; linearised buffer delay. Matches the DP's
    /// internal arithmetic exactly.
    #[default]
    Elmore,
    /// NLDM table lookup for buffer delay/output-slew, PERI slew
    /// propagation along wires; wire delay remains Elmore.
    Nldm,
}

/// Quality metrics of a synthesized tree (one row of Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeMetrics {
    /// Max source-to-sink delay (ps), including the root driver.
    pub latency_ps: f64,
    /// Max minus min sink arrival (ps).
    pub skew_ps: f64,
    /// Total buffers: root driver + pattern buffers + refinement buffers.
    pub buffers: u32,
    /// Total nTSVs.
    pub ntsvs: u32,
    /// Total clock wirelength (nm), electrical (includes balancing snake
    /// wire).
    pub wirelength_nm: i64,
    /// Trunk wirelength only (nm) — the inter-buffer "clock net" metal,
    /// the paper's Clk WL granularity.
    pub trunk_wirelength_nm: i64,
    /// Total switched capacitance of the clock network (fF): wires, sink
    /// pins, buffer inputs and nTSVs. The clock toggles every cycle, so
    /// dynamic clock power is `C·V²·f` over this capacitance.
    pub switched_cap_ff: f64,
    /// Cell area of all inserted buffers and nTSVs (nm²).
    pub cell_area_nm2: i64,
    /// Worst transition time at any sink (ps).
    pub max_sink_slew_ps: f64,
    /// Per-sink arrival times (ps), indexed by global sink id.
    pub arrivals: Vec<f64>,
}

impl TreeMetrics {
    /// Summary statistics over the arrivals.
    pub fn stats(&self) -> ArrivalStats {
        ArrivalStats::from_arrivals(self.arrivals.iter().copied()).expect("non-empty arrivals")
    }

    /// Dynamic clock-network power `C·V²·f` in µW — fF · V² · GHz = µW
    /// (the clock switches its full capacitance every cycle; no activity
    /// derating).
    pub fn clock_power_uw(&self, vdd_v: f64, freq_ghz: f64) -> f64 {
        self.switched_cap_ff * vdd_v * vdd_v * freq_ghz
    }
}

impl fmt::Display for TreeMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency {:.3} ps | skew {:.3} ps | buffers {} | nTSVs {} | WL {:.3}e6 nm",
            self.latency_ps,
            self.skew_ps,
            self.buffers,
            self.ntsvs,
            self.wirelength_nm as f64 / 1e6
        )
    }
}

/// A clock tree with patterns assigned to every trunk edge.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizedTree {
    /// The routed geometry.
    pub topo: ClockTopo,
    /// Pattern of each trunk node's incoming edge (`None` for node 0).
    pub patterns: Vec<Option<Pattern>>,
    /// Per-star flag: a skew-refinement buffer drives this leaf star.
    pub star_buffers: Vec<bool>,
    /// Drive-strength scale of the buffer embedded in each edge (1.0 =
    /// the library cell as inserted; adjusted by [`crate::sizing`]).
    pub buffer_scales: Vec<f64>,
}

impl SynthesizedTree {
    /// Wraps a routed topology with a pattern assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment arity disagrees with the topology.
    pub fn new(topo: ClockTopo, patterns: Vec<Option<Pattern>>) -> Self {
        assert_eq!(topo.nodes.len(), patterns.len(), "assignment arity");
        let star_buffers = vec![false; topo.stars.len()];
        let buffer_scales = vec![1.0; topo.nodes.len()];
        SynthesizedTree {
            topo,
            patterns,
            star_buffers,
            buffer_scales,
        }
    }

    /// Buffers inserted by patterns and refinement (excluding root driver).
    pub fn inserted_buffers(&self) -> u32 {
        self.patterns
            .iter()
            .flatten()
            .map(|p| p.buffers())
            .sum::<u32>()
            + self.star_buffers.iter().filter(|&&b| b).count() as u32
    }

    /// Total nTSVs inserted by patterns.
    pub fn inserted_ntsvs(&self) -> u32 {
        self.patterns.iter().flatten().map(|p| p.ntsvs()).sum()
    }

    /// Placement sites of all buffers (root driver first, then mid-edge
    /// pattern buffers, then refinement buffers at centroids).
    pub fn buffer_sites(&self) -> Vec<Point> {
        let mut sites = vec![self.topo.nodes[0].pos];
        for (i, p) in self.patterns.iter().enumerate() {
            if p.is_some_and(|p| p.buffers() > 0) {
                let n = &self.topo.nodes[i];
                let ppos = self.topo.nodes[n.parent.expect("non-root") as usize].pos;
                let half = ppos.manhattan(n.pos) / 2;
                sites.push(ppos.walk_toward(n.pos, half));
            }
        }
        for (s, &has) in self.topo.stars.iter().zip(&self.star_buffers) {
            if has {
                sites.push(self.topo.nodes[s.node as usize].pos);
            }
        }
        sites
    }

    /// Placement sites of all nTSVs (at the edge endpoints that flip side).
    pub fn ntsv_sites(&self) -> Vec<Point> {
        let mut sites = Vec::new();
        for (i, p) in self.patterns.iter().enumerate() {
            let Some(p) = *p else { continue };
            let n = &self.topo.nodes[i];
            let ppos = self.topo.nodes[n.parent.expect("non-root") as usize].pos;
            match p {
                Pattern::Ntsv1 => {
                    sites.push(ppos);
                    sites.push(n.pos);
                }
                Pattern::Ntsv2 => sites.push(n.pos),
                Pattern::Ntsv3 => sites.push(ppos),
                Pattern::BufNtsv | Pattern::NtsvBuf => {
                    let half = ppos.manhattan(n.pos) / 2;
                    sites.push(ppos.walk_toward(n.pos, half));
                }
                _ => {}
            }
        }
        sites
    }

    /// Checks the connectivity (side-consistency) constraint of §III-C:
    /// every shared vertex has a single side, leaf stars and the clock root
    /// are on the front side.
    pub fn validate_sides(&self) -> Result<(), String> {
        let csr = self.topo.csr();
        for v in 0..self.topo.nodes.len() {
            let vertex_side = if v == 0 {
                Side::Front
            } else {
                match self.patterns[v] {
                    Some(p) => p.sink_side(),
                    None => return Err(format!("edge into node {v} unassigned")),
                }
            };
            if self.topo.nodes[v].star.is_some() && vertex_side != Side::Front {
                return Err(format!("leaf centroid {v} not on the front side"));
            }
            for &c in csr.children(v as u32) {
                let cp = self.patterns[c as usize]
                    .ok_or_else(|| format!("edge into node {c} unassigned"))?;
                if cp.root_side() != vertex_side {
                    return Err(format!(
                        "vertex {v}: child edge {c} starts on {} but vertex is {}",
                        cp.root_side(),
                        vertex_side
                    ));
                }
            }
        }
        Ok(())
    }

    /// Evaluates latency, skew, resource usage and wirelength.
    ///
    /// # Panics
    ///
    /// Panics if any edge lacks a pattern, or if an assigned pattern is
    /// electrically infeasible under `tech`. The latter cannot happen
    /// under the technology the DP selected the patterns with, but *can*
    /// under a different (derated corner) technology — use
    /// [`SynthesizedTree::try_evaluate`] there.
    pub fn evaluate(&self, tech: &Technology, model: EvalModel) -> TreeMetrics {
        self.try_evaluate(tech, model)
            .expect("chosen pattern feasible")
    }

    /// Fallible [`SynthesizedTree::evaluate`]: reports a typed
    /// [`CtsError::NoFeasiblePattern`] naming the offending edge when an
    /// assigned pattern is electrically infeasible under `tech`.
    ///
    /// This is the corner sign-off case: a derated corner raises wire
    /// and pin capacitances, so a pattern the DP chose right up against
    /// its buffer's max-load budget at nominal can overload that buffer
    /// at the corner. Corner-evaluation paths must treat this as a
    /// data-dependent infeasibility (it is recoverable — relaxations
    /// change the pattern assignment), not as a crash.
    ///
    /// # Panics
    ///
    /// Panics if any edge lacks a pattern (a structural invariant,
    /// independent of `tech`).
    pub fn try_evaluate(
        &self,
        tech: &Technology,
        model: EvalModel,
    ) -> Result<TreeMetrics, CtsError> {
        let topo = &self.topo;
        let csr = topo.csr();
        let order = csr.order();
        let rc_front = tech.rc(Side::Front);
        let buf = tech.buffer();

        // Star loads (and whether a refinement buffer shields them).
        let n = topo.nodes.len();
        let star_load = star_loads(topo, tech);

        // Bottom-up: effective capacitance at each vertex.
        let mut cap = vec![0.0f64; n];
        for &v in order.iter().rev() {
            let vu = v as usize;
            if let Some(si) = topo.nodes[vu].star {
                cap[vu] += if self.star_buffers[si as usize] {
                    buf.input_cap_ff()
                } else {
                    star_load[si as usize]
                };
            }
            for &c in csr.children(v) {
                let cu = c as usize;
                let p = self.patterns[cu].expect("assigned pattern");
                let ev = p
                    .eval_scaled(
                        topo.nodes[cu].edge_len,
                        cap[cu],
                        tech,
                        self.buffer_scales[cu],
                    )
                    .ok_or(CtsError::NoFeasiblePattern {
                        node: c,
                        edge_len_nm: topo.nodes[cu].edge_len,
                    })?;
                cap[vu] += ev.up_cap_ff;
            }
        }

        // Top-down: arrival and slew at each vertex.
        let mut arr = vec![0.0f64; n];
        let mut slew = vec![0.0f64; n];
        let nominal = buf.nominal_slew_ps();
        arr[0] = match model {
            EvalModel::Elmore => buf.delay_ps(cap[0]),
            EvalModel::Nldm => buf.delay_nldm_ps(nominal, cap[0]),
        };
        slew[0] = buf.output_slew_ps(nominal, cap[0]);
        for &v in order {
            let vu = v as usize;
            for &c in csr.children(v) {
                let cu = c as usize;
                let p = self.patterns[cu].expect("assigned pattern");
                // Identical call to the bottom-up pass (the cap vector is
                // fixed by now), which already vetted feasibility.
                let ev = p
                    .eval_scaled(
                        topo.nodes[cu].edge_len,
                        cap[cu],
                        tech,
                        self.buffer_scales[cu],
                    )
                    .expect("feasibility vetted bottom-up");
                match (model, ev.stage) {
                    (EvalModel::Elmore, _) => {
                        arr[cu] = arr[vu] + ev.delay_ps;
                        slew[cu] = wire_slew(slew[vu], ev.delay_ps);
                    }
                    (EvalModel::Nldm, None) => {
                        arr[cu] = arr[vu] + ev.delay_ps;
                        slew[cu] = wire_slew(slew[vu], ev.delay_ps);
                    }
                    (EvalModel::Nldm, Some(st)) => {
                        let slew_in = wire_slew(slew[vu], st.pre_delay_ps);
                        let d_buf = buf.delay_nldm_ps(slew_in, st.load_ff);
                        arr[cu] = arr[vu] + st.pre_delay_ps + d_buf + st.post_delay_ps;
                        slew[cu] =
                            wire_slew(buf.output_slew_ps(slew_in, st.load_ff), st.post_delay_ps);
                    }
                }
            }
        }

        // Sinks: through the star (and the refinement buffer when present).
        let mut arrivals = vec![0.0f64; topo.sink_pos.len()];
        let mut max_sink_slew = 0.0f64;
        for (si, s) in topo.stars.iter().enumerate() {
            let v = s.node as usize;
            let mut base = arr[v];
            let mut base_slew = slew[v];
            if self.star_buffers[si] {
                let slew_in = slew[v];
                base += match model {
                    EvalModel::Elmore => buf.delay_ps(star_load[si]),
                    EvalModel::Nldm => buf.delay_nldm_ps(slew_in, star_load[si]),
                };
                base_slew = buf.output_slew_ps(slew_in, star_load[si]);
            }
            for (&sk, &len) in s.sinks.iter().zip(&s.branch_len) {
                let d = rc_front.res(len) * (rc_front.cap(len) + topo.sink_cap[sk as usize]);
                arrivals[sk as usize] = base + d;
                max_sink_slew = max_sink_slew.max(wire_slew(base_slew, d));
            }
        }

        let res = resources(self, tech);
        let stats = ArrivalStats::from_arrivals(arrivals.iter().copied())
            .expect("designs have at least one sink");
        Ok(TreeMetrics {
            latency_ps: stats.latency(),
            skew_ps: stats.skew(),
            buffers: res.buffers,
            ntsvs: res.ntsvs,
            wirelength_nm: topo.total_wirelength(),
            trunk_wirelength_nm: topo.trunk_wirelength(),
            switched_cap_ff: res.switched_cap_ff,
            cell_area_nm2: res.cell_area_nm2,
            max_sink_slew_ps: max_sink_slew,
            arrivals,
        })
    }
}

/// Per-star load capacitance: branch wire plus sink pins, in sink order.
/// Shared by [`SynthesizedTree::evaluate`] and
/// [`crate::incremental::IncrementalEval`] so both sum in the same order
/// (bit-identical floats).
pub(crate) fn star_loads(topo: &ClockTopo, tech: &Technology) -> Vec<f64> {
    let rc_front = tech.rc(Side::Front);
    topo.stars
        .iter()
        .map(|s| {
            s.sinks
                .iter()
                .zip(&s.branch_len)
                .map(|(&sk, &len)| rc_front.cap(len) + topo.sink_cap[sk as usize])
                .sum()
        })
        .collect()
}

/// Resource/capacitance summary of a synthesized tree (the arrival-
/// independent half of [`TreeMetrics`]).
pub(crate) struct Resources {
    pub buffers: u32,
    pub ntsvs: u32,
    pub switched_cap_ff: f64,
    pub cell_area_nm2: i64,
}

/// Switched capacitance and cell area of the whole network. Shared by the
/// batch and incremental evaluators: a single summation order keeps their
/// metrics bit-identical.
pub(crate) fn resources(tree: &SynthesizedTree, tech: &Technology) -> Resources {
    let topo = &tree.topo;
    let buf = tech.buffer();
    let rc_front = tech.rc(Side::Front);
    let mut switched_cap = buf.input_cap_ff(); // root driver input pin
    let (bw, bh) = buf.footprint_nm();
    let (vw, vh) = tech.ntsv().footprint_nm();
    let buffers = 1 + tree.inserted_buffers();
    let ntsvs = tree.inserted_ntsvs();
    let cell_area_nm2 = buffers as i64 * bw * bh + ntsvs as i64 * vw * vh;
    switched_cap +=
        f64::from(buffers - 1) * buf.input_cap_ff() + f64::from(ntsvs) * tech.ntsv().cap_ff();
    for (i, p) in tree.patterns.iter().enumerate() {
        if let Some(p) = p {
            switched_cap += p.wire_cap_ff(topo.nodes[i].edge_len, tech);
        }
    }
    for s in &topo.stars {
        for (&sk, &len) in s.sinks.iter().zip(&s.branch_len) {
            switched_cap += rc_front.cap(len) + topo.sink_cap[sk as usize];
        }
    }
    Resources {
        buffers,
        ntsvs,
        switched_cap_ff: switched_cap,
        cell_area_nm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{run_dp, DpConfig};
    use crate::route::HierarchicalRouter;
    use dscts_netlist::BenchmarkSpec;

    fn synth(single_side: bool) -> (SynthesizedTree, Technology) {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(20_000);
        let cfg = DpConfig {
            single_side,
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        (SynthesizedTree::new(topo, res.assignment), tech)
    }

    #[test]
    fn synthesized_tree_is_legal_and_evaluates() {
        let (tree, tech) = synth(false);
        assert_eq!(tree.validate_sides(), Ok(()));
        let m = tree.evaluate(&tech, EvalModel::Elmore);
        assert!(m.latency_ps > 0.0);
        assert!(m.skew_ps >= 0.0);
        assert!(m.buffers >= 1);
        assert_eq!(m.arrivals.len(), 1056);
        assert!(m.latency_ps < 1_000.0, "latency {} ps absurd", m.latency_ps);
    }

    #[test]
    fn dp_root_latency_matches_evaluator() {
        // The DP's internal latency bookkeeping must agree with the
        // independent tree evaluation under the same (Elmore) model.
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(20_000);
        let res = run_dp(&topo, &tech, &DpConfig::default());
        let picked = res.root_candidates[res.chosen];
        let tree = SynthesizedTree::new(topo, res.assignment);
        let m = tree.evaluate(&tech, EvalModel::Elmore);
        assert!(
            (m.latency_ps - picked.latency_ps).abs() < 0.5,
            "DP {} vs eval {}",
            picked.latency_ps,
            m.latency_ps
        );
        assert_eq!(m.buffers, picked.buffers + 1); // + root driver
        assert_eq!(m.ntsvs, picked.ntsvs);
    }

    #[test]
    fn nldm_eval_is_close_to_elmore_at_nominal() {
        let (tree, tech) = synth(false);
        let e = tree.evaluate(&tech, EvalModel::Elmore);
        let n = tree.evaluate(&tech, EvalModel::Nldm);
        let rel = (e.latency_ps - n.latency_ps).abs() / e.latency_ps;
        assert!(
            rel < 0.25,
            "Elmore {} vs NLDM {}",
            e.latency_ps,
            n.latency_ps
        );
        assert_eq!(e.buffers, n.buffers);
    }

    #[test]
    fn star_buffer_shields_and_delays() {
        let (mut tree, tech) = synth(false);
        let before = tree.evaluate(&tech, EvalModel::Elmore);
        // Find the star whose sinks arrive earliest and buffer it.
        let earliest = {
            let mut best = (0usize, f64::INFINITY);
            for (si, s) in tree.topo.stars.iter().enumerate() {
                let a = before.arrivals[s.sinks[0] as usize];
                if a < best.1 {
                    best = (si, a);
                }
            }
            best.0
        };
        tree.star_buffers[earliest] = true;
        let after = tree.evaluate(&tech, EvalModel::Elmore);
        assert_eq!(after.buffers, before.buffers + 1);
        let s0 = tree.topo.stars[earliest].sinks[0] as usize;
        assert!(after.arrivals[s0] > before.arrivals[s0]);
    }

    #[test]
    fn sites_are_consistent_with_counts() {
        let (tree, tech) = synth(false);
        let m = tree.evaluate(&tech, EvalModel::Elmore);
        assert_eq!(tree.buffer_sites().len() as u32, m.buffers);
        // P7/P8 collapse two ends to one site; base patterns do not.
        assert_eq!(tree.ntsv_sites().len() as u32, m.ntsvs);
    }

    #[test]
    fn validate_sides_catches_corruption() {
        let (mut tree, _) = synth(false);
        // Force a back-side wire directly under the (front) root vertex.
        let root_child = tree.topo.csr().children(0)[0] as usize;
        tree.patterns[root_child] = Some(Pattern::WiringB);
        assert!(tree.validate_sides().is_err());
    }

    #[test]
    fn single_side_tree_has_no_ntsvs() {
        let (tree, tech) = synth(true);
        let m = tree.evaluate(&tech, EvalModel::Elmore);
        assert_eq!(m.ntsvs, 0);
        assert!(tree.ntsv_sites().is_empty());
    }

    #[test]
    fn metrics_display_is_readable() {
        let (tree, tech) = synth(true);
        let m = tree.evaluate(&tech, EvalModel::Elmore);
        let s = m.to_string();
        assert!(s.contains("latency") && s.contains("nTSVs"));
    }
}
