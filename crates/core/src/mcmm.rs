//! Multi-corner multi-mode (MCMM) evaluation and robust optimization.
//!
//! The paper optimizes skew/latency/resources under a single nominal
//! delay model, but real double-side CTS sign-off is multi-corner:
//! front/back RC, nTSV and buffer delays derate differently across PVT
//! corners (`dscts_tech::CornerSet`), and a tree sized at nominal can be
//! badly skewed at SS. This module makes every optimizer and sweep built
//! on the incremental engine corner-aware through one new subsystem:
//!
//! * [`MultiCornerEval`] — K resident [`crate::IncrementalEval`]-style
//!   evaluation states (one per corner, sharing the per-corner derated
//!   technologies a [`CornerSet`] owns) over the **same**
//!   [`SynthesizedTree`]. Every mutation
//!   ([`MultiCornerEval::set_buffer_scale`],
//!   [`MultiCornerEval::set_pattern`],
//!   [`MultiCornerEval::set_star_buffer`]) writes the knob once and fans
//!   the dirty-path repair out to all corners — each corner walks *its
//!   own* dirty ancestor path and subtree (early stops differ per corner
//!   because shielding is electrical), never a full re-evaluate — under a
//!   **single shared undo journal** whose entries are corner-tagged, so
//!   one [`MultiCornerEval::mark`]/[`MultiCornerEval::undo_to`] pair
//!   reverts the knob and every corner atomically. A mutation that is
//!   infeasible in *any* corner rolls the whole fan-out back and returns
//!   `false`.
//! * [`RobustObjective`] — which cross-corner reduction the evaluator's
//!   *objective view* (the [`TrialEval`] surface the optimization passes
//!   score with) reports: the nominal corner, or the component-wise
//!   worst corner (minimax). Running any [`crate::opt`] schedule through
//!   [`crate::opt::PassManager::run_corners`] therefore optimizes
//!   worst-corner MOES instead of nominal without changing a pass.
//! * [`RobustMetrics`] / [`CornerReport`] — cross-corner summaries:
//!   worst-corner latency/skew (and which corner attains them) plus the
//!   cross-corner arrival spread, an OCV proxy (the maximum over sinks
//!   of the corner-to-corner arrival range).
//!
//! # Bit-identity and cost
//!
//! Each corner state runs exactly the arithmetic of the single-corner
//! engine (they share `CornerState`), so a [`MultiCornerEval`] over a
//! single identity corner ([`CornerSet::nominal_only`]) is bit-identical
//! to [`crate::IncrementalEval`] under arbitrary interleaved mutations
//! and undos — enforced by `mcmm_proptests` for both [`EvalModel`]s.
//! A K-corner mutation costs K dirty paths (O(K·(depth + subtree))),
//! which the `mcmm_eval` criterion group shows is far cheaper than the K
//! full `evaluate()` calls a non-incremental MCMM loop would pay.

use crate::incremental::{CornerState, Entry, Journal, TrialEval};
use crate::pattern::Pattern;
use crate::resilience::{fault, CancelToken};
use crate::synth::{EvalModel, SynthesizedTree, TreeMetrics};
use dscts_geom::TreeCsr;
use dscts_tech::{CornerSet, Technology};
use rayon::prelude::*;

/// Journal tag marking a knob entry (tree mutation) rather than a
/// per-corner numeric entry.
const KNOB: u32 = u32::MAX;

/// Minimum trunk-node count before the auto gate turns the corner-parallel
/// fan-out on. Below this, a per-corner dirty path is microseconds and the
/// shim's per-call thread spawn would dominate (the C1–C5 trunks are ~1k
/// nodes); above it — the 100k+-sink scaled designs — the per-corner
/// repair work amortizes the spawn.
const PAR_FANOUT_MIN_NODES: usize = 10_000;

/// A journal adapter that tags every recorded entry with its corner.
struct TaggedJournal<'j> {
    corner: u32,
    journal: &'j mut Vec<(u32, Entry)>,
}

impl Journal for TaggedJournal<'_> {
    fn record(&mut self, e: Entry) {
        self.journal.push((self.corner, e));
    }
}

/// Which cross-corner reduction the evaluator's objective view (its
/// [`TrialEval`] surface) reports to the optimization passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RobustObjective {
    /// Score with the nominal corner only — the single-corner behaviour,
    /// with the other corners along for reporting.
    Nominal,
    /// Score with the component-wise worst corner: the maximum latency
    /// and the maximum skew over all corners (possibly attained at
    /// different corners). Minimizing a weighted sum of these minimizes
    /// an upper bound on every corner's MOES — the minimax ("robust")
    /// objective. Star-level rankings ([`TrialEval::star_earliest`],
    /// [`TrialEval::star_load`], [`TrialEval::tech`]) come from the
    /// corner currently attaining the worst skew, the one a skew-repair
    /// pass needs to fix.
    #[default]
    WorstCorner,
}

/// Cross-corner robust summary of one tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustMetrics {
    /// Maximum latency over all corners (ps).
    pub worst_latency_ps: f64,
    /// Index of the corner attaining it.
    pub worst_latency_corner: usize,
    /// Maximum skew over all corners (ps).
    pub worst_skew_ps: f64,
    /// Index of the corner attaining it.
    pub worst_skew_corner: usize,
    /// The OCV proxy: the maximum over sinks of the cross-corner arrival
    /// range `max_k arr_k − min_k arr_k` (ps). Zero for a single corner.
    pub arrival_spread_ps: f64,
}

impl RobustMetrics {
    /// Folds per-corner metrics (in corner order) into the robust
    /// summary. All corners must report the same sink count.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice or mismatched arrival arities.
    pub fn from_corner_metrics(per_corner: &[TreeMetrics]) -> RobustMetrics {
        assert!(!per_corner.is_empty(), "at least one corner");
        let (mut worst_latency_ps, mut worst_latency_corner) = (f64::NEG_INFINITY, 0);
        let (mut worst_skew_ps, mut worst_skew_corner) = (f64::NEG_INFINITY, 0);
        for (k, m) in per_corner.iter().enumerate() {
            if m.latency_ps > worst_latency_ps {
                worst_latency_ps = m.latency_ps;
                worst_latency_corner = k;
            }
            if m.skew_ps > worst_skew_ps {
                worst_skew_ps = m.skew_ps;
                worst_skew_corner = k;
            }
        }
        let n_sinks = per_corner[0].arrivals.len();
        assert!(
            per_corner.iter().all(|m| m.arrivals.len() == n_sinks),
            "corners must share the sink set"
        );
        let mut arrival_spread_ps = 0.0f64;
        for s in 0..n_sinks {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for m in per_corner {
                lo = lo.min(m.arrivals[s]);
                hi = hi.max(m.arrivals[s]);
            }
            arrival_spread_ps = arrival_spread_ps.max(hi - lo);
        }
        RobustMetrics {
            worst_latency_ps,
            worst_latency_corner,
            worst_skew_ps,
            worst_skew_corner,
            arrival_spread_ps,
        }
    }
}

/// Per-corner metrics of one finished tree plus the robust summary —
/// the optional corner report a corner-aware pipeline run attaches to
/// its [`crate::Outcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct CornerReport {
    /// Corner names, in corner order.
    pub corner_names: Vec<String>,
    /// Full metrics per corner, in corner order.
    pub per_corner: Vec<TreeMetrics>,
    /// Index of the nominal corner.
    pub nominal: usize,
    /// The cross-corner summary.
    pub robust: RobustMetrics,
}

impl CornerReport {
    /// Assembles a report from per-corner metrics (in `corners` order),
    /// folding the robust summary — the one place the report's fields
    /// are populated, shared by [`CornerReport::evaluate`] and
    /// [`MultiCornerEval::corner_report`].
    pub fn from_per_corner(corners: &CornerSet, per_corner: Vec<TreeMetrics>) -> CornerReport {
        let robust = RobustMetrics::from_corner_metrics(&per_corner);
        CornerReport {
            corner_names: corners
                .corners()
                .iter()
                .map(|c| c.name().to_owned())
                .collect(),
            per_corner,
            nominal: corners.nominal_index(),
            robust,
        }
    }

    /// Evaluates `tree` under every corner of `corners` (batch
    /// evaluation per corner) and folds the robust summary.
    ///
    /// # Panics
    ///
    /// Panics if an assigned pattern is infeasible under one of the
    /// corner technologies — possible whenever a corner derates
    /// capacitances upward; sign-off paths should use
    /// [`CornerReport::try_evaluate`] instead.
    pub fn evaluate(tree: &SynthesizedTree, corners: &CornerSet, model: EvalModel) -> CornerReport {
        CornerReport::try_evaluate(tree, corners, model).expect("tree feasible at every corner")
    }

    /// Fallible [`CornerReport::evaluate`]: a pattern the DP chose near
    /// its buffer's max-load budget at nominal can overload that buffer
    /// under a capacitance-derating corner. That is a data-dependent
    /// infeasibility of *this* tree at *this* corner, reported as the
    /// typed [`CtsError::NoFeasiblePattern`] of the first offending
    /// corner (in corner order) so callers can retry through the
    /// recovery ladder — relaxations change the pattern assignment —
    /// instead of crashing mid-sign-off.
    ///
    /// [`CtsError::NoFeasiblePattern`]: crate::CtsError::NoFeasiblePattern
    pub fn try_evaluate(
        tree: &SynthesizedTree,
        corners: &CornerSet,
        model: EvalModel,
    ) -> Result<CornerReport, crate::CtsError> {
        Ok(CornerReport::from_per_corner(
            corners,
            corners
                .techs()
                .iter()
                .map(|tech| tree.try_evaluate(tech, model))
                .collect::<Result<Vec<_>, _>>()?,
        ))
    }
}

/// Multi-corner incremental evaluator: K resident per-corner evaluation
/// states over one [`SynthesizedTree`], mutated in lockstep under a
/// single corner-tagged undo journal. See the [module docs](self).
#[derive(Debug)]
pub struct MultiCornerEval<'a> {
    tree: &'a mut SynthesizedTree,
    corners: &'a CornerSet,
    model: EvalModel,
    objective: RobustObjective,
    /// Flat trunk adjacency, shared by every corner state.
    csr: TreeCsr,
    /// One resident evaluation state per corner, in corner order.
    states: Vec<CornerState>,
    /// The shared journal: `(corner, entry)` pairs, with [`KNOB`] tagging
    /// tree-knob entries. One `mark`/`undo_to` reverts knob and all
    /// corners atomically.
    journal: Vec<(u32, Entry)>,
    /// Journal position at the start of the last mutation.
    last_mark: usize,
    /// Memoized [`MultiCornerEval::focus_corner`]: the worst-skew fold
    /// is O(corners × stars), and passes query the objective view once
    /// per star when ranking — without this cache a ranking sweep would
    /// be O(corners × stars²). Invalidated by every mutation and undo.
    focus: std::cell::Cell<Option<usize>>,
    /// Corner-parallel fan-out control: `Some(true)` forces the parallel
    /// path, `Some(false)` forces serial, `None` (default) auto-gates on
    /// tree size and thread count. See [`MultiCornerEval::with_parallel`].
    parallel: Option<bool>,
    /// Reusable per-corner scratch journals for the parallel fan-out
    /// (grow-only, so steady-state parallel mutations allocate nothing).
    scratch: Vec<Vec<Entry>>,
    /// Optional run-budget token: a deadline firing mid-move rejects the
    /// move (fully rolled back) instead of leaving corners half-repaired.
    cancel: Option<CancelToken>,
    /// Telemetry counter for corner fan-outs, resolved once at
    /// construction: the per-move hot path is a branch on `None` when no
    /// collector is installed — no atomic, no lock, no allocation (the
    /// bench crate's counting-allocator harness pins this).
    corner_evals: Option<dscts_telemetry::Counter>,
}

impl<'a> MultiCornerEval<'a> {
    /// Builds the K per-corner states with one batch-equivalent pass
    /// each, under the default [`RobustObjective::WorstCorner`] view.
    ///
    /// # Panics
    ///
    /// Panics if any edge lacks a pattern or is electrically infeasible
    /// under any corner (derated wire caps can push a marginal pattern
    /// over the buffer's load limit — exactly the failure a from-scratch
    /// [`SynthesizedTree::evaluate`] under that corner would hit).
    pub fn new(tree: &'a mut SynthesizedTree, corners: &'a CornerSet, model: EvalModel) -> Self {
        let csr = tree.topo.csr().clone();
        let states = corners
            .techs()
            .iter()
            .map(|tech| CornerState::new(tree, tech, model, &csr))
            .collect();
        MultiCornerEval {
            tree,
            corners,
            model,
            objective: RobustObjective::default(),
            csr,
            states,
            journal: Vec::new(),
            last_mark: 0,
            focus: std::cell::Cell::new(None),
            parallel: None,
            scratch: Vec::new(),
            cancel: None,
            corner_evals: dscts_telemetry::active().map(|t| t.counter("mcmm.corner_evals")),
        }
    }

    /// Sets the objective view (builder style).
    pub fn with_objective(mut self, objective: RobustObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Controls the corner-parallel mutation fan-out (builder style).
    ///
    /// The K per-corner dirty-path repairs of one mutation are independent
    /// given the shared knob write, so they can run on separate threads.
    /// `Some(true)` forces the parallel path, `Some(false)` forces the
    /// serial loop, and `None` (the default) picks automatically: parallel
    /// only when there is more than one corner, more than one thread, and
    /// the trunk is at least `PAR_FANOUT_MIN_NODES` nodes (so the repair
    /// work amortizes the per-mutation thread spawn).
    ///
    /// Both paths are bit-identical at any thread count: each corner
    /// journals into its own scratch buffer and the buffers are merged
    /// into the shared journal in corner order — exactly the order the
    /// serial loop would have produced.
    pub fn with_parallel(mut self, parallel: Option<bool>) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches (or clears) a run-budget cancellation token. Once the
    /// token trips, every subsequent mutation is rejected — knob and all
    /// corners rolled back, `false` returned — exactly like an infeasible
    /// corner, so a budgeted optimization pass winds down through its
    /// normal reject path. `None` (the default) never rejects.
    pub fn set_cancel(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Whether the next mutation will fan out in parallel.
    fn use_parallel(&self) -> bool {
        let eligible = self.states.len() > 1;
        match self.parallel {
            Some(p) => p && eligible,
            None => {
                eligible
                    && self.tree.topo.nodes.len() >= PAR_FANOUT_MIN_NODES
                    && rayon::current_num_threads() > 1
            }
        }
    }

    /// The configured objective view.
    pub fn objective(&self) -> RobustObjective {
        self.objective
    }

    /// The corner set this evaluator fans out over.
    pub fn corner_set(&self) -> &CornerSet {
        self.corners
    }

    /// Number of corners.
    pub fn corner_count(&self) -> usize {
        self.states.len()
    }

    /// The underlying tree (knobs reflect all non-undone mutations).
    pub fn tree(&self) -> &SynthesizedTree {
        self.tree
    }

    /// The delay model every corner propagates.
    pub fn model(&self) -> EvalModel {
        self.model
    }

    // --- Per-corner queries ----------------------------------------------

    /// `(latency_ps, skew_ps)` of corner `k`.
    pub fn corner_latency_skew_ps(&self, k: usize) -> (f64, f64) {
        self.states[k].latency_skew_ps()
    }

    /// Full metrics of corner `k`, bit-identical to
    /// [`SynthesizedTree::evaluate`] under that corner's technology.
    pub fn corner_metrics(&self, k: usize) -> TreeMetrics {
        self.states[k].metrics(self.tree, self.corners.tech(k))
    }

    /// Per-sink arrivals of corner `k`.
    pub fn corner_arrivals(&self, k: usize) -> &[f64] {
        self.states[k].arrivals()
    }

    // --- Cross-corner queries --------------------------------------------

    /// Component-wise worst `(latency_ps, skew_ps)` over all corners, in
    /// one fold per corner — the robust inner-loop objective.
    pub fn worst_latency_skew_ps(&self) -> (f64, f64) {
        let mut lat = f64::NEG_INFINITY;
        let mut skew = f64::NEG_INFINITY;
        for s in &self.states {
            let (l, k) = s.latency_skew_ps();
            lat = lat.max(l);
            skew = skew.max(k);
        }
        (lat, skew)
    }

    /// The corner the objective view ranks stars with: the nominal
    /// corner, or — under [`RobustObjective::WorstCorner`] — the corner
    /// currently attaining the worst skew. Memoized between mutations
    /// (see the `focus` field) so per-star objective-view queries stay
    /// O(1) after the first.
    pub fn focus_corner(&self) -> usize {
        match self.objective {
            RobustObjective::Nominal => self.corners.nominal_index(),
            RobustObjective::WorstCorner => {
                if let Some(k) = self.focus.get() {
                    return k;
                }
                let mut worst = 0;
                let mut worst_skew = f64::NEG_INFINITY;
                for (k, s) in self.states.iter().enumerate() {
                    let (_, skew) = s.latency_skew_ps();
                    if skew > worst_skew {
                        worst_skew = skew;
                        worst = k;
                    }
                }
                self.focus.set(Some(worst));
                worst
            }
        }
    }

    /// Full metrics of every corner, in corner order.
    fn per_corner_metrics(&self) -> Vec<TreeMetrics> {
        (0..self.states.len())
            .map(|k| self.corner_metrics(k))
            .collect()
    }

    /// The cross-corner robust summary of the current state (full
    /// per-corner metrics are folded, so this is a reporting call, not an
    /// inner-loop one — inner loops use
    /// [`MultiCornerEval::worst_latency_skew_ps`]).
    pub fn robust_metrics(&self) -> RobustMetrics {
        RobustMetrics::from_corner_metrics(&self.per_corner_metrics())
    }

    /// The full corner report of the current state.
    pub fn corner_report(&self) -> CornerReport {
        CornerReport::from_per_corner(self.corners, self.per_corner_metrics())
    }

    // --- Mutations -------------------------------------------------------

    /// Fans a knob mutation out to every corner: `apply(state, tech,
    /// journal)` per corner, rolling the knob and every touched corner
    /// back atomically when any corner reports infeasibility.
    ///
    /// Serially, corners repair one after another into the shared tagged
    /// journal (with an early break on the first infeasible corner). In
    /// parallel ([`MultiCornerEval::with_parallel`]), every corner repairs
    /// concurrently into its own scratch journal and the scratches are
    /// appended to the shared journal in corner order afterwards — on
    /// success the shared journal is bit-identical to the serial one, and
    /// on failure `undo_to(mark)` restores the identical pre-mutation
    /// state either way.
    fn fan_out(
        &mut self,
        mark: usize,
        apply: impl Fn(
                &mut CornerState,
                &SynthesizedTree,
                &Technology,
                EvalModel,
                &TreeCsr,
                &mut dyn Journal,
            ) -> bool
            + Sync,
    ) -> bool {
        self.focus.set(None);
        // An expired budget (or an injected MCMM fault) rejects the move
        // through the same path as an infeasible corner: the already
        // journaled knob rolls back and the caller sees `false`.
        if fault::fault_infeasible(fault::SITE_MCMM)
            || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
        {
            self.undo_to(mark);
            return false;
        }
        if let Some(counter) = &self.corner_evals {
            counter.add(self.states.len() as u64);
        }
        let mut ok = true;
        if self.use_parallel() {
            if self.scratch.len() < self.states.len() {
                self.scratch.resize_with(self.states.len(), Vec::new);
            }
            let tree = &*self.tree;
            let corners = self.corners;
            let model = self.model;
            let csr = &self.csr;
            let apply = &apply;
            let mut work: Vec<(usize, &mut CornerState, &mut Vec<Entry>, bool)> = self
                .states
                .iter_mut()
                .zip(self.scratch.iter_mut())
                .enumerate()
                .map(|(k, (state, buf))| {
                    buf.clear();
                    (k, state, buf, true)
                })
                .collect();
            work.par_iter_mut().for_each(|(k, state, buf, corner_ok)| {
                *corner_ok = apply(state, tree, corners.tech(*k), model, csr, &mut **buf);
            });
            ok = work.iter().all(|(.., corner_ok)| *corner_ok);
            drop(work);
            for (k, buf) in self.scratch.iter_mut().enumerate() {
                for e in buf.drain(..) {
                    self.journal.push((k as u32, e));
                }
            }
        } else {
            for (k, state) in self.states.iter_mut().enumerate() {
                let mut journal = TaggedJournal {
                    corner: k as u32,
                    journal: &mut self.journal,
                };
                if !apply(
                    state,
                    self.tree,
                    self.corners.tech(k),
                    self.model,
                    &self.csr,
                    &mut journal,
                ) {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            self.undo_to(mark);
        }
        ok
    }

    /// Re-sizes the buffer embedded in `edge` (a non-root trunk node) in
    /// every corner. Returns `false` — with knob and all corners rolled
    /// back — when the new scale is infeasible in *any* corner.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is 0 or `scale` is not positive.
    pub fn set_buffer_scale(&mut self, edge: usize, scale: f64) -> bool {
        assert!(edge != 0, "node 0 has no incoming edge");
        assert!(scale > 0.0, "buffer scale must be positive");
        let mark = self.journal.len();
        self.last_mark = mark;
        if self.tree.buffer_scales[edge] == scale {
            return true;
        }
        self.journal.push((
            KNOB,
            Entry::Scale(edge as u32, self.tree.buffer_scales[edge]),
        ));
        self.tree.buffer_scales[edge] = scale;
        self.fan_out(mark, |state, tree, tech, model, csr, journal| {
            state.repropagate_edge(tree, tech, model, csr, edge, journal)
        })
    }

    /// Re-assigns the pattern of `edge` (a non-root trunk node) in every
    /// corner. Side legality is *not* checked here; run
    /// [`SynthesizedTree::validate_sides`] before accepting a final tree.
    /// Returns `false` — fully rolled back — when the pattern is
    /// infeasible in *any* corner.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is 0.
    pub fn set_pattern(&mut self, edge: usize, pattern: Pattern) -> bool {
        assert!(edge != 0, "node 0 has no incoming edge");
        let mark = self.journal.len();
        self.last_mark = mark;
        if self.tree.patterns[edge] == Some(pattern) {
            return true;
        }
        self.journal
            .push((KNOB, Entry::Pattern(edge as u32, self.tree.patterns[edge])));
        self.tree.patterns[edge] = Some(pattern);
        self.fan_out(mark, |state, tree, tech, model, csr, journal| {
            state.repropagate_edge(tree, tech, model, csr, edge, journal)
        })
    }

    /// Adds or removes the skew-refinement buffer driving star `si`, in
    /// every corner. Returns `false` — fully rolled back — when the
    /// change overloads a buffer in *any* corner.
    pub fn set_star_buffer(&mut self, si: usize, on: bool) -> bool {
        let mark = self.journal.len();
        self.last_mark = mark;
        if self.tree.star_buffers[si] == on {
            return true;
        }
        self.journal.push((
            KNOB,
            Entry::StarBuffer(si as u32, self.tree.star_buffers[si]),
        ));
        self.tree.star_buffers[si] = on;
        self.fan_out(mark, |state, tree, tech, model, csr, journal| {
            state.apply_star_toggle(tree, tech, model, csr, si, journal)
        })
    }

    // --- Undo machinery --------------------------------------------------

    /// Current journal position; pass to [`MultiCornerEval::undo_to`] to
    /// revert every mutation — knob and all corners — made after this
    /// call.
    pub fn mark(&self) -> usize {
        self.journal.len()
    }

    /// Reverts all state back to `mark`: knob entries restore the tree,
    /// corner-tagged entries restore their corner's state, in reverse
    /// order — so the tree and every corner land exactly where they were.
    pub fn undo_to(&mut self, mark: usize) {
        self.focus.set(None);
        while self.journal.len() > mark {
            let (tag, e) = self.journal.pop().expect("journal non-empty");
            if tag == KNOB {
                match e {
                    Entry::Scale(edge, old) => self.tree.buffer_scales[edge as usize] = old,
                    Entry::Pattern(edge, old) => self.tree.patterns[edge as usize] = old,
                    Entry::StarBuffer(si, old) => self.tree.star_buffers[si as usize] = old,
                    _ => unreachable!("knob tag carries only knob entries"),
                }
            } else {
                self.states[tag as usize].undo_entry(e);
            }
        }
        self.last_mark = self.last_mark.min(mark);
    }

    /// Reverts the most recent mutation (no-op if it was already undone
    /// or committed).
    pub fn undo(&mut self) {
        self.undo_to(self.last_mark);
    }

    /// Accepts all mutations so far: clears the shared journal, making
    /// them permanent (undo can no longer cross this point).
    pub fn commit(&mut self) {
        self.journal.clear();
        self.last_mark = 0;
    }
}

impl TrialEval for MultiCornerEval<'_> {
    fn tree(&self) -> &SynthesizedTree {
        MultiCornerEval::tree(self)
    }
    fn model(&self) -> EvalModel {
        MultiCornerEval::model(self)
    }
    fn tech(&self) -> &Technology {
        self.corners.tech(self.focus_corner())
    }
    fn metrics(&self) -> TreeMetrics {
        self.corner_metrics(self.corners.nominal_index())
    }
    fn latency_skew_ps(&self) -> (f64, f64) {
        match self.objective {
            RobustObjective::Nominal => self.corner_latency_skew_ps(self.corners.nominal_index()),
            RobustObjective::WorstCorner => self.worst_latency_skew_ps(),
        }
    }
    fn load_at(&self, v: usize) -> f64 {
        self.states[self.focus_corner()].load_at(v)
    }
    fn star_load(&self, si: usize) -> f64 {
        self.states[self.focus_corner()].star_load(si)
    }
    fn star_earliest(&self, si: usize) -> f64 {
        self.states[self.focus_corner()].star_earliest(si)
    }
    fn buffer_scale(&self, edge: usize) -> f64 {
        self.tree.buffer_scales[edge]
    }
    fn set_buffer_scale(&mut self, edge: usize, scale: f64) -> bool {
        MultiCornerEval::set_buffer_scale(self, edge, scale)
    }
    fn set_pattern(&mut self, edge: usize, pattern: Pattern) -> bool {
        MultiCornerEval::set_pattern(self, edge, pattern)
    }
    fn set_star_buffer(&mut self, si: usize, on: bool) -> bool {
        MultiCornerEval::set_star_buffer(self, si, on)
    }
    fn mark(&self) -> usize {
        MultiCornerEval::mark(self)
    }
    fn undo_to(&mut self, mark: usize) {
        MultiCornerEval::undo_to(self, mark)
    }
    fn undo(&mut self) {
        MultiCornerEval::undo(self)
    }
    fn commit(&mut self) {
        MultiCornerEval::commit(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{run_dp, DpConfig, MoesWeights};
    use crate::route::HierarchicalRouter;
    use dscts_netlist::BenchmarkSpec;
    use dscts_tech::Technology;

    fn tree() -> (SynthesizedTree, Technology) {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(40_000);
        let cfg = DpConfig {
            moes: MoesWeights {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
                delta: 0.0,
            },
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        (SynthesizedTree::new(topo, res.assignment), tech)
    }

    #[test]
    fn per_corner_states_match_batch_per_corner() {
        let (mut t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        for model in [EvalModel::Elmore, EvalModel::Nldm] {
            let batch: Vec<TreeMetrics> = corners
                .techs()
                .iter()
                .map(|ct| t.evaluate(ct, model))
                .collect();
            let mc = MultiCornerEval::new(&mut t, &corners, model);
            for (k, b) in batch.iter().enumerate() {
                assert_eq!(&mc.corner_metrics(k), b, "corner {k}");
            }
        }
    }

    #[test]
    fn fanned_mutation_matches_batch_in_every_corner() {
        let (mut t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let edge = (1..t.topo.nodes.len())
            .find(|&i| t.patterns[i].is_some_and(|p| p.buffers() > 0))
            .expect("some buffered edge");
        let mut mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore);
        assert!(mc.set_buffer_scale(edge, 2.0));
        assert!(mc.set_star_buffer(0, true));
        let per_corner: Vec<TreeMetrics> = (0..mc.corner_count())
            .map(|k| mc.corner_metrics(k))
            .collect();
        drop(mc);
        for (k, m) in per_corner.iter().enumerate() {
            assert_eq!(
                &t.evaluate(corners.tech(k), EvalModel::Elmore),
                m,
                "corner {k} diverged from batch"
            );
        }
    }

    #[test]
    fn shared_journal_reverts_all_corners_atomically() {
        let (mut t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let mut mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Nldm);
        let before: Vec<TreeMetrics> = (0..mc.corner_count())
            .map(|k| mc.corner_metrics(k))
            .collect();
        let mark = mc.mark();
        assert!(mc.set_star_buffer(0, true));
        assert!(mc.set_star_buffer(1, true));
        assert_ne!(mc.corner_metrics(0), before[0]);
        mc.undo_to(mark);
        for (k, b) in before.iter().enumerate() {
            assert_eq!(&mc.corner_metrics(k), b, "corner {k} not restored");
        }
        assert_eq!(mc.mark(), mark);
    }

    #[test]
    fn infeasible_anywhere_rolls_back_everywhere() {
        let (mut t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let edge = (1..t.topo.nodes.len())
            .find(|&i| t.patterns[i].is_some_and(|p| p.buffers() > 0))
            .expect("some buffered edge");
        let mut mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore);
        let before: Vec<TreeMetrics> = (0..mc.corner_count())
            .map(|k| mc.corner_metrics(k))
            .collect();
        // A vanishing buffer cannot drive its load in any corner.
        assert!(!mc.set_buffer_scale(edge, 1e-6));
        for (k, b) in before.iter().enumerate() {
            assert_eq!(&mc.corner_metrics(k), b, "corner {k} not rolled back");
        }
        assert_eq!(mc.mark(), 0, "failed mutation leaves an empty journal");
    }

    #[test]
    fn worst_view_bounds_every_corner() {
        let (mut t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore);
        let (wl, ws) = mc.worst_latency_skew_ps();
        for k in 0..mc.corner_count() {
            let (l, s) = mc.corner_latency_skew_ps(k);
            assert!(l <= wl && s <= ws);
        }
        // SS (corner 0) is slower than FF (corner 2) everywhere.
        assert!(mc.corner_latency_skew_ps(0).0 > mc.corner_latency_skew_ps(2).0);
        let r = mc.robust_metrics();
        assert_eq!(r.worst_latency_ps, wl);
        assert_eq!(r.worst_skew_ps, ws);
        assert!(r.arrival_spread_ps > 0.0);
    }

    #[test]
    fn objective_views_differ_as_configured() {
        let (mut t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore);
        let worst = TrialEval::latency_skew_ps(&mc);
        assert_eq!(worst, mc.worst_latency_skew_ps());
        let nominal_view = {
            let mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore)
                .with_objective(RobustObjective::Nominal);
            TrialEval::latency_skew_ps(&mc)
        };
        assert!(nominal_view.0 < worst.0, "SS latency dominates TT");
    }

    #[test]
    fn focus_corner_cache_tracks_mutations() {
        let (mut t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let mut mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore);
        let fresh_focus = |mc: &MultiCornerEval<'_>| {
            // The uncached answer: argmax of per-corner skew.
            (0..mc.corner_count())
                .max_by(|&a, &b| {
                    mc.corner_latency_skew_ps(a)
                        .1
                        .total_cmp(&mc.corner_latency_skew_ps(b).1)
                })
                .unwrap()
        };
        assert_eq!(mc.focus_corner(), fresh_focus(&mc));
        assert_eq!(mc.focus_corner(), mc.focus_corner(), "memoized");
        assert!(mc.set_star_buffer(0, true));
        assert_eq!(
            mc.focus_corner(),
            fresh_focus(&mc),
            "invalidated by mutation"
        );
        mc.undo();
        assert_eq!(mc.focus_corner(), fresh_focus(&mc), "invalidated by undo");
    }

    #[test]
    fn corner_report_matches_batch() {
        let (t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let report = CornerReport::evaluate(&t, &corners, EvalModel::Nldm);
        assert_eq!(report.corner_names, ["SS", "TT", "FF"]);
        assert_eq!(report.nominal, 1);
        assert_eq!(
            report.per_corner[1],
            t.evaluate(corners.nominal_tech(), EvalModel::Nldm)
        );
        assert_eq!(
            report.robust.worst_latency_corner, 0,
            "SS is the slow corner"
        );
    }

    /// `try_evaluate` is bit-identical to `evaluate` on feasible corner
    /// sets, and reports the typed `NoFeasiblePattern` (instead of
    /// panicking) when a corner derates capacitances past a pattern
    /// buffer's max load — the corner sign-off failure mode a service
    /// retry ladder recovers from.
    #[test]
    fn corner_report_try_evaluate_types_corner_infeasibility() {
        use dscts_tech::{Corner, DerateFactors, WireDerate};
        let (t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let report = CornerReport::try_evaluate(&t, &corners, EvalModel::Nldm)
            .expect("tree feasible at the PVT preset");
        assert_eq!(
            report,
            CornerReport::evaluate(&t, &corners, EvalModel::Nldm)
        );

        // A hostile corner: wire capacitance ×50 overloads any embedded
        // buffer the DP placed against its nominal max-load budget.
        let overload = WireDerate {
            res: 1.0,
            cap: 50.0,
        };
        let hot = Corner::new(
            "HOT",
            DerateFactors {
                front_wire: overload,
                back_wire: overload,
                buffer_delay: 1.0,
                ntsv: overload,
            },
        )
        .expect("valid derates");
        let hostile =
            CornerSet::expand(&tech, vec![hot, Corner::nominal("TT")], 1).expect("valid set");
        let err = CornerReport::try_evaluate(&t, &hostile, EvalModel::Nldm)
            .expect_err("overloaded corner must fail typed");
        assert!(
            matches!(err, crate::CtsError::NoFeasiblePattern { .. }),
            "expected the typed data-dependent infeasibility, got {err:?}"
        );
    }

    #[test]
    fn single_nominal_corner_is_bit_identical_to_incremental() {
        // The proptest suite exercises this over random designs and
        // interleaved mutations; this is the deterministic smoke case.
        use crate::incremental::IncrementalEval;
        let (t, tech) = tree();
        let corners = CornerSet::nominal_only(&tech);
        let edge = (1..t.topo.nodes.len())
            .find(|&i| t.patterns[i].is_some_and(|p| p.buffers() > 0))
            .expect("some buffered edge");
        let mut t_inc = t.clone();
        let mut t_mc = t.clone();
        let mut inc = IncrementalEval::new(&mut t_inc, &tech, EvalModel::Elmore);
        let mut mc = MultiCornerEval::new(&mut t_mc, &corners, EvalModel::Elmore);
        assert_eq!(inc.metrics(), mc.corner_metrics(0));
        assert_eq!(
            inc.set_buffer_scale(edge, 0.5),
            mc.set_buffer_scale(edge, 0.5)
        );
        assert_eq!(inc.metrics(), mc.corner_metrics(0));
        inc.undo();
        mc.undo();
        assert_eq!(inc.metrics(), mc.corner_metrics(0));
        assert_eq!(inc.latency_skew_ps(), mc.worst_latency_skew_ps());
    }
}
