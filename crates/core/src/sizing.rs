//! Post-CTS buffer sizing for skew (§IV-A's deferred optimization).
//!
//! The paper inserts a single buffer cell and notes that "buffer sizing
//! will be further optimized for skew minimization in the follow-up clock
//! tree optimization after clock tree synthesis". This module implements
//! that follow-up stage: every pattern-embedded buffer may be resized
//! among a discrete set of drive strengths (e.g. x2/x4/x8 relative scales
//! 0.5/1.0/2.0), and a greedy balance pass re-sizes the *last* buffer on
//! each root-to-sink path — downsizing fast paths (more delay, less input
//! cap) and upsizing slow ones — to shrink global skew without adding
//! cells.

use crate::synth::{EvalModel, SynthesizedTree, TreeMetrics};
use dscts_tech::Technology;

/// Configuration of the sizing pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingConfig {
    /// Available drive scales relative to the library buffer (sorted
    /// ascending). Defaults to `[0.5, 1.0, 2.0]` (x2 / x4 / x8 for the
    /// BUFx4 base cell).
    pub scales: Vec<f64>,
    /// Safety cap on greedy sweep rounds. Every accepted move strictly
    /// reduces skew, so the sweep terminates on its own (a round with no
    /// accepted move is a fixed point and `resize_for_skew` is then
    /// idempotent); the cap only bounds pathological inputs. The default
    /// is high enough that real designs converge well before hitting it.
    pub max_rounds: usize,
}

impl Default for SizingConfig {
    fn default() -> Self {
        SizingConfig {
            scales: vec![0.5, 1.0, 2.0],
            max_rounds: 64,
        }
    }
}

/// Outcome of [`resize_for_skew`].
#[derive(Debug, Clone, PartialEq)]
pub struct SizingReport {
    /// Buffers whose size changed.
    pub resized: usize,
    /// Metrics before sizing.
    pub before: TreeMetrics,
    /// Metrics after sizing.
    pub after: TreeMetrics,
}

/// Greedily re-sizes the final buffer of each leaf path to balance sink
/// arrivals. Changes are kept only when they reduce skew without hurting
/// latency; the tree is otherwise left untouched.
///
/// # Panics
///
/// Panics if `cfg.scales` is empty or contains non-positive values.
pub fn resize_for_skew(
    tree: &mut SynthesizedTree,
    tech: &Technology,
    model: EvalModel,
    cfg: &SizingConfig,
) -> SizingReport {
    assert!(
        !cfg.scales.is_empty() && cfg.scales.iter().all(|&s| s > 0.0),
        "scales must be positive"
    );
    let before = tree.evaluate(tech, model);
    let mut current = before.clone();
    let mut resized = 0usize;

    // The last buffered trunk edge above each star.
    let last_buffered: Vec<Option<usize>> = tree
        .topo
        .stars
        .iter()
        .map(|s| {
            let mut v = s.node;
            loop {
                if tree.patterns[v as usize].is_some_and(|p| p.buffers() > 0) {
                    return Some(v as usize);
                }
                match tree.topo.nodes[v as usize].parent {
                    Some(p) if p != 0 => v = p,
                    _ => return None,
                }
            }
        })
        .collect();

    for _ in 0..cfg.max_rounds {
        let mut changed = 0usize;
        // Process stars from the fastest upward: downsizing their last
        // buffer pads their arrival toward the mean.
        let mut order: Vec<usize> = (0..tree.topo.stars.len()).collect();
        let star_arrival = |m: &TreeMetrics, s: &crate::tree::LeafStar| {
            s.sinks
                .iter()
                .map(|&sk| m.arrivals[sk as usize])
                .fold(f64::INFINITY, f64::min)
        };
        order.sort_by(|&a, &b| {
            star_arrival(&current, &tree.topo.stars[a])
                .total_cmp(&star_arrival(&current, &tree.topo.stars[b]))
        });
        for si in order {
            let Some(edge) = last_buffered[si] else {
                continue;
            };
            let old_scale = tree.buffer_scales[edge];
            let mut best = (current.skew_ps, old_scale);
            for &s in &cfg.scales {
                if (s - old_scale).abs() < 1e-12 {
                    continue;
                }
                tree.buffer_scales[edge] = s;
                // A smaller buffer may be overloaded; evaluate() would
                // panic on infeasible patterns, so pre-check.
                let node = &tree.topo.nodes[edge];
                let pat = tree.patterns[edge].expect("buffered edge");
                let feasible = pat
                    .eval_scaled(node.edge_len, probe_load(tree, tech, edge), tech, s)
                    .is_some();
                if !feasible {
                    continue;
                }
                let m = tree.evaluate(tech, model);
                if m.skew_ps < best.0 - 1e-9 && m.latency_ps <= current.latency_ps + 1e-9 {
                    best = (m.skew_ps, s);
                }
            }
            tree.buffer_scales[edge] = best.1;
            if (best.1 - old_scale).abs() > 1e-12 {
                changed += 1;
                current = tree.evaluate(tech, model);
            }
        }
        resized += changed;
        if changed == 0 {
            break;
        }
    }

    SizingReport {
        resized,
        before,
        after: current,
    }
}

/// Downstream load of `edge`'s bottom vertex under the current assignment
/// (recomputed locally; cheap relative to a full evaluate).
fn probe_load(tree: &SynthesizedTree, tech: &Technology, edge: usize) -> f64 {
    let topo = &tree.topo;
    let children = topo.children();
    let order = topo.topo_order();
    let rc = tech.rc(dscts_tech::Side::Front);
    let buf = tech.buffer();
    let mut cap = vec![0.0f64; topo.nodes.len()];
    for &v in order.iter().rev() {
        let vu = v as usize;
        if let Some(si) = topo.nodes[vu].star {
            let s = &topo.stars[si as usize];
            cap[vu] += if tree.star_buffers[si as usize] {
                buf.input_cap_ff()
            } else {
                s.sinks
                    .iter()
                    .zip(&s.branch_len)
                    .map(|(&sk, &len)| rc.cap(len) + topo.sink_cap[sk as usize])
                    .sum()
            };
        }
        for &c in &children[vu] {
            let cu = c as usize;
            let p = tree.patterns[cu].expect("assigned");
            if let Some(ev) = p.eval_scaled(
                topo.nodes[cu].edge_len,
                cap[cu],
                tech,
                tree.buffer_scales[cu],
            ) {
                cap[vu] += ev.up_cap_ff;
            } else {
                // Infeasible under a trial scale: report an over-limit load
                // so the caller rejects the trial.
                cap[vu] += tech.max_load_ff() * 10.0;
            }
        }
    }
    cap[edge]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{run_dp, DpConfig, MoesWeights};
    use crate::route::HierarchicalRouter;
    use dscts_netlist::BenchmarkSpec;

    fn tree() -> (SynthesizedTree, Technology) {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(40_000);
        let cfg = DpConfig {
            moes: MoesWeights {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
                delta: 0.0,
            },
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        (SynthesizedTree::new(topo, res.assignment), tech)
    }

    #[test]
    fn sizing_reduces_skew_without_latency_loss() {
        let (mut t, tech) = tree();
        let report = resize_for_skew(&mut t, &tech, EvalModel::Elmore, &SizingConfig::default());
        assert!(report.after.skew_ps <= report.before.skew_ps + 1e-9);
        assert!(report.after.latency_ps <= report.before.latency_ps + 1e-9);
        // Cell count is untouched: sizing only changes strengths.
        assert_eq!(report.after.buffers, report.before.buffers);
        assert_eq!(report.after.ntsvs, report.before.ntsvs);
    }

    #[test]
    fn sizing_is_idempotent_at_fixed_point() {
        let (mut t, tech) = tree();
        let _ = resize_for_skew(&mut t, &tech, EvalModel::Elmore, &SizingConfig::default());
        let second = resize_for_skew(&mut t, &tech, EvalModel::Elmore, &SizingConfig::default());
        assert_eq!(second.resized, 0);
        assert_eq!(second.before, second.after);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_empty_scales() {
        let (mut t, tech) = tree();
        let _ = resize_for_skew(
            &mut t,
            &tech,
            EvalModel::Elmore,
            &SizingConfig {
                scales: vec![],
                max_rounds: 1,
            },
        );
    }

    #[test]
    fn scaled_eval_shields_more_with_bigger_buffers() {
        use crate::pattern::Pattern;
        let tech = Technology::asap7();
        let small = Pattern::Buffer
            .eval_scaled(40_000, 25.0, &tech, 0.5)
            .unwrap();
        let big = Pattern::Buffer
            .eval_scaled(40_000, 25.0, &tech, 2.0)
            .unwrap();
        // Bigger buffer: faster stage, heavier input pin.
        assert!(big.delay_ps < small.delay_ps);
        assert!(big.up_cap_ff > small.up_cap_ff);
        // A half-size buffer cannot drive what the double-size one can.
        assert!(Pattern::Buffer
            .eval_scaled(40_000, 60.0, &tech, 0.5)
            .is_none());
        assert!(Pattern::Buffer
            .eval_scaled(40_000, 60.0, &tech, 2.0)
            .is_some());
    }
}
