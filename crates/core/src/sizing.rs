//! Post-CTS buffer sizing for skew (§IV-A's deferred optimization).
//!
//! The paper inserts a single buffer cell and notes that "buffer sizing
//! will be further optimized for skew minimization in the follow-up clock
//! tree optimization after clock tree synthesis". This module implements
//! that follow-up stage: every pattern-embedded buffer may be resized
//! among a discrete set of drive strengths (e.g. x2/x4/x8 relative scales
//! 0.5/1.0/2.0), and a greedy balance pass re-sizes the *last* buffer on
//! each root-to-sink path — downsizing fast paths (more delay, less input
//! cap) and upsizing slow ones — to shrink global skew without adding
//! cells.
//!
//! Every trial move is scored through [`IncrementalEval`]: a scale change
//! re-propagates O(depth + subtree) state instead of re-evaluating the
//! whole tree, and a rejected trial is a journal rollback. Metrics remain
//! bit-identical to the batch evaluator (see the `incremental` module
//! invariants), so this is a pure speedup.
//!
//! The optimizer is packaged as [`SizingPass`] for the composable
//! [`crate::opt`] schedule API; [`resize_for_skew`] remains as a thin,
//! bit-identical wrapper that builds a fresh evaluator, runs the pass
//! once, and reports before/after metrics.

use crate::incremental::{IncrementalEval, TrialEval};
use crate::opt::{MultiOptCtx, OptCtx, OptPass, PassStats};
use crate::resilience::CancelToken;
use crate::synth::{EvalModel, SynthesizedTree, TreeMetrics};
use dscts_tech::Technology;
use std::borrow::Cow;

/// Configuration of the sizing pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingConfig {
    /// Available drive scales relative to the library buffer (sorted
    /// ascending). Defaults to `[0.5, 1.0, 2.0]` (x2 / x4 / x8 for the
    /// BUFx4 base cell).
    pub scales: Vec<f64>,
    /// Safety cap on greedy sweep rounds. Every accepted move strictly
    /// reduces skew, so the sweep terminates on its own (a round with no
    /// accepted move is a fixed point and `resize_for_skew` is then
    /// idempotent); the cap only bounds pathological inputs. The default
    /// is high enough that real designs converge well before hitting it.
    pub max_rounds: usize,
}

impl Default for SizingConfig {
    fn default() -> Self {
        SizingConfig {
            scales: vec![0.5, 1.0, 2.0],
            max_rounds: 64,
        }
    }
}

/// Outcome of [`resize_for_skew`].
#[derive(Debug, Clone, PartialEq)]
pub struct SizingReport {
    /// Buffers whose size changed.
    pub resized: usize,
    /// Metrics before sizing.
    pub before: TreeMetrics,
    /// Metrics after sizing.
    pub after: TreeMetrics,
}

/// The greedy buffer-sizing optimizer as a composable [`OptPass`].
///
/// Re-sizes the final buffer of each leaf path to balance sink arrivals;
/// changes are kept only when they reduce skew without hurting latency.
/// [`resize_for_skew`] wraps this pass for one-shot callers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SizingPass {
    /// The scale alphabet and round cap.
    pub cfg: SizingConfig,
}

impl SizingPass {
    /// The pass's stable name.
    pub const NAME: &'static str = "sizing";

    /// A pass with the given configuration.
    pub fn new(cfg: SizingConfig) -> Self {
        SizingPass { cfg }
    }

    /// Runs the greedy sweep over an existing evaluator — any
    /// [`TrialEval`], so the same sweep sizes for nominal skew over an
    /// [`IncrementalEval`] or for worst-corner skew over a
    /// [`crate::mcmm::MultiCornerEval`]. This is the entire optimizer —
    /// [`resize_for_skew`] and both [`OptPass`] execution paths delegate
    /// here, so they cannot drift.
    ///
    /// # Panics
    ///
    /// Panics if the configured scales are empty or non-positive.
    pub fn run_on<E: TrialEval>(&self, eval: &mut E) -> PassStats {
        self.run_on_cancel(eval, None)
    }

    /// [`SizingPass::run_on`] under a run budget. The token is polled
    /// between stars and each attempted scale is charged to the trial
    /// budget; cancellation keeps every already-committed resize (accepted
    /// moves commit per star, so truncation never corrupts the tree).
    /// `None` is bit-identical to [`SizingPass::run_on`].
    ///
    /// # Panics
    ///
    /// Panics if the configured scales are empty or non-positive.
    pub fn run_on_cancel<E: TrialEval>(
        &self,
        eval: &mut E,
        cancel: Option<&CancelToken>,
    ) -> PassStats {
        let cfg = &self.cfg;
        assert!(
            !cfg.scales.is_empty() && cfg.scales.iter().all(|&s| s > 0.0),
            "scales must be positive"
        );
        // The last buffered trunk edge above each star.
        let tree = eval.tree();
        let last_buffered: Vec<Option<usize>> = tree
            .topo
            .stars
            .iter()
            .map(|s| {
                let mut v = s.node;
                loop {
                    if tree.patterns[v as usize].is_some_and(|p| p.buffers() > 0) {
                        return Some(v as usize);
                    }
                    match tree.topo.nodes[v as usize].parent {
                        Some(p) if p != 0 => v = p,
                        _ => return None,
                    }
                }
            })
            .collect();

        let mut stats = PassStats::default();
        let mut cancelled = false;
        for _ in 0..cfg.max_rounds {
            let mut changed = 0usize;
            // Process stars from the fastest upward: downsizing their last
            // buffer pads their arrival toward the mean.
            let mut order: Vec<usize> = (0..eval.tree().topo.stars.len()).collect();
            order.sort_by(|&a, &b| eval.star_earliest(a).total_cmp(&eval.star_earliest(b)));
            for si in order {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    cancelled = true;
                    break;
                }
                let Some(edge) = last_buffered[si] else {
                    continue;
                };
                let old_scale = eval.buffer_scale(edge);
                let (current_latency, current_skew) = eval.latency_skew_ps();
                let mut best = (current_skew, old_scale);
                for &s in &cfg.scales {
                    if (s - old_scale).abs() < 1e-12 {
                        continue;
                    }
                    stats.attempted += 1;
                    if let Some(token) = cancel {
                        token.record_trial();
                    }
                    // An infeasible scale (overloaded buffer anywhere on the
                    // dirty path) rolls itself back and returns false.
                    if !eval.set_buffer_scale(edge, s) {
                        continue;
                    }
                    let (trial_latency, trial_skew) = eval.latency_skew_ps();
                    if trial_skew < best.0 - 1e-9 && trial_latency <= current_latency + 1e-9 {
                        best = (trial_skew, s);
                    }
                    eval.undo();
                }
                if (best.1 - old_scale).abs() > 1e-12 {
                    let ok = eval.set_buffer_scale(edge, best.1);
                    debug_assert!(ok, "winning trial scale must stay feasible");
                    eval.commit();
                    changed += 1;
                }
            }
            stats.accepted += changed;
            if changed == 0 || cancelled {
                break;
            }
        }
        stats
    }
}

impl OptPass for SizingPass {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed(Self::NAME)
    }

    fn run(&self, ctx: &mut OptCtx<'_>) -> PassStats {
        let cancel = ctx.cancel().cloned();
        self.run_on_cancel(ctx.eval_mut(), cancel.as_ref())
    }

    fn run_multi(&self, ctx: &mut MultiOptCtx<'_>) -> PassStats {
        let cancel = ctx.cancel().cloned();
        self.run_on_cancel(ctx.eval_mut(), cancel.as_ref())
    }
}

/// Greedily re-sizes the final buffer of each leaf path to balance sink
/// arrivals. Changes are kept only when they reduce skew without hurting
/// latency; the tree is otherwise left untouched.
///
/// Thin wrapper over [`SizingPass::run_on`] — bit-identical to scheduling
/// a [`SizingPass`] through the [`crate::opt::PassManager`].
///
/// # Panics
///
/// Panics if `cfg.scales` is empty or contains non-positive values.
pub fn resize_for_skew(
    tree: &mut SynthesizedTree,
    tech: &Technology,
    model: EvalModel,
    cfg: &SizingConfig,
) -> SizingReport {
    let mut eval = IncrementalEval::new(tree, tech, model);
    let before = eval.metrics();
    let stats = SizingPass::new(cfg.clone()).run_on(&mut eval);
    let after = eval.metrics();
    SizingReport {
        resized: stats.accepted,
        before,
        after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{run_dp, DpConfig, MoesWeights};
    use crate::route::HierarchicalRouter;
    use dscts_netlist::BenchmarkSpec;

    fn tree() -> (SynthesizedTree, Technology) {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(40_000);
        let cfg = DpConfig {
            moes: MoesWeights {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
                delta: 0.0,
            },
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        (SynthesizedTree::new(topo, res.assignment), tech)
    }

    #[test]
    fn sizing_reduces_skew_without_latency_loss() {
        let (mut t, tech) = tree();
        let report = resize_for_skew(&mut t, &tech, EvalModel::Elmore, &SizingConfig::default());
        assert!(report.after.skew_ps <= report.before.skew_ps + 1e-9);
        assert!(report.after.latency_ps <= report.before.latency_ps + 1e-9);
        // Cell count is untouched: sizing only changes strengths.
        assert_eq!(report.after.buffers, report.before.buffers);
        assert_eq!(report.after.ntsvs, report.before.ntsvs);
    }

    #[test]
    fn sizing_is_idempotent_at_fixed_point() {
        let (mut t, tech) = tree();
        let _ = resize_for_skew(&mut t, &tech, EvalModel::Elmore, &SizingConfig::default());
        let second = resize_for_skew(&mut t, &tech, EvalModel::Elmore, &SizingConfig::default());
        assert_eq!(second.resized, 0);
        assert_eq!(second.before, second.after);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_empty_scales() {
        let (mut t, tech) = tree();
        let _ = resize_for_skew(
            &mut t,
            &tech,
            EvalModel::Elmore,
            &SizingConfig {
                scales: vec![],
                max_rounds: 1,
            },
        );
    }

    #[test]
    fn scaled_eval_shields_more_with_bigger_buffers() {
        use crate::pattern::Pattern;
        let tech = Technology::asap7();
        let small = Pattern::Buffer
            .eval_scaled(40_000, 25.0, &tech, 0.5)
            .unwrap();
        let big = Pattern::Buffer
            .eval_scaled(40_000, 25.0, &tech, 2.0)
            .unwrap();
        // Bigger buffer: faster stage, heavier input pin.
        assert!(big.delay_ps < small.delay_ps);
        assert!(big.up_cap_ff > small.up_cap_ff);
        // A half-size buffer cannot drive what the double-size one can.
        assert!(Pattern::Buffer
            .eval_scaled(40_000, 60.0, &tech, 0.5)
            .is_none());
        assert!(Pattern::Buffer
            .eval_scaled(40_000, 60.0, &tech, 2.0)
            .is_some());
    }
}
