//! Structured errors for the staged CTS engine.
//!
//! The seed implementation panicked on every unsatisfiable input; the
//! staged pipeline reports [`CtsError`] through
//! [`DsCts::try_run`](crate::DsCts::try_run) instead, so callers (the
//! CLI, the DSE sweep, service embeddings) can distinguish *which*
//! constraint failed and on which element. [`DsCts::run`](crate::DsCts::run)
//! remains a thin wrapper that panics with the error's display text,
//! preserving the seed's messages for existing `should_panic` consumers.

use std::fmt;

/// Everything that can make the double-side CTS pipeline fail.
///
/// Display texts are stable API: tooling greps them, and the
/// failure-injection tests pin the key phrases (`no clock sinks`,
/// `feasible`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtsError {
    /// The design has no clock sinks to route.
    EmptyDesign,
    /// A routed trunk node violates the binary-trunk/leaf-star shape the
    /// DP requires.
    MalformedTrunk {
        /// The offending trunk node id.
        node: u32,
        /// Its child count.
        children: usize,
        /// Whether it claims to host a leaf star.
        has_star: bool,
    },
    /// A DP node admits no pattern under the max-capacitance budget.
    NoFeasiblePattern {
        /// The DP (trunk) node id.
        node: u32,
        /// Electrical length of its incoming edge (nm).
        edge_len_nm: i64,
    },
    /// Every root candidate is infeasible (front side, max load).
    NoRootCandidate,
    /// The synthesized tree breaks the side-consistency constraint
    /// (§III-C); carries the violation description.
    IllegalSides(String),
    /// The routed topology failed structural validation; carries the
    /// violation description.
    InvalidTopology(String),
    /// A panic escaped a stage or a parallel worker and was caught at the
    /// isolation boundary; carries the stage name and the panic payload.
    /// These are bugs (or injected faults), never data-dependent
    /// infeasibilities, so the recovery ladder does not retry them.
    Internal {
        /// Name of the stage (or injection site) the panic escaped from.
        stage: &'static str,
        /// The stringified panic payload.
        payload: String,
    },
    /// The run's [`RunBudget`](crate::resilience::RunBudget) expired before
    /// a mandatory stage could finish; carries the stage that observed the
    /// cooperative cancellation. Optional stages (optimization) truncate
    /// into a `degraded` [`Outcome`](crate::Outcome) instead.
    Cancelled {
        /// Name of the stage that observed the cancellation.
        stage: &'static str,
    },
}

impl fmt::Display for CtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtsError::EmptyDesign => write!(f, "design has no clock sinks"),
            CtsError::MalformedTrunk {
                node,
                children,
                has_star,
            } => write!(
                f,
                "trunk node {node} is malformed: {children} children, star {has_star:?} — \
                 leaves must be centroids"
            ),
            CtsError::NoFeasiblePattern { node, edge_len_nm } => write!(
                f,
                "DP node {node} has no feasible pattern (edge {edge_len_nm} nm, load too heavy?)"
            ),
            CtsError::NoRootCandidate => {
                write!(f, "no feasible front-side root candidate")
            }
            CtsError::IllegalSides(why) => {
                write!(f, "synthesized tree violates side-consistency: {why}")
            }
            CtsError::InvalidTopology(why) => {
                write!(f, "routed topology is invalid: {why}")
            }
            CtsError::Internal { stage, payload } => {
                write!(f, "internal error in stage `{stage}`: {payload}")
            }
            CtsError::Cancelled { stage } => {
                write!(f, "run budget exhausted during stage `{stage}`")
            }
        }
    }
}

impl std::error::Error for CtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_pinned_phrases() {
        // Consumed by should_panic(expected = ...) in the workspace tests.
        assert!(CtsError::EmptyDesign.to_string().contains("no clock sinks"));
        assert!(CtsError::NoFeasiblePattern {
            node: 3,
            edge_len_nm: 40_000
        }
        .to_string()
        .contains("feasible"));
        assert!(CtsError::NoRootCandidate.to_string().contains("feasible"));
        // The `run` wrapper re-panics with the display text, so the caught
        // payload must survive the round trip through `Internal`.
        let internal = CtsError::Internal {
            stage: "insertion",
            payload: "scales must be positive".to_owned(),
        };
        assert!(internal.to_string().contains("scales must be positive"));
        assert!(CtsError::Cancelled { stage: "route" }
            .to_string()
            .contains("budget"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CtsError::NoRootCandidate);
        assert!(!e.to_string().is_empty());
    }
}
