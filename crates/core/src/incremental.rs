//! Incremental (dirty-path) evaluation of a synthesized clock tree.
//!
//! [`SynthesizedTree::evaluate`] walks the whole tree twice per call;
//! the post-CTS optimization loops (buffer sizing, end-point refinement,
//! DSE) call it once per *trial move*, making them O(moves × n). This
//! module keeps the full evaluation state resident and repairs only what a
//! mutation dirties, the standard trick of incremental timing engines:
//!
//! * **caps travel up, arrivals travel down.** Changing the knob of edge
//!   `e` (buffer scale, pattern, or the star buffer at its sink end)
//!   changes the capacitance `e` presents upstream; that propagates along
//!   the *ancestor path* only, and stops early at the first edge whose
//!   presented cap is unchanged — in practice the first shielding buffer.
//!   Arrival times change only below the topmost node whose load changed,
//!   so they are re-propagated over that *subtree* only. Total cost per
//!   mutation: O(depth + dirty subtree) instead of O(n).
//! * **bit-identical state invariant.** After every successful mutation,
//!   `cap`, `up_cap`, `arr`, `slew`, the per-star bases and the per-sink
//!   arrivals are bit-identical (as `f64`s) to what a from-scratch
//!   [`SynthesizedTree::evaluate`] of the mutated tree would compute: all
//!   repairs re-run the *same* arithmetic in the *same* order as the batch
//!   evaluator (shared helpers in `synth`), and early termination happens
//!   only when a recomputed value compares equal to the stored one. The
//!   property suite `incremental_matches_batch` enforces this for both
//!   [`EvalModel`]s under arbitrary interleaved mutations and undos.
//! * **journaled undo.** Every overwritten value is recorded in an undo
//!   journal. [`IncrementalEval::undo`] reverts the last mutation,
//!   [`IncrementalEval::mark`]/[`IncrementalEval::undo_to`] revert a group
//!   of mutations (e.g. one refinement round), and
//!   [`IncrementalEval::commit`] forgets history once a move is accepted.
//!   A mutation that would make any pattern electrically infeasible
//!   rolls itself back and returns `false`, leaving the state untouched —
//!   trial moves need no feasibility pre-probe.
//!
//! The evaluator borrows the tree mutably and writes accepted knob changes
//! (`buffer_scales`, `star_buffers`, `patterns`) through to it, so when the
//! evaluator is dropped the tree is already in its optimized state.
//!
//! # Architecture: `CornerState` and the MCMM fan-out
//!
//! All per-technology evaluation state (caps, arrivals, slews, star
//! bases, sink arrivals) and the dirty-path repair logic live in the
//! crate-internal `CornerState`, parameterized by the tree, a technology
//! and a journal sink. [`IncrementalEval`] is one `CornerState` plus the
//! knob-owning tree borrow and a flat journal; the multi-corner engine
//! ([`crate::mcmm::MultiCornerEval`]) is K `CornerState`s — one per PVT
//! corner — fanning every knob mutation out under a single shared,
//! corner-tagged journal. Both run the *same* repair arithmetic, so the
//! single-nominal-corner MCMM path is bit-identical to this evaluator
//! (enforced by `mcmm_proptests`).
//!
//! The [`TrialEval`] trait abstracts the mutation/undo/query surface the
//! optimization passes ([`crate::opt`]) need, so every pass runs
//! unchanged over either evaluator.

use crate::pattern::{Pattern, PatternEval};
use crate::resilience::fault;
use crate::synth::{resources, star_loads, EvalModel, SynthesizedTree, TreeMetrics};
use dscts_geom::TreeCsr;
use dscts_tech::{Side, Technology};
use dscts_timing::{wire_slew, ArrivalStats};

/// One overwritten value, recorded for rollback.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Entry {
    /// `buffer_scales[edge]` previous value.
    Scale(u32, f64),
    /// `patterns[edge]` previous value.
    Pattern(u32, Option<Pattern>),
    /// `star_buffers[si]` previous value.
    StarBuffer(u32, bool),
    /// `cap[node]` previous value.
    Cap(u32, f64),
    /// `up_cap[node]` previous value.
    UpCap(u32, f64),
    /// `arr[node]` previous value.
    Arr(u32, f64),
    /// `slew[node]` previous value.
    Slew(u32, f64),
    /// `(star_base, star_base_slew)[si]` previous values.
    StarBase(u32, f64, f64),
    /// `arrivals[sink]` previous value.
    SinkArr(u32, f64),
}

/// Where a [`CornerState`] records overwritten values. The single-corner
/// evaluator journals into a flat `Vec<Entry>`; the MCMM engine tags each
/// entry with its corner index so one shared journal serves every corner.
pub(crate) trait Journal {
    /// Records one overwritten value.
    fn record(&mut self, e: Entry);
}

impl Journal for Vec<Entry> {
    fn record(&mut self, e: Entry) {
        self.push(e);
    }
}

/// The resident evaluation state of one tree under one technology: the
/// per-topology constants plus every quantity the dirty-path repairs
/// maintain. Owns no tree borrow — [`IncrementalEval`] holds exactly one
/// of these, [`crate::mcmm::MultiCornerEval`] holds one per corner over
/// the same tree.
///
/// Repair methods never roll themselves back: on infeasibility they
/// return `false`/`None` with their journal entries in place, and the
/// owning evaluator reverts through its journal (which also restores the
/// knob, and — in the MCMM case — every corner touched before the
/// failing one).
#[derive(Debug, Clone)]
pub(crate) struct CornerState {
    /// Per-star unshielded load (wire + sink pins): constant per topology.
    star_load: Vec<f64>,
    /// Per-sink star-branch Elmore delay: constant per topology.
    branch_d: Vec<f64>,
    /// Per-star min/max of `branch_d` over its sinks (−∞ max for an empty
    /// star): constant per topology.
    star_min_d: Vec<f64>,
    star_max_d: Vec<f64>,
    /// Downstream capacitance at each trunk node (the load at the sink end
    /// of its incoming edge).
    cap: Vec<f64>,
    /// Capacitance each trunk node's incoming edge presents to its parent
    /// (undefined for node 0).
    up_cap: Vec<f64>,
    /// Arrival time at each trunk node.
    arr: Vec<f64>,
    /// Transition time at each trunk node.
    slew: Vec<f64>,
    /// Per-star arrival/slew at the star root, after the optional
    /// refinement buffer.
    star_base: Vec<f64>,
    star_base_slew: Vec<f64>,
    /// Per-sink arrival times (the batch evaluator's `arrivals` vector).
    arrivals: Vec<f64>,
    /// Grow-only DFS stack reused by every arrival re-propagation, so a
    /// trial move performs no per-move heap allocation once the stack has
    /// reached its high-water mark (asserted by the sizing micro-bench).
    arrival_scratch: Vec<u32>,
}

impl CornerState {
    /// Builds the constants and the bottom-up caps with one
    /// batch-equivalent pass, then propagates arrivals over the whole
    /// tree.
    ///
    /// # Panics
    ///
    /// Panics if any edge lacks a pattern or is electrically infeasible
    /// under the current scales (exactly like
    /// [`SynthesizedTree::evaluate`]).
    pub(crate) fn new(
        tree: &SynthesizedTree,
        tech: &Technology,
        model: EvalModel,
        csr: &TreeCsr,
    ) -> Self {
        let topo = &tree.topo;
        let n = topo.nodes.len();
        let rc_front = tech.rc(Side::Front);
        let star_load = star_loads(topo, tech);

        // Constant star-branch delays and their per-star extremes.
        let mut branch_d = vec![0.0f64; topo.sink_pos.len()];
        let mut star_min_d = vec![f64::INFINITY; topo.stars.len()];
        let mut star_max_d = vec![f64::NEG_INFINITY; topo.stars.len()];
        for (si, s) in topo.stars.iter().enumerate() {
            for (&sk, &len) in s.sinks.iter().zip(&s.branch_len) {
                let d = rc_front.res(len) * (rc_front.cap(len) + topo.sink_cap[sk as usize]);
                branch_d[sk as usize] = d;
                star_min_d[si] = star_min_d[si].min(d);
                star_max_d[si] = star_max_d[si].max(d);
            }
        }

        // Bottom-up caps: same arithmetic and order as the batch pass.
        let mut cap = vec![0.0f64; n];
        let mut up_cap = vec![0.0f64; n];
        let buf = tech.buffer();
        for &v in csr.order().iter().rev() {
            let vu = v as usize;
            if let Some(si) = topo.nodes[vu].star {
                cap[vu] += if tree.star_buffers[si as usize] {
                    buf.input_cap_ff()
                } else {
                    star_load[si as usize]
                };
            }
            for &c in csr.children(v) {
                let cu = c as usize;
                let p = tree.patterns[cu].expect("assigned pattern");
                let ev = p
                    .eval_scaled(
                        topo.nodes[cu].edge_len,
                        cap[cu],
                        tech,
                        tree.buffer_scales[cu],
                    )
                    .expect("chosen pattern feasible");
                up_cap[cu] = ev.up_cap_ff;
                cap[vu] += ev.up_cap_ff;
            }
        }

        let n_stars = topo.stars.len();
        let n_sinks = topo.sink_pos.len();
        let mut this = CornerState {
            star_load,
            branch_d,
            star_min_d,
            star_max_d,
            cap,
            up_cap,
            arr: vec![0.0; n],
            slew: vec![0.0; n],
            star_base: vec![0.0; n_stars],
            star_base_slew: vec![0.0; n_stars],
            arrivals: vec![0.0; n_sinks],
            arrival_scratch: Vec::new(),
        };
        // Top-down arrivals over the whole tree (node 0 = root driver),
        // then discard the bookkeeping journal: this is the base state.
        // A hard assert, not a debug_assert: under a derated corner a
        // tree that was feasible at nominal can overload a buffer, and a
        // release build must fail loudly rather than hand the MCMM
        // engine a half-propagated state.
        let mut journal = Vec::new();
        let ok = this.recompute_arrivals_from(tree, tech, model, csr, 0, &mut journal);
        assert!(
            ok,
            "tree is electrically infeasible under technology `{}`",
            tech.name()
        );
        this
    }

    // --- Queries ----------------------------------------------------------

    /// Per-sink arrival times, bit-identical to [`TreeMetrics::arrivals`]
    /// of a batch evaluation.
    pub(crate) fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// Downstream capacitance at trunk node `v`.
    pub(crate) fn load_at(&self, v: usize) -> f64 {
        self.cap[v]
    }

    /// Unshielded load of star `si` (wire + sink pins).
    pub(crate) fn star_load(&self, si: usize) -> f64 {
        self.star_load[si]
    }

    /// Earliest sink arrival within star `si`.
    pub(crate) fn star_earliest(&self, si: usize) -> f64 {
        self.star_base[si] + self.star_min_d[si]
    }

    /// `(latency_ps, skew_ps)` in one fold over the stars. Within a star,
    /// arrivals are `base + d` with `d ≥ 0` constant, and `x ↦ base + x`
    /// is monotone, so the per-star extremes are attained at the extreme
    /// `d`s and the fold equals the fold over all sinks.
    pub(crate) fn latency_skew_ps(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (si, &d) in self.star_max_d.iter().enumerate() {
            if d != f64::NEG_INFINITY {
                max = max.max(self.star_base[si] + d);
                min = min.min(self.star_base[si] + self.star_min_d[si]);
            }
        }
        (max, max - min)
    }

    /// Full metrics of the current state, bit-identical to
    /// [`SynthesizedTree::evaluate`] of the same tree under the same
    /// technology.
    pub(crate) fn metrics(&self, tree: &SynthesizedTree, tech: &Technology) -> TreeMetrics {
        let stats = ArrivalStats::from_arrivals(self.arrivals.iter().copied())
            .expect("designs have at least one sink");
        let res = resources(tree, tech);
        let mut max_sink_slew = 0.0f64;
        for (si, s) in tree.topo.stars.iter().enumerate() {
            for &sk in &s.sinks {
                max_sink_slew = max_sink_slew.max(wire_slew(
                    self.star_base_slew[si],
                    self.branch_d[sk as usize],
                ));
            }
        }
        TreeMetrics {
            latency_ps: stats.latency(),
            skew_ps: stats.skew(),
            buffers: res.buffers,
            ntsvs: res.ntsvs,
            wirelength_nm: tree.topo.total_wirelength(),
            trunk_wirelength_nm: tree.topo.trunk_wirelength(),
            switched_cap_ff: res.switched_cap_ff,
            cell_area_nm2: res.cell_area_nm2,
            max_sink_slew_ps: max_sink_slew,
            arrivals: self.arrivals.clone(),
        }
    }

    // --- Dirty-path propagation ------------------------------------------

    /// Electrical evaluation of the edge into `v` under the current state.
    fn eval_edge(
        &self,
        tree: &SynthesizedTree,
        tech: &Technology,
        v: usize,
    ) -> Option<PatternEval> {
        let p = tree.patterns[v].expect("assigned pattern");
        p.eval_scaled(
            tree.topo.nodes[v].edge_len,
            self.cap[v],
            tech,
            tree.buffer_scales[v],
        )
    }

    /// Recomputes the downstream cap of `v` from its star contribution and
    /// its children's `up_cap`s, in the batch evaluator's summation order.
    fn node_cap(&self, tree: &SynthesizedTree, tech: &Technology, csr: &TreeCsr, v: usize) -> f64 {
        let topo = &tree.topo;
        let buf = tech.buffer();
        let mut cap = 0.0f64;
        if let Some(si) = topo.nodes[v].star {
            cap += if tree.star_buffers[si as usize] {
                buf.input_cap_ff()
            } else {
                self.star_load[si as usize]
            };
        }
        for &c in csr.children(v as u32) {
            cap += self.up_cap[c as usize];
        }
        cap
    }

    /// After a knob change on the edge into `edge` (its downstream cap is
    /// unchanged): refresh its presented cap, push the change up the
    /// ancestor path, and re-propagate the dirty subtree's arrivals.
    /// Returns `false` — with the journal entries in place for the owner
    /// to revert — when the path becomes infeasible.
    pub(crate) fn repropagate_edge(
        &mut self,
        tree: &SynthesizedTree,
        tech: &Technology,
        model: EvalModel,
        csr: &TreeCsr,
        edge: usize,
        journal: &mut (impl Journal + ?Sized),
    ) -> bool {
        let Some(ev) = self.eval_edge(tree, tech, edge) else {
            return false;
        };
        let mut top = edge;
        if ev.up_cap_ff != self.up_cap[edge] {
            journal.record(Entry::UpCap(edge as u32, self.up_cap[edge]));
            self.up_cap[edge] = ev.up_cap_ff;
            let p = tree.topo.nodes[edge].parent.expect("non-root") as usize;
            let new_cap = self.node_cap(tree, tech, csr, p);
            if new_cap != self.cap[p] {
                journal.record(Entry::Cap(p as u32, self.cap[p]));
                self.cap[p] = new_cap;
                top = p;
                if p != 0 {
                    match self.propagate_caps_up(tree, tech, csr, p, journal) {
                        Some(t) => top = t,
                        None => return false,
                    }
                }
            }
        }
        self.recompute_arrivals_from(tree, tech, model, csr, top, journal)
    }

    /// The state half of a star-buffer toggle (the knob was already
    /// written to the tree): refresh the star root's cap and either
    /// re-time the star alone (cap bit-unchanged) or push the cap change
    /// up and re-propagate the dirty subtree. Returns `false` — journal
    /// entries left for the owner to revert — on infeasibility.
    pub(crate) fn apply_star_toggle(
        &mut self,
        tree: &SynthesizedTree,
        tech: &Technology,
        model: EvalModel,
        csr: &TreeCsr,
        si: usize,
        journal: &mut (impl Journal + ?Sized),
    ) -> bool {
        let v = tree.topo.stars[si].node as usize;
        let new_cap = self.node_cap(tree, tech, csr, v);
        if new_cap == self.cap[v] {
            // Load at the star root is (bit-)unchanged, so no trunk state
            // moves — but the star's own stage delay did change.
            self.recompute_star(tree, tech, model, si, journal);
            return true;
        }
        journal.record(Entry::Cap(v as u32, self.cap[v]));
        self.cap[v] = new_cap;
        let top = if v == 0 {
            0
        } else {
            match self.propagate_caps_up(tree, tech, csr, v, journal) {
                Some(top) => top,
                None => return false,
            }
        };
        self.recompute_arrivals_from(tree, tech, model, csr, top, journal)
    }

    /// `cap[start]` just changed (`start` ≠ 0): walk the ancestor path,
    /// refreshing each edge's presented cap, until a presented cap (or an
    /// aggregated node cap) is bit-unchanged — typically at the first
    /// shielding buffer — or the root is reached. Returns the topmost node
    /// whose downstream cap changed (the arrival-recompute root), or
    /// `None` when an edge on the path becomes infeasible (caller reverts
    /// through the journal).
    fn propagate_caps_up(
        &mut self,
        tree: &SynthesizedTree,
        tech: &Technology,
        csr: &TreeCsr,
        start: usize,
        journal: &mut (impl Journal + ?Sized),
    ) -> Option<usize> {
        let mut top = start;
        let mut v = start;
        while v != 0 {
            let ev = self.eval_edge(tree, tech, v)?;
            if ev.up_cap_ff == self.up_cap[v] {
                break;
            }
            journal.record(Entry::UpCap(v as u32, self.up_cap[v]));
            self.up_cap[v] = ev.up_cap_ff;
            let p = tree.topo.nodes[v].parent.expect("non-root") as usize;
            let new_cap = self.node_cap(tree, tech, csr, p);
            if new_cap == self.cap[p] {
                break;
            }
            journal.record(Entry::Cap(p as u32, self.cap[p]));
            self.cap[p] = new_cap;
            top = p;
            v = p;
        }
        Some(top)
    }

    /// Re-propagates arrivals and slews over the subtree rooted at `top`
    /// (whose own incoming-edge delay is dirty; `top == 0` re-times the
    /// root driver and therefore the whole tree), refreshing every star
    /// stage it passes. Returns `false` — journal entries left for the
    /// owner to revert — if an edge in the subtree is infeasible (only
    /// possible for edges whose caps changed, which the cap pass already
    /// vetted — kept defensive).
    fn recompute_arrivals_from(
        &mut self,
        tree: &SynthesizedTree,
        tech: &Technology,
        model: EvalModel,
        csr: &TreeCsr,
        top: usize,
        journal: &mut (impl Journal + ?Sized),
    ) -> bool {
        let buf = tech.buffer();
        // Grow-only reuse: the stack is taken out of `self` for the
        // traversal (it cannot live in `self` while `self` is mutably
        // borrowed below) and put back — including on the infeasible exit —
        // so steady-state trial moves never touch the allocator.
        let mut stack = std::mem::take(&mut self.arrival_scratch);
        stack.clear();
        stack.push(top as u32);
        let mut ok = true;
        while let Some(v) = stack.pop() {
            let vu = v as usize;
            let computed = if vu == 0 {
                let nominal = buf.nominal_slew_ps();
                let a = match model {
                    EvalModel::Elmore => buf.delay_ps(self.cap[0]),
                    EvalModel::Nldm => buf.delay_nldm_ps(nominal, self.cap[0]),
                };
                Some((a, buf.output_slew_ps(nominal, self.cap[0])))
            } else {
                self.eval_edge(tree, tech, vu).map(|ev| {
                    let p = tree.topo.nodes[vu].parent.expect("non-root") as usize;
                    match (model, ev.stage) {
                        (EvalModel::Elmore, _) | (EvalModel::Nldm, None) => (
                            self.arr[p] + ev.delay_ps,
                            wire_slew(self.slew[p], ev.delay_ps),
                        ),
                        (EvalModel::Nldm, Some(st)) => {
                            let slew_in = wire_slew(self.slew[p], st.pre_delay_ps);
                            let d_buf = buf.delay_nldm_ps(slew_in, st.load_ff);
                            (
                                self.arr[p] + st.pre_delay_ps + d_buf + st.post_delay_ps,
                                wire_slew(
                                    buf.output_slew_ps(slew_in, st.load_ff),
                                    st.post_delay_ps,
                                ),
                            )
                        }
                    }
                })
            };
            let Some((new_arr, new_slew)) = computed else {
                ok = false;
                break;
            };
            journal.record(Entry::Arr(v, self.arr[vu]));
            self.arr[vu] = new_arr;
            journal.record(Entry::Slew(v, self.slew[vu]));
            self.slew[vu] = new_slew;
            if let Some(si) = tree.topo.nodes[vu].star {
                self.recompute_star(tree, tech, model, si as usize, journal);
            }
            stack.extend_from_slice(csr.children(v));
        }
        self.arrival_scratch = stack;
        ok
    }

    /// Refreshes star `si`'s base arrival/slew (through the optional
    /// refinement buffer) and its sinks' arrivals, mirroring the batch
    /// evaluator's sink stage exactly.
    fn recompute_star(
        &mut self,
        tree: &SynthesizedTree,
        tech: &Technology,
        model: EvalModel,
        si: usize,
        journal: &mut (impl Journal + ?Sized),
    ) {
        let v = tree.topo.stars[si].node as usize;
        let buf = tech.buffer();
        let mut base = self.arr[v];
        let mut base_slew = self.slew[v];
        if tree.star_buffers[si] {
            let slew_in = self.slew[v];
            base += match model {
                EvalModel::Elmore => buf.delay_ps(self.star_load[si]),
                EvalModel::Nldm => buf.delay_nldm_ps(slew_in, self.star_load[si]),
            };
            base_slew = buf.output_slew_ps(slew_in, self.star_load[si]);
        }
        journal.record(Entry::StarBase(
            si as u32,
            self.star_base[si],
            self.star_base_slew[si],
        ));
        self.star_base[si] = base;
        self.star_base_slew[si] = base_slew;
        for &sk in &tree.topo.stars[si].sinks {
            let sku = sk as usize;
            journal.record(Entry::SinkArr(sk, self.arrivals[sku]));
            self.arrivals[sku] = base + self.branch_d[sku];
        }
    }

    /// Reverts one overwritten numeric value. Knob entries belong to the
    /// owning evaluator (they mutate the tree, not this state).
    pub(crate) fn undo_entry(&mut self, e: Entry) {
        match e {
            Entry::Cap(v, old) => self.cap[v as usize] = old,
            Entry::UpCap(v, old) => self.up_cap[v as usize] = old,
            Entry::Arr(v, old) => self.arr[v as usize] = old,
            Entry::Slew(v, old) => self.slew[v as usize] = old,
            Entry::StarBase(si, base, slew) => {
                self.star_base[si as usize] = base;
                self.star_base_slew[si as usize] = slew;
            }
            Entry::SinkArr(sk, old) => self.arrivals[sk as usize] = old,
            Entry::Scale(..) | Entry::Pattern(..) | Entry::StarBuffer(..) => {
                unreachable!("knob entries are reverted by the owning evaluator")
            }
        }
    }
}

/// The mutation / undo / query surface the optimization passes run over,
/// implemented by the single-corner [`IncrementalEval`] and the
/// multi-corner [`crate::mcmm::MultiCornerEval`].
///
/// The *objective view* methods ([`TrialEval::latency_skew_ps`],
/// [`TrialEval::star_earliest`], [`TrialEval::star_load`],
/// [`TrialEval::tech`], [`TrialEval::metrics`]) are what a pass scores
/// and ranks with: the single-corner evaluator reports its one corner,
/// while the MCMM evaluator reports according to its configured
/// [`crate::mcmm::RobustObjective`] (worst-corner by default) — which is
/// how the same pass optimizes nominal or worst-corner MOES without
/// changing a line.
pub trait TrialEval {
    /// The underlying tree (knobs reflect all non-undone mutations).
    fn tree(&self) -> &SynthesizedTree;
    /// The delay model the evaluator propagates.
    fn model(&self) -> EvalModel;
    /// The technology of the objective view (see trait docs).
    fn tech(&self) -> &Technology;
    /// Full metrics of the objective view's corner.
    fn metrics(&self) -> TreeMetrics;
    /// `(latency_ps, skew_ps)` of the objective view, in one fold.
    fn latency_skew_ps(&self) -> (f64, f64);
    /// Downstream capacitance at trunk node `v` (objective view).
    fn load_at(&self, v: usize) -> f64;
    /// Unshielded load of star `si` (objective view).
    fn star_load(&self, si: usize) -> f64;
    /// Earliest sink arrival within star `si` (objective view).
    fn star_earliest(&self, si: usize) -> f64;
    /// Current drive scale of the buffer embedded in edge `edge`.
    fn buffer_scale(&self, edge: usize) -> f64;
    /// Re-sizes the buffer embedded in `edge`; `false` = rolled back.
    fn set_buffer_scale(&mut self, edge: usize, scale: f64) -> bool;
    /// Re-assigns the pattern of `edge`; `false` = rolled back.
    fn set_pattern(&mut self, edge: usize, pattern: Pattern) -> bool;
    /// Adds/removes the refinement buffer of star `si`; `false` = rolled
    /// back.
    fn set_star_buffer(&mut self, si: usize, on: bool) -> bool;
    /// Current journal position (pass to [`TrialEval::undo_to`]).
    fn mark(&self) -> usize;
    /// Reverts all state back to `mark`.
    fn undo_to(&mut self, mark: usize);
    /// Reverts the most recent mutation.
    fn undo(&mut self);
    /// Accepts all mutations so far (undo can no longer cross this point).
    fn commit(&mut self);
}

/// Incremental evaluator over a [`SynthesizedTree`]. See the module docs
/// for the dirty-path invariants.
#[derive(Debug)]
pub struct IncrementalEval<'a> {
    tree: &'a mut SynthesizedTree,
    tech: &'a Technology,
    model: EvalModel,
    /// Flat trunk adjacency (cloned from the topology's cache so the tree
    /// can stay mutably borrowed).
    csr: TreeCsr,
    /// The resident evaluation state under `tech`.
    state: CornerState,
    journal: Vec<Entry>,
    /// Journal position at the start of the last mutation.
    last_mark: usize,
}

impl<'a> IncrementalEval<'a> {
    /// Builds the full evaluation state with one batch-equivalent pass.
    ///
    /// # Panics
    ///
    /// Panics if any edge lacks a pattern or is electrically infeasible
    /// under the current scales (exactly like [`SynthesizedTree::evaluate`]).
    pub fn new(tree: &'a mut SynthesizedTree, tech: &'a Technology, model: EvalModel) -> Self {
        let csr = tree.topo.csr().clone();
        let state = CornerState::new(tree, tech, model, &csr);
        IncrementalEval {
            tree,
            tech,
            model,
            csr,
            state,
            journal: Vec::new(),
            last_mark: 0,
        }
    }

    /// The underlying tree (knobs reflect all non-undone mutations).
    pub fn tree(&self) -> &SynthesizedTree {
        self.tree
    }

    /// The delay model this evaluator propagates.
    pub fn model(&self) -> EvalModel {
        self.model
    }

    /// The technology the evaluator times against.
    pub fn tech(&self) -> &Technology {
        self.tech
    }

    /// Per-sink arrival times, bit-identical to
    /// [`TreeMetrics::arrivals`] of a batch evaluation.
    pub fn arrivals(&self) -> &[f64] {
        self.state.arrivals()
    }

    /// Downstream capacitance at trunk node `v` (what the sink end of its
    /// incoming edge drives) — the incremental replacement for the former
    /// `sizing::probe_load` full pass.
    pub fn load_at(&self, v: usize) -> f64 {
        self.state.load_at(v)
    }

    /// Unshielded load of star `si` (wire + sink pins).
    pub fn star_load(&self, si: usize) -> f64 {
        self.state.star_load(si)
    }

    /// Earliest sink arrival within star `si`.
    pub fn star_earliest(&self, si: usize) -> f64 {
        self.state.star_earliest(si)
    }

    /// Current drive scale of the buffer embedded in edge `edge`.
    pub fn buffer_scale(&self, edge: usize) -> f64 {
        self.tree.buffer_scales[edge]
    }

    /// Maximum sink arrival. Bit-identical to [`TreeMetrics::latency_ps`]:
    /// within a star, arrivals are `base + d` with `d ≥ 0` constant, and
    /// `x ↦ base + x` is monotone, so the per-star maximum is attained at
    /// the maximal `d` and equals the fold over all sinks.
    pub fn latency_ps(&self) -> f64 {
        self.latency_skew_ps().0
    }

    /// Latest minus earliest sink arrival, bit-identical to
    /// [`TreeMetrics::skew_ps`].
    pub fn skew_ps(&self) -> f64 {
        self.latency_skew_ps().1
    }

    /// `(latency_ps, skew_ps)` in one fold over the stars — the single
    /// accumulation behind [`IncrementalEval::latency_ps`] and
    /// [`IncrementalEval::skew_ps`], so the three accessors cannot drift.
    /// Trial-move inner loops evaluate their objective through this to
    /// pay one star scan instead of two.
    pub fn latency_skew_ps(&self) -> (f64, f64) {
        self.state.latency_skew_ps()
    }

    /// Full metrics of the current state, bit-identical to
    /// [`SynthesizedTree::evaluate`] on the mutated tree.
    pub fn metrics(&self) -> TreeMetrics {
        self.state.metrics(self.tree, self.tech)
    }

    // --- Mutations -------------------------------------------------------

    /// Re-sizes the buffer embedded in `edge` (a non-root trunk node).
    ///
    /// Returns `false` — with the state fully rolled back — when the new
    /// scale makes any pattern on the dirty path infeasible.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is 0 or `scale` is not positive.
    pub fn set_buffer_scale(&mut self, edge: usize, scale: f64) -> bool {
        assert!(edge != 0, "node 0 has no incoming edge");
        assert!(scale > 0.0, "buffer scale must be positive");
        let mark = self.journal.len();
        self.last_mark = mark;
        if self.tree.buffer_scales[edge] == scale {
            return true;
        }
        self.journal
            .push(Entry::Scale(edge as u32, self.tree.buffer_scales[edge]));
        self.tree.buffer_scales[edge] = scale;
        // The injected fault fires *after* propagation so the rollback
        // must revert a fully repropagated dirty path, not just the knob.
        if self.state.repropagate_edge(
            self.tree,
            self.tech,
            self.model,
            &self.csr,
            edge,
            &mut self.journal,
        ) && !fault::fault_infeasible(fault::SITE_INCREMENTAL)
        {
            true
        } else {
            self.undo_to(mark);
            false
        }
    }

    /// Re-assigns the pattern of `edge` (a non-root trunk node). Side
    /// legality is *not* checked here; run
    /// [`SynthesizedTree::validate_sides`] before accepting a final tree.
    ///
    /// Returns `false` — with the state fully rolled back — when the new
    /// pattern is infeasible on this edge or overloads an ancestor buffer.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is 0.
    pub fn set_pattern(&mut self, edge: usize, pattern: Pattern) -> bool {
        assert!(edge != 0, "node 0 has no incoming edge");
        let mark = self.journal.len();
        self.last_mark = mark;
        if self.tree.patterns[edge] == Some(pattern) {
            return true;
        }
        self.journal
            .push(Entry::Pattern(edge as u32, self.tree.patterns[edge]));
        self.tree.patterns[edge] = Some(pattern);
        if self.state.repropagate_edge(
            self.tree,
            self.tech,
            self.model,
            &self.csr,
            edge,
            &mut self.journal,
        ) && !fault::fault_infeasible(fault::SITE_INCREMENTAL)
        {
            true
        } else {
            self.undo_to(mark);
            false
        }
    }

    /// Adds or removes the skew-refinement buffer driving star `si`.
    ///
    /// Returns `false` — with the state fully rolled back — when the
    /// change overloads a buffer on the ancestor path.
    pub fn set_star_buffer(&mut self, si: usize, on: bool) -> bool {
        let mark = self.journal.len();
        self.last_mark = mark;
        if self.tree.star_buffers[si] == on {
            return true;
        }
        self.journal
            .push(Entry::StarBuffer(si as u32, self.tree.star_buffers[si]));
        self.tree.star_buffers[si] = on;
        if self.state.apply_star_toggle(
            self.tree,
            self.tech,
            self.model,
            &self.csr,
            si,
            &mut self.journal,
        ) && !fault::fault_infeasible(fault::SITE_INCREMENTAL)
        {
            true
        } else {
            self.undo_to(mark);
            false
        }
    }

    // --- Undo machinery --------------------------------------------------

    /// Current journal position; pass to [`IncrementalEval::undo_to`] to
    /// revert every mutation made after this call.
    pub fn mark(&self) -> usize {
        self.journal.len()
    }

    /// Reverts all state back to `mark` (from [`IncrementalEval::mark`]).
    pub fn undo_to(&mut self, mark: usize) {
        while self.journal.len() > mark {
            match self.journal.pop().expect("journal non-empty") {
                Entry::Scale(e, old) => self.tree.buffer_scales[e as usize] = old,
                Entry::Pattern(e, old) => self.tree.patterns[e as usize] = old,
                Entry::StarBuffer(si, old) => self.tree.star_buffers[si as usize] = old,
                numeric => self.state.undo_entry(numeric),
            }
        }
        self.last_mark = self.last_mark.min(mark);
    }

    /// Reverts the most recent mutation (no-op if it was already undone or
    /// committed).
    pub fn undo(&mut self) {
        self.undo_to(self.last_mark);
    }

    /// Accepts all mutations so far: clears the journal, making them
    /// permanent (undo can no longer cross this point).
    pub fn commit(&mut self) {
        self.journal.clear();
        self.last_mark = 0;
    }
}

impl TrialEval for IncrementalEval<'_> {
    fn tree(&self) -> &SynthesizedTree {
        IncrementalEval::tree(self)
    }
    fn model(&self) -> EvalModel {
        IncrementalEval::model(self)
    }
    fn tech(&self) -> &Technology {
        IncrementalEval::tech(self)
    }
    fn metrics(&self) -> TreeMetrics {
        IncrementalEval::metrics(self)
    }
    fn latency_skew_ps(&self) -> (f64, f64) {
        IncrementalEval::latency_skew_ps(self)
    }
    fn load_at(&self, v: usize) -> f64 {
        IncrementalEval::load_at(self, v)
    }
    fn star_load(&self, si: usize) -> f64 {
        IncrementalEval::star_load(self, si)
    }
    fn star_earliest(&self, si: usize) -> f64 {
        IncrementalEval::star_earliest(self, si)
    }
    fn buffer_scale(&self, edge: usize) -> f64 {
        IncrementalEval::buffer_scale(self, edge)
    }
    fn set_buffer_scale(&mut self, edge: usize, scale: f64) -> bool {
        IncrementalEval::set_buffer_scale(self, edge, scale)
    }
    fn set_pattern(&mut self, edge: usize, pattern: Pattern) -> bool {
        IncrementalEval::set_pattern(self, edge, pattern)
    }
    fn set_star_buffer(&mut self, si: usize, on: bool) -> bool {
        IncrementalEval::set_star_buffer(self, si, on)
    }
    fn mark(&self) -> usize {
        IncrementalEval::mark(self)
    }
    fn undo_to(&mut self, mark: usize) {
        IncrementalEval::undo_to(self, mark)
    }
    fn undo(&mut self) {
        IncrementalEval::undo(self)
    }
    fn commit(&mut self) {
        IncrementalEval::commit(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{run_dp, DpConfig, MoesWeights};
    use crate::route::HierarchicalRouter;
    use dscts_netlist::BenchmarkSpec;

    fn tree() -> (SynthesizedTree, Technology) {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(40_000);
        let cfg = DpConfig {
            moes: MoesWeights {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
                delta: 0.0,
            },
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        (SynthesizedTree::new(topo, res.assignment), tech)
    }

    #[test]
    fn construction_matches_batch() {
        let (mut t, tech) = tree();
        for model in [EvalModel::Elmore, EvalModel::Nldm] {
            let batch = t.evaluate(&tech, model);
            let inc = IncrementalEval::new(&mut t, &tech, model);
            assert_eq!(inc.metrics(), batch);
            assert_eq!(inc.latency_ps(), batch.latency_ps);
            assert_eq!(inc.skew_ps(), batch.skew_ps);
        }
    }

    #[test]
    fn scale_mutation_matches_batch_and_undo_restores() {
        let (mut t, tech) = tree();
        let edge = (1..t.topo.nodes.len())
            .find(|&i| t.patterns[i].is_some_and(|p| p.buffers() > 0))
            .expect("some buffered edge");
        let baseline = t.evaluate(&tech, EvalModel::Elmore);
        let mut inc = IncrementalEval::new(&mut t, &tech, EvalModel::Elmore);
        assert!(inc.set_buffer_scale(edge, 2.0));
        let mutated = inc.metrics();
        inc.undo();
        assert_eq!(inc.metrics(), baseline);
        assert!(inc.set_buffer_scale(edge, 2.0));
        assert_eq!(inc.metrics(), mutated);
        drop(inc);
        // The evaluator wrote the accepted knob through to the tree.
        assert_eq!(t.buffer_scales[edge], 2.0);
        assert_eq!(t.evaluate(&tech, EvalModel::Elmore), mutated);
    }

    #[test]
    fn star_buffer_mutation_matches_batch() {
        let (mut t, tech) = tree();
        let mut inc = IncrementalEval::new(&mut t, &tech, EvalModel::Nldm);
        assert!(inc.set_star_buffer(0, true));
        let mutated = inc.metrics();
        drop(inc);
        assert_eq!(t.evaluate(&tech, EvalModel::Nldm), mutated);
    }

    #[test]
    fn infeasible_scale_rolls_back() {
        let (mut t, tech) = tree();
        // A vanishing buffer cannot drive its load: mutation must refuse
        // and leave no trace.
        let edge = (1..t.topo.nodes.len())
            .find(|&i| t.patterns[i].is_some_and(|p| p.buffers() > 0))
            .expect("some buffered edge");
        let baseline = t.evaluate(&tech, EvalModel::Elmore);
        let mut inc = IncrementalEval::new(&mut t, &tech, EvalModel::Elmore);
        assert!(!inc.set_buffer_scale(edge, 1e-6));
        assert_eq!(inc.metrics(), baseline);
        assert_eq!(inc.mark(), 0, "failed mutation leaves an empty journal");
    }

    #[test]
    fn mark_groups_roll_back_together() {
        let (mut t, tech) = tree();
        let baseline = t.evaluate(&tech, EvalModel::Elmore);
        let mut inc = IncrementalEval::new(&mut t, &tech, EvalModel::Elmore);
        let mark = inc.mark();
        assert!(inc.set_star_buffer(0, true));
        assert!(inc.set_star_buffer(1, true));
        assert_ne!(inc.metrics(), baseline);
        inc.undo_to(mark);
        assert_eq!(inc.metrics(), baseline);
    }

    #[test]
    fn load_at_matches_probe_semantics() {
        // `load_at` is what `probe_load` used to recompute from scratch.
        let (mut t, tech) = tree();
        let batch = t.evaluate(&tech, EvalModel::Elmore);
        let inc = IncrementalEval::new(&mut t, &tech, EvalModel::Elmore);
        // Root load equals the cap the DP reported for the driver.
        assert!(inc.load_at(0) > 0.0);
        drop(inc);
        let _ = batch;
    }

    #[test]
    fn trial_eval_object_view_matches_inherent() {
        // The trait surface is a faithful delegate of the inherent API.
        let (mut t, tech) = tree();
        let mut inc = IncrementalEval::new(&mut t, &tech, EvalModel::Elmore);
        let inherent = inc.metrics();
        let via_trait = TrialEval::metrics(&inc);
        assert_eq!(inherent, via_trait);
        let e: &mut dyn TrialEval = &mut inc;
        assert_eq!(e.latency_skew_ps(), (inherent.latency_ps, inherent.skew_ps));
        assert!(e.set_star_buffer(0, true));
        e.undo();
        assert_eq!(e.metrics(), inherent);
    }
}
