//! Resource-aware end-point skew refinement (§III-D).
//!
//! The DP optimises latency and resources; skew can degrade. Refinement
//! inserts delay-padding buffers at the low-level clustering centroids of
//! the **fastest** end-points, pulling the minimum arrival up toward the
//! maximum. It triggers only when skew exceeds `p %` of the maximum latency
//! (`p = 23` in the experiments) and refines at most
//! `n = min(N·t, m)` end-points, with `m = 33` and the adaptive scale
//! factor `t(N)` of Fig. 8.
//!
//! *Interpretation note.* The paper says end-points are refined "in
//! descending order of delay"; since inserting a buffer **adds** delay,
//! reducing skew requires padding the *earliest* end-points, i.e.
//! descending order of slack (max-latency − delay). That reading is
//! implemented here and verified by the Fig. 11 bench: skew drops sharply
//! while latency and buffer count barely move.
//!
//! The optimizer is packaged as [`EndpointRefinePass`] for the composable
//! [`crate::opt`] schedule API — the default pipeline schedule is exactly
//! this one pass — with [`refine`] kept as a thin, bit-identical wrapper.

use crate::incremental::{IncrementalEval, TrialEval};
use crate::opt::{MultiOptCtx, OptCtx, OptPass, PassStats};
use crate::resilience::CancelToken;
use crate::synth::{EvalModel, SynthesizedTree, TreeMetrics};
use dscts_tech::Technology;
use std::borrow::Cow;

/// Configuration of the refinement step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewConfig {
    /// Trigger threshold: refine only when `skew > p% · latency`.
    pub trigger_percent: f64,
    /// Maximum refined end-points `m`.
    pub max_endpoints: usize,
    /// Maximum refinement rounds (the paper describes one pass; more
    /// rounds keep chasing the trigger condition).
    pub max_rounds: usize,
}

impl Default for SkewConfig {
    /// The paper's setting: `p = 23`, `m = 33`, one pass.
    fn default() -> Self {
        SkewConfig {
            trigger_percent: 23.0,
            max_endpoints: 33,
            max_rounds: 1,
        }
    }
}

/// What the refinement did.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineReport {
    /// Whether the trigger condition held and refinement ran.
    pub triggered: bool,
    /// Refinement buffers added (over all rounds).
    pub buffers_added: usize,
    /// Metrics before refinement.
    pub before: TreeMetrics,
    /// Metrics after refinement (equals `before` when not triggered).
    pub after: TreeMetrics,
}

/// The adaptive scale factor `t` as a function of the sink count `N`
/// (Fig. 8): `t = 0.1` up to `N/10 000 = 0.6`, falling linearly to
/// `t = 0.06` at `N/10 000 = 1.0`, constant beyond.
///
/// ```
/// use dscts_core::skew::scale_factor;
/// assert_eq!(scale_factor(1_000), 0.1);
/// assert_eq!(scale_factor(10_000), 0.06);
/// assert!((scale_factor(8_000) - 0.08).abs() < 1e-12);
/// ```
pub fn scale_factor(n_sinks: usize) -> f64 {
    let x = n_sinks as f64 / 10_000.0;
    if x <= 0.6 {
        0.1
    } else if x >= 1.0 {
        0.06
    } else {
        0.1 - 0.04 * (x - 0.6) / 0.4
    }
}

/// Number of end-points to refine for a design with `n_sinks` sinks.
pub fn endpoint_budget(n_sinks: usize, max_endpoints: usize) -> usize {
    ((n_sinks as f64 * scale_factor(n_sinks)) as usize).min(max_endpoints)
}

/// The §III-D end-point refinement optimizer as a composable [`OptPass`].
///
/// This is the default pipeline's whole optimization schedule (see
/// [`crate::opt::OptSchedule::default_post_cts`]); [`refine`] wraps it
/// for one-shot callers. [`PassStats::triggered`] reports whether the
/// skew-over-latency trigger condition held.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EndpointRefinePass {
    /// Trigger, budget and round cap.
    pub cfg: SkewConfig,
}

impl EndpointRefinePass {
    /// The pass's stable name. Reserved: the pipeline reconstructs
    /// [`RefineReport`] ([`crate::Outcome::refinement`]) from the pass
    /// carrying this name, so a custom [`OptPass`] must not reuse it —
    /// its stats would be misread as §III-D refinement numbers.
    pub const NAME: &'static str = "endpoint-refine";

    /// A pass with the given configuration.
    pub fn new(cfg: SkewConfig) -> Self {
        EndpointRefinePass { cfg }
    }

    /// Runs the refinement rounds over an existing evaluator — any
    /// [`TrialEval`], so the same rounds pad nominal end-points over an
    /// [`IncrementalEval`] or worst-corner end-points over a
    /// [`crate::mcmm::MultiCornerEval`] (trigger, ranking and the
    /// accept/rollback guard all read the objective view). This is the
    /// entire optimizer — [`refine`] and both [`OptPass`] execution
    /// paths delegate here, so they cannot drift.
    pub fn run_on<E: TrialEval>(&self, eval: &mut E) -> PassStats {
        self.run_on_cancel(eval, None)
    }

    /// [`EndpointRefinePass::run_on`] under a run budget. The token is
    /// polled between padded end-points and each attempted pad is charged
    /// to the trial budget; cancellation ends the current round early (the
    /// round's accept-or-rollback guard still runs, so the tree is left in
    /// a committed, skew-improving state). `None` is bit-identical to
    /// [`EndpointRefinePass::run_on`].
    pub fn run_on_cancel<E: TrialEval>(
        &self,
        eval: &mut E,
        cancel: Option<&CancelToken>,
    ) -> PassStats {
        let cfg = &self.cfg;
        let n_sinks = eval.tree().topo.sink_pos.len();
        let budget_per_round = endpoint_budget(n_sinks, cfg.max_endpoints);
        let mut stats = PassStats {
            triggered: false,
            ..PassStats::default()
        };
        let mut cancelled = false;

        for _ in 0..cfg.max_rounds {
            let (current_latency, current_skew) = eval.latency_skew_ps();
            if current_skew <= cfg.trigger_percent / 100.0 * current_latency {
                break;
            }
            stats.triggered = true;
            // Rank stars by their earliest sink arrival (fastest first).
            let mut star_arrival: Vec<(usize, f64)> = (0..eval.tree().topo.stars.len())
                .filter(|&si| !eval.tree().star_buffers[si])
                .map(|si| (si, eval.star_earliest(si)))
                .collect();
            star_arrival.sort_by(|a, b| a.1.total_cmp(&b.1));

            // Estimate the padding each buffer adds: the buffer delay
            // driving the star load (shielding the trunk barely moves its
            // arrival).
            let mut added_this_round = 0usize;
            let round_mark = eval.mark();
            for (si, earliest) in star_arrival {
                if added_this_round >= budget_per_round {
                    break;
                }
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    cancelled = true;
                    break;
                }
                let pad = eval.tech().buffer().delay_ps(eval.star_load(si));
                // Resource-aware guard: do not overshoot the current
                // maximum.
                if earliest + pad > current_latency {
                    continue;
                }
                stats.attempted += 1;
                if let Some(token) = cancel {
                    token.record_trial();
                }
                if eval.set_star_buffer(si, true) {
                    added_this_round += 1;
                }
            }
            if added_this_round == 0 {
                break;
            }
            // Shielding the trunk shifts other arrivals too; accept the
            // round only when skew actually improved, else roll it back.
            let (round_latency, round_skew) = eval.latency_skew_ps();
            if round_skew < current_skew && round_latency <= current_latency + 1e-9 {
                stats.accepted += added_this_round;
                eval.commit();
            } else {
                eval.undo_to(round_mark);
                break;
            }
            if cancelled {
                break;
            }
        }
        stats
    }
}

impl OptPass for EndpointRefinePass {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed(Self::NAME)
    }

    fn run(&self, ctx: &mut OptCtx<'_>) -> PassStats {
        let cancel = ctx.cancel().cloned();
        self.run_on_cancel(ctx.eval_mut(), cancel.as_ref())
    }

    fn run_multi(&self, ctx: &mut MultiOptCtx<'_>) -> PassStats {
        let cancel = ctx.cancel().cloned();
        self.run_on_cancel(ctx.eval_mut(), cancel.as_ref())
    }
}

/// Runs skew refinement in place, adding end-point buffers at low-level
/// centroids. Returns a [`RefineReport`].
///
/// A centroid is only padded when (a) it does not already carry a
/// refinement buffer and (b) the added buffer delay will not push its
/// sinks beyond the current maximum arrival (the *resource-aware* guard
/// that keeps latency flat in Fig. 11).
///
/// Each candidate buffer is applied through [`IncrementalEval`], so a
/// round costs O(endpoints × (depth + subtree)) instead of a full tree
/// evaluation per round, and a rejected round is a journal rollback.
///
/// Thin wrapper over [`EndpointRefinePass::run_on`] — bit-identical to
/// scheduling an [`EndpointRefinePass`] through the
/// [`crate::opt::PassManager`].
pub fn refine(
    tree: &mut SynthesizedTree,
    tech: &Technology,
    model: EvalModel,
    cfg: &SkewConfig,
) -> RefineReport {
    let mut eval = IncrementalEval::new(tree, tech, model);
    let before = eval.metrics();
    let stats = EndpointRefinePass::new(*cfg).run_on(&mut eval);
    let after = eval.metrics();
    RefineReport {
        triggered: stats.triggered,
        buffers_added: stats.accepted,
        before,
        after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{run_dp, DpConfig, MoesWeights};
    use crate::route::HierarchicalRouter;
    use crate::synth::SynthesizedTree;
    use dscts_netlist::BenchmarkSpec;

    #[test]
    fn scale_factor_matches_fig8() {
        // Plateau, linear ramp, floor.
        assert_eq!(scale_factor(0), 0.1);
        assert_eq!(scale_factor(6_000), 0.1);
        assert_eq!(scale_factor(10_000), 0.06);
        assert_eq!(scale_factor(50_000), 0.06);
        let mid = scale_factor(8_000);
        assert!((mid - 0.08).abs() < 1e-12);
        // Monotone non-increasing.
        let mut prev = f64::INFINITY;
        for n in (0..20_000).step_by(500) {
            let t = scale_factor(n);
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn endpoint_budget_caps_at_m() {
        // All Table II designs have N·t > 33, so n = m = 33.
        for spec in BenchmarkSpec::all() {
            assert_eq!(endpoint_budget(spec.num_ffs, 33), 33);
        }
        // Tiny designs scale with N.
        assert_eq!(endpoint_budget(100, 33), 10);
    }

    #[test]
    fn refinement_reduces_skew_without_hurting_latency() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = dscts_tech::Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(20_000);
        // Latency-greedy MOES tends to leave skew on the table.
        let cfg = DpConfig {
            moes: MoesWeights {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
                delta: 0.0,
            },
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        let mut tree = SynthesizedTree::new(topo, res.assignment);
        let report = refine(
            &mut tree,
            &tech,
            EvalModel::Elmore,
            &SkewConfig {
                trigger_percent: 0.0, // force the pass for the test
                ..SkewConfig::default()
            },
        );
        assert!(report.triggered);
        assert!(report.after.skew_ps <= report.before.skew_ps + 1e-9);
        // Latency must not regress: padding only the fastest end-points.
        assert!(report.after.latency_ps <= report.before.latency_ps + 1e-9);
        assert_eq!(
            report.after.buffers,
            report.before.buffers + report.buffers_added as u32
        );
        assert!(report.buffers_added <= 33);
    }

    #[test]
    fn refinement_respects_trigger() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = dscts_tech::Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(20_000);
        let res = run_dp(&topo, &tech, &DpConfig::default());
        let mut tree = SynthesizedTree::new(topo, res.assignment);
        let report = refine(
            &mut tree,
            &tech,
            EvalModel::Elmore,
            &SkewConfig {
                trigger_percent: 1_000.0, // never triggers
                ..SkewConfig::default()
            },
        );
        assert!(!report.triggered);
        assert_eq!(report.buffers_added, 0);
        assert_eq!(report.before, report.after);
    }
}
