//! Peak resident-set-size measurement for the scaling bench tier.
//!
//! Linux exposes a process's high-water RSS mark as the `VmHWM` line of
//! `/proc/self/status` (kilobytes). That is the number the scaling tier
//! records next to each stage's wall clock: it is maintained by the
//! kernel with no sampling loop, survives frees (it is a high-water
//! mark, not the current RSS), and costs one small file read.
//!
//! On non-Linux targets — or if procfs is unavailable — the probe
//! degrades to [`None`] and callers simply omit the column; nothing in
//! the pipeline depends on the value being present.
//!
//! Because `VmHWM` is process-wide and monotone non-decreasing, the
//! per-stage values recorded by the pipeline tell you *which stage first
//! pushed the process to a given footprint*, not how much each stage
//! allocated in isolation.

/// The process's peak resident set size in **bytes**, if the platform
/// exposes it.
///
/// Reads `VmHWM` from `/proc/self/status` on Linux; returns [`None`]
/// anywhere else (or when procfs is missing/unparseable).
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        parse_vm_hwm_kb(&std::fs::read_to_string("/proc/self/status").ok()?).map(|kb| kb * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extracts the `VmHWM` value (in kB) from a `/proc/<pid>/status` body.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tdscts\nVmPeak:\t  123456 kB\nVmHWM:\t   98304 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(98_304));
    }

    #[test]
    fn missing_or_garbled_line_yields_none() {
        assert_eq!(parse_vm_hwm_kb("Name:\tdscts\n"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_probe_reports_a_plausible_peak() {
        let peak = peak_rss_bytes().expect("procfs available on Linux");
        // Any live Rust test process has touched at least a megabyte and
        // far less than 16 TiB.
        assert!(peak > 1 << 20, "peak {peak} implausibly small");
        assert!(peak < 1 << 44, "peak {peak} implausibly large");
    }

    #[test]
    fn peak_is_monotone_across_an_allocation() {
        let before = peak_rss_bytes();
        // 32 MiB touched page-by-page so the kernel must commit it.
        let mut buf = vec![0u8; 32 << 20];
        for i in (0..buf.len()).step_by(4096) {
            buf[i] = 1;
        }
        std::hint::black_box(&buf);
        let after = peak_rss_bytes();
        match (before, after) {
            (Some(b), Some(a)) => assert!(a >= b, "high-water mark went down: {b} -> {a}"),
            // Non-Linux: the probe must consistently decline.
            (None, None) => {}
            other => panic!("probe availability flapped: {other:?}"),
        }
    }
}
