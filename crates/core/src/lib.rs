//! Systematic multi-objective double-side clock tree synthesis.
//!
//! This crate is the primary contribution of the reproduced paper (Jiang et
//! al., DAC 2025): a CTS flow that designs front-side *and* back-side clock
//! routing **concurrently**, instead of flipping nets of a finished
//! front-side tree. The pipeline (Fig. 4):
//!
//! 1. [`HierarchicalRouter`] — dual-level clustering + hierarchical DME
//!    (§III-B);
//! 2. [`run_dp`] — concurrent buffer & nTSV insertion over the edge-pattern
//!    design space P1–P6, selected by the multi-objective enhancement score
//!    (§III-C);
//! 3. [`opt`] — the composable post-CTS optimization layer (§III-D and
//!    beyond): an [`OptPass`] trait and [`PassManager`] over a shared
//!    [`OptCtx`], with the paper's end-point refinement
//!    ([`skew::EndpointRefinePass`]) as the default schedule, plus greedy
//!    sizing ([`sizing::SizingPass`]), seeded simulated annealing
//!    ([`AnnealedSizingPass`]) and pattern local search
//!    ([`PatternSearchPass`]);
//! 4. [`dse`] — design-space exploration by sweeping the fanout threshold
//!    that switches DP nodes between full and intra-side modes (§III-E),
//!    batched by [`dse::SweepEngine`]: one routing run per design, one DP
//!    run per mode-equivalence class of the sweep, every point scored on
//!    the tree the configured optimization schedule produces.
//!
//! The comparison methods of the paper's evaluation are implemented in
//! [`baseline`]: an OpenROAD-like H-tree CTS and the post-CTS back-side
//! flipping flows of refs. \[2\] (latency-driven), \[7\] (fanout-driven) and
//! \[6\] (timing-criticality-driven).
//!
//! The pipeline is a *staged engine*: each phase is a [`Stage`] over a
//! [`PipelineCtx`] blackboard, individually wall-clocked into
//! [`Outcome::stages`] (the optimize stage additionally reports one
//! `opt:<name>` timing per executed pass), with data-dependent failures
//! reported as [`CtsError`] through [`DsCts::try_run`]. Routing and DP
//! hot paths run rayon-parallel with bit-identical results at any thread
//! count.
//!
//! Every optimization pass runs on the [`IncrementalEval`] engine: full
//! evaluation state stays resident and each trial move re-propagates only
//! its dirty ancestor path and subtree, with journaled undo for rejected
//! moves — bit-identical to [`SynthesizedTree::evaluate`] and orders of
//! magnitude faster in the inner loops. The legacy free functions
//! ([`sizing::resize_for_skew`], [`skew::refine`]) remain as thin,
//! bit-identical wrappers over the corresponding passes.
//!
//! Most users want the [`DsCts`] pipeline builder; custom optimization
//! schedules plug in through [`DsCts::schedule`] (see the [`opt`] module
//! docs for a worked custom-pass example):
//!
//! ```
//! use dscts_core::opt::OptSchedule;
//! use dscts_core::{AnnealedSizingPass, DsCts, EndpointRefinePass};
//! use dscts_netlist::BenchmarkSpec;
//! use dscts_tech::Technology;
//!
//! let design = BenchmarkSpec::c4_riscv32i().generate();
//! let outcome = DsCts::new(Technology::asap7()).run(&design);
//! assert!(outcome.metrics.latency_ps > 0.0);
//! assert!(outcome.metrics.ntsvs > 0); // double-side by default
//!
//! // Same pipeline, richer post-CTS schedule: refine then anneal sizes.
//! let tuned = DsCts::new(Technology::asap7())
//!     .schedule(
//!         OptSchedule::new()
//!             .with(EndpointRefinePass::default())
//!             .with(AnnealedSizingPass::default()),
//!     )
//!     .run(&design);
//! // Annealed sizing only re-scales existing buffers: resources match,
//! // and its MOES objective never degrades.
//! assert_eq!(tuned.metrics.buffers, outcome.metrics.buffers);
//! let w = dscts_core::AnnealConfig::default().weights;
//! let obj = |m| dscts_core::opt::moes_objective_of(&w, m);
//! assert!(obj(&tuned.metrics) <= obj(&outcome.metrics) + 1e-9);
//! ```
//!
//! # Failure model & recovery
//!
//! The engine is built to be embedded in long-lived services, so every
//! failure is *typed*, *bounded* and — where the failure is data-dependent
//! rather than a bug — *recoverable*. The [`resilience`] module holds the
//! machinery; this section is the contract.
//!
//! **Error taxonomy.** All failures surface as [`CtsError`] from
//! [`DsCts::try_run`] (the panicking [`DsCts::run`] wrapper re-panics with
//! the display text for legacy consumers). Three families:
//!
//! - *Input errors* — [`CtsError::EmptyDesign`],
//!   [`CtsError::MalformedTrunk`], [`CtsError::InvalidTopology`]: the
//!   design or routed topology is structurally unusable. Not retried.
//! - *Data-dependent infeasibilities* — [`CtsError::NoFeasiblePattern`],
//!   [`CtsError::NoRootCandidate`], [`CtsError::IllegalSides`]: a valid
//!   input has no solution under the *current* configuration. These are
//!   exactly the errors the recovery ladder retries.
//! - *Execution faults* — [`CtsError::Internal`] (a panic caught at a
//!   stage or parallel-worker isolation boundary; carries the stage name
//!   and panic payload) and [`CtsError::Cancelled`] (the run budget
//!   expired inside a mandatory stage). Internal errors are bugs or
//!   injected faults and are never retried.
//!
//! **Budget semantics.** [`DsCts::budget`] attaches a
//! [`resilience::RunBudget`] (wall-clock deadline and/or max optimization
//! trials). The minted [`resilience::CancelToken`] is checked
//! cooperatively at stage boundaries and inside the long loops (per-height
//! DP propagation, DSE sweep classes, optimization trial loops, MCMM
//! corner fan-out). Cancellation before the tree exists (route/insertion)
//! aborts with [`CtsError::Cancelled`]; cancellation during optimization
//! *truncates the schedule* instead — remaining passes are skipped, the
//! cheap evaluation stage still runs, and the result is a valid partial
//! [`Outcome`] with [`Outcome::degraded`] set. With no budget configured,
//! results are bit-identical to an unbudgeted build.
//!
//! **Recovery ladder.** [`DsCts::recovery`] attaches a
//! [`resilience::RecoveryPolicy`]. On a recoverable error the pipeline
//! deterministically retries with cumulative relaxations, in ladder order:
//! (1) widen the pattern alphabet to [`PatternSet::Extended`], (2) raise
//! `DpConfig::max_cands` ×4, (3) fall back to single-side. Every rung is
//! recorded as a [`resilience::RecoveryStep`] in [`Outcome::recovery`],
//! so a successful recovery documents exactly what it cost; an exhausted
//! ladder returns the last error. No randomness: identical inputs take
//! identical ladders.
//!
//! **Fault injection.** The `fault-inject` feature compiles named
//! injection sites into the hot paths ([`resilience::fault`]); the
//! harness's proptests assert that every injected failure yields a typed
//! error (never a propagated panic) and leaves evaluator journals fully
//! rolled back. Without the feature the checks are constants the
//! optimizer deletes.
//!
//! # Observability
//!
//! The pipeline is instrumented with the zero-dependency
//! [`telemetry`] crate (`dscts-telemetry`, re-exported here). With no
//! collector installed every site is one relaxed atomic load — outcomes
//! stay bit-identical and the sizing hot loop allocation-free (both are
//! asserted by tests). Install one with
//! `telemetry::install(Arc::new(telemetry::Telemetry::new()))` and the
//! engine records:
//!
//! - **Span histograms** (`span.<site>`, seconds): one per pipeline
//!   stage (`span.route`, `span.insertion`, `span.optimize`,
//!   `span.evaluate` — equal to the [`Outcome::stages`] wall clocks),
//!   `span.dp` for whole DP runs, `span.dse.class` per mode-equivalence
//!   class, and `span.pass.<name>` per optimization pass.
//! - **Counters**: `pipeline.runs`, `pipeline.degraded`,
//!   `pipeline.panics_caught`, `pipeline.recovery.<rung>` (one per
//!   [`Relaxation::label`]), `dp.height_groups`, `dp.nodes`,
//!   `dp.suffix_reused` (DP nodes whose candidate sets were copied from
//!   a lent [`DpSuffixCache`]), `dse.classes`, `dse.classes_skipped`
//!   (classes a learned sweep pruned), `opt.trials_attempted`,
//!   `opt.trials_accepted`, `mcmm.corner_evals`, and
//!   `fault.unfired_arms` (chaos arms a dropped fault plan never
//!   consumed).
//! - **Gauges**: `process.peak_rss_bytes` (high-water mark).
//! - **Sweep-outcome records**: one per evaluated
//!   [`dse::ModeClass`] — the pre-DP [`dse::ClassFeatures`] plus
//!   resulting metrics — the training rows learned DSE consumes.
//!
//! # Learned DSE
//!
//! [`dse::SweepEngine::sweep_fanout_learned`] turns those sweep records
//! into speed: a [`dse::MetricPredictor`] (the `dscts-learn` crate ships
//! ridge and GBDT regressors plus a JSON model format) predicts every
//! mode class's metrics from its cheap pre-DP [`dse::ClassFeatures`],
//! and only the predicted Pareto band — plus a few-shot calibration
//! subset — is evaluated exactly. Predictions only rank; every reported
//! point is exact and bit-identical to the full sweep's, so a perfect
//! band loses *zero* Pareto-frontier points while skipping the
//! dominated classes entirely (the `baseline --pr10` gate asserts
//! exactly this on the Table II benchmarks). The result also reports
//! [`dse::LearnedSweepOutcome::guaranteed_vs_predicted`] — how much
//! better than the evaluated frontier any *skipped* class claimed to be
//! — so a pruned sweep quantifies its own risk.
//!
//! Export via [`telemetry::Telemetry::snapshot`] →
//! [`telemetry::TelemetrySnapshot::to_jsonl`]: self-describing JSON
//! lines (`{"record":"counter"|"gauge"|"histogram"|"sweep",...}`)
//! written by a hand-rolled serializer and checked in-process by the
//! crate's own JSON parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod dp;
pub mod dse;
mod error;
pub mod incremental;
pub mod mcmm;
pub mod opt;
mod pattern;
mod pipeline;
pub mod resilience;
mod route;
pub mod rss;
pub mod sizing;
pub mod skew;
mod synth;
mod tree;

/// The zero-dependency observability layer (`dscts-telemetry`),
/// re-exported so pipeline embedders install collectors without a
/// separate dependency. See the crate-level "Observability" section for
/// the metric names this engine emits.
pub use dscts_telemetry as telemetry;

pub use dp::{
    mode_vector, run_dp, try_run_dp, try_run_dp_suffix_cached, try_run_dp_with_modes,
    try_run_dp_with_modes_cancel, DpConfig, DpResult, DpSuffixCache, ModeRule, MoesWeights,
    PruneMode, RootCand,
};
pub use error::CtsError;
pub use incremental::{IncrementalEval, TrialEval};
pub use mcmm::{CornerReport, MultiCornerEval, RobustMetrics, RobustObjective};
pub use opt::{
    AnnealConfig, AnnealedSizingPass, OptCtx, OptPass, OptSchedule, PassManager, PassReport,
    PassStats, PatternSearchConfig, PatternSearchPass, ScheduleReport,
};
pub use pattern::{BufferStage, Mode, Pattern, PatternEval, PatternSet};
pub use pipeline::{
    DsCts, EvalStage, InsertionStage, OptimizeStage, Outcome, PipelineCtx, RouteStage, Stage,
    StageTiming,
};
pub use resilience::{CancelToken, RecoveryPolicy, RecoveryStep, Relaxation, RunBudget};
pub use route::{HierarchicalRouter, RoutingStyle};
pub use sizing::SizingPass;
pub use skew::EndpointRefinePass;
pub use synth::{EvalModel, SynthesizedTree, TreeMetrics};
pub use tree::{ClockTopo, LeafStar, TrunkNode};

// Send + Sync hygiene: the service layer shares routed artifacts across a
// worker pool and hands pipelines/tokens between threads, so thread
// safety of these types is API contract, not accident. Assert it at
// compile time (the hand-rolled equivalent of `static_assertions`);
// losing an impl — e.g. by caching with `Rc` or a raw pointer inside
// `ClockTopo` — becomes a build error here instead of a distant
// type-inference error in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ClockTopo>();
    assert_send_sync::<dscts_geom::TreeCsr>();
    assert_send_sync::<dscts_tech::Technology>();
    assert_send_sync::<dscts_tech::CornerSet>();
    assert_send_sync::<OptSchedule>();
    assert_send_sync::<SynthesizedTree>();
    assert_send_sync::<DsCts>();
    assert_send_sync::<CancelToken>();
    assert_send_sync::<CtsError>();
};
