//! Composable post-CTS optimization passes over [`IncrementalEval`].
//!
//! The paper's post-CTS phase (§III-D) is one fixed refinement loop, but
//! every optimizer this repo has grown since — greedy buffer sizing,
//! end-point refinement, and now annealed sizing and pattern local search
//! — is the *same shape*: a trial-move loop over a resident incremental
//! evaluation of the tree, accepting moves that improve an objective and
//! rolling rejected ones back through the journal. This module makes that
//! shape a first-class API:
//!
//! * [`OptPass`] — one optimizer: a name and a `run` over a shared
//!   [`OptCtx`] (the [`IncrementalEval`], technology, delay model, and a
//!   seeded RNG), returning [`PassStats`].
//! * [`OptSchedule`] — an ordered, cloneable list of passes plus the RNG
//!   seed; the value a [`crate::DsCts`] pipeline carries.
//! * [`PassManager`] — executes a schedule over one evaluator, wrapping
//!   each pass with before/after metrics and a wall clock into a
//!   [`PassReport`] (folded into [`crate::Outcome::stages`] as
//!   `opt:<name>` timings by the pipeline).
//!
//! The pre-existing optimizers are re-expressed as passes —
//! [`crate::sizing::SizingPass`] and [`crate::skew::EndpointRefinePass`]
//! — with the legacy free functions kept as thin, bit-identical wrappers.
//! Because [`IncrementalEval`] is bit-identical to the batch evaluator
//! after every mutation, running several passes over one shared evaluator
//! produces exactly the trees the legacy chain of per-pass evaluators
//! produced (property-tested in `opt_proptests`).
//!
//! Two new optimizers ship on top of the API, closing both remaining
//! ROADMAP items unlocked by the incremental engine:
//!
//! * [`AnnealedSizingPass`] — seeded, deterministic simulated annealing
//!   over [`IncrementalEval::set_buffer_scale`] (and optionally
//!   [`IncrementalEval::set_star_buffer`]). The journal is the reject
//!   path: the pass commits only when a new best configuration appears
//!   and finishes by reverting to the last one — so it can *never*
//!   degrade the objective it anneals on.
//! * [`PatternSearchPass`] — post-DP hill climbing over
//!   [`IncrementalEval::set_pattern`] swaps. Only swaps preserving both
//!   endpoint sides are proposed (which provably preserves the §III-C
//!   connectivity constraint), and
//!   [`SynthesizedTree::validate_sides`] gates the final result
//!   defensively.
//!
//! # Plugging a custom pass into the pipeline
//!
//! ```
//! use dscts_core::opt::{OptCtx, OptPass, OptSchedule, PassStats};
//! use dscts_core::DsCts;
//! use dscts_netlist::BenchmarkSpec;
//! use dscts_tech::Technology;
//! use std::borrow::Cow;
//!
//! /// Upsizes every pattern buffer to 2x drive where feasible.
//! struct MaxDrivePass;
//!
//! impl OptPass for MaxDrivePass {
//!     fn name(&self) -> Cow<'static, str> {
//!         Cow::Borrowed("max-drive")
//!     }
//!
//!     fn run(&self, ctx: &mut OptCtx<'_>) -> PassStats {
//!         let eval = ctx.eval_mut();
//!         let mut stats = PassStats::default();
//!         for v in 1..eval.tree().topo.nodes.len() {
//!             if eval.tree().patterns[v].is_some_and(|p| p.buffers() > 0) {
//!                 stats.attempted += 1;
//!                 // An overloaded trial rolls itself back and returns false.
//!                 if eval.set_buffer_scale(v, 2.0) {
//!                     stats.accepted += 1;
//!                 }
//!             }
//!         }
//!         eval.commit();
//!         stats
//!     }
//! }
//!
//! let design = BenchmarkSpec::c4_riscv32i().generate();
//! let outcome = DsCts::new(Technology::asap7())
//!     .schedule(OptSchedule::new().with(MaxDrivePass))
//!     .run(&design);
//! let report = outcome.optimization.as_ref().expect("schedule ran");
//! assert_eq!(report.passes.len(), 1);
//! assert!(outcome.stage_seconds("opt:max-drive").is_some());
//! ```

use crate::dp::MoesWeights;
use crate::incremental::{IncrementalEval, TrialEval};
use crate::mcmm::{MultiCornerEval, RobustObjective};
use crate::pattern::PatternSet;
use crate::resilience::CancelToken;
use crate::skew::{EndpointRefinePass, SkewConfig};
use crate::synth::{EvalModel, SynthesizedTree, TreeMetrics};
use dscts_tech::{CornerSet, Technology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::borrow::Cow;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

/// The shared state one optimization schedule threads through its passes:
/// the resident evaluator (which borrows the tree mutably and writes
/// accepted knobs through) and a deterministic RNG.
///
/// The evaluator defaults to the single-corner [`IncrementalEval`]; a
/// multi-corner schedule runs over `OptCtx<MultiCornerEval>` (the
/// [`MultiOptCtx`] alias) built by [`OptCtx::new_multi`], where every
/// trial move fans out to all corners and the objective view follows the
/// configured [`RobustObjective`]. The technology and delay model are
/// reachable through the evaluator, so a pass needs nothing beyond this
/// context.
#[derive(Debug)]
pub struct OptCtx<'t, E: TrialEval = IncrementalEval<'t>> {
    eval: E,
    rng: SmallRng,
    cancel: Option<CancelToken>,
    _tree: PhantomData<&'t mut SynthesizedTree>,
}

/// An [`OptCtx`] over the multi-corner evaluator — what
/// [`OptPass::run_multi`] receives.
pub type MultiOptCtx<'t> = OptCtx<'t, MultiCornerEval<'t>>;

impl<'t> OptCtx<'t> {
    /// Builds the single-corner context: one full evaluation pass over
    /// `tree`, plus an RNG seeded with `seed`.
    pub fn new(
        tree: &'t mut SynthesizedTree,
        tech: &'t Technology,
        model: EvalModel,
        seed: u64,
    ) -> Self {
        OptCtx {
            eval: IncrementalEval::new(tree, tech, model),
            rng: SmallRng::seed_from_u64(seed),
            cancel: None,
            _tree: PhantomData,
        }
    }
}

impl<'t> MultiOptCtx<'t> {
    /// Builds the multi-corner context: one full evaluation pass per
    /// corner over the same `tree`, scoring through `objective`.
    pub fn new_multi(
        tree: &'t mut SynthesizedTree,
        corners: &'t CornerSet,
        model: EvalModel,
        objective: RobustObjective,
        seed: u64,
    ) -> Self {
        OptCtx {
            eval: MultiCornerEval::new(tree, corners, model).with_objective(objective),
            rng: SmallRng::seed_from_u64(seed),
            cancel: None,
            _tree: PhantomData,
        }
    }
}

impl<'t, E: TrialEval> OptCtx<'t, E> {
    /// The resident evaluator (read-only).
    pub fn eval(&self) -> &E {
        &self.eval
    }

    /// The resident evaluator, for mutations.
    pub fn eval_mut(&mut self) -> &mut E {
        &mut self.eval
    }

    /// The evaluator and the RNG together — for passes (like annealing)
    /// that interleave trial moves with random draws.
    pub fn parts(&mut self) -> (&mut E, &mut SmallRng) {
        (&mut self.eval, &mut self.rng)
    }

    /// The deterministic per-pass RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The technology of the evaluator's objective view.
    pub fn tech(&self) -> &Technology {
        self.eval.tech()
    }

    /// The delay model the evaluator propagates.
    pub fn model(&self) -> EvalModel {
        self.eval.model()
    }

    /// Re-seeds the RNG. The [`PassManager`] calls this before every pass
    /// (with `schedule seed + pass index`) so a pass's random stream never
    /// depends on how many draws its predecessors consumed.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// The run's cooperative cancellation token, if a
    /// [`crate::resilience::RunBudget`] governs this schedule. Built-in
    /// passes poll it inside their trial loops and charge each attempted
    /// move to the trial budget; custom passes that ignore it are still
    /// truncated at the next pass boundary.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Attaches (or clears) the cancellation token.
    pub fn set_cancel(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }
}

/// What one pass did, in move counts. The [`PassManager`] wraps this with
/// metrics and wall clock into a [`PassReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Trial moves proposed (including infeasible and rejected ones).
    pub attempted: usize,
    /// Moves accepted into the final tree.
    pub accepted: usize,
    /// Whether the pass's own run condition held (always `true` for
    /// unconditional passes; [`EndpointRefinePass`] reports its §III-D
    /// skew trigger here).
    pub triggered: bool,
}

impl Default for PassStats {
    fn default() -> Self {
        PassStats {
            attempted: 0,
            accepted: 0,
            triggered: true,
        }
    }
}

/// One composable post-CTS optimization pass.
///
/// Implementations mutate the tree exclusively through
/// [`OptCtx::eval_mut`] and leave the evaluator in a committed, legal
/// state: an accepted move is [`IncrementalEval::commit`]ted, a rejected
/// trial is undone through the journal. Passes must be deterministic
/// given the context's RNG seed.
pub trait OptPass: Send + Sync {
    /// Stable identifier, used in reports and `opt:<name>` stage timings.
    fn name(&self) -> Cow<'static, str>;

    /// Executes the pass over the shared context.
    fn run(&self, ctx: &mut OptCtx<'_>) -> PassStats;

    /// Executes the pass over a multi-corner context (every trial move
    /// fans out to all corners; the objective view follows the context's
    /// [`RobustObjective`]). All built-in passes support this by running
    /// their generic trial loop over the [`TrialEval`] surface; the
    /// default implementation panics so a custom single-corner pass
    /// scheduled into a corner-aware pipeline fails loudly instead of
    /// silently optimizing the wrong objective.
    fn run_multi(&self, ctx: &mut MultiOptCtx<'_>) -> PassStats {
        let _ = ctx;
        panic!(
            "pass `{}` does not implement multi-corner execution (OptPass::run_multi)",
            self.name()
        );
    }
}

/// One executed pass: its stats plus metrics either side and wall clock.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// The pass's [`OptPass::name`].
    pub name: Cow<'static, str>,
    /// Trial moves proposed.
    pub attempted: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// The pass's run condition (see [`PassStats::triggered`]).
    pub triggered: bool,
    /// Metrics entering the pass.
    pub before: TreeMetrics,
    /// Metrics leaving the pass.
    pub after: TreeMetrics,
    /// Wall-clock seconds spent in the pass.
    pub seconds: f64,
}

/// Everything a schedule execution produced.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Metrics before the first pass.
    pub before: TreeMetrics,
    /// Metrics after the last pass.
    pub after: TreeMetrics,
    /// One report per pass, in execution order.
    pub passes: Vec<PassReport>,
    /// Whether a run budget expired before every scheduled pass finished.
    /// The tree is still a valid, committed configuration — the schedule
    /// was cut short, not corrupted — and the pipeline surfaces this as
    /// [`crate::Outcome::degraded`].
    pub truncated: bool,
}

/// An ordered list of [`OptPass`]es plus the RNG seed — the value a
/// [`crate::DsCts`] pipeline carries and the [`PassManager`] executes.
///
/// Passes are reference-counted so the schedule is cheap to clone into
/// parallel sweep workers; `OptPass: Send + Sync` keeps that sound.
#[derive(Clone)]
pub struct OptSchedule {
    passes: Vec<Arc<dyn OptPass>>,
    seed: u64,
}

impl OptSchedule {
    /// An empty schedule with the default seed.
    pub fn new() -> Self {
        OptSchedule {
            passes: Vec::new(),
            seed: 0xD5C7_5EED,
        }
    }

    /// The schedule the default pipeline runs: end-point skew refinement
    /// only — exactly the pre-pass-API `RefineStage` behavior.
    pub fn default_post_cts(cfg: SkewConfig) -> Self {
        OptSchedule::new().with(EndpointRefinePass::new(cfg))
    }

    /// Appends a pass.
    pub fn with(mut self, pass: impl OptPass + 'static) -> Self {
        self.passes.push(Arc::new(pass));
        self
    }

    /// Appends an already shared pass.
    pub fn with_arc(mut self, pass: Arc<dyn OptPass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Sets the RNG seed (pass `i` runs with `seed + i`). Runs are
    /// deterministic per seed at any thread count.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The scheduled passes, in execution order.
    pub fn passes(&self) -> &[Arc<dyn OptPass>] {
        &self.passes
    }

    /// The base RNG seed.
    pub fn rng_seed(&self) -> u64 {
        self.seed
    }

    /// Number of scheduled passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the schedule holds no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }
}

impl Default for OptSchedule {
    fn default() -> Self {
        OptSchedule::new()
    }
}

impl fmt::Debug for OptSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OptSchedule")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("seed", &self.seed)
            .finish()
    }
}

/// Executes an [`OptSchedule`] over one shared evaluator, reporting per
/// pass. See the [module docs](self) for the architecture.
#[derive(Debug, Clone, Copy)]
pub struct PassManager<'a> {
    schedule: &'a OptSchedule,
}

impl<'a> PassManager<'a> {
    /// A manager for `schedule`.
    pub fn new(schedule: &'a OptSchedule) -> Self {
        PassManager { schedule }
    }

    /// Runs every pass in order over a single resident evaluator built
    /// from `tree`; accepted knobs are written through to the tree.
    pub fn run(
        &self,
        tree: &mut SynthesizedTree,
        tech: &Technology,
        model: EvalModel,
    ) -> ScheduleReport {
        self.run_cancel(tree, tech, model, None)
    }

    /// [`PassManager::run`] under a run budget: the token is polled at
    /// every pass boundary and inside the built-in passes' trial loops.
    /// Cancellation truncates the schedule — finished work is kept, the
    /// report is flagged [`ScheduleReport::truncated`]. `None` is
    /// bit-identical to [`PassManager::run`].
    pub fn run_cancel(
        &self,
        tree: &mut SynthesizedTree,
        tech: &Technology,
        model: EvalModel,
        cancel: Option<&CancelToken>,
    ) -> ScheduleReport {
        let mut ctx = OptCtx::new(tree, tech, model, self.schedule.seed);
        ctx.set_cancel(cancel.cloned());
        self.run_on(&mut ctx)
    }

    /// Runs every pass in order over one resident **multi-corner**
    /// evaluator (K per-corner states over the same tree), every trial
    /// move fanned out to all corners and scored through `objective` —
    /// the robust counterpart of [`PassManager::run`]. The report's
    /// before/after metrics are the *nominal* corner's (so nominal and
    /// robust runs compare like for like); cross-corner summaries come
    /// from [`crate::mcmm::CornerReport::evaluate`] on the finished tree.
    pub fn run_corners(
        &self,
        tree: &mut SynthesizedTree,
        corners: &CornerSet,
        model: EvalModel,
        objective: RobustObjective,
    ) -> ScheduleReport {
        self.run_corners_cancel(tree, corners, model, objective, None)
    }

    /// [`PassManager::run_corners`] under a run budget — the multi-corner
    /// counterpart of [`PassManager::run_cancel`]. The token additionally
    /// reaches the evaluator's per-corner fan-out, so a deadline firing
    /// mid-move rolls that move back in every corner before the schedule
    /// truncates.
    pub fn run_corners_cancel(
        &self,
        tree: &mut SynthesizedTree,
        corners: &CornerSet,
        model: EvalModel,
        objective: RobustObjective,
        cancel: Option<&CancelToken>,
    ) -> ScheduleReport {
        let mut ctx = OptCtx::new_multi(tree, corners, model, objective, self.schedule.seed);
        ctx.eval_mut().set_cancel(cancel.cloned());
        ctx.set_cancel(cancel.cloned());
        self.run_multi_on(&mut ctx)
    }

    /// Runs the schedule over an existing context (for drivers that keep
    /// the evaluator resident across schedules).
    pub fn run_on(&self, ctx: &mut OptCtx<'_>) -> ScheduleReport {
        self.execute(ctx, &|pass, ctx| pass.run(ctx))
    }

    /// Runs the schedule over an existing multi-corner context.
    pub fn run_multi_on(&self, ctx: &mut MultiOptCtx<'_>) -> ScheduleReport {
        self.execute(ctx, &|pass, ctx| pass.run_multi(ctx))
    }

    /// The schedule loop, shared by the single- and multi-corner entry
    /// points: reseed per pass, time it, defensively commit, record
    /// before/after metrics (the evaluator's [`TrialEval::metrics`] —
    /// nominal-corner metrics for the MCMM evaluator).
    fn execute<'t, E: TrialEval>(
        &self,
        ctx: &mut OptCtx<'t, E>,
        invoke: &dyn Fn(&dyn OptPass, &mut OptCtx<'t, E>) -> PassStats,
    ) -> ScheduleReport {
        let before = ctx.eval().metrics();
        let mut passes = Vec::with_capacity(self.schedule.passes.len());
        let mut entering = before.clone();
        let mut truncated = false;
        for (i, pass) in self.schedule.passes.iter().enumerate() {
            if ctx.cancel().is_some_and(CancelToken::is_cancelled) {
                // Budget expired between passes: keep what earlier passes
                // committed, skip the rest of the schedule.
                truncated = true;
                break;
            }
            ctx.reseed(self.schedule.seed.wrapping_add(i as u64));
            let t0 = Instant::now();
            let stats = invoke(pass.as_ref(), ctx);
            let seconds = t0.elapsed().as_secs_f64();
            // Per-pass telemetry reuses the report's wall clock (one
            // measurement, two consumers) and aggregates trial counts.
            if let Some(tel) = dscts_telemetry::active() {
                tel.record_duration(&format!("span.pass.{}", pass.name()), seconds);
                tel.counter("opt.trials_attempted")
                    .add(stats.attempted as u64);
                tel.counter("opt.trials_accepted")
                    .add(stats.accepted as u64);
            }
            // Defensive: a pass that forgot to commit still keeps its work.
            ctx.eval_mut().commit();
            let after = ctx.eval().metrics();
            passes.push(PassReport {
                name: pass.name(),
                attempted: stats.attempted,
                accepted: stats.accepted,
                triggered: stats.triggered,
                before: entering,
                after: after.clone(),
                seconds,
            });
            entering = after;
        }
        // A budget that fired inside the final pass still truncated it.
        truncated |= ctx.cancel().is_some_and(CancelToken::is_cancelled);
        ScheduleReport {
            before,
            after: entering,
            passes,
            truncated,
        }
    }
}

/// The weighted MOES objective (Eq. 3 shape, [`MoesWeights::weigh`])
/// over the evaluator's *current* objective view — O(corners × stars)
/// per call, cheap enough for inner trial loops. Resource counts are
/// passed in because the passes track them incrementally; use the
/// [`TreeMetrics`] convention (`buffers` *includes* the root driver,
/// i.e. `1 + inserted_buffers()`), so the value agrees exactly with
/// [`moes_objective_of`] over the same state. Over a multi-corner
/// evaluator with the worst-corner objective this weighs worst-corner
/// latency and skew — the robust MOES the MCMM schedule minimizes.
pub fn moes_objective<E: TrialEval>(w: &MoesWeights, eval: &E, buffers: i64, ntsvs: i64) -> f64 {
    let (latency_ps, skew_ps) = eval.latency_skew_ps();
    w.weigh(latency_ps, buffers as f64, ntsvs as f64, skew_ps)
}

/// [`moes_objective`] evaluated over finished [`TreeMetrics`] instead of
/// a live evaluator — the form reports and test oracles use. Both
/// delegate to [`MoesWeights::weigh`], the one place the weighted sum is
/// written down.
pub fn moes_objective_of(w: &MoesWeights, m: &TreeMetrics) -> f64 {
    w.weigh(
        m.latency_ps,
        f64::from(m.buffers),
        f64::from(m.ntsvs),
        m.skew_ps,
    )
}

// --- Annealed sizing -----------------------------------------------------

/// Configuration of [`AnnealedSizingPass`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealConfig {
    /// Discrete drive-scale alphabet (the same resource bounds as
    /// [`crate::sizing::SizingConfig::scales`]).
    pub scales: Vec<f64>,
    /// Total trial moves.
    pub moves: usize,
    /// Initial temperature, in objective units (ps-scale).
    pub t0: f64,
    /// Final temperature; the schedule decays geometrically from `t0`.
    pub t_end: f64,
    /// Probability of proposing a star-buffer toggle instead of a resize.
    /// Zero (the default) keeps the pass a pure sizing pass: buffer and
    /// nTSV counts — the resource bounds — are then invariant.
    pub star_prob: f64,
    /// Objective weights. `beta`/`gamma` only matter when `star_prob > 0`
    /// (resizes never change resource counts).
    pub weights: MoesWeights,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            scales: vec![0.5, 1.0, 2.0],
            moves: 4_000,
            t0: 2.0,
            t_end: 0.01,
            star_prob: 0.0,
            weights: MoesWeights {
                alpha: 1.0,
                beta: 10.0,
                gamma: 1.0,
                delta: 4.0,
            },
        }
    }
}

/// Seeded, deterministic simulated annealing over buffer drive scales
/// (and optionally star refinement buffers).
///
/// Where the greedy [`crate::sizing::SizingPass`] only re-sizes the
/// *last* buffer above each star and stops at its first fixed point, the
/// annealer proposes uniform random (edge, scale) moves over **every**
/// pattern buffer, escaping greedy's local optimum at equal resource
/// bounds. [`IncrementalEval`] makes each trial O(depth + subtree); the
/// undo journal is the reject path. The pass commits exactly when a new
/// **best** configuration appears (bounding journal memory to the moves
/// since the last improvement) and finishes by reverting to that best —
/// so it never degrades the objective it anneals on, and a run that
/// finds nothing better is a no-op.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealedSizingPass {
    /// The annealing schedule and objective.
    pub cfg: AnnealConfig,
}

impl AnnealedSizingPass {
    /// The pass's stable name.
    pub const NAME: &'static str = "annealed-sizing";

    /// A pass with the given configuration.
    pub fn new(cfg: AnnealConfig) -> Self {
        AnnealedSizingPass { cfg }
    }
}

impl Default for AnnealedSizingPass {
    fn default() -> Self {
        AnnealedSizingPass::new(AnnealConfig::default())
    }
}

impl AnnealedSizingPass {
    /// The annealing loop over any [`TrialEval`] — one implementation
    /// shared by the single-corner and multi-corner executions, so the
    /// robust anneal is the nominal anneal with a different objective
    /// view (and per-corner fan-out inside each trial move). A cancelled
    /// budget stops proposing moves; the pass still reverts to its best
    /// accepted configuration, so truncation never corrupts the tree.
    fn anneal<E: TrialEval>(
        &self,
        eval: &mut E,
        rng: &mut SmallRng,
        cancel: Option<&CancelToken>,
    ) -> PassStats {
        let cfg = &self.cfg;
        assert!(
            !cfg.scales.is_empty() && cfg.scales.iter().all(|&s| s > 0.0),
            "scales must be positive"
        );
        assert!(
            cfg.t0 > 0.0 && cfg.t_end > 0.0 && cfg.t_end <= cfg.t0,
            "temperatures must satisfy 0 < t_end <= t0"
        );
        let edges: Vec<usize> = (1..eval.tree().topo.nodes.len())
            .filter(|&v| eval.tree().patterns[v].is_some_and(|p| p.buffers() > 0))
            .collect();
        let n_stars = eval.tree().topo.stars.len();
        let star_moves = cfg.star_prob > 0.0 && n_stars > 0;
        if edges.is_empty() && !star_moves {
            return PassStats::default();
        }

        let w = &cfg.weights;
        // nTSV count never changes under these moves; the buffer count
        // only moves with star toggles. Track both incrementally, in the
        // TreeMetrics convention (root driver included).
        let mut buffers = 1 + i64::from(eval.tree().inserted_buffers());
        let ntsvs = i64::from(eval.tree().inserted_ntsvs());
        let mut cur = moes_objective(w, eval, buffers, ntsvs);
        let mut best = cur;
        let mut best_mark = eval.mark();
        // SA accepts uphill moves that the final revert-to-best discards;
        // report only the moves that survive in the returned tree.
        let mut accepted_in_anneal = 0usize;
        let mut accepted_at_best = 0usize;
        let cool = (cfg.t_end / cfg.t0).powf(1.0 / cfg.moves.max(1) as f64);
        let mut stats = PassStats::default();

        for i in 0..cfg.moves {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    break;
                }
                token.record_trial();
            }
            // Geometric decay from exactly t0 (move 0) toward t_end, as a
            // pure function of the move index so no-op/infeasible
            // proposals cannot skip a cooling step.
            let temp = cfg.t0 * cool.powi(i as i32);
            stats.attempted += 1;
            let star_move =
                star_moves && (edges.is_empty() || rng.random_range(0.0..1.0) < cfg.star_prob);
            let (ok, delta_buffers) = if star_move {
                let si = rng.random_range(0..n_stars);
                let on = !eval.tree().star_buffers[si];
                (eval.set_star_buffer(si, on), if on { 1 } else { -1 })
            } else {
                let e = edges[rng.random_range(0..edges.len())];
                let s = cfg.scales[rng.random_range(0..cfg.scales.len())];
                if eval.buffer_scale(e) == s {
                    // No-op proposal (the edge already has this scale):
                    // nothing to score or count as accepted. Skipping
                    // consumes exactly the RNG draws the zero-delta
                    // accept path would have (zero delta never reaches
                    // the acceptance draw), and the index-based cooling
                    // above still advances.
                    continue;
                }
                (eval.set_buffer_scale(e, s), 0)
            };
            if !ok {
                // Infeasible move: already self-rolled-back.
                continue;
            }
            let cand_buffers = buffers + delta_buffers;
            let cand = moes_objective(w, eval, cand_buffers, ntsvs);
            let delta = cand - cur;
            let accept = delta <= 0.0 || rng.random_range(0.0..1.0) < (-delta / temp).exp();
            if accept {
                cur = cand;
                buffers = cand_buffers;
                accepted_in_anneal += 1;
                if cur < best {
                    best = cur;
                    accepted_at_best = accepted_in_anneal;
                    // The current state IS the new best: committing here
                    // forgets history we could never want back, bounding
                    // the journal to the moves since the last improvement
                    // instead of the whole anneal. The final tree is
                    // identical to the keep-everything variant.
                    eval.commit();
                    best_mark = eval.mark();
                }
            } else {
                eval.undo();
            }
        }

        // Revert to the best accepted configuration: the pass never
        // finishes worse than it started on its own objective.
        eval.undo_to(best_mark);
        eval.commit();
        stats.accepted = accepted_at_best;
        stats
    }
}

impl OptPass for AnnealedSizingPass {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed(Self::NAME)
    }

    fn run(&self, ctx: &mut OptCtx<'_>) -> PassStats {
        let cancel = ctx.cancel().cloned();
        let (eval, rng) = ctx.parts();
        self.anneal(eval, rng, cancel.as_ref())
    }

    fn run_multi(&self, ctx: &mut MultiOptCtx<'_>) -> PassStats {
        let cancel = ctx.cancel().cloned();
        let (eval, rng) = ctx.parts();
        self.anneal(eval, rng, cancel.as_ref())
    }
}

// --- Pattern local search ------------------------------------------------

/// Configuration of [`PatternSearchPass`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternSearchConfig {
    /// The pattern alphabet swaps are drawn from.
    pub patterns: PatternSet,
    /// Maximum hill-climbing sweeps over all edges; the climb also stops
    /// at the first sweep with no improving swap.
    pub max_rounds: usize,
    /// Objective weights; the default is the paper's MOES setting
    /// (latency plus resource costs), so the climb recovers latency the
    /// candidate-truncated DP left behind without spending resources
    /// the DP would not have.
    pub weights: MoesWeights,
}

impl Default for PatternSearchConfig {
    fn default() -> Self {
        PatternSearchConfig {
            patterns: PatternSet::default(),
            max_rounds: 4,
            weights: MoesWeights::default(),
        }
    }
}

/// Post-DP hill climbing over pattern swaps.
///
/// The DP truncates each node's candidate set to `max_cands`, so the
/// final assignment can leave locally improvable edges behind. This pass
/// sweeps every trunk edge and re-assigns it the best same-sides pattern
/// under the MOES-style objective, repeating until a sweep finds nothing.
///
/// Only swaps preserving **both endpoint sides** are proposed: every
/// vertex keeps its side, so the §III-C connectivity constraint is
/// preserved by construction (and [`SynthesizedTree::validate_sides`]
/// gates the final tree defensively — a failed gate rolls the whole pass
/// back). Note the swap alphabet ignores any DSE mode restriction the DP
/// ran under: a node forced intra-side by a fanout threshold may gain an
/// nTSV pattern here. The default pipeline schedule does not include this
/// pass, and sweeps that must respect modes should not add it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternSearchPass {
    /// The search space and objective.
    pub cfg: PatternSearchConfig,
}

impl PatternSearchPass {
    /// The pass's stable name.
    pub const NAME: &'static str = "pattern-search";

    /// A pass with the given configuration.
    pub fn new(cfg: PatternSearchConfig) -> Self {
        PatternSearchPass { cfg }
    }
}

impl Default for PatternSearchPass {
    fn default() -> Self {
        PatternSearchPass::new(PatternSearchConfig::default())
    }
}

impl PatternSearchPass {
    /// The hill-climbing sweep over any [`TrialEval`] — shared by the
    /// single-corner and multi-corner executions (under a multi-corner
    /// evaluator a swap must be feasible in *every* corner to be
    /// proposed, and improvement is judged in the objective view). A
    /// cancelled budget ends the sweep after the current edge; accepted
    /// swaps are kept and the side gate still runs.
    fn climb<E: TrialEval>(&self, eval: &mut E, cancel: Option<&CancelToken>) -> PassStats {
        let cfg = &self.cfg;
        let pass_mark = eval.mark();
        let alphabet = cfg.patterns.patterns();
        let w = &cfg.weights;
        let n = eval.tree().topo.nodes.len();
        // TreeMetrics convention: the root driver counts as a buffer.
        let mut buffers = 1 + i64::from(eval.tree().inserted_buffers());
        let mut ntsvs = i64::from(eval.tree().inserted_ntsvs());
        let mut cur = moes_objective(w, eval, buffers, ntsvs);
        let mut stats = PassStats::default();

        'rounds: for _ in 0..cfg.max_rounds {
            let mut improved = false;
            for v in 1..n {
                if let Some(token) = cancel {
                    if token.is_cancelled() {
                        break 'rounds;
                    }
                    token.record_trial();
                }
                // invariant: every trunk edge leaves the DP with a pattern;
                // the synthesizer rejects unassigned nodes before this pass
                // can ever see the tree.
                let p = eval.tree().patterns[v].expect("assigned pattern");
                // Best strictly-improving same-sides alternative for this
                // edge (best-improvement keeps the sweep deterministic).
                let mut winner: Option<(f64, crate::pattern::Pattern, i64, i64)> = None;
                for &q in alphabet {
                    if q == p || q.root_side() != p.root_side() || q.sink_side() != p.sink_side() {
                        continue;
                    }
                    stats.attempted += 1;
                    // Overloading an ancestor buffer rolls itself back.
                    if !eval.set_pattern(v, q) {
                        continue;
                    }
                    let nb = buffers + i64::from(q.buffers()) - i64::from(p.buffers());
                    let nv = ntsvs + i64::from(q.ntsvs()) - i64::from(p.ntsvs());
                    let cand = moes_objective(w, eval, nb, nv);
                    if cand < cur - 1e-9 && winner.is_none_or(|(b, ..)| cand < b) {
                        winner = Some((cand, q, nb, nv));
                    }
                    eval.undo();
                }
                if let Some((obj, q, nb, nv)) = winner {
                    let ok = eval.set_pattern(v, q);
                    debug_assert!(ok, "winning trial pattern must stay feasible");
                    cur = obj;
                    buffers = nb;
                    ntsvs = nv;
                    stats.accepted += 1;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        // Same-sides swaps preserve legality by construction; gate anyway.
        if stats.accepted > 0 && eval.tree().validate_sides().is_err() {
            eval.undo_to(pass_mark);
            stats.accepted = 0;
            return stats;
        }
        eval.commit();
        stats
    }
}

impl OptPass for PatternSearchPass {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed(Self::NAME)
    }

    fn run(&self, ctx: &mut OptCtx<'_>) -> PassStats {
        let cancel = ctx.cancel().cloned();
        self.climb(ctx.eval_mut(), cancel.as_ref())
    }

    fn run_multi(&self, ctx: &mut MultiOptCtx<'_>) -> PassStats {
        let cancel = ctx.cancel().cloned();
        self.climb(ctx.eval_mut(), cancel.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{run_dp, DpConfig};
    use crate::route::HierarchicalRouter;
    use crate::sizing::{resize_for_skew, SizingConfig, SizingPass};
    use dscts_netlist::BenchmarkSpec;

    fn tree() -> (SynthesizedTree, Technology) {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let mut topo = HierarchicalRouter::new().route(&d, &tech);
        topo.subdivide(40_000);
        let cfg = DpConfig {
            moes: MoesWeights {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
                delta: 0.0,
            },
            ..DpConfig::default()
        };
        let res = run_dp(&topo, &tech, &cfg);
        (SynthesizedTree::new(topo, res.assignment), tech)
    }

    #[test]
    fn empty_schedule_is_identity() {
        let (mut t, tech) = tree();
        let before = t.evaluate(&tech, EvalModel::Elmore);
        let schedule = OptSchedule::new();
        let rep = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
        assert!(rep.passes.is_empty());
        assert_eq!(rep.before, before);
        assert_eq!(rep.after, before);
        assert_eq!(t.evaluate(&tech, EvalModel::Elmore), before);
    }

    #[test]
    fn manager_reports_chained_metrics() {
        let (mut t, tech) = tree();
        let schedule = OptSchedule::new()
            .with(SizingPass::new(SizingConfig::default()))
            .with(AnnealedSizingPass::default());
        let rep = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
        assert_eq!(rep.passes.len(), 2);
        assert_eq!(rep.before, rep.passes[0].before);
        assert_eq!(rep.passes[0].after, rep.passes[1].before);
        assert_eq!(rep.passes[1].after, rep.after);
        assert!(rep.passes.iter().all(|p| p.seconds >= 0.0));
        // The evaluator wrote accepted knobs through: the tree re-evaluates
        // to exactly the reported final metrics.
        assert_eq!(t.evaluate(&tech, EvalModel::Elmore), rep.after);
    }

    #[test]
    fn annealed_sizing_is_deterministic_and_never_degrades() {
        let (base, tech) = tree();
        let w = AnnealConfig::default().weights;
        let run_once = |seed: u64| {
            let mut t = base.clone();
            let schedule = OptSchedule::new()
                .seed(seed)
                .with(AnnealedSizingPass::default());
            let rep = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
            (t, rep)
        };
        let (t1, r1) = run_once(7);
        let (t2, r2) = run_once(7);
        assert_eq!(t1, t2, "same seed, same tree");
        assert_eq!(r1.after, r2.after);
        // Never degrades the objective it anneals on.
        assert!(moes_objective_of(&w, &r1.after) <= moes_objective_of(&w, &r1.before) + 1e-9);
        // Pure sizing: resource counts are bit-equal.
        assert_eq!(r1.after.buffers, r1.before.buffers);
        assert_eq!(r1.after.ntsvs, r1.before.ntsvs);
    }

    #[test]
    fn annealed_sizing_beats_greedy_on_skew_here() {
        // The acceptance experiment in miniature: same scale alphabet,
        // no star toggles, latency-greedy DP leaves skew on the table.
        let (base, tech) = tree();
        let mut greedy = base.clone();
        let g = resize_for_skew(
            &mut greedy,
            &tech,
            EvalModel::Elmore,
            &SizingConfig::default(),
        );
        let mut annealed = base.clone();
        let schedule = OptSchedule::new()
            .seed(7)
            .with(AnnealedSizingPass::default());
        let a = PassManager::new(&schedule).run(&mut annealed, &tech, EvalModel::Elmore);
        assert_eq!(a.after.buffers, g.after.buffers, "equal resource bounds");
        assert_eq!(a.after.ntsvs, g.after.ntsvs);
        assert!(
            a.after.skew_ps < g.after.skew_ps - 1e-9
                || a.after.latency_ps < g.after.latency_ps - 1e-9,
            "annealed (skew {:.3}, lat {:.3}) vs greedy (skew {:.3}, lat {:.3})",
            a.after.skew_ps,
            a.after.latency_ps,
            g.after.skew_ps,
            g.after.latency_ps
        );
    }

    #[test]
    fn annealed_star_moves_respect_objective() {
        let (mut t, tech) = tree();
        let cfg = AnnealConfig {
            star_prob: 0.3,
            moves: 1_500,
            ..AnnealConfig::default()
        };
        let w = cfg.weights;
        let schedule = OptSchedule::new().with(AnnealedSizingPass::new(cfg));
        let rep = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Nldm);
        assert!(moes_objective_of(&w, &rep.after) <= moes_objective_of(&w, &rep.before) + 1e-9);
        assert_eq!(t.validate_sides(), Ok(()));
    }

    #[test]
    fn pattern_search_improves_objective_and_stays_legal() {
        let (mut t, tech) = tree();
        assert_eq!(t.validate_sides(), Ok(()));
        let cfg = PatternSearchConfig::default();
        let schedule = OptSchedule::new().with(PatternSearchPass::new(cfg));
        let rep = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
        let w = cfg.weights;
        assert!(moes_objective_of(&w, &rep.after) <= moes_objective_of(&w, &rep.before) + 1e-9);
        assert_eq!(t.validate_sides(), Ok(()));
        // Hill climbing is deterministic: a second run from the result is
        // a fixed point.
        let rep2 = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
        assert_eq!(rep2.passes[0].accepted, 0);
        assert_eq!(rep2.before, rep2.after);
    }

    #[test]
    fn pattern_search_swaps_preserve_endpoint_sides() {
        let (base, tech) = tree();
        let mut t = base.clone();
        let schedule = OptSchedule::new().with(PatternSearchPass::default());
        let _ = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
        for (old, new) in base.patterns.iter().zip(&t.patterns).skip(1) {
            let (old, new) = (old.expect("assigned"), new.expect("assigned"));
            assert_eq!(old.root_side(), new.root_side());
            assert_eq!(old.sink_side(), new.sink_side());
        }
    }

    #[test]
    fn robust_schedule_improves_worst_corner_skew_here() {
        // The PR 5 acceptance experiment in miniature: the same
        // default-plus-annealed schedule, run once against the nominal
        // objective and once fanned out over SS/TT/FF with the
        // worst-corner objective. At equal resource bounds the robust run
        // must leave less skew in the worst corner.
        use crate::mcmm::{CornerReport, RobustObjective};
        use dscts_tech::CornerSet;
        let (base, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let schedule = OptSchedule::default_post_cts(SkewConfig::default())
            .with(AnnealedSizingPass::default())
            .seed(7);
        let mgr = PassManager::new(&schedule);

        let mut nominal = base.clone();
        let _ = mgr.run(&mut nominal, &tech, EvalModel::Elmore);
        let rn = CornerReport::evaluate(&nominal, &corners, EvalModel::Elmore);

        let mut robust = base.clone();
        let rep = mgr.run_corners(
            &mut robust,
            &corners,
            EvalModel::Elmore,
            RobustObjective::WorstCorner,
        );
        let rr = CornerReport::evaluate(&robust, &corners, EvalModel::Elmore);

        assert_eq!(
            rn.per_corner[0].buffers, rr.per_corner[0].buffers,
            "equal resource bounds"
        );
        assert_eq!(rn.per_corner[0].ntsvs, rr.per_corner[0].ntsvs);
        assert!(
            rr.robust.worst_skew_ps < rn.robust.worst_skew_ps - 1e-9,
            "robust {:.3} vs nominal {:.3} worst-corner skew",
            rr.robust.worst_skew_ps,
            rn.robust.worst_skew_ps
        );
        // The schedule report's metrics are the nominal corner's view.
        assert_eq!(
            rep.after,
            robust.evaluate(corners.nominal_tech(), EvalModel::Elmore)
        );
    }

    #[test]
    #[should_panic(expected = "multi-corner")]
    fn custom_pass_without_run_multi_panics_in_corner_mode() {
        use crate::mcmm::RobustObjective;
        use dscts_tech::CornerSet;
        struct NominalOnlyPass;
        impl OptPass for NominalOnlyPass {
            fn name(&self) -> Cow<'static, str> {
                Cow::Borrowed("nominal-only")
            }
            fn run(&self, _ctx: &mut OptCtx<'_>) -> PassStats {
                PassStats::default()
            }
        }
        let (mut t, tech) = tree();
        let corners = CornerSet::asap7_pvt(&tech);
        let schedule = OptSchedule::new().with(NominalOnlyPass);
        let _ = PassManager::new(&schedule).run_corners(
            &mut t,
            &corners,
            EvalModel::Elmore,
            RobustObjective::WorstCorner,
        );
    }

    #[test]
    fn schedule_debug_lists_pass_names() {
        let s = OptSchedule::new()
            .with(AnnealedSizingPass::default())
            .with(PatternSearchPass::default());
        let dbg = format!("{s:?}");
        assert!(dbg.contains("annealed-sizing") && dbg.contains("pattern-search"));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn annealer_rejects_empty_scales() {
        let (mut t, tech) = tree();
        let cfg = AnnealConfig {
            scales: vec![],
            ..AnnealConfig::default()
        };
        let schedule = OptSchedule::new().with(AnnealedSizingPass::new(cfg));
        let _ = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
    }
}
