//! The discrete edge patterns of the double-side design space (Fig. 6).
//!
//! Every trunk edge of the clock tree receives exactly one pattern. The six
//! base patterns `P1`–`P6` are the paper's; two optional extended patterns
//! combine a buffer with an nTSV on the same edge (a future-work direction
//! the framework supports, exercised by the ablation bench).
//!
//! A pattern fixes the **side** of the edge's two endpoints — the DP's
//! connectivity constraint is that patterns sharing a vertex agree on its
//! side — and its electrical behaviour: delay through the edge and the
//! effective capacitance presented upstream (with load shielding when a
//! buffer is present).

use dscts_tech::{Side, Technology};
use dscts_timing::{chain_delay, Element};
use std::fmt;

/// Insertion mode of a DP node (§III-C / §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Flexible nTSV: all patterns allowed.
    #[default]
    Full,
    /// Forbidden nTSV: only the intra-side patterns P1–P3.
    IntraSide,
}

/// An edge pattern. Sides are given as (root-end, sink-end), where the
/// sink end is the end closer to the sinks (Fig. 6 right end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// P1 — front wire with one buffer at the middle (F, F).
    Buffer,
    /// P2 — plain front-side wire (F, F).
    WiringF,
    /// P3 — plain back-side wire (B, B).
    WiringB,
    /// P4 — nTSV at both ends, back-side wire between (F, F); Eq. (2).
    Ntsv1,
    /// P5 — back-side wire with one nTSV at the sink end (B, F).
    Ntsv2,
    /// P6 — one nTSV at the root end, back-side wire below (F, B).
    Ntsv3,
    /// Extended: front wire, buffer, then nTSV into back wire (F, B).
    BufNtsv,
    /// Extended: back wire, nTSV, then buffer driving front wire (B, F).
    NtsvBuf,
}

/// Which pattern alphabet the DP explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatternSet {
    /// The paper's P1–P6.
    #[default]
    Base,
    /// P1–P6 plus the buffered-nTSV combinations P7/P8.
    Extended,
}

impl PatternSet {
    /// The patterns in this alphabet.
    pub fn patterns(self) -> &'static [Pattern] {
        match self {
            PatternSet::Base => &[
                Pattern::Buffer,
                Pattern::WiringF,
                Pattern::WiringB,
                Pattern::Ntsv1,
                Pattern::Ntsv2,
                Pattern::Ntsv3,
            ],
            PatternSet::Extended => &[
                Pattern::Buffer,
                Pattern::WiringF,
                Pattern::WiringB,
                Pattern::Ntsv1,
                Pattern::Ntsv2,
                Pattern::Ntsv3,
                Pattern::BufNtsv,
                Pattern::NtsvBuf,
            ],
        }
    }
}

/// Wire delays around an embedded buffer, for slew/NLDM evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferStage {
    /// Wire delay from the root end to the buffer input (ps).
    pub pre_delay_ps: f64,
    /// Load seen by the buffer output (fF).
    pub load_ff: f64,
    /// Wire delay from the buffer output to the sink end (ps).
    pub post_delay_ps: f64,
}

/// Electrical result of assigning a pattern to an edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternEval {
    /// Delay through the edge into the downstream load, with the linearised
    /// buffer model (ps).
    pub delay_ps: f64,
    /// Effective capacitance presented at the root end (fF).
    pub up_cap_ff: f64,
    /// Present when the pattern embeds a buffer: the stage decomposition
    /// used by NLDM evaluation.
    pub stage: Option<BufferStage>,
}

impl Pattern {
    /// Side of the root-end vertex.
    pub fn root_side(self) -> Side {
        match self {
            Pattern::Buffer
            | Pattern::WiringF
            | Pattern::Ntsv1
            | Pattern::Ntsv3
            | Pattern::BufNtsv => Side::Front,
            Pattern::WiringB | Pattern::Ntsv2 | Pattern::NtsvBuf => Side::Back,
        }
    }

    /// Side of the sink-end vertex.
    pub fn sink_side(self) -> Side {
        match self {
            Pattern::Buffer
            | Pattern::WiringF
            | Pattern::Ntsv1
            | Pattern::Ntsv2
            | Pattern::NtsvBuf => Side::Front,
            Pattern::WiringB | Pattern::Ntsv3 | Pattern::BufNtsv => Side::Back,
        }
    }

    /// Number of buffers this pattern inserts.
    pub fn buffers(self) -> u32 {
        match self {
            Pattern::Buffer | Pattern::BufNtsv | Pattern::NtsvBuf => 1,
            _ => 0,
        }
    }

    /// Number of nTSVs this pattern inserts.
    pub fn ntsvs(self) -> u32 {
        match self {
            Pattern::Ntsv1 => 2,
            Pattern::Ntsv2 | Pattern::Ntsv3 | Pattern::BufNtsv | Pattern::NtsvBuf => 1,
            _ => 0,
        }
    }

    /// Whether this pattern routes any wire on the back side.
    pub fn uses_back_side(self) -> bool {
        self.ntsvs() > 0 || self == Pattern::WiringB
    }

    /// Whether the pattern is allowed under `mode` (intra-side mode forbids
    /// every nTSV-bearing pattern).
    pub fn allowed_in(self, mode: Mode) -> bool {
        match mode {
            Mode::Full => true,
            Mode::IntraSide => self.ntsvs() == 0,
        }
    }

    /// Total wire capacitance of this pattern on an edge of `len_nm` (fF),
    /// accounting for which sides its wire runs on (excludes device caps).
    pub fn wire_cap_ff(self, len_nm: i64, tech: &Technology) -> f64 {
        let f = tech.rc(Side::Front);
        let b = tech.rc(Side::Back);
        match self {
            Pattern::Buffer | Pattern::WiringF => f.cap(len_nm),
            Pattern::WiringB | Pattern::Ntsv1 | Pattern::Ntsv2 | Pattern::Ntsv3 => b.cap(len_nm),
            Pattern::BufNtsv => f.cap(len_nm / 2) + b.cap(len_nm - len_nm / 2),
            Pattern::NtsvBuf => b.cap(len_nm / 2) + f.cap(len_nm - len_nm / 2),
        }
    }

    /// The paper's label (`P1` … `P6`, extended `P7`/`P8`).
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Buffer => "P1",
            Pattern::WiringF => "P2",
            Pattern::WiringB => "P3",
            Pattern::Ntsv1 => "P4",
            Pattern::Ntsv2 => "P5",
            Pattern::Ntsv3 => "P6",
            Pattern::BufNtsv => "P7",
            Pattern::NtsvBuf => "P8",
        }
    }

    /// Evaluates the pattern on an edge of electrical length `len_nm`
    /// driving `load_ff` downstream.
    ///
    /// Returns `None` when the pattern is electrically infeasible: an
    /// embedded buffer would see more than its maximum load.
    pub fn eval(self, len_nm: i64, load_ff: f64, tech: &Technology) -> Option<PatternEval> {
        self.eval_scaled(len_nm, load_ff, tech, 1.0)
    }

    /// Like [`Pattern::eval`], but with the embedded buffer resized by
    /// `scale` (drive strength and max load scale up, input capacitance
    /// scales with it): the post-CTS buffer-sizing knob the paper defers
    /// to follow-up optimization (§IV-A).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn eval_scaled(
        self,
        len_nm: i64,
        load_ff: f64,
        tech: &Technology,
        scale: f64,
    ) -> Option<PatternEval> {
        assert!(scale > 0.0, "buffer scale must be positive");
        let f = tech.rc(Side::Front);
        let b = tech.rc(Side::Back);
        let v = tech.ntsv();
        let buf = tech.buffer();
        let l = len_nm;
        let half = |rc: dscts_tech::WireRc, l: i64| Element::new(rc.res(l / 2), rc.cap(l / 2));
        let full = |rc: dscts_tech::WireRc, l: i64| Element::new(rc.res(l), rc.cap(l));
        let ntsv = Element::new(v.res_kohm(), v.cap_ff());
        // A buffered stage: wire `down` into the load, buffer, wire `up`
        // presenting the upstream cap.
        let buffered = |up: &[Element], down: &[Element]| -> Option<PatternEval> {
            let (d_down, c_down) = chain_delay(down, load_ff);
            if c_down > buf.max_load_ff() * scale {
                return None;
            }
            let d_buf = buf.intrinsic_delay_ps() + buf.drive_res_kohm() / scale * c_down;
            let (d_up, c_up) = chain_delay(up, buf.input_cap_ff() * scale);
            Some(PatternEval {
                delay_ps: d_up + d_buf + d_down,
                up_cap_ff: c_up,
                stage: Some(BufferStage {
                    pre_delay_ps: d_up,
                    load_ff: c_down,
                    post_delay_ps: d_down,
                }),
            })
        };
        let plain = |elems: &[Element]| -> Option<PatternEval> {
            let (d, c) = chain_delay(elems, load_ff);
            Some(PatternEval {
                delay_ps: d,
                up_cap_ff: c,
                stage: None,
            })
        };
        match self {
            // Eq. (1): halves of front wire around the buffer.
            Pattern::Buffer => buffered(&[half(f, l)], &[half(f, l + l % 2)]),
            Pattern::WiringF => plain(&[full(f, l)]),
            Pattern::WiringB => plain(&[full(b, l)]),
            // Eq. (2): nTSV, back wire, nTSV.
            Pattern::Ntsv1 => plain(&[ntsv, full(b, l), ntsv]),
            Pattern::Ntsv2 => plain(&[full(b, l), ntsv]),
            Pattern::Ntsv3 => plain(&[ntsv, full(b, l)]),
            Pattern::BufNtsv => buffered(&[half(f, l)], &[ntsv, half(b, l + l % 2)]),
            Pattern::NtsvBuf => buffered(&[half(b, l), ntsv], &[half(f, l + l % 2)]),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::asap7()
    }

    #[test]
    fn leaf_admissible_patterns_match_paper() {
        // Step 2: leaf edges are restricted to {P1, P2, P4, P5} — exactly
        // the base patterns whose sink end is front-side.
        let front_sink: Vec<&str> = PatternSet::Base
            .patterns()
            .iter()
            .filter(|p| p.sink_side() == Side::Front)
            .map(|p| p.label())
            .collect();
        assert_eq!(front_sink, vec!["P1", "P2", "P4", "P5"]);
    }

    #[test]
    fn intra_side_mode_forbids_ntsvs() {
        let allowed: Vec<&str> = PatternSet::Base
            .patterns()
            .iter()
            .filter(|p| p.allowed_in(Mode::IntraSide))
            .map(|p| p.label())
            .collect();
        assert_eq!(allowed, vec!["P1", "P2", "P3"]);
    }

    #[test]
    fn eq1_closed_form() {
        // Eq. (1) with the constant-Dbuf special case (R_drv = 0).
        let t = dscts_tech::Technology::builder()
            .layer(dscts_tech::Layer::new("MF", 0.024222, 0.12918))
            .layer(dscts_tech::Layer::new("MB", 0.000384, 0.116264))
            .front_layer("MF")
            .back_layer("MB")
            .buffer(dscts_tech::BufferModel::new("B", 2.0, 0.0, 12.0, 1e9, 1, 1))
            .build()
            .unwrap();
        let l = 40_000i64;
        let cd = 9.0;
        let e = Pattern::Buffer.eval(l, cd, &t).unwrap();
        let (rf, cf) = (0.024222e-3, 0.12918e-3);
        let lf = l as f64;
        let expected = rf * cf / 2.0 * lf * lf + rf * (2.0 + cd) / 2.0 * lf + 12.0;
        assert!(
            (e.delay_ps - expected).abs() < 1e-6,
            "{} vs {}",
            e.delay_ps,
            expected
        );
        // Shielding: upstream cap is half wire + buffer input cap.
        assert!((e.up_cap_ff - (cf * lf / 2.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn eq2_closed_form() {
        let t = tech();
        let l = 120_000i64;
        let cd = 14.0;
        let e = Pattern::Ntsv1.eval(l, cd, &t).unwrap();
        let (rb, cb) = (0.000384e-3, 0.116264e-3);
        let (rt, ct) = (0.020, 0.004);
        let lf = l as f64;
        let expected =
            rb * cb * lf * lf + (rb * ct + rb * cd + rt * cb) * lf + rt * (3.0 * ct + 2.0 * cd);
        assert!((e.delay_ps - expected).abs() < 1e-9);
        assert!((e.up_cap_ff - (2.0 * ct + cb * lf + cd)).abs() < 1e-12);
    }

    #[test]
    fn buffer_shields_but_ntsv_does_not() {
        let t = tech();
        let heavy = 60.0;
        let buf = Pattern::Buffer.eval(50_000, heavy, &t).unwrap();
        let ntsv = Pattern::Ntsv1.eval(50_000, heavy, &t).unwrap();
        assert!(buf.up_cap_ff < 10.0, "shielded cap {}", buf.up_cap_ff);
        assert!(ntsv.up_cap_ff > heavy, "nTSV exposes load");
    }

    #[test]
    fn buffer_overload_is_infeasible() {
        let t = tech(); // max load 80 fF
        assert!(Pattern::Buffer.eval(10_000, 200.0, &t).is_none());
        assert!(Pattern::WiringF.eval(10_000, 200.0, &t).is_some());
    }

    #[test]
    fn back_side_wiring_is_faster_for_long_edges() {
        let t = tech();
        let l = 100_000;
        let cd = 20.0;
        let f = Pattern::WiringF.eval(l, cd, &t).unwrap();
        let p4 = Pattern::Ntsv1.eval(l, cd, &t).unwrap();
        assert!(p4.delay_ps < f.delay_ps / 5.0);
    }

    #[test]
    fn side_tables_are_consistent() {
        for p in PatternSet::Extended.patterns() {
            // An edge's wire exists; label is stable; counts bounded.
            assert!(p.ntsvs() <= 2);
            assert!(p.buffers() <= 1);
            assert!(!p.label().is_empty());
            // Patterns flipping sides carry an odd number of nTSVs.
            let flips = p.root_side() != p.sink_side();
            if p.buffers() == 0 {
                assert_eq!(flips, p.ntsvs() % 2 == 1, "{p}");
            }
        }
    }

    #[test]
    fn asymmetric_ntsv_patterns_mirror() {
        let t = tech();
        let (l, cd) = (30_000, 10.0);
        let p5 = Pattern::Ntsv2.eval(l, cd, &t).unwrap();
        let p6 = Pattern::Ntsv3.eval(l, cd, &t).unwrap();
        // P5 charges the nTSV cap through the wire; P6 does not, so the
        // delays differ slightly but the caps match.
        assert!((p5.up_cap_ff - p6.up_cap_ff).abs() < 1e-12);
        assert!(p5.delay_ps != p6.delay_ps);
    }

    #[test]
    fn extended_patterns_flip_sides_with_buffer() {
        assert_eq!(Pattern::BufNtsv.root_side(), Side::Front);
        assert_eq!(Pattern::BufNtsv.sink_side(), Side::Back);
        assert_eq!(Pattern::NtsvBuf.root_side(), Side::Back);
        assert_eq!(Pattern::NtsvBuf.sink_side(), Side::Front);
        let t = tech();
        let e = Pattern::BufNtsv.eval(40_000, 30.0, &t).unwrap();
        let stage = e.stage.expect("buffered pattern has a stage");
        assert!((stage.pre_delay_ps + stage.post_delay_ps) < e.delay_ps);
        assert!(e.up_cap_ff < 10.0);
    }

    #[test]
    fn zero_length_edges_still_work() {
        let t = tech();
        for p in PatternSet::Extended.patterns() {
            let e = p.eval(0, 5.0, &t).expect("zero-length feasible");
            assert!(e.delay_ps >= 0.0);
            assert!(e.up_cap_ff > 0.0);
        }
    }
}
