//! The end-to-end double-side CTS pipeline (Fig. 4).
//!
//! [`DsCts`] chains hierarchical clock routing, concurrent buffer & nTSV
//! insertion, and skew refinement behind a builder API. Configured with
//! [`DsCts::single_side`], the same pipeline produces the paper's
//! "Our Buffered Clock Tree" front-side flow.

use crate::dp::{run_dp, DpConfig, ModeRule, MoesWeights, PruneMode, RootCand};
use crate::pattern::PatternSet;
use crate::route::{HierarchicalRouter, RoutingStyle};
use crate::skew::{refine, RefineReport, SkewConfig};
use crate::synth::{EvalModel, SynthesizedTree, TreeMetrics};
use dscts_netlist::Design;
use dscts_tech::Technology;
use std::time::Instant;

/// Pipeline builder. Defaults reproduce the paper's Table III "Ours"
/// configuration: `Hc = 3000`, `Lc = 30`, all-full insertion modes, MOES
/// weights (1, 10, 1), skew refinement at `p = 23 %`, `m = 33`.
#[derive(Debug, Clone)]
pub struct DsCts {
    tech: Technology,
    hc: usize,
    lc: usize,
    seed: u64,
    style: RoutingStyle,
    max_seg_len: i64,
    dp: DpConfig,
    skew: Option<SkewConfig>,
    eval: EvalModel,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The synthesized (legal) double-side clock tree.
    pub tree: SynthesizedTree,
    /// Final metrics (after skew refinement when enabled).
    pub metrics: TreeMetrics,
    /// The DP's surviving root candidate set (Fig. 10 material).
    pub root_candidates: Vec<RootCand>,
    /// Index of the MOES-selected candidate.
    pub chosen: usize,
    /// Skew-refinement report when the stage ran.
    pub refinement: Option<RefineReport>,
    /// Wall-clock runtime of the whole pipeline (seconds).
    pub runtime_s: f64,
}

impl DsCts {
    /// A pipeline over `tech` with the paper's default parameters.
    pub fn new(tech: Technology) -> Self {
        DsCts {
            tech,
            hc: 3000,
            lc: 30,
            seed: 7,
            style: RoutingStyle::Hierarchical,
            max_seg_len: 40_000,
            dp: DpConfig::default(),
            skew: Some(SkewConfig::default()),
            eval: EvalModel::Elmore,
        }
    }

    /// High-level cluster size bound `Hc`.
    pub fn hc(mut self, hc: usize) -> Self {
        self.hc = hc;
        self
    }

    /// Low-level cluster size bound `Lc`.
    pub fn lc(mut self, lc: usize) -> Self {
        self.lc = lc;
        self
    }

    /// Clustering seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trunk routing style (hierarchical vs flat matching).
    pub fn routing_style(mut self, style: RoutingStyle) -> Self {
        self.style = style;
        self
    }

    /// DP segmentation granularity (nm).
    pub fn max_segment(mut self, nm: i64) -> Self {
        assert!(nm > 0);
        self.max_seg_len = nm;
        self
    }

    /// Insertion-mode rule (the DSE knob).
    pub fn mode_rule(mut self, rule: ModeRule) -> Self {
        self.dp.mode_rule = rule;
        self
    }

    /// MOES weights (Eq. 3).
    pub fn moes(mut self, weights: MoesWeights) -> Self {
        self.dp.moes = weights;
        self
    }

    /// Pruning discipline.
    pub fn prune(mut self, mode: PruneMode) -> Self {
        self.dp.prune = mode;
        self
    }

    /// Pattern alphabet.
    pub fn patterns(mut self, set: PatternSet) -> Self {
        self.dp.patterns = set;
        self
    }

    /// Candidate cap per DP node.
    pub fn max_candidates(mut self, k: usize) -> Self {
        assert!(k >= 2);
        self.dp.max_cands = k;
        self
    }

    /// Restrict the flow to the front side ("Our Buffered Clock Tree").
    pub fn single_side(mut self, on: bool) -> Self {
        self.dp.single_side = on;
        self
    }

    /// Configure (or disable with `None`) the skew-refinement stage.
    pub fn skew_refinement(mut self, cfg: Option<SkewConfig>) -> Self {
        self.skew = cfg;
        self
    }

    /// Delay model for final metrics.
    pub fn eval_model(mut self, model: EvalModel) -> Self {
        self.eval = model;
        self
    }

    /// The technology this pipeline targets.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Runs the full pipeline on `design`.
    ///
    /// # Panics
    ///
    /// Panics if the design has no sinks or the DP finds no feasible
    /// solution under the configured constraints.
    pub fn run(&self, design: &Design) -> Outcome {
        let start = Instant::now();
        let mut topo = HierarchicalRouter::new()
            .hc(self.hc)
            .lc(self.lc)
            .seed(self.seed)
            .style(self.style)
            .route(design, &self.tech);
        topo.subdivide(self.max_seg_len);
        let dp = run_dp(&topo, &self.tech, &self.dp);
        let mut tree = SynthesizedTree::new(topo, dp.assignment);
        debug_assert_eq!(tree.validate_sides(), Ok(()));
        let refinement = self
            .skew
            .as_ref()
            .map(|cfg| refine(&mut tree, &self.tech, self.eval, cfg));
        let metrics = tree.evaluate(&self.tech, self.eval);
        Outcome {
            tree,
            metrics,
            root_candidates: dp.root_candidates,
            chosen: dp.chosen,
            refinement,
            runtime_s: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscts_netlist::BenchmarkSpec;

    fn run(single: bool) -> Outcome {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        DsCts::new(Technology::asap7())
            .single_side(single)
            .run(&d)
    }

    #[test]
    fn full_pipeline_double_side() {
        let o = run(false);
        assert_eq!(o.tree.validate_sides(), Ok(()));
        assert!(o.metrics.ntsvs > 0);
        assert!(o.metrics.latency_ps > 0.0);
        assert!(o.runtime_s > 0.0);
    }

    #[test]
    fn single_side_flow_has_no_ntsvs() {
        let o = run(true);
        assert_eq!(o.metrics.ntsvs, 0);
    }

    #[test]
    fn double_side_beats_single_side() {
        let (ds, ss) = (run(false), run(true));
        assert!(
            ds.metrics.latency_ps < ss.metrics.latency_ps,
            "double-side {} vs single-side {}",
            ds.metrics.latency_ps,
            ss.metrics.latency_ps
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = run(false);
        let b = run(false);
        assert_eq!(a.metrics.latency_ps, b.metrics.latency_ps);
        assert_eq!(a.metrics.buffers, b.metrics.buffers);
        assert_eq!(a.metrics.ntsvs, b.metrics.ntsvs);
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn different_seed_changes_clustering_not_validity() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let o = DsCts::new(Technology::asap7()).seed(1234).run(&d);
        assert_eq!(o.tree.validate_sides(), Ok(()));
        assert_eq!(o.metrics.arrivals.len(), 1056);
    }
}
