//! The end-to-end double-side CTS pipeline (Fig. 4), as a staged engine.
//!
//! [`DsCts`] is the builder; a run executes a sequence of [`Stage`]s over
//! a shared [`PipelineCtx`] blackboard:
//!
//! | stage | name | reads | writes |
//! |-------|------|-------|--------|
//! | [`RouteStage`] | `route` | design, tech | `topo` (routed [`ClockTopo`](crate::ClockTopo)) |
//! | [`InsertionStage`] | `insertion` | `topo`, tech | `dp`, `tree` (side-validated) |
//! | [`OptimizeStage`] | `optimize` | `tree`, tech | `optimization`, `refinement` (optional stage) |
//! | [`EvalStage`] | `evaluate` | `tree`, tech | `metrics` |
//!
//! The optimize stage executes a configured [`OptSchedule`] through the
//! [`PassManager`] (see [`crate::opt`]): by default exactly one
//! [`EndpointRefinePass`] — reproducing the paper's §III-D refinement
//! loop bit-for-bit — and via [`DsCts::schedule`] any composition of
//! [`crate::opt::OptPass`]es (greedy or annealed sizing, pattern local
//! search, custom passes). Each pass's wall clock is folded into
//! [`Outcome::stages`] as an `opt:<name>` entry.
//!
//! Each stage is timed individually; [`Outcome::stages`] carries the
//! per-stage wall clock so regressions can be pinned to a phase instead
//! of a whole run. Data-dependent failures (no sinks, infeasible DP,
//! side-inconsistent tree) surface as [`CtsError`] from
//! [`DsCts::try_run`]; [`DsCts::run`] is a thin wrapper that panics with
//! the same message, preserving the original API.
//!
//! The hot paths behind the stages — per-cluster DME routing and
//! per-height DP candidate propagation — are parallelized with rayon and
//! produce bit-identical results at any thread count (order-preserving
//! reductions everywhere); `RAYON_NUM_THREADS=1` reproduces the serial
//! engine exactly. Configured with [`DsCts::single_side`], the same
//! pipeline produces the paper's "Our Buffered Clock Tree" front-side
//! flow.
//!
//! Besides [`DsCts::run`]/[`DsCts::try_run`] (which execute the whole
//! stage sequence), every stage can be **driven individually** —
//! [`DsCts::route`], [`DsCts::insert`] / [`DsCts::insert_with_modes`],
//! [`DsCts::optimize_tree`] (or the legacy [`DsCts::refine_tree`]),
//! [`DsCts::evaluate_tree`] — so batch drivers can amortize shared work
//! across configurations. The batched DSE engine
//! ([`crate::dse::SweepEngine`]) routes a design once and then fans the
//! insertion + optimization + evaluation tail out over mode-equivalence
//! classes of the threshold sweep; the Table III regenerator shares one
//! routed topology between the double-side and front-side flows the same
//! way. Each staged method runs exactly the arithmetic its [`Stage`]
//! counterpart runs, so any composition of them is bit-identical to the
//! monolithic `run`.

use crate::dp::{DpConfig, DpResult, ModeRule, MoesWeights, PruneMode, RootCand};
use crate::error::CtsError;
use crate::mcmm::{CornerReport, RobustObjective};
use crate::opt::{OptSchedule, PassManager, ScheduleReport};
use crate::pattern::{Mode, PatternSet};
use crate::resilience::{fault, CancelToken, RecoveryPolicy, RecoveryStep, Relaxation, RunBudget};
use crate::route::{HierarchicalRouter, RoutingStyle};
use crate::skew::{refine, EndpointRefinePass, RefineReport, SkewConfig};
use crate::synth::{EvalModel, SynthesizedTree, TreeMetrics};
use crate::tree::ClockTopo;
use dscts_netlist::Design;
use dscts_tech::{CornerSet, Technology};
use dscts_telemetry as telemetry;
use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Pipeline builder. Defaults reproduce the paper's Table III "Ours"
/// configuration: `Hc = 3000`, `Lc = 30`, all-full insertion modes, MOES
/// weights (1, 10, 1), skew refinement at `p = 23 %`, `m = 33`.
#[derive(Debug, Clone)]
pub struct DsCts {
    tech: Technology,
    hc: usize,
    lc: usize,
    seed: u64,
    style: RoutingStyle,
    max_seg_len: i64,
    dp: DpConfig,
    skew: Option<SkewConfig>,
    schedule: Option<OptSchedule>,
    eval: EvalModel,
    /// MCMM: when set, the optimize stage fans every trial move out to
    /// all corners (scored by `robust`) and the outcome carries a
    /// [`CornerReport`]. Arc'd so cloning the pipeline into sweep workers
    /// shares the expanded per-corner technologies.
    corners: Option<Arc<CornerSet>>,
    robust: RobustObjective,
    /// Resilience: wall-clock/trial budget observed cooperatively by the
    /// stages (see [`DsCts::budget`]).
    budget: Option<RunBudget>,
    /// Resilience: deterministic retry ladder for data-dependent
    /// infeasibilities (see [`DsCts::recovery`]).
    recovery: Option<RecoveryPolicy>,
}

/// Wall-clock measurement of one pipeline stage (or one optimization
/// pass, reported as `opt:<name>`).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// The stage's [`Stage::name`], or `opt:<pass name>` for a pass of
    /// the optimize stage. Static for built-in stages, owned for
    /// dynamically named passes — no leaked strings either way.
    pub name: Cow<'static, str>,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
    /// Process-wide peak RSS (bytes) sampled when the stage finished,
    /// via [`crate::rss::peak_rss_bytes`]. Monotone non-decreasing
    /// across stages (it is a high-water mark); `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The synthesized (legal) double-side clock tree.
    pub tree: SynthesizedTree,
    /// Final metrics (after skew refinement when enabled).
    pub metrics: TreeMetrics,
    /// The DP's surviving root candidate set (Fig. 10 material).
    pub root_candidates: Vec<RootCand>,
    /// Index of the MOES-selected candidate.
    pub chosen: usize,
    /// Skew-refinement report, reconstructed from the optimize stage's
    /// [`EndpointRefinePass`] when the schedule ran one (the default
    /// schedule does) — kept so refinement-era callers read the same
    /// numbers they always did.
    pub refinement: Option<RefineReport>,
    /// Per-pass optimization report when the optimize stage ran.
    pub optimization: Option<ScheduleReport>,
    /// Per-corner metrics and the cross-corner robust summary of the
    /// final tree, present when the pipeline was configured with
    /// [`DsCts::corners`].
    pub corners: Option<CornerReport>,
    /// Per-stage wall-clock timings, in execution order; the optimize
    /// stage is followed by one `opt:<name>` entry per executed pass.
    pub stages: Vec<StageTiming>,
    /// Wall-clock runtime of the whole pipeline (seconds).
    pub runtime_s: f64,
    /// Process-wide peak RSS (bytes) at the end of the run, via
    /// [`crate::rss::peak_rss_bytes`]; `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
    /// Whether a [`RunBudget`] expired mid-run and the optimization
    /// schedule was truncated: the tree is valid and fully evaluated, but
    /// some scheduled passes were skipped or cut short. Always `false`
    /// without a budget.
    pub degraded: bool,
    /// The [`RecoveryPolicy`] relaxations this run needed, in ladder
    /// order. Empty when the first attempt succeeded (always, without a
    /// policy).
    pub recovery: Vec<RecoveryStep>,
}

impl Outcome {
    /// Wall-clock seconds of the named stage, when it ran.
    pub fn stage_seconds(&self, name: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.seconds)
    }
}

/// The shared blackboard a pipeline run threads through its stages.
///
/// Earlier stages deposit artifacts that later stages consume; a stage
/// that reaches for an artifact its predecessors did not produce is a
/// stage-ordering bug and panics (the engine constructs orders that
/// cannot do this). Data-dependent failures use [`CtsError`] instead.
#[derive(Debug)]
pub struct PipelineCtx<'a> {
    /// The design under synthesis.
    pub design: &'a Design,
    /// The target technology.
    pub tech: &'a Technology,
    /// Delay model for refinement and final metrics.
    pub eval: EvalModel,
    /// Routed clock topology (deposited by [`RouteStage`], consumed by
    /// [`InsertionStage`]).
    pub topo: Option<ClockTopo>,
    /// DP result (deposited by [`InsertionStage`]).
    pub dp: Option<DpResult>,
    /// Synthesized, side-validated tree (deposited by
    /// [`InsertionStage`], optimized in place by [`OptimizeStage`]).
    pub tree: Option<SynthesizedTree>,
    /// Skew-refinement report (deposited by [`OptimizeStage`] when its
    /// schedule ran an [`EndpointRefinePass`]).
    pub refinement: Option<RefineReport>,
    /// Per-pass optimization report (deposited by [`OptimizeStage`]).
    pub optimization: Option<ScheduleReport>,
    /// Final metrics (deposited by [`EvalStage`]).
    pub metrics: Option<TreeMetrics>,
    /// Per-corner metrics + robust summary (deposited by [`EvalStage`]
    /// when the pipeline carries a [`CornerSet`]).
    pub corner_report: Option<CornerReport>,
    /// Cooperative cancellation token for this run, when a [`RunBudget`]
    /// is configured. Stages check it at their boundary; long loops check
    /// it inside.
    pub cancel: Option<CancelToken>,
    /// Set by a stage that truncated work under cancellation (the
    /// optimize stage); folded into [`Outcome::degraded`].
    pub degraded: bool,
}

impl<'a> PipelineCtx<'a> {
    /// An empty blackboard over `design` and `tech`.
    pub fn new(design: &'a Design, tech: &'a Technology, eval: EvalModel) -> Self {
        PipelineCtx {
            design,
            tech,
            eval,
            topo: None,
            dp: None,
            tree: None,
            refinement: None,
            optimization: None,
            metrics: None,
            corner_report: None,
            cancel: None,
            degraded: false,
        }
    }

    /// The cancellation token, when the run is budgeted.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }
}

/// One phase of the CTS engine, individually instrumented and
/// restartable over a [`PipelineCtx`].
pub trait Stage {
    /// Stable identifier used in [`StageTiming`] and logs.
    fn name(&self) -> &'static str;
    /// Executes the stage, reading and writing [`PipelineCtx`] artifacts.
    fn run(&self, ctx: &mut PipelineCtx<'_>) -> Result<(), CtsError>;
}

/// Hierarchical clock routing (§III-B): dual-level clustering, parallel
/// per-cluster DME, trunk subdivision to the DP granularity.
#[derive(Debug, Clone)]
pub struct RouteStage {
    hc: usize,
    lc: usize,
    seed: u64,
    style: RoutingStyle,
    max_seg_len: i64,
}

impl Stage for RouteStage {
    fn name(&self) -> &'static str {
        "route"
    }

    fn run(&self, ctx: &mut PipelineCtx<'_>) -> Result<(), CtsError> {
        if let Some(cancel) = &ctx.cancel {
            cancel.check(self.name())?;
        }
        let mut topo = HierarchicalRouter::new()
            .hc(self.hc)
            .lc(self.lc)
            .seed(self.seed)
            .style(self.style)
            .try_route(ctx.design, ctx.tech)?;
        topo.subdivide(self.max_seg_len);
        ctx.topo = Some(topo);
        Ok(())
    }
}

/// Concurrent buffer & nTSV insertion (§III-C): the multi-objective DP
/// plus construction and side-validation of the synthesized tree.
#[derive(Debug, Clone)]
pub struct InsertionStage {
    dp: DpConfig,
}

impl Stage for InsertionStage {
    fn name(&self) -> &'static str {
        "insertion"
    }

    fn run(&self, ctx: &mut PipelineCtx<'_>) -> Result<(), CtsError> {
        if let Some(cancel) = &ctx.cancel {
            cancel.check(self.name())?;
        }
        // invariant: the engine only runs insertion after route.
        let topo = ctx.topo.take().expect("route stage deposits the topology");
        let (tree, dp) = insert_on(topo, ctx.tech, &self.dp, None, ctx.cancel.as_ref())?;
        ctx.dp = Some(dp);
        ctx.tree = Some(tree);
        Ok(())
    }
}

/// The insertion-stage computation: DP, tree construction, legality gate.
/// Shared by [`InsertionStage`] and the staged [`DsCts::insert`] /
/// [`DsCts::insert_with_modes`] drivers so every path runs the identical
/// arithmetic. `modes` overrides `cfg.mode_rule` when given.
fn insert_on(
    topo: ClockTopo,
    tech: &Technology,
    cfg: &DpConfig,
    modes: Option<&[Mode]>,
    cancel: Option<&CancelToken>,
) -> Result<(SynthesizedTree, DpResult), CtsError> {
    let dp = match modes {
        Some(modes) => crate::dp::try_run_dp_with_modes_cancel(&topo, tech, cfg, modes, cancel)?,
        None => {
            let modes = crate::dp::mode_vector(&topo, cfg.mode_rule);
            crate::dp::try_run_dp_with_modes_cancel(&topo, tech, cfg, &modes, cancel)?
        }
    };
    fault::fault_check(fault::SITE_SYNTH)?;
    let tree = SynthesizedTree::new(topo, dp.assignment.clone());
    // Always-on legality gate: the seed only checked sides under
    // debug_assert, silently skipping it in release builds.
    tree.validate_sides().map_err(CtsError::IllegalSides)?;
    Ok((tree, dp))
}

/// [`insert_on`] through the suffix-cached DP entry: same stages, plus
/// the run's own candidate-arena capture for cross-class reuse.
fn insert_on_suffix(
    topo: ClockTopo,
    tech: &Technology,
    cfg: &DpConfig,
    modes: &[Mode],
    cancel: Option<&CancelToken>,
    reuse: Option<&crate::dp::DpSuffixCache>,
) -> Result<(SynthesizedTree, DpResult, crate::dp::DpSuffixCache), CtsError> {
    let (dp, cache) = crate::dp::try_run_dp_suffix_cached(&topo, tech, cfg, modes, cancel, reuse)?;
    fault::fault_check(fault::SITE_SYNTH)?;
    let tree = SynthesizedTree::new(topo, dp.assignment.clone());
    tree.validate_sides().map_err(CtsError::IllegalSides)?;
    Ok((tree, dp, cache))
}

/// Post-CTS optimization (§III-D and beyond): executes a configured
/// [`OptSchedule`] over one resident incremental evaluator. Optional:
/// present only when [`DsCts::schedule`] or [`DsCts::skew_refinement`]
/// configures at least one pass. The default schedule is a single
/// [`EndpointRefinePass`], bit-identical to the pre-pass-API refine
/// stage.
#[derive(Debug, Clone)]
pub struct OptimizeStage {
    schedule: OptSchedule,
    /// MCMM: fan every trial move out to these corners, scoring through
    /// the objective (see [`DsCts::corners`]).
    corners: Option<(Arc<CornerSet>, RobustObjective)>,
}

impl OptimizeStage {
    /// A stage executing `schedule` over the single (nominal) corner.
    pub fn new(schedule: OptSchedule) -> Self {
        OptimizeStage {
            schedule,
            corners: None,
        }
    }

    /// A stage executing `schedule` over every corner of `corners`,
    /// scored through `objective` (see
    /// [`crate::opt::PassManager::run_corners`]).
    pub fn new_corners(
        schedule: OptSchedule,
        corners: Arc<CornerSet>,
        objective: RobustObjective,
    ) -> Self {
        OptimizeStage {
            schedule,
            corners: Some((corners, objective)),
        }
    }

    /// Reconstructs the legacy [`RefineReport`] from a schedule run, when
    /// the schedule included an [`EndpointRefinePass`]. The pass reports
    /// the same trigger flag, added-buffer count and surrounding metrics
    /// the free-standing [`refine`] computes, so the reconstruction is
    /// exact for the default single-refine schedule. When a custom
    /// schedule runs several refine passes, the **last** one is reported
    /// (the closest to the final tree); its `after` still predates any
    /// later non-refine passes. Matching is by pass name —
    /// [`EndpointRefinePass::NAME`] is reserved for the built-in pass.
    fn refine_report(report: &ScheduleReport) -> Option<RefineReport> {
        report
            .passes
            .iter()
            .rev()
            .find(|p| p.name == EndpointRefinePass::NAME)
            .map(|p| RefineReport {
                triggered: p.triggered,
                buffers_added: p.accepted,
                before: p.before.clone(),
                after: p.after.clone(),
            })
    }
}

impl Stage for OptimizeStage {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn run(&self, ctx: &mut PipelineCtx<'_>) -> Result<(), CtsError> {
        let eval = ctx.eval;
        let tech = ctx.tech;
        let cancel = ctx.cancel.clone();
        // invariant: the engine only runs optimize after insertion.
        let tree = ctx
            .tree
            .as_mut()
            .expect("insertion stage deposits the tree");
        let manager = PassManager::new(&self.schedule);
        let report = match &self.corners {
            Some((corners, objective)) => {
                manager.run_corners_cancel(tree, corners, eval, *objective, cancel.as_ref())
            }
            None => manager.run_cancel(tree, tech, eval, cancel.as_ref()),
        };
        // A truncated schedule is the *degraded but valid* outcome the
        // budget promises: skip the rest, still evaluate, flag it.
        ctx.degraded |= report.truncated;
        ctx.refinement = Self::refine_report(&report);
        ctx.optimization = Some(report);
        Ok(())
    }
}

/// Final metric extraction under the configured delay model — plus, for
/// a corner-aware pipeline, one batch evaluation per corner folded into
/// the [`CornerReport`].
#[derive(Debug, Clone, Default)]
pub struct EvalStage {
    corners: Option<Arc<CornerSet>>,
}

impl Stage for EvalStage {
    fn name(&self) -> &'static str {
        "evaluate"
    }

    fn run(&self, ctx: &mut PipelineCtx<'_>) -> Result<(), CtsError> {
        // No cancellation check: evaluation is cheap and always runs, so a
        // budget-truncated run still yields a fully-measured outcome.
        fault::fault_check(fault::SITE_EVAL)?;
        // invariant: the engine only runs evaluate after insertion.
        let tree = ctx
            .tree
            .as_ref()
            .expect("insertion stage deposits the tree");
        ctx.metrics = Some(tree.evaluate(ctx.tech, ctx.eval));
        if let Some(corners) = &self.corners {
            ctx.corner_report = Some(CornerReport::evaluate(tree, corners, ctx.eval));
        }
        Ok(())
    }
}

impl DsCts {
    /// A pipeline over `tech` with the paper's default parameters.
    pub fn new(tech: Technology) -> Self {
        DsCts {
            tech,
            hc: 3000,
            lc: 30,
            seed: 7,
            style: RoutingStyle::Hierarchical,
            max_seg_len: 40_000,
            dp: DpConfig::default(),
            skew: Some(SkewConfig::default()),
            schedule: None,
            eval: EvalModel::Elmore,
            corners: None,
            robust: RobustObjective::default(),
            budget: None,
            recovery: None,
        }
    }

    /// High-level cluster size bound `Hc`.
    pub fn hc(mut self, hc: usize) -> Self {
        self.hc = hc;
        self
    }

    /// Low-level cluster size bound `Lc`.
    pub fn lc(mut self, lc: usize) -> Self {
        self.lc = lc;
        self
    }

    /// Clustering seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trunk routing style (hierarchical vs flat matching).
    pub fn routing_style(mut self, style: RoutingStyle) -> Self {
        self.style = style;
        self
    }

    /// DP segmentation granularity (nm).
    pub fn max_segment(mut self, nm: i64) -> Self {
        assert!(nm > 0);
        self.max_seg_len = nm;
        self
    }

    /// Insertion-mode rule (the DSE knob).
    pub fn mode_rule(mut self, rule: ModeRule) -> Self {
        self.dp.mode_rule = rule;
        self
    }

    /// MOES weights (Eq. 3).
    pub fn moes(mut self, weights: MoesWeights) -> Self {
        self.dp.moes = weights;
        self
    }

    /// Pruning discipline.
    pub fn prune(mut self, mode: PruneMode) -> Self {
        self.dp.prune = mode;
        self
    }

    /// Pattern alphabet.
    pub fn patterns(mut self, set: PatternSet) -> Self {
        self.dp.patterns = set;
        self
    }

    /// Candidate cap per DP node.
    pub fn max_candidates(mut self, k: usize) -> Self {
        assert!(k >= 2);
        self.dp.max_cands = k;
        self
    }

    /// Restrict the flow to the front side ("Our Buffered Clock Tree").
    pub fn single_side(mut self, on: bool) -> Self {
        self.dp.single_side = on;
        self
    }

    /// Configure (or disable with `None`) the default skew-refinement
    /// schedule. Ignored when a custom [`DsCts::schedule`] is set.
    pub fn skew_refinement(mut self, cfg: Option<SkewConfig>) -> Self {
        self.skew = cfg;
        self
    }

    /// Replaces the optimize stage's pass schedule. An empty schedule
    /// drops the stage entirely (like `skew_refinement(None)`); a custom
    /// schedule takes precedence over the [`DsCts::skew_refinement`]
    /// default. Swept points of [`crate::dse::SweepEngine`] are scored
    /// through the same schedule.
    pub fn schedule(mut self, schedule: OptSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Delay model for final metrics.
    pub fn eval_model(mut self, model: EvalModel) -> Self {
        self.eval = model;
        self
    }

    /// Enables MCMM: the optimize stage runs its schedule over one
    /// resident multi-corner evaluator (every trial move fanned out to
    /// all of `corners`, scored by the configured
    /// [`DsCts::robust_objective`]), and [`Outcome::corners`] reports
    /// per-corner metrics plus the cross-corner robust summary of the
    /// final tree. [`Outcome::metrics`] stays the pipeline technology's
    /// nominal view, so corner-aware and nominal runs compare like for
    /// like. The corner set should be expanded from this pipeline's
    /// technology ([`dscts_tech::CornerSet::expand`]).
    pub fn corners(mut self, corners: CornerSet) -> Self {
        self.corners = Some(Arc::new(corners));
        self
    }

    /// The cross-corner objective a corner-aware optimize stage scores
    /// with (default: [`RobustObjective::WorstCorner`]). Ignored until
    /// [`DsCts::corners`] is set.
    pub fn robust_objective(mut self, objective: RobustObjective) -> Self {
        self.robust = objective;
        self
    }

    /// Attaches a [`RunBudget`]: the run checks the minted
    /// [`CancelToken`] at stage boundaries and inside the long loops.
    /// Cancellation before the tree exists aborts with
    /// [`CtsError::Cancelled`]; cancellation during optimization
    /// truncates the schedule and the run completes with
    /// [`Outcome::degraded`] set. An unlimited budget (the default when
    /// this is never called) changes nothing.
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = (!budget.is_unlimited()).then_some(budget);
        self
    }

    /// Attaches a [`RecoveryPolicy`]: on a recoverable error
    /// ([`CtsError::NoFeasiblePattern`], [`CtsError::NoRootCandidate`],
    /// [`CtsError::IllegalSides`]) the run deterministically retries with
    /// the ladder's relaxations applied cumulatively, recording each rung
    /// in [`Outcome::recovery`]. Without a policy (the default) the first
    /// error is returned as before.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// The technology this pipeline targets.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The configured run budget, when one is set.
    pub fn run_budget(&self) -> Option<&RunBudget> {
        self.budget.as_ref()
    }

    /// The configured recovery policy, when one is set.
    pub fn recovery_policy(&self) -> Option<&RecoveryPolicy> {
        self.recovery.as_ref()
    }

    /// The DP configuration this pipeline will run.
    pub fn dp_config(&self) -> &DpConfig {
        &self.dp
    }

    /// The skew-refinement configuration (`None` when the stage is
    /// disabled).
    pub fn skew_config(&self) -> Option<SkewConfig> {
        self.skew
    }

    /// The custom pass schedule, when one was set.
    pub fn custom_schedule(&self) -> Option<&OptSchedule> {
        self.schedule.as_ref()
    }

    /// The schedule the optimize stage will actually run: the custom
    /// schedule when set (`None` if it is empty), else the default
    /// single-[`EndpointRefinePass`] schedule derived from
    /// [`DsCts::skew_refinement`], else `None` (stage dropped).
    pub fn effective_schedule(&self) -> Option<OptSchedule> {
        match &self.schedule {
            Some(s) => (!s.is_empty()).then(|| s.clone()),
            None => self.skew.map(OptSchedule::default_post_cts),
        }
    }

    /// The delay model final metrics and refinement use.
    pub fn delay_model(&self) -> EvalModel {
        self.eval
    }

    /// The configured corner set, when the pipeline is corner-aware.
    pub fn corner_set(&self) -> Option<&CornerSet> {
        self.corners.as_deref()
    }

    /// The configured cross-corner objective.
    pub fn robust_config(&self) -> RobustObjective {
        self.robust
    }

    // ---- Staged drivers. ----
    //
    // Each method below executes exactly one stage's arithmetic, so any
    // composition is bit-identical to `run`. Batch drivers use them to
    // amortize shared work: the DSE engine routes once per design, the
    // Table III regenerator shares a routed topology between flows.

    /// Runs only the routing stage, returning the routed (and subdivided)
    /// topology. Identical to what [`DsCts::run`] deposits after its first
    /// stage.
    pub fn route(&self, design: &Design) -> Result<ClockTopo, CtsError> {
        let mut ctx = PipelineCtx::new(design, &self.tech, self.eval);
        self.route_stage().run(&mut ctx)?;
        // invariant: RouteStage::run deposits topo on every Ok return.
        Ok(ctx.topo.expect("route stage deposits the topology"))
    }

    /// Runs only the insertion stage on a pre-routed topology: the DP
    /// under this pipeline's configuration, tree construction and the
    /// side-legality gate.
    pub fn insert(&self, topo: ClockTopo) -> Result<(SynthesizedTree, DpResult), CtsError> {
        insert_on(topo, &self.tech, &self.dp, None, None)
    }

    /// [`DsCts::insert`] with a precomputed per-node [`Mode`] vector,
    /// ignoring the configured [`ModeRule`]. The batched DSE engine calls
    /// this once per mode-equivalence class.
    pub fn insert_with_modes(
        &self,
        topo: ClockTopo,
        modes: &[Mode],
    ) -> Result<(SynthesizedTree, DpResult), CtsError> {
        insert_on(topo, &self.tech, &self.dp, Some(modes), None)
    }

    /// [`DsCts::insert`] observing an external [`CancelToken`]: the DP's
    /// per-height propagation loop checkpoints the token and reports
    /// [`CtsError::Cancelled`] once it trips. With `None` (or an untripped
    /// token) the result is bit-identical to [`DsCts::insert`]. Batch and
    /// service drivers use this so externally-owned deadlines reach the
    /// insertion hot loop, not just stage boundaries.
    pub fn insert_cancel(
        &self,
        topo: ClockTopo,
        cancel: Option<&CancelToken>,
    ) -> Result<(SynthesizedTree, DpResult), CtsError> {
        insert_on(topo, &self.tech, &self.dp, None, cancel)
    }

    /// [`DsCts::insert_with_modes`] observing an external [`CancelToken`]
    /// (see [`DsCts::insert_cancel`] for the checkpoint semantics).
    pub fn insert_with_modes_cancel(
        &self,
        topo: ClockTopo,
        modes: &[Mode],
        cancel: Option<&CancelToken>,
    ) -> Result<(SynthesizedTree, DpResult), CtsError> {
        insert_on(topo, &self.tech, &self.dp, Some(modes), cancel)
    }

    /// [`DsCts::insert_with_modes_cancel`] through the suffix-cached DP
    /// entry ([`crate::try_run_dp_suffix_cached`]): always returns the
    /// run's own [`DpSuffixCache`](crate::dp::DpSuffixCache) (a free arena move), and when `reuse`
    /// carries an earlier class's cache, candidate sets of subtrees whose
    /// modes match are copied instead of recomputed — bit-identical
    /// either way. The batched DSE engine scores the fullest-mode class
    /// first and lends its cache to every other class of the same routed
    /// design.
    pub fn insert_with_modes_suffix_cached(
        &self,
        topo: ClockTopo,
        modes: &[Mode],
        cancel: Option<&CancelToken>,
        reuse: Option<&crate::dp::DpSuffixCache>,
    ) -> Result<(SynthesizedTree, DpResult, crate::dp::DpSuffixCache), CtsError> {
        insert_on_suffix(topo, &self.tech, &self.dp, modes, cancel, reuse)
    }

    /// Runs only the legacy skew-refinement pass on a synthesized tree,
    /// in place, ignoring any custom schedule. Returns `None` (doing
    /// nothing) when refinement is disabled. Most staged drivers want
    /// [`DsCts::optimize_tree`], which runs the configured schedule.
    pub fn refine_tree(&self, tree: &mut SynthesizedTree) -> Option<RefineReport> {
        self.skew
            .as_ref()
            .map(|cfg| refine(tree, &self.tech, self.eval, cfg))
    }

    /// Runs only the optimize stage on a synthesized tree, in place:
    /// exactly the configured [`DsCts::effective_schedule`] — over the
    /// configured corners when the pipeline is corner-aware — so any
    /// composition with the other staged drivers is bit-identical to
    /// [`DsCts::run`]. Returns `None` (doing nothing) when no pass is
    /// scheduled, mirroring the optional [`OptimizeStage`].
    pub fn optimize_tree(&self, tree: &mut SynthesizedTree) -> Option<ScheduleReport> {
        let schedule = self.effective_schedule()?;
        let manager = PassManager::new(&schedule);
        Some(match &self.corners {
            Some(corners) => manager.run_corners(tree, corners, self.eval, self.robust),
            None => manager.run(tree, &self.tech, self.eval),
        })
    }

    /// [`DsCts::optimize_tree`] observing an external [`CancelToken`]:
    /// once the token trips, the schedule *truncates* — remaining passes
    /// are skipped, [`ScheduleReport::truncated`] is set, and the tree is
    /// left in the valid state the last completed checkpoint produced.
    /// With `None` (or an untripped token) the result is bit-identical to
    /// [`DsCts::optimize_tree`]. This is the checkpoint that lets sweep
    /// classes and service jobs degrade mid-optimization instead of
    /// overshooting their deadline by a whole schedule.
    pub fn optimize_tree_cancel(
        &self,
        tree: &mut SynthesizedTree,
        cancel: Option<&CancelToken>,
    ) -> Option<ScheduleReport> {
        let schedule = self.effective_schedule()?;
        let manager = PassManager::new(&schedule);
        Some(match &self.corners {
            Some(corners) => {
                manager.run_corners_cancel(tree, corners, self.eval, self.robust, cancel)
            }
            None => manager.run_cancel(tree, &self.tech, self.eval, cancel),
        })
    }

    /// Runs only the evaluation stage: final metrics under the configured
    /// delay model.
    pub fn evaluate_tree(&self, tree: &SynthesizedTree) -> TreeMetrics {
        tree.evaluate(&self.tech, self.eval)
    }

    /// The routing stage this configuration runs — the single place its
    /// fields are copied out, shared by [`DsCts::stages`] and
    /// [`DsCts::route`] so the staged driver cannot drift from `run`.
    fn route_stage(&self) -> RouteStage {
        RouteStage {
            hc: self.hc,
            lc: self.lc,
            seed: self.seed,
            style: self.style,
            max_seg_len: self.max_seg_len,
        }
    }

    /// The stage sequence this configuration will execute, in order.
    pub fn stages(&self) -> Vec<Box<dyn Stage>> {
        let mut stages: Vec<Box<dyn Stage>> = vec![
            Box::new(self.route_stage()),
            Box::new(InsertionStage {
                dp: self.dp.clone(),
            }),
        ];
        if let Some(schedule) = self.effective_schedule() {
            stages.push(Box::new(match &self.corners {
                Some(corners) => {
                    OptimizeStage::new_corners(schedule, Arc::clone(corners), self.robust)
                }
                None => OptimizeStage::new(schedule),
            }));
        }
        stages.push(Box::new(EvalStage {
            corners: self.corners.clone(),
        }));
        stages
    }

    /// Runs the full pipeline on `design`, timing each stage.
    ///
    /// Returns [`CtsError`] when the design is unroutable (no sinks), the
    /// DP is infeasible under the configured constraints, or the
    /// synthesized tree fails side validation. With a [`DsCts::budget`],
    /// an expired deadline inside route/insertion reports
    /// [`CtsError::Cancelled`] while later expiry degrades the outcome
    /// instead; with a [`DsCts::recovery`] policy, recoverable errors are
    /// deterministically retried down the relaxation ladder. A panic
    /// escaping any stage is caught at the stage boundary and reported as
    /// [`CtsError::Internal`].
    pub fn try_run(&self, design: &Design) -> Result<Outcome, CtsError> {
        // One token for the whole run: recovery retries share the same
        // deadline/trial budget instead of resetting it per attempt.
        let token = self.budget.as_ref().map(RunBudget::token);
        let first = self.try_run_once(design, token.as_ref());
        let err = match first {
            Ok(outcome) => return Ok(outcome),
            Err(err) => err,
        };
        let Some(policy) = &self.recovery else {
            return Err(err);
        };
        if !RecoveryPolicy::recoverable(&err) {
            return Err(err);
        }
        // Deterministic ladder: apply each relaxation cumulatively and
        // retry the whole stage sequence; record every rung taken.
        let mut steps = Vec::new();
        let mut relaxed = self.clone();
        let mut last_err = err;
        for &rung in policy.ladder() {
            // Rung counters ("pipeline.recovery.<rung>") make ladder
            // climbs visible in the metrics snapshot without parsing
            // per-outcome recovery vectors.
            if let Some(tel) = telemetry::active() {
                tel.counter(&format!("pipeline.recovery.{}", rung.label()))
                    .incr();
            }
            steps.push(RecoveryStep {
                error: last_err.clone(),
                relaxation: rung,
            });
            relaxed = relaxed.with_relaxation(rung);
            match relaxed.try_run_once(design, token.as_ref()) {
                Ok(mut outcome) => {
                    outcome.recovery = steps;
                    return Ok(outcome);
                }
                Err(e) if RecoveryPolicy::recoverable(&e) => last_err = e,
                // Cancellation/internal errors end the ladder immediately:
                // more relaxations cannot help.
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// One [`Relaxation`] rung applied to this configuration — the same
    /// transformation [`DsCts::try_run`]'s recovery ladder applies
    /// internally, public so external retry drivers (the service layer's
    /// per-job ladder) relax a pipeline exactly the way the built-in
    /// ladder would.
    pub fn with_relaxation(mut self, rung: Relaxation) -> Self {
        match rung {
            Relaxation::WidenPatternSet => self.dp.patterns = PatternSet::Extended,
            Relaxation::RaiseMaxCandidates(k) => {
                self.dp.max_cands = self.dp.max_cands.saturating_mul(k as usize);
            }
            Relaxation::SingleSide => self.dp.single_side = true,
        }
        self
    }

    /// One full stage-sequence attempt: the pre-resilience `try_run`
    /// body, plus the cancellation token on the blackboard and a
    /// `catch_unwind` isolation boundary around every stage (the vendored
    /// rayon shim re-raises worker panics on the joining thread, so this
    /// boundary also catches panics from parallel sections).
    fn try_run_once(
        &self,
        design: &Design,
        cancel: Option<&CancelToken>,
    ) -> Result<Outcome, CtsError> {
        let start = Instant::now();
        let mut ctx = PipelineCtx::new(design, &self.tech, self.eval);
        ctx.cancel = cancel.cloned();
        let mut timings = Vec::new();
        for stage in self.stages() {
            let deposited_before = ctx.optimization.is_some();
            let t0 = Instant::now();
            catch_unwind(AssertUnwindSafe(|| stage.run(&mut ctx))).unwrap_or_else(|payload| {
                telemetry::count("pipeline.panics_caught", 1);
                Err(CtsError::Internal {
                    stage: stage.name(),
                    payload: crate::resilience::panic_message(payload.as_ref()),
                })
            })?;
            let seconds = t0.elapsed().as_secs_f64();
            // Stage spans share the already-taken wall clock instead of
            // re-measuring, so instrumented timings equal Outcome's.
            if let Some(tel) = telemetry::active() {
                tel.record_duration(&format!("span.{}", stage.name()), seconds);
            }
            timings.push(StageTiming {
                name: Cow::Borrowed(stage.name()),
                seconds,
                peak_rss_bytes: crate::rss::peak_rss_bytes(),
            });
            if !deposited_before {
                // Whichever stage just deposited the schedule report gets
                // its per-pass wall clocks folded in right behind it, as
                // `opt:<name>` entries.
                if let Some(report) = &ctx.optimization {
                    // Per-pass rows inherit the optimize stage's sample:
                    // the passes already finished, so the stage-end
                    // high-water mark covers all of them.
                    let stage_peak = timings.last().and_then(|t| t.peak_rss_bytes);
                    timings.extend(report.passes.iter().map(|p| StageTiming {
                        name: Cow::Owned(format!("opt:{}", p.name)),
                        seconds: p.seconds,
                        peak_rss_bytes: stage_peak,
                    }));
                }
            }
        }
        if let Some(tel) = telemetry::active() {
            tel.counter("pipeline.runs").incr();
            if ctx.degraded {
                tel.counter("pipeline.degraded").incr();
            }
            if let Some(rss) = crate::rss::peak_rss_bytes() {
                tel.gauge("process.peak_rss_bytes").max(rss as i64);
            }
        }
        // invariant: the stage sequence always contains insertion and
        // evaluate, and every stage returned Ok above.
        let dp = ctx.dp.expect("insertion stage ran");
        Ok(Outcome {
            tree: ctx.tree.expect("insertion stage ran"),
            metrics: ctx.metrics.expect("evaluation stage ran"),
            root_candidates: dp.root_candidates,
            chosen: dp.chosen,
            refinement: ctx.refinement,
            optimization: ctx.optimization,
            corners: ctx.corner_report,
            stages: timings,
            runtime_s: start.elapsed().as_secs_f64(),
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
            degraded: ctx.degraded,
            recovery: Vec::new(),
        })
    }

    /// Runs the full pipeline on `design`.
    ///
    /// Thin panicking wrapper over [`DsCts::try_run`].
    ///
    /// # Panics
    ///
    /// Panics with the [`CtsError`] display text if the design has no
    /// sinks or the DP finds no feasible solution under the configured
    /// constraints.
    pub fn run(&self, design: &Design) -> Outcome {
        match self.try_run(design) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Test-only serialization of process-global environment mutation.
///
/// The vendored rayon shim re-reads `RAYON_NUM_THREADS` on every parallel
/// call, so a test that flips it in-process would race any concurrently
/// scheduled test that also pins (or reads) it. Every test in this crate
/// that mutates an environment variable must do so through
/// [`test_env::ScopedEnv`], which holds the shared mutex for the whole
/// mutation window and restores the previous value on drop — even on
/// panic — so no other pin-holding test can ever observe the temporary
/// value.
#[cfg(test)]
pub(crate) mod test_env {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// An exclusive, self-restoring pin of one environment variable.
    pub(crate) struct ScopedEnv {
        key: &'static str,
        previous: Option<String>,
        _guard: MutexGuard<'static, ()>,
    }

    impl ScopedEnv {
        /// Locks the shared env mutex and snapshots `key`'s value.
        pub(crate) fn pin(key: &'static str) -> Self {
            // A panic while holding the lock poisons it; the variable was
            // still restored by Drop, so the lock state stays valid.
            let guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
            ScopedEnv {
                key,
                previous: std::env::var(key).ok(),
                _guard: guard,
            }
        }

        /// Sets the pinned variable (the pin keeps the lock held).
        pub(crate) fn set(&self, value: &str) {
            std::env::set_var(self.key, value);
        }
    }

    impl Drop for ScopedEnv {
        fn drop(&mut self) {
            match &self.previous {
                Some(v) => std::env::set_var(self.key, v),
                None => std::env::remove_var(self.key),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscts_netlist::BenchmarkSpec;

    fn run(single: bool) -> Outcome {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        DsCts::new(Technology::asap7()).single_side(single).run(&d)
    }

    #[test]
    fn full_pipeline_double_side() {
        let o = run(false);
        assert_eq!(o.tree.validate_sides(), Ok(()));
        assert!(o.metrics.ntsvs > 0);
        assert!(o.metrics.latency_ps > 0.0);
        assert!(o.runtime_s > 0.0);
    }

    #[test]
    fn single_side_flow_has_no_ntsvs() {
        let o = run(true);
        assert_eq!(o.metrics.ntsvs, 0);
    }

    #[test]
    fn double_side_beats_single_side() {
        let (ds, ss) = (run(false), run(true));
        assert!(
            ds.metrics.latency_ps < ss.metrics.latency_ps,
            "double-side {} vs single-side {}",
            ds.metrics.latency_ps,
            ss.metrics.latency_ps
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = run(false);
        let b = run(false);
        assert_eq!(a.metrics.latency_ps, b.metrics.latency_ps);
        assert_eq!(a.metrics.buffers, b.metrics.buffers);
        assert_eq!(a.metrics.ntsvs, b.metrics.ntsvs);
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn pipeline_is_thread_count_invariant() {
        // The parallel engine must be bit-identical to serial execution:
        // same tree, same metrics, to the last ulp. The rayon shim
        // re-reads RAYON_NUM_THREADS on every parallel call, so flipping
        // it between runs flips the engine's thread count in-process —
        // and would race any concurrently scheduled test. ScopedEnv holds
        // the shared env mutex for the whole window and restores the
        // caller's pin (e.g. CI's RAYON_NUM_THREADS=1 run) on drop, even
        // if an assertion below panics.
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let env = super::test_env::ScopedEnv::pin("RAYON_NUM_THREADS");
        env.set("1");
        let serial = DsCts::new(Technology::asap7()).run(&d);
        env.set("4");
        let parallel = DsCts::new(Technology::asap7()).run(&d);
        drop(env);
        assert_eq!(serial.metrics, parallel.metrics);
        assert_eq!(serial.tree, parallel.tree);
        assert_eq!(serial.root_candidates, parallel.root_candidates);
        assert_eq!(serial.chosen, parallel.chosen);
    }

    #[test]
    fn staged_drivers_compose_to_run() {
        // route + insert + optimize_tree + evaluate_tree must be
        // bit-identical to the monolithic run — the invariant the batched
        // DSE engine and the Table III regenerator rely on.
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let pipe = DsCts::new(Technology::asap7());
        let whole = pipe.run(&d);
        let topo = pipe.route(&d).expect("routable");
        let (mut tree, dp) = pipe.insert(topo).expect("feasible");
        let optimization = pipe.optimize_tree(&mut tree).expect("default schedule");
        let metrics = pipe.evaluate_tree(&tree);
        assert_eq!(whole.tree, tree);
        assert_eq!(whole.metrics, metrics);
        assert_eq!(whole.root_candidates, dp.root_candidates);
        assert_eq!(whole.chosen, dp.chosen);
        let whole_opt = whole.optimization.expect("default schedule ran");
        assert_eq!(whole_opt.before, optimization.before);
        assert_eq!(whole_opt.after, optimization.after);
    }

    #[test]
    fn legacy_refine_tree_matches_default_schedule() {
        // The pre-pass-API staged driver is a wrapper over the same
        // arithmetic the default schedule runs: composing with it stays
        // bit-identical to `run`, and Outcome::refinement reconstructs
        // exactly what the free-standing refine() reports.
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let pipe = DsCts::new(Technology::asap7());
        let whole = pipe.run(&d);
        let topo = pipe.route(&d).expect("routable");
        let (mut tree, _dp) = pipe.insert(topo).expect("feasible");
        let refinement = pipe.refine_tree(&mut tree);
        assert_eq!(whole.tree, tree);
        assert_eq!(whole.refinement, refinement);
    }

    #[test]
    fn explicit_default_schedule_is_bit_identical() {
        // Spelling the default schedule out via the builder must change
        // nothing: schedule(default_post_cts(cfg)) == skew_refinement(cfg).
        use crate::opt::OptSchedule;
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let implicit = DsCts::new(Technology::asap7()).run(&d);
        let explicit = DsCts::new(Technology::asap7())
            .schedule(OptSchedule::default_post_cts(SkewConfig::default()))
            .run(&d);
        assert_eq!(implicit.tree, explicit.tree);
        assert_eq!(implicit.metrics, explicit.metrics);
        assert_eq!(implicit.refinement, explicit.refinement);
    }

    #[test]
    fn custom_schedule_runs_and_reports_passes() {
        use crate::opt::{AnnealedSizingPass, OptSchedule};
        use crate::sizing::SizingPass;
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let o = DsCts::new(Technology::asap7())
            .schedule(
                OptSchedule::new()
                    .with(SizingPass::default())
                    .with(EndpointRefinePass::default())
                    .with(AnnealedSizingPass::default()),
            )
            .run(&d);
        let report = o.optimization.as_ref().expect("schedule ran");
        assert_eq!(report.passes.len(), 3);
        assert_eq!(report.after, o.metrics);
        // Per-pass wall clocks folded into the stage timings.
        for name in ["opt:sizing", "opt:endpoint-refine", "opt:annealed-sizing"] {
            assert!(o.stage_seconds(name).is_some(), "missing timing {name}");
        }
        // The refine-compat report comes from the scheduled pass.
        let refinement = o.refinement.expect("schedule includes refine");
        assert_eq!(refinement.buffers_added, report.passes[1].accepted);
        assert_eq!(o.tree.validate_sides(), Ok(()));
    }

    #[test]
    fn empty_custom_schedule_drops_the_stage() {
        use crate::opt::OptSchedule;
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let o = DsCts::new(Technology::asap7())
            .schedule(OptSchedule::new())
            .run(&d);
        assert!(o.stage_seconds("optimize").is_none());
        assert!(o.optimization.is_none());
        assert!(o.refinement.is_none());
        assert_eq!(o.stages.len(), 3);
    }

    #[test]
    fn insert_with_modes_overrides_configured_rule() {
        use crate::dp::{mode_vector, ModeRule};
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let pipe = DsCts::new(Technology::asap7());
        let topo = pipe.route(&d).expect("routable");
        let modes = mode_vector(&topo, ModeRule::AllIntraSide);
        let (tree, _) = pipe.insert_with_modes(topo, &modes).expect("feasible");
        // The config says AllFull, the vector says AllIntraSide; the
        // vector wins.
        assert_eq!(pipe.dp_config().mode_rule, ModeRule::AllFull);
        assert_eq!(tree.inserted_ntsvs(), 0);
    }

    #[test]
    fn outcome_reports_per_stage_timings() {
        let o = run(false);
        let names: Vec<&str> = o.stages.iter().map(|s| s.name.as_ref()).collect();
        assert_eq!(
            names,
            [
                "route",
                "insertion",
                "optimize",
                "opt:endpoint-refine",
                "evaluate"
            ]
        );
        assert!(o.stages.iter().all(|s| s.seconds >= 0.0));
        // Proper stage wall clocks are disjoint slices of the total
        // runtime; `opt:` entries are nested inside the optimize stage.
        let stage_sum: f64 = o
            .stages
            .iter()
            .filter(|s| !s.name.starts_with("opt:"))
            .map(|s| s.seconds)
            .sum();
        assert!(
            stage_sum <= o.runtime_s + 1e-6,
            "{stage_sum} vs {}",
            o.runtime_s
        );
        let pass_sum: f64 = o
            .stages
            .iter()
            .filter(|s| s.name.starts_with("opt:"))
            .map(|s| s.seconds)
            .sum();
        let optimize = o.stage_seconds("optimize").expect("stage ran");
        assert!(pass_sum <= optimize + 1e-6, "{pass_sum} vs {optimize}");
        assert_eq!(o.stage_seconds("insertion"), Some(o.stages[1].seconds));
        assert_eq!(o.stage_seconds("nonexistent"), None);
    }

    #[test]
    fn disabling_refinement_drops_the_stage() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let o = DsCts::new(Technology::asap7())
            .skew_refinement(None)
            .run(&d);
        assert!(o.stage_seconds("optimize").is_none());
        assert!(o.refinement.is_none());
        assert!(o.optimization.is_none());
        assert_eq!(o.stages.len(), 3);
    }

    #[test]
    fn corner_aware_pipeline_reports_and_composes() {
        use dscts_tech::CornerSet;
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let pipe = DsCts::new(tech.clone()).corners(CornerSet::asap7_pvt(&tech));
        let whole = pipe.run(&d);
        let report = whole.corners.as_ref().expect("corner-aware run");
        assert_eq!(report.corner_names, ["SS", "TT", "FF"]);
        assert_eq!(report.nominal, 1);
        // The nominal corner's metrics are the pipeline metrics (the TT
        // expansion is arithmetically identical to the base technology).
        assert_eq!(report.per_corner[1], whole.metrics);
        assert_eq!(
            report.robust.worst_latency_ps,
            report.per_corner[report.robust.worst_latency_corner].latency_ps
        );
        assert!(report.robust.worst_latency_ps >= whole.metrics.latency_ps);
        assert!(report.robust.arrival_spread_ps > 0.0);
        // Staged drivers stay bit-identical to the monolithic corner run.
        let topo = pipe.route(&d).expect("routable");
        let (mut tree, _dp) = pipe.insert(topo).expect("feasible");
        let opt = pipe.optimize_tree(&mut tree).expect("default schedule");
        assert_eq!(whole.tree, tree);
        assert_eq!(pipe.evaluate_tree(&tree), whole.metrics);
        let whole_opt = whole.optimization.expect("schedule ran");
        assert_eq!(whole_opt.after, opt.after);
    }

    #[test]
    fn nominal_objective_corner_run_matches_plain_run_tree() {
        // With the Nominal objective the corner fan-out only *observes*
        // the extra corners: every accept/reject decision reads the
        // nominal view, so the optimized tree is identical to the plain
        // single-corner pipeline's (the corners ride along for the
        // report).
        use crate::mcmm::RobustObjective;
        use dscts_tech::CornerSet;
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let plain = DsCts::new(tech.clone()).run(&d);
        let cornered = DsCts::new(tech.clone())
            .corners(CornerSet::asap7_pvt(&tech))
            .robust_objective(RobustObjective::Nominal)
            .run(&d);
        assert_eq!(plain.tree, cornered.tree);
        assert_eq!(plain.metrics, cornered.metrics);
        assert!(plain.corners.is_none());
        assert!(cornered.corners.is_some());
    }

    #[test]
    fn try_run_reports_empty_design() {
        let mut d = BenchmarkSpec::c4_riscv32i().generate();
        d.sinks.clear();
        let err = DsCts::new(Technology::asap7())
            .try_run(&d)
            .expect_err("no sinks");
        assert_eq!(err, CtsError::EmptyDesign);
    }

    #[test]
    fn try_run_reports_infeasible_dp_without_panicking() {
        use dscts_tech::Layer;
        // A max load below a single sink's capacitance is unsatisfiable.
        let tech = Technology::builder()
            .layer(Layer::new("MF", 0.024222, 0.12918))
            .layer(Layer::new("MB", 0.000384, 0.116264))
            .max_load_ff(0.5)
            .build()
            .unwrap();
        let mut spec = BenchmarkSpec::c4_riscv32i();
        spec.num_ffs = 16;
        let design = spec.generate();
        let err = DsCts::new(tech).try_run(&design).expect_err("infeasible");
        assert!(
            matches!(
                err,
                CtsError::NoFeasiblePattern { .. } | CtsError::NoRootCandidate
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn different_seed_changes_clustering_not_validity() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let o = DsCts::new(Technology::asap7()).seed(1234).run(&d);
        assert_eq!(o.tree.validate_sides(), Ok(()));
        assert_eq!(o.metrics.arrivals.len(), 1056);
    }
}
