//! Fault-tolerant execution: budgets, cancellation, recovery, fault injection.
//!
//! The ROADMAP's service layer will keep one process alive across
//! thousands of jobs, so a single run must never hang (unbounded wall
//! clock), never take the process down (escaped panic), and fail *usefully*
//! (typed errors a policy can retry). This module supplies the three
//! primitives the pipeline threads through its stages and long loops:
//!
//! - [`RunBudget`] + [`CancelToken`] — a wall-clock deadline and a trial
//!   budget observed *cooperatively*: the pipeline checks the token at
//!   stage boundaries and inside the long loops (per-height DP
//!   propagation, sweep classes, pass trial loops, MCMM corner fan-out).
//!   Mandatory stages report [`CtsError::Cancelled`]; the optimization
//!   stage truncates instead and the run completes with
//!   [`Outcome::degraded`](crate::Outcome::degraded) set.
//! - [`RecoveryPolicy`] — a deterministic ladder of config relaxations
//!   retried on data-dependent infeasibilities
//!   ([`CtsError::NoFeasiblePattern`], [`CtsError::NoRootCandidate`],
//!   [`CtsError::IllegalSides`]), every rung recorded in
//!   [`Outcome::recovery`](crate::Outcome::recovery).
//! - [`fault`] — a seeded, deterministic fault-injection harness compiled
//!   under the `fault-inject` feature; release builds carry zero-cost
//!   no-op checks.
//!
//! None of this changes behaviour unless configured: with no budget, no
//! policy and no armed [`fault::FaultPlan`], every path is bit-identical
//! to a build of this crate without the module.

use crate::error::CtsError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock and work budgets for one pipeline run.
///
/// A budget is pure configuration; [`RunBudget::token`] mints the shared
/// [`CancelToken`] the run observes. The default budget is unlimited and
/// leaves every path bit-identical to an unbudgeted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Wall-clock deadline, measured from [`RunBudget::token`].
    pub deadline: Option<Duration>,
    /// Maximum optimization trial moves across the whole run (annealer
    /// moves, sizing and pattern-search trials all count).
    pub max_trials: Option<u64>,
}

impl RunBudget {
    /// An unlimited budget (identical to `Default`).
    pub fn new() -> Self {
        RunBudget::default()
    }

    /// Caps wall clock: the run yields a degraded outcome (or a typed
    /// [`CtsError::Cancelled`] when no partial tree exists yet) once the
    /// deadline passes.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps total optimization trial moves.
    pub fn with_max_trials(mut self, max_trials: u64) -> Self {
        self.max_trials = Some(max_trials);
        self
    }

    /// Whether the budget constrains anything at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_trials.is_none()
    }

    /// Starts the clock: mints the token the run's checkpoints observe.
    pub fn token(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: self.deadline.map(|d| Instant::now() + d),
                trials: AtomicU64::new(0),
                max_trials: self.max_trials,
            }),
        }
    }
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    trials: AtomicU64,
    max_trials: Option<u64>,
}

/// Cooperative cancellation handle shared by every checkpoint of a run.
///
/// Cloning is cheap (one `Arc`); a clone observes and raises the same
/// flag, so an external owner can [`CancelToken::cancel`] a run from
/// another thread while the run's own checkpoints watch the deadline and
/// trial budget. Cancellation is *cooperative*: work between two
/// checkpoints always completes, which is what keeps partially-cancelled
/// outcomes valid trees rather than torn state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A token that never fires on its own (only explicit
    /// [`CancelToken::cancel`] trips it).
    pub fn unlimited() -> Self {
        RunBudget::default().token()
    }

    /// Raises the flag; every subsequent checkpoint observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the run should stop: the flag is up, or the deadline has
    /// passed (which latches the flag so later checks are branch-cheap).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Records one optimization trial move; trips the token once the
    /// budget's `max_trials` is exhausted.
    pub fn record_trial(&self) {
        let n = self.inner.trials.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.inner.max_trials {
            if n >= max {
                self.inner.cancelled.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Trial moves recorded so far.
    pub fn trials(&self) -> u64 {
        self.inner.trials.load(Ordering::Relaxed)
    }

    /// Checkpoint: `Err(CtsError::Cancelled { stage })` once the token has
    /// tripped. Mandatory stages propagate the error; optional loops
    /// `break` on it instead and mark the outcome degraded.
    pub fn check(&self, stage: &'static str) -> Result<(), CtsError> {
        if self.is_cancelled() {
            Err(CtsError::Cancelled { stage })
        } else {
            Ok(())
        }
    }
}

/// Best-effort stringification of a caught panic payload (`panic!` with a
/// literal yields `&str`, with a format string `String`; anything else is
/// opaque). Feeds [`CtsError::Internal`]'s payload so the panicking `run`
/// wrapper's re-panic preserves the original message. Public so embedders
/// with their own `catch_unwind` isolation boundaries (worker pools,
/// service layers) can produce the same typed payloads.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One rung of the [`RecoveryPolicy`] ladder: a config relaxation applied
/// cumulatively before a deterministic retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relaxation {
    /// Widen the DP pattern alphabet from [`PatternSet::Base`] to
    /// [`PatternSet::Extended`] (P7/P8 split long edges, often the only
    /// feasible shape under a tight max-load budget).
    ///
    /// [`PatternSet::Base`]: crate::PatternSet::Base
    /// [`PatternSet::Extended`]: crate::PatternSet::Extended
    WidenPatternSet,
    /// Multiply `DpConfig::max_cands` by this factor, keeping more
    /// dominated-but-diverse candidates alive to the root.
    RaiseMaxCandidates(u32),
    /// Fall back to a single-side (front-only) tree: nTSV side changes are
    /// the usual source of `IllegalSides`.
    SingleSide,
}

impl Relaxation {
    /// A stable low-cardinality slug, used as the metric-name suffix of
    /// the `pipeline.recovery.<rung>` counters.
    pub fn label(&self) -> &'static str {
        match self {
            Relaxation::WidenPatternSet => "widen_pattern_set",
            Relaxation::RaiseMaxCandidates(_) => "raise_max_candidates",
            Relaxation::SingleSide => "single_side",
        }
    }
}

impl std::fmt::Display for Relaxation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Relaxation::WidenPatternSet => write!(f, "widen pattern set to Extended"),
            Relaxation::RaiseMaxCandidates(k) => write!(f, "raise max_cands x{k}"),
            Relaxation::SingleSide => write!(f, "fall back to single-side"),
        }
    }
}

/// One recorded recovery attempt: the error that forced it and the
/// relaxation applied in response, in ladder order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryStep {
    /// The error the previous attempt failed with.
    pub error: CtsError,
    /// The (cumulative) relaxation applied for the retry.
    pub relaxation: Relaxation,
}

/// Deterministic retry ladder for data-dependent infeasibilities.
///
/// When [`DsCts::recovery`](crate::DsCts::recovery) is configured and a
/// run fails with a *recoverable* error ([`CtsError::NoFeasiblePattern`],
/// [`CtsError::NoRootCandidate`] or [`CtsError::IllegalSides`]), the
/// pipeline re-runs with the ladder's relaxations applied cumulatively —
/// by default widen the pattern set, then ×4 the DP candidate cap, then
/// fall back to single-side — until an attempt succeeds or the ladder is
/// exhausted (the last error is then returned). Every retry appends a
/// [`RecoveryStep`] to [`Outcome::recovery`](crate::Outcome::recovery).
/// There is no randomness anywhere on the ladder, so re-runs are
/// reproducible relaxation-for-relaxation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    ladder: Vec<Relaxation>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            ladder: vec![
                Relaxation::WidenPatternSet,
                Relaxation::RaiseMaxCandidates(4),
                Relaxation::SingleSide,
            ],
        }
    }
}

impl RecoveryPolicy {
    /// The default ladder: widen patterns, ×4 candidates, single-side.
    pub fn new() -> Self {
        RecoveryPolicy::default()
    }

    /// A custom ladder, tried in order (applied cumulatively).
    pub fn with_ladder(ladder: Vec<Relaxation>) -> Self {
        RecoveryPolicy { ladder }
    }

    /// The rungs, in retry order.
    pub fn ladder(&self) -> &[Relaxation] {
        &self.ladder
    }

    /// Whether the ladder retries this error. Only data-dependent
    /// infeasibilities are: internal panics are bugs, cancellations mean
    /// the budget is already spent, malformed inputs won't improve.
    pub fn recoverable(err: &CtsError) -> bool {
        matches!(
            err,
            CtsError::NoFeasiblePattern { .. }
                | CtsError::NoRootCandidate
                | CtsError::IllegalSides(_)
        )
    }
}

/// Deterministic fault injection for the robustness test harness.
///
/// A [`FaultPlan`](fault::FaultPlan) arms a list of *sites* — stable
/// names compiled into the hot paths — each with a
/// [`FaultKind`](fault::FaultKind) and a skip count (fire on the N-th
/// visit). Without the `fault-inject` feature every site check is a
/// constant `false` the optimizer deletes; with it, checks consult a
/// process-global plan installed by `FaultPlan::install` (feature-gated,
/// like the rest of the arming surface), whose guard also serializes
/// concurrently-running tests.
///
/// Site names (also the `stage` carried by resulting errors):
/// `"route"`, `"dp"`, `"synth"`, `"eval"` take `Error`/`Panic` faults;
/// `"incremental"` and `"mcmm"` take `Infeasible` faults at the evaluator
/// mutation/fan-out boundary, exercising journal rollback.
pub mod fault {
    /// Injection site inside [`HierarchicalRouter`](crate::HierarchicalRouter).
    pub const SITE_ROUTE: &str = "route";
    /// Injection site inside the per-node DP propagation worker.
    pub const SITE_DP: &str = "dp";
    /// Injection site in tree synthesis (insertion stage, post-DP).
    pub const SITE_SYNTH: &str = "synth";
    /// Injection site in the evaluation stage.
    pub const SITE_EVAL: &str = "eval";
    /// Infeasibility site in [`IncrementalEval`](crate::IncrementalEval)
    /// mutations (fires mid-mutation, after the knob is journaled).
    pub const SITE_INCREMENTAL: &str = "incremental";
    /// Infeasibility site in [`MultiCornerEval`](crate::MultiCornerEval)
    /// corner fan-out.
    pub const SITE_MCMM: &str = "mcmm";

    /// What an armed site does when it fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultKind {
        /// Return a typed [`CtsError::Internal`](crate::CtsError::Internal).
        Error,
        /// Panic (exercises the `catch_unwind` isolation boundaries).
        Panic,
        /// Report the current evaluator mutation infeasible (exercises
        /// journal rollback); only meaningful at evaluator sites.
        Infeasible,
    }

    /// One armed site: fires with `kind` on the `skips`-th visit
    /// (0 = first visit), then disarms.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct FaultArm {
        /// The site name (one of the `SITE_*` constants).
        pub site: &'static str,
        /// What happens when it fires.
        pub kind: FaultKind,
        /// Visits to let pass before firing.
        pub skips: u64,
    }

    /// A deterministic set of armed faults.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct FaultPlan {
        arms: Vec<FaultArm>,
    }

    impl FaultPlan {
        /// An empty plan (no site fires).
        pub fn new() -> Self {
            FaultPlan::default()
        }

        /// Arms `site` to fire `kind` on its first visit.
        pub fn arm(self, site: &'static str, kind: FaultKind) -> Self {
            self.arm_after(site, kind, 0)
        }

        /// Arms `site` to fire `kind` after letting `skips` visits pass.
        pub fn arm_after(mut self, site: &'static str, kind: FaultKind, skips: u64) -> Self {
            self.arms.push(FaultArm { site, kind, skips });
            self
        }

        /// The armed faults, in arm order.
        pub fn arms(&self) -> &[FaultArm] {
            &self.arms
        }

        /// Installs the plan process-globally until the guard drops.
        ///
        /// Arming is **per-plan-scoped**: exactly one plan is active at a
        /// time, and `install` *blocks* until any previously installed
        /// plan's guard has dropped, so parallel `#[test]`s (and service
        /// chaos controllers) that each install a plan run one at a time
        /// and never observe each other's faults. The sites themselves
        /// stay process-global — every thread executing pipeline code
        /// while a plan is active observes its arms, which is exactly
        /// what a multi-worker chaos run needs.
        ///
        /// Unlike the earlier guard (which held a `MutexGuard` and was
        /// therefore `!Send`), the returned [`FaultGuard`] carries only
        /// its plan's generation number: it can be armed on a controller
        /// thread and dropped on another, and a late drop can never clear
        /// a *newer* plan installed in between.
        #[cfg(feature = "fault-inject")]
        pub fn install(self) -> FaultGuard {
            let arms = self
                .arms
                .into_iter()
                .map(|arm| registry::ArmState { arm, fired: false })
                .collect();
            FaultGuard {
                generation: registry::install(arms),
            }
        }
    }

    /// RAII handle for an installed [`FaultPlan`]; clears the plan on
    /// drop (releasing the next queued [`FaultPlan::install`], if any).
    /// `Send`, so a chaos controller can hand it across threads.
    #[cfg(feature = "fault-inject")]
    #[derive(Debug)]
    pub struct FaultGuard {
        generation: u64,
    }

    #[cfg(feature = "fault-inject")]
    impl FaultGuard {
        /// Arms of this plan that have not fired yet. Lets a chaos
        /// harness verify its faults were actually consumed mid-run.
        pub fn unfired(&self) -> usize {
            registry::unfired(self.generation)
        }
    }

    #[cfg(feature = "fault-inject")]
    impl Drop for FaultGuard {
        fn drop(&mut self) {
            // Account arms that never fired before the plan vanishes:
            // `fault.unfired_arms` in the metrics snapshot replaces the
            // ad-hoc per-harness bookkeeping chaos drivers used to do.
            let unfired = registry::unfired(self.generation);
            if unfired > 0 {
                dscts_telemetry::count("fault.unfired_arms", unfired as u64);
            }
            registry::clear(self.generation);
        }
    }

    #[cfg(feature = "fault-inject")]
    mod registry {
        use super::FaultArm;
        use std::sync::{Condvar, Mutex};

        pub(super) struct ArmState {
            pub(super) arm: FaultArm,
            pub(super) fired: bool,
        }

        /// The active plan, tagged with the generation its guard owns.
        /// A plain global (not thread-local) because the vendored rayon
        /// shim runs workers on scoped `std::thread`s that would not
        /// inherit thread-local state — and because service chaos runs
        /// *want* worker threads to observe the active plan.
        struct State {
            active: Option<(u64, Vec<ArmState>)>,
            next_generation: u64,
        }

        static STATE: Mutex<State> = Mutex::new(State {
            active: None,
            next_generation: 0,
        });
        /// Signalled when the active plan clears, releasing the next
        /// blocked `install`.
        static FREED: Condvar = Condvar::new();

        /// Blocks until no plan is active, then installs `arms` and
        /// returns the new plan's generation.
        pub(super) fn install(arms: Vec<ArmState>) -> u64 {
            let mut state = STATE.lock().unwrap_or_else(|p| p.into_inner());
            while state.active.is_some() {
                state = FREED.wait(state).unwrap_or_else(|p| p.into_inner());
            }
            state.next_generation += 1;
            let generation = state.next_generation;
            state.active = Some((generation, arms));
            generation
        }

        /// Clears the plan **iff** it is still the one `generation`
        /// installed; a stale guard dropping late cannot clear a newer
        /// plan.
        pub(super) fn clear(generation: u64) {
            let mut state = STATE.lock().unwrap_or_else(|p| p.into_inner());
            if state.active.as_ref().is_some_and(|(g, _)| *g == generation) {
                state.active = None;
            }
            drop(state);
            FREED.notify_one();
        }

        /// Unfired arms remaining in the `generation` plan (0 once it
        /// cleared or was superseded).
        pub(super) fn unfired(generation: u64) -> usize {
            let state = STATE.lock().unwrap_or_else(|p| p.into_inner());
            match &state.active {
                Some((g, arms)) if *g == generation => arms.iter().filter(|a| !a.fired).count(),
                _ => 0,
            }
        }

        /// Visits `site`; reports the kind of the arm that fires, if any.
        pub(super) fn visit(site: &str) -> Option<super::FaultKind> {
            let mut guard = STATE.lock().unwrap_or_else(|p| p.into_inner());
            let (_, arms) = guard.active.as_mut()?;
            for state in arms.iter_mut() {
                if state.fired || state.arm.site != site {
                    continue;
                }
                if state.arm.skips > 0 {
                    state.arm.skips -= 1;
                    continue;
                }
                state.fired = true;
                return Some(state.arm.kind);
            }
            None
        }
    }

    /// Error/panic check compiled into stage hot paths. No-op unless a
    /// plan arms `site`; an armed `Error` returns
    /// [`CtsError::Internal`](crate::CtsError::Internal), an armed `Panic`
    /// panics (to be caught at the nearest isolation boundary).
    #[cfg(feature = "fault-inject")]
    pub(crate) fn fault_check(site: &'static str) -> Result<(), crate::CtsError> {
        match registry::visit(site) {
            Some(FaultKind::Error) => Err(crate::CtsError::Internal {
                stage: site,
                payload: format!("injected fault at `{site}`"),
            }),
            Some(FaultKind::Panic) => panic!("injected panic at `{site}`"),
            Some(FaultKind::Infeasible) | None => Ok(()),
        }
    }

    /// No-fault build: a constant the optimizer deletes.
    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    pub(crate) fn fault_check(_site: &'static str) -> Result<(), crate::CtsError> {
        Ok(())
    }

    /// Infeasibility check compiled into evaluator mutation paths: `true`
    /// when an armed `Infeasible` fault fires and the mutation must roll
    /// back and report `false`.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn fault_infeasible(site: &'static str) -> bool {
        matches!(registry::visit(site), Some(FaultKind::Infeasible))
    }

    /// No-fault build: a constant the optimizer deletes.
    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    pub(crate) fn fault_infeasible(_site: &'static str) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_cancels() {
        let token = RunBudget::new().token();
        assert!(!token.is_cancelled());
        assert!(token.check("route").is_ok());
        for _ in 0..1000 {
            token.record_trial();
        }
        assert!(token.check("optimize").is_ok());
        assert_eq!(token.trials(), 1000);
    }

    #[test]
    fn explicit_cancel_trips_every_clone() {
        let token = CancelToken::unlimited();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(
            clone.check("dp").unwrap_err(),
            CtsError::Cancelled { stage: "dp" }
        );
    }

    #[test]
    fn zero_deadline_cancels_immediately() {
        let token = RunBudget::new()
            .with_deadline(Duration::from_secs(0))
            .token();
        assert!(token.is_cancelled());
    }

    #[test]
    fn trial_budget_trips_at_cap() {
        let token = RunBudget::new().with_max_trials(3).token();
        token.record_trial();
        token.record_trial();
        assert!(!token.is_cancelled());
        token.record_trial();
        assert!(token.is_cancelled());
    }

    #[test]
    fn default_ladder_order_is_pinned() {
        let policy = RecoveryPolicy::default();
        assert_eq!(
            policy.ladder(),
            [
                Relaxation::WidenPatternSet,
                Relaxation::RaiseMaxCandidates(4),
                Relaxation::SingleSide,
            ]
        );
    }

    #[test]
    fn only_data_dependent_errors_are_recoverable() {
        assert!(RecoveryPolicy::recoverable(&CtsError::NoRootCandidate));
        assert!(RecoveryPolicy::recoverable(&CtsError::NoFeasiblePattern {
            node: 1,
            edge_len_nm: 1
        }));
        assert!(RecoveryPolicy::recoverable(&CtsError::IllegalSides(
            "x".into()
        )));
        assert!(!RecoveryPolicy::recoverable(&CtsError::EmptyDesign));
        assert!(!RecoveryPolicy::recoverable(&CtsError::Internal {
            stage: "dp",
            payload: "x".into()
        }));
        assert!(!RecoveryPolicy::recoverable(&CtsError::Cancelled {
            stage: "route"
        }));
    }

    #[test]
    fn fault_checks_are_noops_without_a_plan() {
        assert!(fault::fault_check(fault::SITE_ROUTE).is_ok());
        assert!(!fault::fault_infeasible(fault::SITE_INCREMENTAL));
    }
}
