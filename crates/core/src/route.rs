//! Hierarchical clock routing (§III-B).
//!
//! Dual-level k-means clustering (sizes `Hc`/`Lc`) feeds a hierarchy of
//! zero-skew DME runs: each high-level cluster routes its low-level
//! centroids from the high centroid; a top-level DME then routes the high
//! centroids from the clock root. Sinks connect to their low centroid by a
//! star (the *leaf nets*). The result is a [`ClockTopo`]: a binary trunk
//! (the DP's domain) plus leaf stars.
//!
//! The flat matching-based alternative of Fig. 5(c) — one DME over all low
//! centroids — is available as [`RoutingStyle::FlatMatching`] and is used
//! by the ablation benches to reproduce the paper's wirelength argument.

use crate::error::CtsError;
use crate::resilience::fault;
use crate::tree::{ClockTopo, LeafStar, TrunkNode};
use dscts_cluster::DualHierarchy;
use dscts_dme::{RoutedTree, Terminal, Topology, ZstDme};
use dscts_netlist::Design;
use dscts_tech::{Side, Technology};
use rayon::prelude::*;

/// Trunk construction style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingStyle {
    /// Dual-level clustering + hierarchical DME (the paper's router).
    #[default]
    Hierarchical,
    /// Single matching-based DME over all low centroids (Fig. 5(c)).
    FlatMatching,
}

/// Hierarchical clock router.
///
/// ```
/// use dscts_core::HierarchicalRouter;
/// use dscts_netlist::BenchmarkSpec;
/// use dscts_tech::Technology;
///
/// let design = BenchmarkSpec::c4_riscv32i().generate();
/// let topo = HierarchicalRouter::new().route(&design, &Technology::asap7());
/// assert_eq!(topo.validate(), Ok(()));
/// // 1056 sinks at Lc=30 -> ≈ 36 leaf clusters (plus a few splits of
/// // outlier clusters for load/radius feasibility).
/// assert!((35..=52).contains(&topo.stars.len()));
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalRouter {
    hc: usize,
    lc: usize,
    seed: u64,
    style: RoutingStyle,
}

impl Default for HierarchicalRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl HierarchicalRouter {
    /// Router with the paper's defaults: `Hc = 3000`, `Lc = 30`.
    pub fn new() -> Self {
        HierarchicalRouter {
            hc: 3000,
            lc: 30,
            seed: 7,
            style: RoutingStyle::Hierarchical,
        }
    }

    /// Sets the high-level cluster size bound.
    pub fn hc(mut self, hc: usize) -> Self {
        assert!(hc > 0);
        self.hc = hc;
        self
    }

    /// Sets the low-level cluster size bound.
    pub fn lc(mut self, lc: usize) -> Self {
        assert!(lc > 0);
        self.lc = lc;
        self
    }

    /// Sets the clustering seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the trunk construction style.
    pub fn style(mut self, style: RoutingStyle) -> Self {
        self.style = style;
        self
    }

    /// Routes the clock tree for `design`.
    ///
    /// Thin panicking wrapper over [`HierarchicalRouter::try_route`].
    ///
    /// # Panics
    ///
    /// Panics with the [`CtsError`] display text if the design has no
    /// sinks or the routed topology fails validation.
    pub fn route(&self, design: &Design, tech: &Technology) -> ClockTopo {
        match self.try_route(design, tech) {
            Ok(topo) => topo,
            Err(e) => panic!("{e}"),
        }
    }

    /// Routes the clock tree for `design`, reporting unroutable inputs as
    /// [`CtsError`] instead of panicking.
    ///
    /// The per-high-cluster DME runs are independent of each other and
    /// execute in parallel; subtrees are grafted back in cluster order, so
    /// the resulting topology is bit-identical at any thread count.
    pub fn try_route(&self, design: &Design, tech: &Technology) -> Result<ClockTopo, CtsError> {
        if design.sinks.is_empty() {
            return Err(CtsError::EmptyDesign);
        }
        fault::fault_check(fault::SITE_ROUTE)?;
        let sinks = design.sink_positions();
        let hier = DualHierarchy::build(&sinks, self.hc, self.lc, self.seed);
        let rc = tech.rc(Side::Front);
        let dme = ZstDme::new(rc);
        let sink_cap: Vec<f64> = design.sinks.iter().map(|s| s.cap_ff).collect();

        // Low clusters, split further whenever their star load would bust
        // the max-capacitance budget (a leaf buffer must be able to drive
        // every leaf net — a feasibility requirement of the DP) or a star
        // branch would be so long that its unbuffered leaf-net delay stops
        // being negligible (§III-D relies on intra-cluster delays being
        // noise; k-means capacity rebalancing can strand far outliers).
        let budget = 0.85 * tech.max_load_ff();
        let branch_limit = 25_000i64; // 25 µm ≈ 2 ps of leaf-net delay
        let star_cap = |members: &[u32], centroid: dscts_geom::Point| -> f64 {
            members
                .iter()
                .map(|&s| rc.cap(sinks[s as usize].manhattan(centroid)) + sink_cap[s as usize])
                .sum()
        };
        let max_branch = |members: &[u32], centroid: dscts_geom::Point| -> i64 {
            members
                .iter()
                .map(|&s| sinks[s as usize].manhattan(centroid))
                .max()
                .unwrap_or(0)
        };
        let centroid_of = |members: &[u32]| -> dscts_geom::Point {
            let sx: i64 = members.iter().map(|&s| sinks[s as usize].x).sum();
            let sy: i64 = members.iter().map(|&s| sinks[s as usize].y).sum();
            dscts_geom::Point::new(sx / members.len() as i64, sy / members.len() as i64)
        };
        let mut queue: Vec<(u32, Vec<u32>)> = hier
            .low_clusters()
            .map(|lc| (lc.high, lc.sinks.clone()))
            .collect();
        let mut clusters: Vec<(u32, dscts_geom::Point, Vec<u32>)> = Vec::new();
        while let Some((high, members)) = queue.pop() {
            let centroid = centroid_of(&members);
            if members.len() <= 1
                || (star_cap(&members, centroid) <= budget
                    && max_branch(&members, centroid) <= branch_limit)
            {
                clusters.push((high, centroid, members));
                continue;
            }
            // Median split along the wider spatial axis.
            let mut m = members;
            let xs: Vec<i64> = m.iter().map(|&s| sinks[s as usize].x).collect();
            let ys: Vec<i64> = m.iter().map(|&s| sinks[s as usize].y).collect();
            // invariant: this branch requires members.len() > 1 (the <= 1
            // case pushed the cluster above), so both extrema exist.
            let span = |v: &[i64]| {
                v.iter().max().copied().unwrap_or(0) - v.iter().min().copied().unwrap_or(0)
            };
            if span(&xs) >= span(&ys) {
                m.sort_by_key(|&s| (sinks[s as usize].x, sinks[s as usize].y));
            } else {
                m.sort_by_key(|&s| (sinks[s as usize].y, sinks[s as usize].x));
            }
            let half = m.len() / 2;
            let right = m.split_off(half);
            queue.push((high, m));
            queue.push((high, right));
        }
        clusters.sort_by_key(|(h, c, _)| (*h, c.x, c.y)); // determinism

        // Summarise each low cluster as a DME terminal (star load + delay).
        // Clusters are independent; the collect preserves cluster order.
        let star_info: Vec<(Terminal, LeafStar)> = clusters
            .par_iter()
            .map(|(_, centroid, members)| {
                let mut cap = 0.0;
                let mut max_d = 0.0f64;
                let mut branch_len = Vec::with_capacity(members.len());
                for &s in members {
                    let len = sinks[s as usize].manhattan(*centroid);
                    branch_len.push(len);
                    cap += rc.cap(len) + sink_cap[s as usize];
                    let d = rc.res(len) * (rc.cap(len) + sink_cap[s as usize]);
                    max_d = max_d.max(d);
                }
                (
                    Terminal::with_delay(*centroid, cap, max_d),
                    LeafStar {
                        node: u32::MAX, // fixed during grafting
                        sinks: members.clone(),
                        branch_len,
                    },
                )
            })
            .collect();

        let mut builder = TopoBuilder::new(design, &sink_cap);
        match self.style {
            RoutingStyle::FlatMatching => {
                let terms: Vec<Terminal> = star_info.iter().map(|(t, _)| *t).collect();
                let topo = Topology::matching(&terms);
                let tree = dme.run(&topo, &terms, design.clock_root);
                let star_ids: Vec<usize> = (0..star_info.len()).collect();
                builder.graft(&tree, 0, &star_ids, &star_info);
            }
            RoutingStyle::Hierarchical => {
                // Group low clusters (and their star data) by high cluster.
                let k_high = hier.high.k();
                let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k_high];
                for (i, (high, _, _)) in clusters.iter().enumerate() {
                    groups[*high as usize].push(i);
                }
                // Route each high cluster from its centroid. Every
                // cluster's DME run is independent — this is the routing
                // stage's hot path — and the order-preserving collect
                // keeps grafting (below) in deterministic cluster order.
                let occupied: Vec<(usize, &Vec<usize>)> = groups
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| !g.is_empty())
                    .collect();
                let subtrees: Vec<(RoutedTree, Vec<usize>, Terminal)> = occupied
                    .par_iter()
                    .map(|&(h, group)| {
                        let terms: Vec<Terminal> = group.iter().map(|&i| star_info[i].0).collect();
                        let topo = Topology::matching(&terms);
                        let source = hier.high.centroid(h);
                        let tree = dme.run(&topo, &terms, source);
                        // Summarise the routed subtree for the top-level DME.
                        // The tapping delay is deliberately *not* propagated:
                        // unbuffered-wire delays at this scale are quadratic in
                        // distance and would be balanced with enormous snaking
                        // wire, which the following buffer insertion invalidates
                        // anyway (§III-B: post-routing stages make latency and
                        // skew resilient to topology; routing should optimise
                        // wirelength).
                        let cap: f64 = terms.iter().map(|t| t.cap).sum::<f64>()
                            + rc.cap(tree.total_wirelength());
                        (tree, group.clone(), Terminal::with_delay(source, cap, 0.0))
                    })
                    .collect();
                // Top-level DME over the high centroids.
                let top_terms: Vec<Terminal> = subtrees.iter().map(|(_, _, t)| *t).collect();
                let top_topo = Topology::matching(&top_terms);
                let top_tree = dme.run(&top_topo, &top_terms, design.clock_root);
                let anchors = builder.graft(&top_tree, 0, &[], &star_info);
                // Splice each high-cluster subtree under its top-level leaf.
                for (t_idx, (tree, group, _)) in subtrees.iter().enumerate() {
                    let parent = anchors[t_idx];
                    builder.graft(tree, parent, group, &star_info);
                }
            }
        }
        let topo = builder.finish(star_info);
        // Always-on structural validation: a malformed trunk must fail
        // loudly in release builds too, not only under debug_assert.
        topo.validate().map_err(CtsError::InvalidTopology)?;
        Ok(topo)
    }
}

/// Incrementally grafts [`RoutedTree`]s into one [`ClockTopo`] trunk.
struct TopoBuilder {
    nodes: Vec<TrunkNode>,
    /// For every star id: the trunk node hosting it (filled by grafting).
    star_node: Vec<Option<u32>>,
    sink_pos: Vec<dscts_geom::Point>,
    sink_cap: Vec<f64>,
}

impl TopoBuilder {
    fn new(design: &Design, sink_cap: &[f64]) -> Self {
        TopoBuilder {
            nodes: vec![TrunkNode {
                pos: design.clock_root,
                parent: None,
                edge_len: 0,
                star: None,
            }],
            star_node: Vec::new(),
            sink_pos: design.sink_positions(),
            sink_cap: sink_cap.to_vec(),
        }
    }

    /// Grafts `tree` under trunk node `under`. `tree`'s node 0 (its source)
    /// is identified with `under`; all other nodes are copied. Terminal `t`
    /// of the tree corresponds to star `star_ids[t]` when `star_ids` is
    /// non-empty (leaf-level graft); otherwise terminals become anchors
    /// whose trunk ids are returned in terminal order (top-level graft).
    fn graft(
        &mut self,
        tree: &RoutedTree,
        under: u32,
        star_ids: &[usize],
        star_info: &[(Terminal, LeafStar)],
    ) -> Vec<u32> {
        if self.star_node.len() < star_info.len() {
            self.star_node.resize(star_info.len(), None);
        }
        let mut map = vec![u32::MAX; tree.nodes().len()];
        map[0] = under;
        let mut anchors = vec![u32::MAX; tree.terminal_count()];
        for (i, n) in tree.nodes().iter().enumerate().skip(1) {
            // invariant: DME emits exactly one parentless node, its source,
            // which is index 0 and skipped here.
            let parent = map[n.parent.expect("non-root") as usize];
            debug_assert_ne!(parent, u32::MAX, "parent grafted before child");
            let id = self.nodes.len() as u32;
            self.nodes.push(TrunkNode {
                pos: n.pos,
                parent: Some(parent),
                edge_len: n.edge_len,
                star: None,
            });
            map[i] = id;
            if let Some(t) = n.terminal {
                if star_ids.is_empty() {
                    anchors[t as usize] = id;
                } else {
                    let star = star_ids[t as usize];
                    self.nodes[id as usize].star = Some(star as u32);
                    self.star_node[star] = Some(id);
                }
            }
        }
        // Single-node tree (source == terminal) degenerate case.
        if tree.nodes().len() == 1 {
            anchors.clear();
        }
        anchors
    }

    fn finish(self, star_info: Vec<(Terminal, LeafStar)>) -> ClockTopo {
        let stars: Vec<LeafStar> = star_info
            .into_iter()
            .enumerate()
            .map(|(i, (_, mut star))| {
                // invariant: each star id appears in exactly one leaf-level
                // graft's star_ids, which fills star_node[i].
                star.node = self.star_node[i].expect("every star grafted");
                star
            })
            .collect();
        let mut nodes = self.nodes;
        for (si, s) in stars.iter().enumerate() {
            nodes[s.node as usize].star = Some(si as u32);
        }
        ClockTopo::new(nodes, stars, self.sink_pos, self.sink_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscts_netlist::BenchmarkSpec;

    fn tech() -> Technology {
        Technology::asap7()
    }

    #[test]
    fn routes_c4_with_expected_cluster_count() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let topo = HierarchicalRouter::new().route(&d, &tech());
        assert_eq!(topo.validate(), Ok(()));
        // ceil(1056/30) = 36 low clusters; capacitance- and radius-driven
        // splitting of outlier clusters adds a few more.
        assert!(
            (36..=52).contains(&topo.stars.len()),
            "{} stars",
            topo.stars.len()
        );
        // All sinks connected.
        let covered: usize = topo.stars.iter().map(|s| s.sinks.len()).sum();
        assert_eq!(covered, 1056);
    }

    #[test]
    fn routing_is_deterministic() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let a = HierarchicalRouter::new().route(&d, &tech());
        let b = HierarchicalRouter::new().route(&d, &tech());
        assert_eq!(a, b);
    }

    #[test]
    fn flat_matching_also_valid() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let topo = HierarchicalRouter::new()
            .style(RoutingStyle::FlatMatching)
            .route(&d, &tech());
        assert_eq!(topo.validate(), Ok(()));
    }

    #[test]
    fn hierarchical_wirelength_competitive_on_imbalanced_designs() {
        // C1 has macros and banked FFs — the imbalanced case motivating
        // hierarchical routing. Hierarchical geometric metal should not
        // exceed flat matching by more than a small factor, and typically
        // beats it.
        let d = BenchmarkSpec::c1_jpeg().generate();
        let hier = HierarchicalRouter::new().route(&d, &tech());
        let flat = HierarchicalRouter::new()
            .style(RoutingStyle::FlatMatching)
            .route(&d, &tech());
        let h = hier.total_wirelength();
        let f = flat.total_wirelength();
        assert!((h as f64) < 1.3 * f as f64, "hierarchical {h} vs flat {f}");
    }

    #[test]
    fn trunk_is_binary_and_rooted_at_clock_root() {
        let d = BenchmarkSpec::c5_aes().generate();
        let topo = HierarchicalRouter::new().route(&d, &tech());
        assert_eq!(topo.nodes[0].pos, d.clock_root);
        for v in 0..topo.nodes.len() {
            assert!(topo.csr().children(v as u32).len() <= 2);
        }
    }

    #[test]
    fn custom_cluster_sizes_scale_star_count() {
        // Smaller Lc means more leaf clusters; with Lc=15 the load budget
        // never binds, so the count tracks ceil(1056/15) = 71.
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let topo = HierarchicalRouter::new().lc(15).route(&d, &tech());
        assert!(
            (71..=88).contains(&topo.stars.len()),
            "{} stars",
            topo.stars.len()
        );
        // Larger Lc is clamped by the capacitance budget, never infeasible.
        let big = HierarchicalRouter::new().lc(60).route(&d, &tech());
        assert_eq!(big.validate(), Ok(()));
        assert!(big.stars.len() < topo.stars.len());
    }
}
