//! The geometric clock tree produced by hierarchical routing.
//!
//! A [`ClockTopo`] separates the **trunk** (clock root down to the low-level
//! clustering centroids — a binary tree, the domain of the DP) from the
//! **leaf stars** (low centroid to its ≤ `Lc` sinks, always front-side),
//! mirroring Fig. 7 of the paper where the DP-tree leaves are the low-level
//! clustering centroids.

use dscts_geom::{Point, TreeCsr};
use std::sync::OnceLock;

/// One trunk node. Node 0 is the clock root (source); every other node
/// defines the trunk edge from its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrunkNode {
    /// Embedded position (nm).
    pub pos: Point,
    /// Parent node (`None` only for node 0).
    pub parent: Option<u32>,
    /// Electrical length of the edge from the parent (nm, ≥ Manhattan
    /// distance; the excess is balancing snake wire).
    pub edge_len: i64,
    /// Index into [`ClockTopo::stars`] when this node is a low-level
    /// clustering centroid.
    pub star: Option<u32>,
}

/// A leaf net: the star from a low-level centroid to its member sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafStar {
    /// Trunk node hosting this star (a low-level centroid).
    pub node: u32,
    /// Global sink indices.
    pub sinks: Vec<u32>,
    /// Manhattan branch length to each sink (nm), aligned with `sinks`.
    pub branch_len: Vec<i64>,
}

/// The routed (pre-buffering) clock tree: binary trunk plus leaf stars.
///
/// The trunk adjacency is cached as a flat [`TreeCsr`] (built lazily on
/// first use, invalidated by [`ClockTopo::subdivide`]): every consumer —
/// the DP, the evaluators, the baselines — borrows the same
/// `child_index`/`child_list` arrays instead of rebuilding a
/// `Vec<Vec<u32>>` per call. Code that rewires `nodes[..].parent` directly
/// must call [`ClockTopo::invalidate_topology`] afterwards.
#[derive(Debug)]
pub struct ClockTopo {
    /// Trunk nodes; node 0 is the clock root.
    pub nodes: Vec<TrunkNode>,
    /// Leaf stars, one per low-level cluster.
    pub stars: Vec<LeafStar>,
    /// All sink positions (nm), indexed by global sink id.
    pub sink_pos: Vec<Point>,
    /// All sink capacitances (fF), aligned with `sink_pos`.
    pub sink_cap: Vec<f64>,
    /// Cached flat adjacency + topological order over `nodes`.
    csr: OnceLock<TreeCsr>,
}

impl Clone for ClockTopo {
    fn clone(&self) -> Self {
        ClockTopo {
            nodes: self.nodes.clone(),
            stars: self.stars.clone(),
            sink_pos: self.sink_pos.clone(),
            sink_cap: self.sink_cap.clone(),
            // The clone has identical structure; the cache stays valid.
            csr: self.csr.clone(),
        }
    }
}

impl PartialEq for ClockTopo {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state and never part of topology identity.
        self.nodes == other.nodes
            && self.stars == other.stars
            && self.sink_pos == other.sink_pos
            && self.sink_cap == other.sink_cap
    }
}

impl ClockTopo {
    /// Assembles a topology from its parts.
    pub fn new(
        nodes: Vec<TrunkNode>,
        stars: Vec<LeafStar>,
        sink_pos: Vec<Point>,
        sink_cap: Vec<f64>,
    ) -> Self {
        ClockTopo {
            nodes,
            stars,
            sink_pos,
            sink_cap,
            csr: OnceLock::new(),
        }
    }

    /// The cached flat trunk adjacency + topological order, built on first
    /// use from the current parent pointers.
    pub fn csr(&self) -> &TreeCsr {
        self.csr
            .get_or_init(|| TreeCsr::from_parents(self.nodes.iter().map(|n| n.parent)))
    }

    /// Drops the cached adjacency. Must be called after any direct
    /// mutation of `nodes[..].parent` (or after adding/removing nodes);
    /// [`ClockTopo::subdivide`] does this itself.
    pub fn invalidate_topology(&mut self) {
        self.csr.take();
    }

    /// Child lists for every trunk node, as owned vectors. Prefer
    /// borrowing [`ClockTopo::csr`] on hot paths.
    pub fn children(&self) -> Vec<Vec<u32>> {
        self.csr().to_nested()
    }

    /// Trunk nodes in root-first topological order, as an owned vector.
    /// Prefer borrowing [`ClockTopo::csr`] on hot paths.
    pub fn topo_order(&self) -> Vec<u32> {
        self.csr().order().to_vec()
    }

    /// Total trunk wirelength (electrical, nm).
    pub fn trunk_wirelength(&self) -> i64 {
        self.nodes.iter().map(|n| n.edge_len).sum()
    }

    /// Total leaf-star wirelength (nm).
    pub fn star_wirelength(&self) -> i64 {
        self.stars.iter().flat_map(|s| s.branch_len.iter()).sum()
    }

    /// Total clock wirelength (nm) — the paper's "Clk WL" metric.
    pub fn total_wirelength(&self) -> i64 {
        self.trunk_wirelength() + self.star_wirelength()
    }

    /// Half-perimeter of the sink bounding box (nm) — a cheap spatial
    /// spread feature for learned DSE. Zero when there are no sinks.
    pub fn sink_spread(&self) -> i64 {
        let Some(first) = self.sink_pos.first() else {
            return 0;
        };
        let (mut xlo, mut xhi, mut ylo, mut yhi) = (first.x, first.x, first.y, first.y);
        for p in &self.sink_pos[1..] {
            xlo = xlo.min(p.x);
            xhi = xhi.max(p.x);
            ylo = ylo.min(p.y);
            yhi = yhi.max(p.y);
        }
        (xhi - xlo) + (yhi - ylo)
    }

    /// Number of sinks below each trunk node (the DP's *fanout*).
    pub fn fanout(&self) -> Vec<u32> {
        let mut f = vec![0u32; self.nodes.len()];
        for s in &self.stars {
            f[s.node as usize] += s.sinks.len() as u32;
        }
        for &n in self.csr().order().iter().rev() {
            if let Some(p) = self.nodes[n as usize].parent {
                f[p as usize] += f[n as usize];
            }
        }
        f
    }

    /// Sorted distinct trunk fanout values that can flip a node's
    /// insertion mode under [`crate::ModeRule::FanoutThreshold`] —
    /// every fanout value except the total sink count (top-net nodes
    /// always stay full mode).
    ///
    /// These are the mode-class boundaries of a threshold sweep: the mode
    /// vector of threshold `t` is fully determined by *how many* of these
    /// values lie below `t`, so any two thresholds with no boundary in
    /// between are provably equivalent. The batched DSE engine
    /// ([`crate::dse::SweepEngine`]) uses this to run the DP once per
    /// equivalence class instead of once per threshold.
    pub fn distinct_fanouts(&self) -> Vec<u32> {
        let mut f = self.fanout();
        let total = f[0];
        f.retain(|&x| x != total);
        f.sort_unstable();
        f.dedup();
        f
    }

    /// Splits every trunk edge longer than `max_len` into a chain of
    /// segments of at most `max_len`, inserting Steiner nodes along the
    /// L-shaped path between the endpoints. Electrical snake excess is
    /// spread proportionally over the segments.
    ///
    /// This sets the DP granularity: each segment hosts one edge pattern,
    /// so long nets can receive several buffers / nTSV stages.
    ///
    /// # Panics
    ///
    /// Panics if `max_len <= 0`.
    pub fn subdivide(&mut self, max_len: i64) {
        assert!(max_len > 0, "max segment length must be positive");
        let n0 = self.nodes.len();
        for i in 1..n0 {
            if self.nodes[i].edge_len <= max_len {
                continue;
            }
            let parent = self.nodes[i].parent.expect("non-root");
            let ppos = self.nodes[parent as usize].pos;
            let cpos = self.nodes[i].pos;
            let total = self.nodes[i].edge_len;
            let geom = ppos.manhattan(cpos);
            let k = (total + max_len - 1) / max_len; // number of segments
                                                     // Geometric waypoints along the L-path, one per cut.
            let mut prev = parent;
            for s in 1..k {
                let frac_num = s;
                let gd = geom * frac_num / k;
                let pos = ppos.walk_toward(cpos, gd);
                let id = self.nodes.len() as u32;
                self.nodes.push(TrunkNode {
                    pos,
                    parent: Some(prev),
                    edge_len: total * s / k - total * (s - 1) / k,
                    star: None,
                });
                prev = id;
            }
            // Final segment re-targets the original node.
            self.nodes[i].parent = Some(prev);
            self.nodes[i].edge_len = total - total * (k - 1) / k;
        }
        self.invalidate_topology();
        debug_assert_eq!(self.validate(), Ok(()));
    }

    /// Structural validation: connectivity, lengths covering geometry,
    /// stars referencing valid centroids, every sink in exactly one star.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("no trunk nodes".into());
        }
        if self.nodes[0].parent.is_some() {
            return Err("node 0 must be the clock root".into());
        }
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            let p = match n.parent {
                Some(p) if (p as usize) < self.nodes.len() => p,
                Some(p) => return Err(format!("node {i}: bad parent {p}")),
                None => return Err(format!("node {i}: missing parent")),
            };
            let d = n.pos.manhattan(self.nodes[p as usize].pos);
            if n.edge_len < d {
                return Err(format!("node {i}: edge_len {} < geometry {d}", n.edge_len));
            }
        }
        // Binary trunk (root may have a single child). Counted directly
        // from the parent pointers: validation must not trust a cache that
        // a buggy caller may have left stale.
        let mut child_count = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            if let Some(p) = n.parent {
                child_count[p as usize] += 1;
            }
        }
        for (i, &c) in child_count.iter().enumerate() {
            if c > 2 {
                return Err(format!("node {i} has {c} children"));
            }
        }
        let mut star_of = vec![None; self.nodes.len()];
        for (si, s) in self.stars.iter().enumerate() {
            if s.node as usize >= self.nodes.len() {
                return Err(format!("star {si}: bad node {}", s.node));
            }
            if self.nodes[s.node as usize].star != Some(si as u32) {
                return Err(format!("star {si}: node back-reference mismatch"));
            }
            if star_of[s.node as usize].replace(si).is_some() {
                return Err(format!("node {} hosts two stars", s.node));
            }
            if s.sinks.len() != s.branch_len.len() {
                return Err(format!("star {si}: branch length arity mismatch"));
            }
            for (&sk, &bl) in s.sinks.iter().zip(&s.branch_len) {
                let sk = sk as usize;
                if sk >= self.sink_pos.len() {
                    return Err(format!("star {si}: sink {sk} out of range"));
                }
                let d = self.sink_pos[sk].manhattan(self.nodes[s.node as usize].pos);
                if bl < d {
                    return Err(format!(
                        "star {si}: branch to sink {sk} shorter than geometry"
                    ));
                }
            }
        }
        let mut covered = vec![false; self.sink_pos.len()];
        for s in &self.stars {
            for &sk in &s.sinks {
                if covered[sk as usize] {
                    return Err(format!("sink {sk} appears in two stars"));
                }
                covered[sk as usize] = true;
            }
        }
        if !covered.iter().all(|&c| c) {
            return Err("not every sink is connected".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root(0,0) -> a(10k,0) -> {b(20k,10k): star0, c(20k,-10k): star1}
    pub(crate) fn two_cluster_topo() -> ClockTopo {
        ClockTopo::new(
            vec![
                TrunkNode {
                    pos: Point::new(0, 0),
                    parent: None,
                    edge_len: 0,
                    star: None,
                },
                TrunkNode {
                    pos: Point::new(10_000, 0),
                    parent: Some(0),
                    edge_len: 10_000,
                    star: None,
                },
                TrunkNode {
                    pos: Point::new(20_000, 10_000),
                    parent: Some(1),
                    edge_len: 20_000,
                    star: Some(0),
                },
                TrunkNode {
                    pos: Point::new(20_000, -10_000),
                    parent: Some(1),
                    edge_len: 20_000,
                    star: Some(1),
                },
            ],
            vec![
                LeafStar {
                    node: 2,
                    sinks: vec![0, 1],
                    branch_len: vec![1_000, 2_000],
                },
                LeafStar {
                    node: 3,
                    sinks: vec![2],
                    branch_len: vec![500],
                },
            ],
            vec![
                Point::new(20_500, 10_500),
                Point::new(19_000, 11_000),
                Point::new(20_000, -10_500),
            ],
            vec![1.1, 1.1, 1.1],
        )
    }

    #[test]
    fn validates_and_measures() {
        let t = two_cluster_topo();
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.trunk_wirelength(), 50_000);
        assert_eq!(t.star_wirelength(), 3_500);
        assert_eq!(t.total_wirelength(), 53_500);
    }

    #[test]
    fn fanout_counts_sinks() {
        let t = two_cluster_topo();
        let f = t.fanout();
        assert_eq!(f[0], 3);
        assert_eq!(f[1], 3);
        assert_eq!(f[2], 2);
        assert_eq!(f[3], 1);
    }

    #[test]
    fn distinct_fanouts_excludes_total_and_dedups() {
        let t = two_cluster_topo();
        // Fanouts are [3, 3, 2, 1]; the total (3) is excluded because
        // top-net nodes never change mode.
        assert_eq!(t.distinct_fanouts(), vec![1, 2]);
    }

    #[test]
    fn topo_order_is_parent_first() {
        let t = two_cluster_topo();
        let order = t.topo_order();
        let rank: Vec<usize> = {
            let mut r = vec![0; t.nodes.len()];
            for (k, &n) in order.iter().enumerate() {
                r[n as usize] = k;
            }
            r
        };
        for (i, n) in t.nodes.iter().enumerate().skip(1) {
            assert!(rank[n.parent.unwrap() as usize] < rank[i]);
        }
    }

    #[test]
    fn subdivide_preserves_length_and_validity() {
        let mut t = two_cluster_topo();
        let before = t.total_wirelength();
        t.subdivide(6_000);
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.total_wirelength(), before);
        // Every edge now at most 6 µm.
        assert!(t.nodes.iter().skip(1).all(|n| n.edge_len <= 6_000));
        // Stars untouched.
        assert_eq!(t.stars.len(), 2);
    }

    #[test]
    fn subdivide_handles_snaked_edges() {
        let mut t = two_cluster_topo();
        t.nodes[1].edge_len = 25_000; // 15 µm of snaking over 10 µm span
        assert_eq!(t.validate(), Ok(()));
        t.subdivide(8_000);
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.trunk_wirelength(), 65_000);
    }

    #[test]
    fn validate_catches_orphan_sink() {
        let mut t = two_cluster_topo();
        t.stars[0].sinks.pop();
        t.stars[0].branch_len.pop();
        assert!(t.validate().unwrap_err().contains("not every sink"));
    }

    #[test]
    fn validate_catches_short_branch() {
        let mut t = two_cluster_topo();
        t.stars[0].branch_len[0] = 10; // geometry needs 1000
        assert!(t.validate().is_err());
    }
}
