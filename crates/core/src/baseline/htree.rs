//! OpenROAD-like H-tree clock tree synthesis (front side only).
//!
//! TritonCTS builds a symmetric H-tree over the core area down to clustered
//! leaf regions, buffering every few levels. The hallmarks this baseline
//! reproduces — and which Table III shows our flow beating — are:
//!
//! * internal nodes at **region box centers** (symmetric but blind to the
//!   actual sink distribution, costing wirelength on imbalanced designs);
//! * fixed-pitch repeater insertion along the trunk;
//! * a leaf buffer in front of every sink cluster.

use crate::pattern::Pattern;
use crate::synth::SynthesizedTree;
use crate::tree::{ClockTopo, LeafStar, TrunkNode};
use dscts_geom::{bounding_box, Point};
use dscts_netlist::Design;
use dscts_tech::{Side, Technology};

/// H-tree CTS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HTreeCts {
    /// Target sinks per leaf cluster.
    pub leaf_size: usize,
    /// Trunk segmentation pitch (nm); a repeater may sit on each segment.
    pub segment_nm: i64,
    /// Insert a buffer when the unshielded downstream load exceeds this
    /// fraction of the technology max load.
    pub load_fraction: f64,
}

impl Default for HTreeCts {
    fn default() -> Self {
        HTreeCts {
            leaf_size: 25,
            segment_nm: 30_000,
            // Buffer a branch once it carries ~35 % of the max load: with a
            // binary trunk this keeps every merged vertex (≤ 2 branches)
            // inside the drivable range — the aggressive per-level
            // buffering TritonCTS exhibits.
            load_fraction: 0.35,
        }
    }
}

impl HTreeCts {
    /// Synthesizes the H-tree for `design`, returning a fully patterned
    /// (front-side) [`SynthesizedTree`].
    ///
    /// # Panics
    ///
    /// Panics if the design has no sinks.
    pub fn synthesize(&self, design: &Design, tech: &Technology) -> SynthesizedTree {
        assert!(!design.sinks.is_empty(), "design has no clock sinks");
        let sinks = design.sink_positions();
        let mut nodes = vec![TrunkNode {
            pos: design.clock_root,
            parent: None,
            edge_len: 0,
            star: None,
        }];
        let mut stars: Vec<LeafStar> = Vec::new();

        // Recursive symmetric bisection over sink index sets. Leaf regions
        // are bounded both in sink count and in star capacitance so that a
        // leaf buffer can always drive them.
        let rc_front = tech.rc(Side::Front);
        let cap_budget = 0.85 * tech.max_load_ff();
        let star_cap = |idx: &[u32], center: Point| -> f64 {
            idx.iter()
                .map(|&i| {
                    rc_front.cap(design.sinks[i as usize].pos.manhattan(center))
                        + design.sinks[i as usize].cap_ff
                })
                .sum()
        };
        let mut idx: Vec<u32> = (0..sinks.len() as u32).collect();
        let top = self.bisect(
            &mut idx, &sinks, &mut nodes, &mut stars, 0, &star_cap, cap_budget,
        );
        // Connect the clock root to the top region center.
        nodes[top as usize].parent = Some(0);
        nodes[top as usize].edge_len = nodes[top as usize].pos.manhattan(design.clock_root);

        let mut topo = ClockTopo::new(
            nodes,
            stars,
            sinks,
            design.sinks.iter().map(|s| s.cap_ff).collect(),
        );
        topo.subdivide(self.segment_nm);
        debug_assert_eq!(topo.validate(), Ok(()));

        // Greedy bottom-up buffering: buffer an edge when the unshielded
        // load accumulated below would exceed the threshold.
        let rc = tech.rc(Side::Front);
        let buf = tech.buffer();
        let threshold = self.load_fraction * tech.max_load_ff().min(buf.max_load_ff());
        let csr = topo.csr();
        let n = topo.nodes.len();
        let mut patterns: Vec<Option<Pattern>> = vec![None; n];
        let mut cap = vec![0.0f64; n];
        for &v in csr.order().iter().rev() {
            let vu = v as usize;
            if let Some(si) = topo.nodes[vu].star {
                let s = &topo.stars[si as usize];
                cap[vu] += s
                    .sinks
                    .iter()
                    .zip(&s.branch_len)
                    .map(|(&sk, &len)| rc.cap(len) + topo.sink_cap[sk as usize])
                    .sum::<f64>();
            }
            for &c in csr.children(v) {
                let cu = c as usize;
                let len = topo.nodes[cu].edge_len;
                let unshielded = rc.cap(len) + cap[cu];
                if unshielded > threshold {
                    patterns[cu] = Some(Pattern::Buffer);
                    cap[vu] += rc.cap(len / 2) + buf.input_cap_ff();
                } else {
                    patterns[cu] = Some(Pattern::WiringF);
                    cap[vu] += unshielded;
                }
            }
        }
        let tree = SynthesizedTree::new(topo, patterns);
        debug_assert_eq!(tree.validate_sides(), Ok(()));
        tree
    }

    /// Splits `idx` recursively; returns the trunk node anchoring the
    /// region. Internal nodes sit at the **bounding-box center** of their
    /// region (the symmetric H-tree habit).
    #[allow(clippy::too_many_arguments)]
    fn bisect(
        &self,
        idx: &mut [u32],
        sinks: &[Point],
        nodes: &mut Vec<TrunkNode>,
        stars: &mut Vec<LeafStar>,
        depth: usize,
        star_cap: &dyn Fn(&[u32], Point) -> f64,
        cap_budget: f64,
    ) -> u32 {
        let bb = bounding_box(idx.iter().map(|&i| sinks[i as usize])).expect("non-empty region");
        let center = bb.center();
        let id = nodes.len() as u32;
        // Leaf regions are bounded in count, capacitance and radius (an
        // unbuffered leaf branch must stay electrically short).
        let radius = idx
            .iter()
            .map(|&i| sinks[i as usize].manhattan(center))
            .max()
            .unwrap_or(0);
        let small_enough =
            idx.len() <= self.leaf_size && star_cap(idx, center) <= cap_budget && radius <= 40_000;
        if idx.len() == 1 || small_enough || depth > 40 {
            // Leaf region: a cluster star at the region center.
            let star_id = stars.len() as u32;
            nodes.push(TrunkNode {
                pos: center,
                parent: None, // fixed by caller
                edge_len: 0,
                star: Some(star_id),
            });
            stars.push(LeafStar {
                node: id,
                sinks: idx.to_vec(),
                branch_len: idx
                    .iter()
                    .map(|&i| sinks[i as usize].manhattan(center))
                    .collect(),
            });
            return id;
        }
        nodes.push(TrunkNode {
            pos: center,
            parent: None,
            edge_len: 0,
            star: None,
        });
        // Alternate H / V cuts like an H-tree; fall back to the wider axis
        // when the region is degenerate.
        let horizontal = if bb.width() == 0 || bb.height() == 0 {
            bb.width() >= bb.height()
        } else {
            depth.is_multiple_of(2)
        };
        if horizontal {
            idx.sort_by_key(|&i| (sinks[i as usize].x, sinks[i as usize].y));
        } else {
            idx.sort_by_key(|&i| (sinks[i as usize].y, sinks[i as usize].x));
        }
        let mid = idx.len() / 2;
        let (lo, hi) = idx.split_at_mut(mid);
        let a = self.bisect(lo, sinks, nodes, stars, depth + 1, star_cap, cap_budget);
        let b = self.bisect(hi, sinks, nodes, stars, depth + 1, star_cap, cap_budget);
        for child in [a, b] {
            let d = nodes[child as usize].pos.manhattan(center);
            nodes[child as usize].parent = Some(id);
            nodes[child as usize].edge_len = d;
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::EvalModel;
    use dscts_netlist::BenchmarkSpec;

    #[test]
    fn htree_builds_valid_front_side_tree() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        let tree = HTreeCts::default().synthesize(&d, &tech);
        assert_eq!(tree.topo.validate(), Ok(()));
        assert_eq!(tree.validate_sides(), Ok(()));
        let m = tree.evaluate(&tech, EvalModel::Elmore);
        assert_eq!(m.ntsvs, 0);
        assert!(m.buffers > 10, "H-tree should buffer ({} found)", m.buffers);
        assert!(m.latency_ps > 0.0 && m.latency_ps < 2_000.0);
    }

    #[test]
    fn buffer_count_scales_with_cluster_count() {
        let d = BenchmarkSpec::c4_riscv32i().generate(); // 1056 sinks
        let tech = Technology::asap7();
        let tree = HTreeCts::default().synthesize(&d, &tech);
        let m = tree.evaluate(&tech, EvalModel::Elmore);
        // ≈ one leaf buffer per ≤30-sink cluster plus trunk repeaters.
        let clusters = tree.topo.stars.len() as u32;
        assert!(
            m.buffers >= clusters / 2,
            "{} buffers, {clusters} clusters",
            m.buffers
        );
        assert!(
            m.buffers <= 3 * clusters,
            "{} buffers, {clusters} clusters",
            m.buffers
        );
    }

    #[test]
    fn htree_is_deterministic() {
        let d = BenchmarkSpec::c5_aes().generate();
        let tech = Technology::asap7();
        let a = HTreeCts::default().synthesize(&d, &tech);
        let b = HTreeCts::default().synthesize(&d, &tech);
        assert_eq!(a, b);
    }

    #[test]
    fn no_load_violations_after_buffering() {
        let d = BenchmarkSpec::c5_aes().generate();
        let tech = Technology::asap7();
        let tree = HTreeCts::default().synthesize(&d, &tech);
        // Every pattern evaluation must be feasible (buffer loads bounded),
        // which evaluate() asserts internally.
        let m = tree.evaluate(&tech, EvalModel::Elmore);
        assert!(m.latency_ps.is_finite());
    }
}
