//! Comparison methods from the paper's evaluation (§IV-B).
//!
//! * [`htree`] — an OpenROAD/TritonCTS-like front-side CTS: symmetric
//!   recursive bisection with per-level buffering and clustered leaf nets.
//!   Stands in for the "OpenROAD Buffered Clock Tree" column of Table III
//!   (the real OpenROAD flow is outside this repository; see DESIGN.md).
//! * [`flip`] — the *conventional flow* (Fig. 1 left): post-CTS back-side
//!   net assignment onto an existing buffered tree, implementing the three
//!   published selection criteria: latency-driven (\[2\], every trunk net),
//!   fanout-driven (\[7\]) and timing-criticality-driven (\[6\], with the GNN
//!   replaced by a criticality ranking — see DESIGN.md substitutions).

pub mod flip;
pub mod htree;

pub use flip::{flip_backside, FlipMethod, FlipOutcome};
pub use htree::HTreeCts;
