//! Post-CTS back-side net assignment (the *conventional flow*, Fig. 1).
//!
//! All three published methods start from a finished front-side buffered
//! clock tree and move selected trunk wires to back-side metal, inserting
//! nTSVs wherever a back-side wire meets a front-side pin or wire:
//!
//! * **\[2\] latency-driven** — flip *every* trunk net above the leaf level
//!   (Fig. 2(b)): maximal latency gain, maximal nTSV count;
//! * **\[7\] fanout-driven** — flip nets whose driven-sink fanout reaches a
//!   threshold (Fig. 2(c));
//! * **\[6\] criticality-driven** — flip the nets on root-to-leaf paths of
//!   the most timing-critical leaf clusters (Fig. 2(d)); the GNN selector
//!   is substituted by an arrival-time ranking (see DESIGN.md);
//! * **\[29\]** — \[6\] integrated with back-side PDN design; modelled as the
//!   \[6\] selection plus a PDN nTSV-sharing overhead on the via count.
//!
//! Buffered edges (pattern P1) never flip: buffer pins live on the front
//! side, exactly the restriction that motivates the paper's concurrent
//! approach.

use crate::pattern::Pattern;
use crate::synth::{EvalModel, SynthesizedTree};
use dscts_tech::{Side, Technology};

/// Net-selection criterion for back-side assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlipMethod {
    /// Veloso et al. \[2\]: flip all unbuffered trunk edges.
    Latency,
    /// Bethur et al. \[7\]: flip edges with downstream sink count ≥ the
    /// threshold (the paper sweeps 20..1000; Table III uses 100).
    Fanout {
        /// Minimum downstream sink count for a net to flip.
        threshold: u32,
    },
    /// Bethur et al. \[6\]: flip edges on the root paths of the most critical
    /// `fraction` of leaf clusters (Table III uses 0.5).
    Criticality {
        /// Fraction of leaf clusters treated as timing-critical (0..=1).
        fraction: f64,
    },
    /// Vanna-iampikul et al. \[29\]: the \[6\] selection with a PDN nTSV
    /// sharing overhead.
    CriticalityPdn {
        /// Fraction of critical leaf clusters.
        fraction: f64,
        /// Relative extra nTSVs reserved for PDN taps (e.g. 0.15).
        pdn_ntsv_overhead: f64,
    },
}

/// Result of a flip pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipOutcome {
    /// The re-patterned double-side tree.
    pub tree: SynthesizedTree,
    /// Extra nTSVs to account on top of the tree's own count (PDN models).
    pub extra_ntsvs: u32,
}

/// Applies a back-side assignment method to a front-side buffered tree.
///
/// # Panics
///
/// Panics if `tree` contains back-side patterns already (the conventional
/// flow starts from a single-side tree).
pub fn flip_backside(tree: &SynthesizedTree, tech: &Technology, method: FlipMethod) -> FlipOutcome {
    for p in tree.patterns.iter().flatten() {
        assert!(
            !p.uses_back_side(),
            "conventional flow starts from a front-side tree"
        );
    }
    let topo = &tree.topo;
    let n = topo.nodes.len();
    let csr = topo.csr();
    let fanout = topo.fanout();

    // --- Select the wires to flip (never buffered edges). ---
    let mut flip = vec![false; n];
    let flippable = |i: usize| tree.patterns[i].is_some_and(|p| p.buffers() == 0);
    match method {
        FlipMethod::Latency => {
            for (i, f) in flip.iter_mut().enumerate().skip(1) {
                *f = flippable(i);
            }
        }
        FlipMethod::Fanout { threshold } => {
            for (i, f) in flip.iter_mut().enumerate().skip(1) {
                *f = flippable(i) && fanout[i] >= threshold;
            }
        }
        FlipMethod::Criticality { fraction } | FlipMethod::CriticalityPdn { fraction, .. } => {
            let fraction = fraction.clamp(0.0, 1.0);
            let metrics = tree.evaluate(tech, EvalModel::Elmore);
            // Rank leaf clusters by their worst sink arrival, most critical
            // first.
            let mut ranked: Vec<(usize, f64)> = topo
                .stars
                .iter()
                .enumerate()
                .map(|(si, s)| {
                    let worst = s
                        .sinks
                        .iter()
                        .map(|&sk| metrics.arrivals[sk as usize])
                        .fold(f64::NEG_INFINITY, f64::max);
                    (si, worst)
                })
                .collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            let take = ((ranked.len() as f64 * fraction).round() as usize).min(ranked.len());
            for &(si, _) in ranked.iter().take(take) {
                // Walk from the star's centroid to the root, flipping
                // unbuffered edges along the way.
                let mut v = topo.stars[si].node;
                while let Some(p) = topo.nodes[v as usize].parent {
                    if flippable(v as usize) {
                        flip[v as usize] = true;
                    }
                    v = p;
                }
            }
        }
    }

    // --- Vertex sides: back only when every incident wire flipped. ---
    let mut vertex_back = vec![false; n];
    for v in 1..n {
        if topo.nodes[v].star.is_some() {
            continue; // leaf pins are front-side
        }
        let parent_flipped = flip[v];
        let kids = csr.children(v as u32);
        if parent_flipped && !kids.is_empty() && kids.iter().all(|&c| flip[c as usize]) {
            vertex_back[v] = true;
        }
    }

    // --- Re-pattern flipped edges from their endpoint sides. ---
    let mut patterns = tree.patterns.clone();
    for v in 1..n {
        if !flip[v] {
            continue;
        }
        let parent = topo.nodes[v].parent.expect("non-root") as usize;
        let root_side = if parent == 0 || !vertex_back[parent] {
            Side::Front
        } else {
            Side::Back
        };
        let sink_side = if vertex_back[v] {
            Side::Back
        } else {
            Side::Front
        };
        patterns[v] = Some(match (root_side, sink_side) {
            (Side::Front, Side::Front) => Pattern::Ntsv1,
            (Side::Back, Side::Front) => Pattern::Ntsv2,
            (Side::Front, Side::Back) => Pattern::Ntsv3,
            (Side::Back, Side::Back) => Pattern::WiringB,
        });
    }

    let flipped = SynthesizedTree {
        topo: topo.clone(),
        patterns,
        star_buffers: tree.star_buffers.clone(),
        buffer_scales: tree.buffer_scales.clone(),
    };
    debug_assert_eq!(flipped.validate_sides(), Ok(()));

    let extra_ntsvs = match method {
        FlipMethod::CriticalityPdn {
            pdn_ntsv_overhead, ..
        } => (flipped.inserted_ntsvs() as f64 * pdn_ntsv_overhead).round() as u32,
        _ => 0,
    };
    FlipOutcome {
        tree: flipped,
        extra_ntsvs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::htree::HTreeCts;
    use dscts_netlist::BenchmarkSpec;

    fn front_tree() -> (SynthesizedTree, Technology) {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let tech = Technology::asap7();
        (HTreeCts::default().synthesize(&d, &tech), tech)
    }

    #[test]
    fn latency_flip_reduces_latency_costs_ntsvs() {
        let (tree, tech) = front_tree();
        let before = tree.evaluate(&tech, EvalModel::Elmore);
        let out = flip_backside(&tree, &tech, FlipMethod::Latency);
        assert_eq!(out.tree.validate_sides(), Ok(()));
        let after = out.tree.evaluate(&tech, EvalModel::Elmore);
        assert!(
            after.latency_ps < before.latency_ps,
            "{} -> {}",
            before.latency_ps,
            after.latency_ps
        );
        assert!(after.ntsvs > 0);
        assert_eq!(
            after.buffers, before.buffers,
            "flipping never moves buffers"
        );
        assert_eq!(after.wirelength_nm, before.wirelength_nm);
    }

    #[test]
    fn fanout_flip_is_selective() {
        let (tree, tech) = front_tree();
        let all = flip_backside(&tree, &tech, FlipMethod::Latency);
        let some = flip_backside(&tree, &tech, FlipMethod::Fanout { threshold: 100 });
        let none = flip_backside(
            &tree,
            &tech,
            FlipMethod::Fanout {
                threshold: u32::MAX,
            },
        );
        let (a, s, z) = (
            all.tree.evaluate(&tech, EvalModel::Elmore),
            some.tree.evaluate(&tech, EvalModel::Elmore),
            none.tree.evaluate(&tech, EvalModel::Elmore),
        );
        assert!(s.ntsvs < a.ntsvs);
        assert_eq!(z.ntsvs, 0);
        assert!(s.latency_ps <= z.latency_ps);
    }

    #[test]
    fn criticality_flip_interpolates_with_fraction() {
        let (tree, tech) = front_tree();
        let lo = flip_backside(&tree, &tech, FlipMethod::Criticality { fraction: 0.2 });
        let hi = flip_backside(&tree, &tech, FlipMethod::Criticality { fraction: 0.9 });
        let (l, h) = (
            lo.tree.evaluate(&tech, EvalModel::Elmore),
            hi.tree.evaluate(&tech, EvalModel::Elmore),
        );
        assert!(l.ntsvs <= h.ntsvs, "{} vs {}", l.ntsvs, h.ntsvs);
    }

    #[test]
    fn pdn_variant_reports_overhead() {
        let (tree, tech) = front_tree();
        let out = flip_backside(
            &tree,
            &tech,
            FlipMethod::CriticalityPdn {
                fraction: 0.5,
                pdn_ntsv_overhead: 0.15,
            },
        );
        assert!(out.extra_ntsvs > 0);
        let base = flip_backside(&tree, &tech, FlipMethod::Criticality { fraction: 0.5 });
        assert_eq!(
            out.tree.inserted_ntsvs(),
            base.tree.inserted_ntsvs(),
            "PDN overhead is bookkeeping, not topology"
        );
    }

    #[test]
    fn adjacent_flipped_edges_share_back_vertices() {
        // With everything flipped, interior vertices should be back-side,
        // so WiringB / Ntsv2 / Ntsv3 patterns must appear (not only Ntsv1).
        let (tree, tech) = front_tree();
        let out = flip_backside(&tree, &tech, FlipMethod::Latency);
        let kinds: std::collections::HashSet<&str> = out
            .tree
            .patterns
            .iter()
            .flatten()
            .map(|p| p.label())
            .collect();
        assert!(
            kinds.contains("P3") || kinds.contains("P5") || kinds.contains("P6"),
            "expected chained back-side wires, got {kinds:?}"
        );
    }
}
