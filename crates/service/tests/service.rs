//! Clean-path service tests: cache identity, admission control, typed
//! deadline failures, drain semantics.

use dscts_core::mcmm::CornerReport;
use dscts_core::{mode_vector, DsCts, ModeRule};
use dscts_netlist::{BenchmarkSpec, Design};
use dscts_service::{
    job_pipeline, CancelKind, CtsService, DesignKey, DrainMode, JobKind, JobRequest, JobResponse,
    Rejected, ServiceConfig,
};
use dscts_tech::{CornerSet, Technology};
use std::time::Duration;

fn small_design() -> Design {
    BenchmarkSpec::scaled(500, 21).generate()
}

fn bigger_design() -> Design {
    BenchmarkSpec::scaled(4_000, 22).generate()
}

fn start(cfg: ServiceConfig) -> CtsService {
    CtsService::start(DsCts::new(Technology::asap7()), cfg)
}

fn submit_ok(service: &CtsService, tenant: &str, key: DesignKey, kind: JobKind) -> JobResponse {
    let ticket = service
        .submit(JobRequest {
            tenant: tenant.into(),
            design: key,
            kind,
            deadline: None,
        })
        .expect("submission accepted");
    ticket.wait().expect("terminal response delivered")
}

#[test]
fn cache_hits_and_results_match_direct_staged_drivers() {
    let service = start(ServiceConfig {
        workers: 2,
        signoff_corners: Some(CornerSet::asap7_pvt(&Technology::asap7())),
        ..ServiceConfig::default()
    });
    let design = small_design();
    let (key, hit) = service.register_design(&design).expect("routes");
    assert!(!hit, "first registration must route");
    let (key2, hit2) = service.register_design(&design).expect("cached");
    assert!(hit2 && key2 == key, "second registration must hit");
    // Content addressing: a renamed but identical placement shares the
    // artifact.
    let mut renamed = design.clone();
    renamed.name = "same-placement-other-name".into();
    let (key3, hit3) = service.register_design(&renamed).expect("cached");
    assert!(hit3 && key3 == key);

    let base = DsCts::new(Technology::asap7());
    for kind in [
        JobKind::Score,
        JobKind::SweepPoint { threshold: 8 },
        JobKind::Sizing { moves: 32 },
    ] {
        let JobResponse::Completed(got) = submit_ok(&service, "t", key, kind) else {
            panic!("{} job must complete", kind.label());
        };
        // The direct (uncached) oracle: identical staged composition on
        // a fresh routing run.
        let pipe = job_pipeline(&base, &kind);
        let topo = pipe.route(&design).expect("oracle route");
        let (mut tree, _dp) = match kind {
            JobKind::SweepPoint { threshold } => {
                let modes = mode_vector(&topo, ModeRule::FanoutThreshold(threshold));
                pipe.insert_with_modes(topo, &modes).expect("oracle insert")
            }
            _ => pipe.insert(topo).expect("oracle insert"),
        };
        pipe.optimize_tree(&mut tree);
        assert_eq!(
            got.metrics,
            pipe.evaluate_tree(&tree),
            "{} job must be bit-identical to direct drivers",
            kind.label()
        );
    }

    // Sign-off reports the robust summary over the configured corners.
    let JobResponse::Completed(signoff) = submit_ok(&service, "t", key, JobKind::CornerSignoff)
    else {
        panic!("signoff job must complete");
    };
    let robust = signoff.robust.expect("signoff carries robust metrics");
    let topo = base.route(&design).expect("route");
    let (mut tree, _dp) = base.insert(topo).expect("insert");
    base.optimize_tree(&mut tree);
    let want = CornerReport::evaluate(
        &tree,
        &CornerSet::asap7_pvt(base.technology()),
        base.delay_model(),
    )
    .robust;
    assert_eq!(robust, want);

    let stats = service.shutdown(DrainMode::Graceful).stats;
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.terminal(), stats.accepted);
}

/// A corner set that derates capacitances past a pattern buffer's max
/// load makes sign-off evaluation infeasible for a tree the DP built at
/// nominal. That is a data-dependent failure: the job climbs the retry
/// ladder and fails *typed* — no panic reaches the worker, no Internal
/// strike accrues, and the design stays usable for other job kinds.
#[test]
fn corner_infeasibility_fails_typed_and_does_not_quarantine() {
    use dscts_core::{CtsError, RecoveryPolicy};
    use dscts_tech::{Corner, DerateFactors, WireDerate};
    let tech = Technology::asap7();
    let overload = WireDerate {
        res: 1.0,
        cap: 50.0,
    };
    let hot = Corner::new(
        "HOT",
        DerateFactors {
            front_wire: overload,
            back_wire: overload,
            buffer_delay: 1.0,
            ntsv: overload,
        },
    )
    .expect("valid derates");
    let hostile = CornerSet::expand(&tech, vec![hot, Corner::nominal("TT")], 1).expect("valid set");
    let service = CtsService::start(
        DsCts::new(tech),
        ServiceConfig {
            workers: 1,
            retry: Some(RecoveryPolicy::new()),
            signoff_corners: Some(hostile),
            ..ServiceConfig::default()
        },
    );
    let (key, _) = service.register_design(&small_design()).expect("routes");
    match submit_ok(&service, "t", key, JobKind::CornerSignoff) {
        JobResponse::Failed {
            error: CtsError::NoFeasiblePattern { .. },
            recovery,
        } => assert!(
            !recovery.is_empty(),
            "a recoverable infeasibility must climb the retry ladder"
        ),
        other => panic!("expected a typed corner infeasibility, got {other:?}"),
    }
    assert!(
        service.quarantined().is_empty(),
        "data-dependent infeasibility must not strike the design"
    );
    assert!(
        matches!(
            submit_ok(&service, "t", key, JobKind::Score),
            JobResponse::Completed(_)
        ),
        "the design stays usable for corner-free jobs"
    );
    let stats = service.shutdown(DrainMode::Graceful).stats;
    assert_eq!(stats.panics_caught, 0, "no panic reached the worker");
}

#[test]
fn admission_control_rejects_typed() {
    let service = start(ServiceConfig {
        workers: 1,
        queue_capacity: 3,
        max_outstanding_per_tenant: 2,
        ..ServiceConfig::default()
    });
    let (big, _) = service.register_design(&bigger_design()).expect("routes");

    // Occupy the single worker with a slow job...
    let running = service
        .submit(JobRequest {
            tenant: "a".into(),
            design: big,
            kind: JobKind::Sizing { moves: 50_000 },
            deadline: None,
        })
        .expect("first job accepted");
    std::thread::sleep(Duration::from_millis(100)); // worker picks it up
                                                    // ...queue a second job for the same tenant (queue 1/3)...
    let queued = service
        .submit(JobRequest {
            tenant: "a".into(),
            design: big,
            kind: JobKind::Score,
            deadline: None,
        })
        .expect("second job queues");
    // ...tenant a is now at its outstanding cap (1 running + 1 queued)
    // while the queue still has room, so the tenant cap fires:
    let backpressure = service.submit(JobRequest {
        tenant: "a".into(),
        design: big,
        kind: JobKind::Score,
        deadline: None,
    });
    assert!(
        matches!(
            backpressure,
            Err(Rejected::Backpressure {
                outstanding: 2,
                limit: 2
            })
        ),
        "got {backpressure:?}"
    );
    // Other tenants fill the remaining queue slots (queue 3/3)...
    let fillers: Vec<_> = ["b", "c"]
        .iter()
        .map(|t| {
            service
                .submit(JobRequest {
                    tenant: (*t).into(),
                    design: big,
                    kind: JobKind::Score,
                    deadline: None,
                })
                .expect("filler queues")
        })
        .collect();
    // ...and the next submission bounces off the full queue:
    let full = service.submit(JobRequest {
        tenant: "d".into(),
        design: big,
        kind: JobKind::Score,
        deadline: None,
    });
    assert!(
        matches!(full, Err(Rejected::QueueFull { capacity: 3 })),
        "got {full:?}"
    );

    assert!(running.wait().is_some());
    assert!(queued.wait().is_some());
    for f in fillers {
        assert!(f.wait().is_some());
    }
    let stats = service.shutdown(DrainMode::Graceful).stats;
    assert_eq!(stats.rejected_backpressure, 1);
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.terminal(), stats.accepted);
}

#[test]
fn unknown_design_and_missing_corners_reject() {
    let service = start(ServiceConfig::default());
    let unregistered = DesignKey::of(&small_design());
    assert!(matches!(
        service.submit(JobRequest {
            tenant: "t".into(),
            design: unregistered,
            kind: JobKind::Score,
            deadline: None,
        }),
        Err(Rejected::UnknownDesign { .. })
    ));
    let (key, _) = service.register_design(&small_design()).expect("routes");
    // No sign-off corner set configured:
    assert!(matches!(
        service.submit(JobRequest {
            tenant: "t".into(),
            design: key,
            kind: JobKind::CornerSignoff,
            deadline: None,
        }),
        Err(Rejected::MissingCorners)
    ));
    service.shutdown(DrainMode::Graceful);
}

#[test]
fn deadline_expiring_in_queue_fails_typed() {
    let service = start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (big, _) = service.register_design(&bigger_design()).expect("routes");
    let (small, _) = service.register_design(&small_design()).expect("routes");
    // Block the worker, then submit a job whose deadline expires while
    // it waits in the queue.
    let blocker = service
        .submit(JobRequest {
            tenant: "a".into(),
            design: big,
            kind: JobKind::Sizing { moves: 2_000 },
            deadline: None,
        })
        .expect("blocker accepted");
    let doomed = service
        .submit(JobRequest {
            tenant: "b".into(),
            design: small,
            kind: JobKind::Score,
            deadline: Some(Duration::from_millis(1)),
        })
        .expect("doomed job accepted");
    match doomed.wait() {
        Some(JobResponse::Failed { error, .. }) => {
            assert!(
                matches!(error, dscts_core::CtsError::Cancelled { .. }),
                "expected a typed cancellation, got {error:?}"
            );
        }
        other => panic!("expected typed deadline failure, got {other:?}"),
    }
    assert!(blocker.wait().is_some());
    service.shutdown(DrainMode::Graceful);
}

#[test]
fn graceful_drain_cancels_queued_jobs_typed() {
    let service = start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (big, _) = service.register_design(&bigger_design()).expect("routes");
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            service
                .submit(JobRequest {
                    tenant: format!("t{i}"),
                    design: big,
                    kind: JobKind::Score,
                    deadline: None,
                })
                .expect("accepted")
        })
        .collect();
    let report = service.shutdown(DrainMode::Graceful);
    assert!(report.cancelled_queued > 0, "drain found queued jobs");
    let mut cancelled = 0;
    for t in tickets {
        match t.wait() {
            Some(JobResponse::Cancelled(CancelKind::Drained)) => cancelled += 1,
            Some(_) => {}
            None => panic!("job lost through drain"),
        }
    }
    assert_eq!(cancelled as u64, report.cancelled_queued);
    assert_eq!(report.stats.terminal(), report.stats.accepted);
    // Post-drain submissions are typed rejections, not hangs.
}

#[test]
fn fast_drain_degrades_inflight_but_stays_terminal() {
    let service = start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (big, _) = service.register_design(&bigger_design()).expect("routes");
    let inflight = service
        .submit(JobRequest {
            tenant: "a".into(),
            design: big,
            kind: JobKind::Sizing { moves: 100_000 },
            deadline: None,
        })
        .expect("accepted");
    std::thread::sleep(Duration::from_millis(150)); // let it start
    let report = service.shutdown(DrainMode::Fast);
    match inflight.wait() {
        // Token tripped mid-optimization → degraded completion; tripped
        // pre-tree → typed cancellation. Either is a terminal response.
        Some(JobResponse::Completed(_) | JobResponse::Failed { .. }) => {}
        other => panic!("fast drain must leave a terminal response, got {other:?}"),
    }
    assert_eq!(report.stats.terminal(), report.stats.accepted);
}
