//! Chaos tests (require `--features fault-inject`): panic isolation,
//! quarantine engagement, and the concurrency contract of the
//! plan-scoped fault registry.

#![cfg(feature = "fault-inject")]

use dscts_core::resilience::fault::{FaultKind, FaultPlan, SITE_DP, SITE_SYNTH};
use dscts_core::{CtsError, DsCts};
use dscts_netlist::BenchmarkSpec;
use dscts_service::{
    CtsService, DrainMode, JobKind, JobRequest, JobResponse, Rejected, ServiceConfig,
};
use dscts_tech::Technology;
use std::sync::Mutex;
use std::time::Duration;

/// Fault sites are process-global: while test A's plan is active, test
/// B's pipeline work would consume A's arms. Serialize the whole suite
/// so each test owns the registry *and* the only running pipelines.
static SERIAL: Mutex<()> = Mutex::new(());

fn start(workers: usize) -> CtsService {
    CtsService::start(
        DsCts::new(Technology::asap7()),
        ServiceConfig {
            workers,
            quarantine_threshold: 2,
            ..ServiceConfig::default()
        },
    )
}

fn score(service: &CtsService, design: dscts_service::DesignKey) -> Option<JobResponse> {
    service
        .submit(JobRequest {
            tenant: "chaos".into(),
            design,
            kind: JobKind::Score,
            deadline: None,
        })
        .expect("accepted")
        .wait()
}

/// An injected panic in the synthesis stage unwinds out of the staged
/// drivers and is caught at the worker boundary: the job fails with a
/// typed `Internal` error, the worker survives, and repeated poison
/// strikes quarantine the design while a clean design keeps completing.
/// (DP-stage panics are caught even earlier, by the DP's own per-node
/// isolation — the synth site is the one that exercises the *worker*
/// boundary.)
#[test]
fn injected_panic_is_isolated_and_quarantines_the_design() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let service = start(2);
    let (poison, _) = service
        .register_design(&BenchmarkSpec::scaled(600, 31).generate())
        .expect("routes");
    let (clean, _) = service
        .register_design(&BenchmarkSpec::scaled(500, 32).generate())
        .expect("routes");

    let mut internal_failures = 0;
    let mut quarantined = false;
    for _ in 0..6 {
        let guard = FaultPlan::new().arm(SITE_SYNTH, FaultKind::Panic).install();
        match service.submit(JobRequest {
            tenant: "chaos".into(),
            design: poison,
            kind: JobKind::Score,
            deadline: None,
        }) {
            Ok(ticket) => match ticket.wait() {
                Some(JobResponse::Failed {
                    error: CtsError::Internal { .. },
                    ..
                }) => internal_failures += 1,
                other => panic!("armed panic must surface as Internal, got {other:?}"),
            },
            Err(Rejected::Quarantined { .. }) => {
                quarantined = true;
                drop(guard);
                break;
            }
            Err(other) => panic!("unexpected rejection {other}"),
        }
        drop(guard);
    }
    assert!(quarantined, "repeated poison must quarantine the design");
    assert!(
        internal_failures >= 2,
        "quarantine threshold is 2 strikes, saw {internal_failures}"
    );
    assert!(service.quarantined().contains(&poison));
    // No worker died absorbing the panics, and clean work still flows.
    assert_eq!(service.live_workers(), 2);
    assert!(
        matches!(score(&service, clean), Some(JobResponse::Completed(_))),
        "clean design must still complete after poison quarantined"
    );
    let stats = service.shutdown(DrainMode::Graceful).stats;
    assert!(stats.panics_caught >= 2);
    assert_eq!(stats.terminal(), stats.accepted);
}

/// Injected *errors* (not panics) ride the typed error path and do not
/// kill workers either; with a retry policy they are not retried (an
/// Internal error is never recoverable).
#[test]
fn injected_error_fails_typed_without_worker_death() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let service = CtsService::start(
        DsCts::new(Technology::asap7()),
        ServiceConfig {
            workers: 1,
            retry: Some(dscts_core::RecoveryPolicy::new()),
            quarantine_threshold: 100, // keep the design usable
            ..ServiceConfig::default()
        },
    );
    let (key, _) = service
        .register_design(&BenchmarkSpec::scaled(400, 33).generate())
        .expect("routes");
    let guard = FaultPlan::new().arm(SITE_DP, FaultKind::Error).install();
    match score(&service, key) {
        Some(JobResponse::Failed {
            error: CtsError::Internal { .. },
            recovery,
        }) => assert!(
            recovery.is_empty(),
            "Internal errors are non-recoverable and must not climb the ladder"
        ),
        other => panic!("expected typed Internal failure, got {other:?}"),
    }
    drop(guard);
    assert_eq!(service.live_workers(), 1);
    assert!(matches!(
        score(&service, key),
        Some(JobResponse::Completed(_))
    ));
    service.shutdown(DrainMode::Graceful);
}

/// The registry is plan-scoped: a second `install()` blocks until the
/// first guard drops, and the guard is `Send` so it can be dropped on a
/// different thread than the one that installed it.
#[test]
fn fault_plans_are_exclusive_and_guards_are_send() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let first = FaultPlan::new().arm(SITE_DP, FaultKind::Error).install();
    let (tx, rx) = std::sync::mpsc::channel();
    let waiter = std::thread::spawn(move || {
        // Blocks until `first` is dropped below.
        let second = FaultPlan::new().arm(SITE_SYNTH, FaultKind::Error).install();
        tx.send(()).expect("report install");
        drop(second);
    });
    assert!(
        rx.recv_timeout(Duration::from_millis(200)).is_err(),
        "second install must block while the first plan is active"
    );
    // Move the guard to another thread and drop it there: Send.
    std::thread::spawn(move || drop(first))
        .join()
        .expect("drop thread");
    rx.recv_timeout(Duration::from_secs(10))
        .expect("second install must proceed once the first guard drops");
    waiter.join().expect("waiter");
}

/// `unfired()` reports how many armed faults never fired, letting chaos
/// harnesses verify their faults actually landed.
#[test]
fn unfired_counts_unconsumed_arms() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let guard = FaultPlan::new()
        .arm(SITE_DP, FaultKind::Error)
        .arm(SITE_SYNTH, FaultKind::Error)
        .install();
    assert_eq!(guard.unfired(), 2, "nothing has visited the sites yet");
    drop(guard);
}
