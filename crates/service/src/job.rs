//! Typed job requests, terminal responses, and admission rejections.
//!
//! Every accepted submission receives **exactly one** terminal
//! [`JobResponse`] — completed, failed, or cancelled — delivered through
//! the [`JobTicket`]. Rejections happen synchronously at
//! [`CtsService::submit`](crate::CtsService::submit) and are typed
//! ([`Rejected`]), so a caller can distinguish "back off and retry"
//! (backpressure, full queue) from "stop submitting this design"
//! (quarantine) without parsing strings.

use crate::cache::DesignKey;
use dscts_core::mcmm::RobustMetrics;
use dscts_core::{CtsError, RecoveryStep, StageTiming, TreeMetrics};
use std::sync::mpsc;
use std::time::Duration;

/// What a job computes against a cached routed design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Full scoring under the service's base pipeline configuration:
    /// insertion, the configured optimization schedule, evaluation.
    Score,
    /// One DSE sweep point: insertion under
    /// `ModeRule::FanoutThreshold(threshold)` modes, then the base
    /// schedule and evaluation — the per-class body of
    /// [`SweepEngine`](dscts_core::dse::SweepEngine), as one job.
    SweepPoint {
        /// The fanout threshold switching DP nodes to intra-side mode.
        threshold: u32,
    },
    /// What-if sizing: the base schedule plus a seeded annealed-sizing
    /// pass with this move budget appended.
    Sizing {
        /// Total annealer trial moves.
        moves: usize,
    },
    /// MCMM sign-off: score nominally, then evaluate the tree across the
    /// service's sign-off corner set and report the robust summary.
    CornerSignoff,
}

impl JobKind {
    /// Stable label for stats and snapshots.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Score => "score",
            JobKind::SweepPoint { .. } => "sweep",
            JobKind::Sizing { .. } => "sizing",
            JobKind::CornerSignoff => "signoff",
        }
    }
}

/// One job submission.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Tenant identity, for per-tenant admission control.
    pub tenant: String,
    /// The registered design to score (see
    /// [`CtsService::register_design`](crate::CtsService::register_design)).
    pub design: DesignKey,
    /// What to compute.
    pub kind: JobKind,
    /// Per-job wall-clock deadline, measured from *submission* (queue
    /// wait counts against it — a deadline is a promise to the tenant,
    /// not to the scheduler). `None` uses the service default.
    pub deadline: Option<Duration>,
}

/// Why a submission was refused at admission. Rejections are
/// synchronous: a rejected job was never queued and gets no
/// [`JobResponse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is at capacity; retry after completions drain.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// This tenant has too many outstanding (queued + running) jobs;
    /// other tenants still have headroom.
    Backpressure {
        /// The tenant's current outstanding jobs.
        outstanding: usize,
        /// The per-tenant cap.
        limit: usize,
    },
    /// The design repeatedly killed jobs and is quarantined.
    Quarantined {
        /// The quarantined design.
        design: DesignKey,
    },
    /// The design key was never registered (or its routing failed).
    UnknownDesign {
        /// The unknown key.
        design: DesignKey,
    },
    /// A [`JobKind::CornerSignoff`] job was submitted to a service
    /// configured without a sign-off corner set.
    MissingCorners,
    /// The service is draining and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => write!(f, "queue full (capacity {capacity})"),
            Rejected::Backpressure { outstanding, limit } => {
                write!(f, "tenant backpressure ({outstanding}/{limit} outstanding)")
            }
            Rejected::Quarantined { design } => write!(f, "design {design} is quarantined"),
            Rejected::UnknownDesign { design } => write!(f, "design {design} is not registered"),
            Rejected::MissingCorners => write!(f, "service has no sign-off corner set"),
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

/// Why an accepted job was cancelled without executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// The service drained: the job was still queued at shutdown.
    Drained,
}

/// The result payload of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Final tree metrics (nominal corner).
    pub metrics: TreeMetrics,
    /// Cross-corner robust summary, for corner-aware configurations and
    /// [`JobKind::CornerSignoff`] jobs.
    pub robust: Option<RobustMetrics>,
    /// Whether the run budget truncated the optimization schedule (the
    /// tree is valid but not fully optimized).
    pub degraded: bool,
    /// Recovery-ladder rungs taken, in order (empty on a first-try
    /// success).
    pub recovery: Vec<RecoveryStep>,
    /// Optimization trial moves charged against the job's budget.
    pub trials: u64,
    /// Wall clock from dequeue to terminal response (seconds).
    pub wall_s: f64,
    /// Wall clock spent queued before a worker picked the job up
    /// (seconds).
    pub queue_wait_s: f64,
    /// Per-stage wall-clock breakdown of the winning attempt, mirroring
    /// [`Outcome::stages`](dscts_core::Outcome::stages): `insertion`,
    /// `optimize` (plus one `opt:<name>` entry per executed pass),
    /// `evaluate`, and `signoff` for corner-aware jobs. Routing is
    /// **not** listed — it happened once at
    /// [`register_design`](crate::CtsService::register_design) time and
    /// is shared by every job on the cached artifact (its cost is the
    /// cache's `route_s`). Recovery retries report the successful
    /// attempt's stages only.
    pub stages: Vec<StageTiming>,
}

/// The exactly-once terminal response of an accepted job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResponse {
    /// The job produced a (possibly degraded) result.
    Completed(JobOutcome),
    /// The job failed with a typed error; the worker survived.
    Failed {
        /// The terminal error (deadline expiry pre-tree surfaces as
        /// [`CtsError::Cancelled`]; an isolated panic as
        /// [`CtsError::Internal`]).
        error: CtsError,
        /// Recovery rungs attempted before giving up.
        recovery: Vec<RecoveryStep>,
    },
    /// The job never executed.
    Cancelled(CancelKind),
}

/// Receipt for one accepted job; resolves to its terminal response.
#[derive(Debug)]
pub struct JobTicket {
    /// Service-unique job id.
    pub id: u64,
    /// The design the job runs against.
    pub design: DesignKey,
    /// The submitted kind.
    pub kind: JobKind,
    pub(crate) rx: mpsc::Receiver<JobResponse>,
}

impl JobTicket {
    /// Blocks for the terminal response. `None` means the job was lost —
    /// the service dropped it without responding, which the service's
    /// delivery invariant rules out; the loadtest's invariant checker
    /// treats `None` as a hard failure rather than hiding it behind a
    /// panic here.
    pub fn wait(self) -> Option<JobResponse> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll for the terminal response.
    pub fn try_wait(&self) -> Option<JobResponse> {
        self.rx.try_recv().ok()
    }
}
