//! The multi-tenant job service: bounded queue, worker pool, admission
//! control, quarantine, graceful drain.

use crate::cache::{CachedDesign, DesignCache, DesignKey};
use crate::job::{CancelKind, JobKind, JobOutcome, JobRequest, JobResponse, JobTicket, Rejected};
use dscts_core::mcmm::CornerReport;
use dscts_core::resilience::panic_message;
use dscts_core::{
    mode_vector, AnnealConfig, AnnealedSizingPass, CancelToken, CtsError, DsCts, ModeRule,
    RecoveryPolicy, RecoveryStep, RunBudget, StageTiming,
};
use dscts_netlist::Design;
use dscts_tech::CornerSet;
use dscts_telemetry as telemetry;
use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs. The defaults suit a smoke test; see the crate
/// docs ("Operating the service") for sizing guidance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Hard bound on queued (not yet running) jobs; submissions beyond
    /// it are rejected [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Per-tenant cap on outstanding (queued + running) jobs;
    /// submissions beyond it are rejected [`Rejected::Backpressure`].
    pub max_outstanding_per_tenant: usize,
    /// Default per-job deadline (measured from submission) applied when
    /// a request carries none. `None` leaves such jobs deadline-free.
    pub default_deadline: Option<Duration>,
    /// Internal-error strikes (panics, injected faults) a design may
    /// accumulate before it is quarantined.
    pub quarantine_threshold: u32,
    /// Per-job retry ladder for data-dependent infeasibilities,
    /// mirroring [`DsCts::try_run`]'s recovery semantics.
    pub retry: Option<RecoveryPolicy>,
    /// Corner set for [`JobKind::CornerSignoff`] jobs; without one such
    /// jobs are rejected [`Rejected::MissingCorners`].
    pub signoff_corners: Option<CornerSet>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            max_outstanding_per_tenant: 64,
            default_deadline: None,
            quarantine_threshold: 2,
            retry: None,
            signoff_corners: None,
        }
    }
}

/// How [`CtsService::shutdown`] treats in-flight jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMode {
    /// In-flight jobs run to natural completion; queued jobs are
    /// cancelled.
    Graceful,
    /// In-flight jobs have their tokens cancelled too, so they degrade
    /// (truncated schedules) or fail typed at the next checkpoint;
    /// queued jobs are cancelled.
    Fast,
}

/// Counters exported by [`CtsService::stats`]. All counts are
/// monotonically increasing over the service's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Accepted submissions.
    pub accepted: u64,
    /// Jobs that completed with a result (possibly degraded).
    pub completed: u64,
    /// Jobs that failed with a typed error.
    pub failed: u64,
    /// Accepted jobs cancelled without executing (drain).
    pub cancelled: u64,
    /// Panics caught at the per-job isolation boundary.
    pub panics_caught: u64,
    /// Recovery-ladder retries executed across all jobs.
    pub retries: u64,
    /// Rejections, by reason.
    pub rejected_queue_full: u64,
    /// Rejections for per-tenant backpressure.
    pub rejected_backpressure: u64,
    /// Rejections for quarantined designs.
    pub rejected_quarantined: u64,
    /// Rejections because the service was draining.
    pub rejected_shutdown: u64,
    /// Rejections for unregistered designs or missing corner sets.
    pub rejected_other: u64,
    /// Design-cache hits (registrations that found the artifact).
    pub cache_hits: u64,
    /// Design-cache misses (registrations that routed).
    pub cache_misses: u64,
}

impl ServiceStats {
    /// Terminal responses delivered (completed + failed + cancelled).
    pub fn terminal(&self) -> u64 {
        self.completed + self.failed + self.cancelled
    }
}

/// Report returned by [`CtsService::shutdown`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Queued jobs cancelled at drain.
    pub cancelled_queued: u64,
    /// Final lifetime stats.
    pub stats: ServiceStats,
}

struct QueuedJob {
    id: u64,
    tenant: String,
    design: Arc<CachedDesign>,
    kind: JobKind,
    token: CancelToken,
    submitted: Instant,
    tx: mpsc::Sender<JobResponse>,
}

struct QueueState {
    queue: VecDeque<QueuedJob>,
    accepting: bool,
    /// Tokens of currently executing jobs, keyed by job id, so drain can
    /// cancel them ([`DrainMode::Fast`]).
    inflight: HashMap<u64, CancelToken>,
    /// Outstanding (queued + running) jobs per tenant.
    tenant_load: HashMap<String, usize>,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    panics_caught: AtomicU64,
    retries: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_backpressure: AtomicU64,
    rejected_quarantined: AtomicU64,
    rejected_shutdown: AtomicU64,
    rejected_other: AtomicU64,
}

struct QuarantineState {
    strikes: HashMap<DesignKey, u32>,
    quarantined: HashSet<DesignKey>,
}

struct Inner {
    base: DsCts,
    cfg: ServiceConfig,
    signoff: Option<Arc<CornerSet>>,
    cache: DesignCache,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    counters: Counters,
    quarantine: Mutex<QuarantineState>,
    next_job_id: AtomicU64,
}

/// The multi-tenant CTS job service. See the crate docs for the
/// operating model.
pub struct CtsService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl CtsService {
    /// Starts the worker pool around one base pipeline configuration.
    /// All cached artifacts and job results are produced under exactly
    /// this configuration (per-kind specializations layer on top of it
    /// deterministically).
    pub fn start(base: DsCts, cfg: ServiceConfig) -> CtsService {
        let workers = cfg.workers.max(1);
        let signoff = cfg.signoff_corners.clone().map(Arc::new);
        let inner = Arc::new(Inner {
            base,
            cfg,
            signoff,
            cache: DesignCache::new(),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                inflight: HashMap::new(),
                tenant_load: HashMap::new(),
            }),
            work_ready: Condvar::new(),
            counters: Counters::default(),
            quarantine: Mutex::new(QuarantineState {
                strikes: HashMap::new(),
                quarantined: HashSet::new(),
            }),
            next_job_id: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dscts-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a service worker thread")
            })
            .collect();
        CtsService {
            inner,
            workers: handles,
        }
    }

    /// Registers `design`: routes it on first sight, returns its
    /// content key and whether the artifact was already cached. Blocks
    /// while another registration of the same placement is routing.
    /// Routing failures are typed and not cached (a later registration
    /// retries).
    pub fn register_design(&self, design: &Design) -> Result<(DesignKey, bool), CtsError> {
        let (result, hit) = self.inner.cache.get_or_route(&self.inner.base, design);
        result.map(|artifact| (artifact.key, hit))
    }

    /// Submits one job. Accepted jobs return a [`JobTicket`] that
    /// resolves to exactly one terminal [`JobResponse`]; refused jobs
    /// return a typed [`Rejected`] and were never queued.
    pub fn submit(&self, req: JobRequest) -> Result<JobTicket, Rejected> {
        let inner = &self.inner;
        if matches!(req.kind, JobKind::CornerSignoff) && inner.signoff.is_none() {
            inner
                .counters
                .rejected_other
                .fetch_add(1, Ordering::Relaxed);
            count_rejected("missing_corners");
            return Err(Rejected::MissingCorners);
        }
        {
            let q = inner.quarantine.lock().unwrap_or_else(|p| p.into_inner());
            if q.quarantined.contains(&req.design) {
                inner
                    .counters
                    .rejected_quarantined
                    .fetch_add(1, Ordering::Relaxed);
                count_rejected("quarantined");
                return Err(Rejected::Quarantined { design: req.design });
            }
        }
        let Some(design) = inner.cache.get(req.design) else {
            inner
                .counters
                .rejected_other
                .fetch_add(1, Ordering::Relaxed);
            count_rejected("unknown_design");
            return Err(Rejected::UnknownDesign { design: req.design });
        };

        let mut state = inner.state.lock().unwrap_or_else(|p| p.into_inner());
        if !state.accepting {
            inner
                .counters
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            count_rejected("shutting_down");
            return Err(Rejected::ShuttingDown);
        }
        if state.queue.len() >= inner.cfg.queue_capacity {
            inner
                .counters
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            count_rejected("queue_full");
            return Err(Rejected::QueueFull {
                capacity: inner.cfg.queue_capacity,
            });
        }
        let outstanding = state.tenant_load.get(&req.tenant).copied().unwrap_or(0);
        if outstanding >= inner.cfg.max_outstanding_per_tenant {
            inner
                .counters
                .rejected_backpressure
                .fetch_add(1, Ordering::Relaxed);
            count_rejected("backpressure");
            return Err(Rejected::Backpressure {
                outstanding,
                limit: inner.cfg.max_outstanding_per_tenant,
            });
        }

        // Admitted. The deadline clock starts now: queue wait counts
        // against the tenant's deadline, which is what makes QueueFull
        // rejections preferable to silently stale results.
        let deadline = req.deadline.or(inner.cfg.default_deadline);
        let budget = match deadline {
            Some(d) => RunBudget::new().with_deadline(d),
            None => RunBudget::new(),
        };
        let token = budget.token();
        let id = inner.next_job_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        *state.tenant_load.entry(req.tenant.clone()).or_insert(0) += 1;
        state.queue.push_back(QueuedJob {
            id,
            tenant: req.tenant,
            design,
            kind: req.kind,
            token,
            submitted: Instant::now(),
            tx,
        });
        inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = telemetry::active() {
            tel.counter("service.accepted").incr();
            tel.gauge("service.queue_depth")
                .set(state.queue.len() as i64);
        }
        drop(state);
        inner.work_ready.notify_one();
        Ok(JobTicket {
            id,
            design: req.design,
            kind: req.kind,
            rx,
        })
    }

    /// Current lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        stats_of(&self.inner)
    }

    /// Designs currently quarantined.
    pub fn quarantined(&self) -> Vec<DesignKey> {
        let q = self
            .inner
            .quarantine
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let mut keys: Vec<DesignKey> = q.quarantined.iter().copied().collect();
        keys.sort();
        keys
    }

    /// Worker threads still alive (a dead worker would mean the panic
    /// isolation boundary leaked — the loadtest asserts this stays equal
    /// to the configured pool size).
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|h| !h.is_finished()).count()
    }

    /// Drains and stops the service: no new submissions are accepted,
    /// queued jobs receive [`JobResponse::Cancelled`], in-flight jobs
    /// finish ([`DrainMode::Graceful`]) or degrade at their next
    /// checkpoint ([`DrainMode::Fast`]), and the worker pool joins.
    pub fn shutdown(self, mode: DrainMode) -> DrainReport {
        let inner = &self.inner;
        let drained: Vec<QueuedJob> = {
            let mut state = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            state.accepting = false;
            let drained: Vec<QueuedJob> = state.queue.drain(..).collect();
            for job in &drained {
                release_tenant(&mut state.tenant_load, &job.tenant);
            }
            if mode == DrainMode::Fast {
                for token in state.inflight.values() {
                    token.cancel();
                }
            }
            drained
        };
        inner.work_ready.notify_all();
        let cancelled_queued = drained.len();
        for job in drained {
            // A dropped ticket makes the send fail; the response still
            // counts as delivered (the receiver chose not to look).
            let _ = job.tx.send(JobResponse::Cancelled(CancelKind::Drained));
            inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        // Keep the telemetry terminal counters in lockstep with the
        // atomic mirror: drain cancellations never reach a worker, so
        // they must be counted here for `service.accepted ==
        // completed + failed + cancelled` to hold in the snapshot.
        telemetry::count("service.cancelled", cancelled_queued as u64);
        for handle in self.workers {
            // invariant: worker_loop never panics (every job body is
            // wrapped in catch_unwind), so join always succeeds.
            handle.join().expect("service worker exited cleanly");
        }
        DrainReport {
            cancelled_queued: cancelled_queued as u64,
            stats: stats_of(&self.inner),
        }
    }
}

fn stats_of(inner: &Inner) -> ServiceStats {
    let c = &inner.counters;
    ServiceStats {
        accepted: c.accepted.load(Ordering::Relaxed),
        completed: c.completed.load(Ordering::Relaxed),
        failed: c.failed.load(Ordering::Relaxed),
        cancelled: c.cancelled.load(Ordering::Relaxed),
        panics_caught: c.panics_caught.load(Ordering::Relaxed),
        retries: c.retries.load(Ordering::Relaxed),
        rejected_queue_full: c.rejected_queue_full.load(Ordering::Relaxed),
        rejected_backpressure: c.rejected_backpressure.load(Ordering::Relaxed),
        rejected_quarantined: c.rejected_quarantined.load(Ordering::Relaxed),
        rejected_shutdown: c.rejected_shutdown.load(Ordering::Relaxed),
        rejected_other: c.rejected_other.load(Ordering::Relaxed),
        cache_hits: inner.cache.hits(),
        cache_misses: inner.cache.misses(),
    }
}

/// Admission-rejection telemetry, one counter per [`Rejected`] variant
/// (`service.rejected.<variant>`). The atomic [`Counters`] mirror stays
/// authoritative for [`ServiceStats`]; these exist so rejection mix is
/// visible in the same snapshot as everything else.
fn count_rejected(variant: &'static str) {
    if let Some(tel) = telemetry::active() {
        tel.counter(&format!("service.rejected.{variant}")).incr();
    }
}

fn release_tenant(load: &mut HashMap<String, usize>, tenant: &str) {
    if let Some(n) = load.get_mut(tenant) {
        *n = n.saturating_sub(1);
        if *n == 0 {
            load.remove(tenant);
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let tel = telemetry::active();
        let job = {
            let mut state = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.inflight.insert(job.id, job.token.clone());
                    if let Some(tel) = &tel {
                        tel.gauge("service.queue_depth")
                            .set(state.queue.len() as i64);
                    }
                    break job;
                }
                if !state.accepting {
                    return;
                }
                state = inner
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        let queue_wait_s = job.submitted.elapsed().as_secs_f64();
        let started = Instant::now();
        if let Some(tel) = &tel {
            tel.histogram("job.queue_wait_s").record(queue_wait_s);
            tel.counter(&format!("service.jobs.{}", job.kind.label()))
                .incr();
        }

        // The per-job isolation boundary: a poisoned request (injected
        // panic, genuine bug) becomes a typed Internal failure and the
        // worker lives on to take the next job.
        let response = match catch_unwind(AssertUnwindSafe(|| {
            execute_job(inner, &job, queue_wait_s, started)
        })) {
            Ok(response) => response,
            Err(payload) => {
                inner.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                telemetry::count("service.panics_caught", 1);
                JobResponse::Failed {
                    error: CtsError::Internal {
                        stage: "service",
                        payload: panic_message(&*payload),
                    },
                    recovery: Vec::new(),
                }
            }
        };

        match &response {
            JobResponse::Completed(_) => {
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            JobResponse::Failed { error, .. } => {
                inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                if matches!(error, CtsError::Internal { .. }) {
                    strike(inner, job.design.key);
                }
            }
            JobResponse::Cancelled(_) => {
                inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(tel) = &tel {
            let wall_s = started.elapsed().as_secs_f64();
            tel.histogram("job.wall_s").record(wall_s);
            tel.record_duration("span.service.job", wall_s);
            let terminal = match &response {
                JobResponse::Completed(_) => "service.completed",
                JobResponse::Failed { .. } => "service.failed",
                JobResponse::Cancelled(_) => "service.cancelled",
            };
            tel.counter(terminal).incr();
        }
        let _ = job.tx.send(response);

        let mut state = inner.state.lock().unwrap_or_else(|p| p.into_inner());
        state.inflight.remove(&job.id);
        release_tenant(&mut state.tenant_load, &job.tenant);
    }
}

/// Records one internal-error strike against `design`; quarantines it at
/// the configured threshold.
fn strike(inner: &Inner, design: DesignKey) {
    let mut q = inner.quarantine.lock().unwrap_or_else(|p| p.into_inner());
    let strikes = q.strikes.entry(design).or_insert(0);
    *strikes += 1;
    telemetry::count("service.quarantine_strikes", 1);
    if *strikes >= inner.cfg.quarantine_threshold {
        q.quarantined.insert(design);
        telemetry::count("service.quarantined_designs", 1);
    }
}

/// The pipeline specialization a job kind runs under. Public within the
/// crate so the loadtest's bit-identity oracle constructs the *same*
/// pipeline for its direct staged-driver runs.
pub fn job_pipeline(base: &DsCts, kind: &JobKind) -> DsCts {
    match kind {
        JobKind::Score | JobKind::CornerSignoff => base.clone(),
        JobKind::SweepPoint { threshold } => base
            .clone()
            .mode_rule(ModeRule::FanoutThreshold(*threshold)),
        JobKind::Sizing { moves } => {
            let schedule =
                base.effective_schedule()
                    .unwrap_or_default()
                    .with(AnnealedSizingPass::new(AnnealConfig {
                        moves: *moves,
                        ..AnnealConfig::default()
                    }));
            base.clone().schedule(schedule)
        }
    }
}

fn execute_job(inner: &Inner, job: &QueuedJob, queue_wait_s: f64, started: Instant) -> JobResponse {
    // A job whose deadline expired while queued fails typed without
    // spending worker time.
    if let Err(error) = job.token.check("queue") {
        return JobResponse::Failed {
            error,
            recovery: Vec::new(),
        };
    }

    let pipe = job_pipeline(&inner.base, &job.kind);
    let mut recovery: Vec<RecoveryStep> = Vec::new();
    let mut attempt_pipe = pipe;
    let mut result = attempt(inner, &attempt_pipe, job);
    if let Err(first_err) = &result {
        if let Some(policy) = &inner.cfg.retry {
            if RecoveryPolicy::recoverable(first_err) {
                // The service-side mirror of DsCts::try_run's ladder:
                // cumulative relaxations, one shared token, typed stop on
                // non-recoverable errors.
                let mut last_err = first_err.clone();
                for &rung in policy.ladder() {
                    recovery.push(RecoveryStep {
                        error: last_err.clone(),
                        relaxation: rung,
                    });
                    inner.counters.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(tel) = telemetry::active() {
                        tel.counter(&format!("service.recovery.{}", rung.label()))
                            .incr();
                    }
                    attempt_pipe = attempt_pipe.with_relaxation(rung);
                    match attempt(inner, &attempt_pipe, job) {
                        Ok(outcome) => {
                            result = Ok(outcome);
                            break;
                        }
                        Err(e) if RecoveryPolicy::recoverable(&e) => {
                            last_err = e.clone();
                            result = Err(e);
                        }
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
            }
        }
    }

    match result {
        Ok(mut outcome) => {
            outcome.recovery = recovery;
            outcome.trials = job.token.trials();
            outcome.wall_s = started.elapsed().as_secs_f64();
            outcome.queue_wait_s = queue_wait_s;
            if let Some(tel) = telemetry::active() {
                // The winning attempt's stage rows double as the
                // aggregate per-stage span histograms (`opt:<name>`
                // rows are skipped — the pass manager already records
                // them as `span.pass.<name>`).
                for stage in &outcome.stages {
                    if !stage.name.starts_with("opt:") {
                        tel.record_duration(&format!("span.{}", stage.name), stage.seconds);
                    }
                }
            }
            JobResponse::Completed(outcome)
        }
        Err(error) => JobResponse::Failed { error, recovery },
    }
}

/// One staged-driver attempt against the cached artifact. Bit-identical
/// to the equivalent direct `DsCts` staged composition: the cached topo
/// is cloned per attempt exactly as `SweepEngine` clones its shared
/// routed topology.
fn attempt(inner: &Inner, pipe: &DsCts, job: &QueuedJob) -> Result<JobOutcome, CtsError> {
    let token = &job.token;
    let mut stages: Vec<StageTiming> = Vec::new();
    let mut stage_start = Instant::now();
    // Mirrors `Outcome::stages`' construction in the pipeline's own
    // run loop: name + wall clock + RSS high-water mark per stage,
    // `opt:<name>` rows folded in behind the optimize stage. Routing is
    // deliberately absent — it ran once at registration (`route_s` on
    // the cached artifact), not per job.
    let push_stage = |stages: &mut Vec<StageTiming>, stage_start: &mut Instant, name| {
        let now = Instant::now();
        stages.push(StageTiming {
            name: Cow::Borrowed(name),
            seconds: (now - *stage_start).as_secs_f64(),
            peak_rss_bytes: dscts_core::rss::peak_rss_bytes(),
        });
        *stage_start = now;
    };
    // Intra-side node count for the sweep-outcome training record,
    // computed only when a collector is live (bit-identity aside, the
    // disabled path should not pay for a scan either).
    let mut sweep_intra: u64 = 0;
    let (mut tree, _dp) = match &job.kind {
        JobKind::SweepPoint { threshold } => {
            let modes = mode_vector(&job.design.topo, ModeRule::FanoutThreshold(*threshold));
            if telemetry::enabled() {
                sweep_intra = modes
                    .iter()
                    .filter(|&&m| m == dscts_core::Mode::IntraSide)
                    .count() as u64;
            }
            pipe.insert_with_modes_cancel(job.design.topo.clone(), &modes, Some(token))?
        }
        _ => pipe.insert_cancel(job.design.topo.clone(), Some(token))?,
    };
    push_stage(&mut stages, &mut stage_start, "insertion");
    let report = pipe.optimize_tree_cancel(&mut tree, Some(token));
    let degraded = report.as_ref().is_some_and(|r| r.truncated);
    push_stage(&mut stages, &mut stage_start, "optimize");
    if let Some(report) = &report {
        let stage_peak = stages.last().and_then(|t| t.peak_rss_bytes);
        stages.extend(report.passes.iter().map(|p| StageTiming {
            name: Cow::Owned(format!("opt:{}", p.name)),
            seconds: p.seconds,
            peak_rss_bytes: stage_peak,
        }));
    }
    let metrics = pipe.evaluate_tree(&tree);
    push_stage(&mut stages, &mut stage_start, "evaluate");
    // Corner evaluation is fallible: a capacitance-derating corner can
    // overload a pattern buffer the DP placed near its max-load budget
    // at nominal. That is a data-dependent `NoFeasiblePattern` — the
    // retry ladder relaxes the pipeline and re-attempts — not a panic.
    let corners = match &job.kind {
        JobKind::CornerSignoff => inner.signoff.as_deref(),
        _ => pipe.corner_set(),
    };
    let robust = match corners {
        Some(corners) => {
            let robust = CornerReport::try_evaluate(&tree, corners, pipe.delay_model())?.robust;
            push_stage(&mut stages, &mut stage_start, "signoff");
            Some(robust)
        }
        None => None,
    };
    // Sweep-point jobs are the service's per-class DSE bodies; log the
    // same training record `SweepEngine` logs per mode class, keyed by
    // the class the threshold falls into.
    if let JobKind::SweepPoint { threshold } = &job.kind {
        if let Some(tel) = telemetry::active() {
            let levels = job.design.topo.distinct_fanouts();
            tel.record_sweep(telemetry::SweepRecord {
                schema_version: telemetry::SWEEP_SCHEMA_VERSION,
                design: job.design.name.clone(),
                sinks: job.design.sinks as u64,
                distinct_fanouts: levels.len() as u64,
                mode_class: levels.partition_point(|&f| f < *threshold) as u64,
                threshold_lo: *threshold,
                threshold_hi: *threshold,
                intra_nodes: sweep_intra,
                stars: job.design.topo.stars.len() as u64,
                sink_spread_nm: job.design.topo.sink_spread().max(0) as u64,
                fanout_hist: dscts_core::dse::fanout_histogram(&levels),
                latency_ps: metrics.latency_ps,
                skew_ps: metrics.skew_ps,
                buffers: u64::from(metrics.buffers),
                ntsvs: u64::from(metrics.ntsvs),
                trunk_wirelength_nm: metrics.trunk_wirelength_nm.max(0) as u64,
                switched_cap_ff: metrics.switched_cap_ff,
            });
        }
    }
    Ok(JobOutcome {
        metrics,
        robust,
        degraded,
        recovery: Vec::new(),
        trials: 0,
        wall_s: 0.0,
        queue_wait_s: 0.0,
        stages,
    })
}
