//! Resilient multi-tenant CTS job service.
//!
//! The [`dscts_core`] pipeline synthesizes one tree per call; this crate
//! turns it into a long-lived, fault-contained *service* for the
//! route-once/score-many workloads real CTS users run: a design is
//! registered once (routed, cached content-addressed), then many cheap
//! what-if jobs — sizing schedules, DSE sweep points, MCMM corner
//! sign-off — score against the immutable routed artifact concurrently
//! from a bounded worker pool.
//!
//! The building blocks:
//!
//! - [`CtsService`] — the worker pool, bounded queue and admission
//!   control. [`CtsService::register_design`] routes-and-caches;
//!   [`CtsService::submit`] enqueues a [`JobRequest`] and returns a
//!   [`JobTicket`] resolving to exactly one terminal [`JobResponse`].
//! - [`DesignKey`] / [`CachedDesign`] — the content-addressed artifact
//!   (routed `ClockTopo`, CSR adjacency pre-warmed) jobs borrow
//!   read-only.
//! - PR 7's resilience layer supplies the per-job guardrails: every job
//!   carries a [`RunBudget`](dscts_core::RunBudget)-minted token
//!   (deadline measured from *submission*), runs behind a
//!   `catch_unwind` isolation boundary, and may climb the
//!   [`RecoveryPolicy`](dscts_core::RecoveryPolicy) relaxation ladder.
//!
//! ```
//! use dscts_core::DsCts;
//! use dscts_netlist::BenchmarkSpec;
//! use dscts_service::{CtsService, JobKind, JobRequest, JobResponse, ServiceConfig};
//! use dscts_tech::Technology;
//!
//! let service = CtsService::start(DsCts::new(Technology::asap7()), ServiceConfig::default());
//! let design = BenchmarkSpec::c1_jpeg().generate();
//! let (key, hit) = service.register_design(&design).unwrap();
//! assert!(!hit); // first registration routes
//!
//! let ticket = service
//!     .submit(JobRequest {
//!         tenant: "team-a".into(),
//!         design: key,
//!         kind: JobKind::Score,
//!         deadline: None,
//!     })
//!     .unwrap();
//! match ticket.wait() {
//!     Some(JobResponse::Completed(outcome)) => assert!(outcome.metrics.latency_ps > 0.0),
//!     other => panic!("unexpected terminal response: {other:?}"),
//! }
//! service.shutdown(dscts_service::DrainMode::Graceful);
//! ```
//!
//! # Operating the service
//!
//! **Queue sizing.** [`ServiceConfig::queue_capacity`] bounds *queued*
//! (not running) jobs; [`ServiceConfig::workers`] bounds concurrency.
//! Memory per queued job is one request plus an `Arc` onto the cached
//! artifact, so the queue bound mostly controls *latency*, not memory:
//! a job's deadline clock starts at submission, so a queue much longer
//! than `workers × (deadline / typical job wall clock)` admits jobs
//! that will only ever fail typed with `Cancelled("queue")`. Size the
//! queue to the burst you want to absorb and let the rest bounce.
//!
//! **Backpressure semantics.** Admission is checked synchronously at
//! [`CtsService::submit`], worst-case-first: quarantine, then queue
//! capacity ([`Rejected::QueueFull`]), then the per-tenant outstanding
//! cap ([`Rejected::Backpressure`], counting queued + running jobs, so
//! one tenant cannot monopolize the pool). Rejected submissions were
//! never queued and get no [`JobResponse`]; accepted ones are guaranteed
//! exactly one terminal response. Callers should treat `QueueFull` /
//! `Backpressure` as retry-after-drain signals and `Quarantined` as
//! stop-submitting.
//!
//! **Quarantine policy.** Every job failing with
//! [`CtsError::Internal`](dscts_core::CtsError::Internal) — a caught
//! panic or an injected fault, never a typed infeasibility or deadline
//! — counts one strike against its *design* (the cached artifact is the
//! shared state a poisoned input keeps re-triggering). At
//! [`ServiceConfig::quarantine_threshold`] strikes the design is
//! quarantined: later submissions are rejected synchronously and
//! cheaply. Quarantine never kills in-flight jobs and never evicts the
//! artifact; [`CtsService::quarantined`] lists the offenders for
//! operator triage.
//!
//! **Drain behavior.** [`CtsService::shutdown`] flips admission off
//! (subsequent submissions → [`Rejected::ShuttingDown`]), cancels every
//! still-queued job with a typed [`JobResponse::Cancelled`], and joins
//! the pool. [`DrainMode::Graceful`] lets in-flight jobs run to natural
//! completion; [`DrainMode::Fast`] additionally trips their cancel
//! tokens so they degrade at the next cooperative checkpoint (truncated
//! optimization schedules, `Cancelled` pre-tree) — bounded by one
//! checkpoint interval, not one job. Either way the exactly-once
//! response invariant holds through shutdown.
//!
//! **Bit-identity.** Job results are bit-identical to direct [`DsCts`]
//! staged-driver compositions on a freshly routed design: routing is
//! deterministic, the cache stores the routed topology immutably, and
//! each job clones it exactly as the batched DSE engine does. The
//! loadtest bin asserts this in-process on every run.
//!
//! # Observability
//!
//! The service is instrumented with `dscts-telemetry` (re-exported as
//! [`dscts_core::telemetry`]). With no collector installed every site
//! is one relaxed atomic load and results stay bit-identical; install
//! one (`telemetry::install(Arc::new(telemetry::Telemetry::new()))`)
//! and the service records, per process:
//!
//! - **Counters** mirroring [`ServiceStats`] exactly —
//!   `service.accepted`, `service.completed`, `service.failed`,
//!   `service.cancelled`, `service.panics_caught`, plus the admission
//!   mix as `service.rejected.<variant>` (`queue_full`, `backpressure`,
//!   `quarantined`, `shutting_down`, `unknown_design`,
//!   `missing_corners`), quarantine progress
//!   (`service.quarantine_strikes`, `service.quarantined_designs`),
//!   per-kind submission counts (`service.jobs.<label>`), the
//!   design cache (`cache.hits`, `cache.misses`), and the service-side
//!   recovery ladder as `service.recovery.<rung>` (one count per rung
//!   climbed, labelled by
//!   [`Relaxation::label`](dscts_core::Relaxation::label); their sum
//!   equals [`ServiceStats::retries`]).
//! - **Gauges**: `service.queue_depth`, sampled at every admission and
//!   dequeue.
//! - **Histograms**: `job.wall_s` and `job.queue_wait_s` (log-spaced
//!   buckets; the loadtest reports p50/p95/p99 from them),
//!   `span.service.job` and `span.register_route`, and per-stage
//!   `span.<stage>` histograms fed from every completed job's stage
//!   rows (insertion / optimize / evaluate / signoff; the `opt:<name>`
//!   rows are skipped because the pass manager already records them as
//!   `span.pass.<name>`).
//! - **Per-job stage breakdowns**: every completed job's
//!   [`JobOutcome::stages`] mirrors
//!   [`Outcome::stages`](dscts_core::Outcome::stages) — insertion,
//!   optimize (one `opt:<name>` row per executed pass), evaluate,
//!   signoff — and [`JobKind::SweepPoint`] jobs additionally log the
//!   same sweep-outcome training records the batched DSE engine logs.
//!
//! Export with `Telemetry::snapshot()` → `TelemetrySnapshot::to_jsonl()`;
//! the loadtest bin validates every emitted line in-process (schema plus
//! an `accepted == completed + failed + cancelled` cross-check against
//! [`ServiceStats`]) and `--telemetry <path>` writes it out for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod job;
mod service;

pub use cache::{CachedDesign, DesignKey};
pub use job::{CancelKind, JobKind, JobOutcome, JobRequest, JobResponse, JobTicket, Rejected};
pub use service::{job_pipeline, CtsService, DrainMode, DrainReport, ServiceConfig, ServiceStats};

use dscts_core::DsCts;

// The service shares these across its pool and hands them between
// submitter and worker threads; losing an impl must fail this crate's
// build, not a downstream caller's type inference.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CachedDesign>();
    assert_send_sync::<DesignKey>();
    assert_send_sync::<JobRequest>();
    assert_send_sync::<JobResponse>();
    assert_send_sync::<ServiceConfig>();
    assert_send_sync::<CtsService>();
    assert_send_sync::<DsCts>();
    const fn assert_send<T: Send>() {}
    assert_send::<JobTicket>();
};
