//! Service loadtest: thousands of queued jobs, chaos arms mid-run,
//! invariant checker, throughput snapshot.
//!
//! Phases:
//!
//! 1. **Register** C1–C5 plus a scaled design; re-registration must hit
//!    the cache.
//! 2. **Bit-identity**: for sample designs × every job kind, the
//!    cached-artifact job result must equal the direct `DsCts`
//!    staged-driver composition, field for field.
//! 3. **Flood**: submit the requested job count round-robin over
//!    designs × kinds × tenants against a deliberately small queue, so
//!    admission control (QueueFull/Backpressure) is exercised; with
//!    `--chaos` (and the `fault-inject` feature) a controller thread
//!    arms fault plans against the running pool the whole time.
//! 4. **Quarantine** (chaos only): a dedicated poison design is
//!    panicked until the service quarantines it, then the service must
//!    still complete clean work on live workers.
//! 5. **Drain**: a final burst is submitted and the service shut down
//!    gracefully; still-queued jobs must get typed cancellations.
//! 6. **Telemetry validation**: the run executes under an installed
//!    [`dscts_telemetry`] collector; the final snapshot is serialized
//!    to JSON-lines, every line re-parsed in-process with the crate's
//!    own parser (schema check per record kind), and the counters are
//!    cross-checked against [`ServiceStats`]
//!    — in particular `service.accepted == completed + failed +
//!    cancelled`. `--telemetry <path>` writes the JSONL out for CI
//!    artifacts.
//!
//! Invariants asserted (process exits non-zero on violation): zero lost
//! jobs (every accepted submission resolves to exactly one terminal
//! response), no worker death, bit-identity, telemetry consistency, and
//! — under chaos — quarantine engagement. Throughput plus p50/p95/p99
//! job latency (from the `job.wall_s` histogram) land in
//! `BENCH_pr9.json`.

use dscts_core::DsCts;
use dscts_netlist::{BenchmarkSpec, Design};
use dscts_service::{
    job_pipeline, CtsService, DesignKey, DrainMode, JobKind, JobRequest, JobResponse, Rejected,
    ServiceConfig, ServiceStats,
};
use dscts_tech::{CornerSet, Technology};
use dscts_telemetry as telemetry;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    quick: bool,
    chaos: bool,
    jobs: usize,
    workers: usize,
    out: Option<PathBuf>,
    telemetry: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        chaos: false,
        jobs: 0,
        workers: 4,
        out: None,
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--chaos" => args.chaos = true,
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number"))
            }
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a number"))
            }
            "--out" => {
                args.out = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--out needs a path")),
                ))
            }
            "--telemetry" => {
                args.telemetry = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--telemetry needs a path")),
                ))
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    if args.jobs == 0 {
        args.jobs = if args.quick { 300 } else { 1200 };
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("loadtest: {msg}");
    std::process::exit(2);
}

/// Hard invariant: prints and fails the process on violation, so CI can
/// gate on the exit code.
fn check(ok: bool, what: &str) {
    if ok {
        println!("  ok: {what}");
    } else {
        eprintln!("INVARIANT VIOLATED: {what}");
        std::process::exit(1);
    }
}

fn main() {
    // Inner (per-job) parallelism off unless the operator pinned it:
    // concurrency comes from the worker pool, which keeps throughput
    // numbers meaningful and avoids workers × cores oversubscription.
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "1");
    }
    let args = parse_args();
    // Chaos floods catch hundreds of injected panics at the worker
    // boundary; the default hook would drown the log in backtraces. One
    // line per panic keeps the CI log readable without hiding anything.
    std::panic::set_hook(Box::new(|info| eprintln!("panic: {info}")));
    let chaos = args.chaos && cfg!(feature = "fault-inject");
    if args.chaos && !chaos {
        println!("note: --chaos requested but the fault-inject feature is off; running clean");
    }

    // The whole run executes under a live collector: phase 6 validates
    // the snapshot against the service's own stats, so the loadtest
    // doubles as the telemetry smoke test.
    let collector = Arc::new(telemetry::Telemetry::new());
    let _telemetry_guard = telemetry::install(Arc::clone(&collector));

    let tech = Technology::asap7();
    let base = DsCts::new(tech.clone());
    let cfg = ServiceConfig {
        workers: args.workers,
        queue_capacity: 96,
        max_outstanding_per_tenant: 48,
        default_deadline: None,
        // Chaos arms faults against *whatever* job is running, so under
        // --chaos every design accumulates Internal strikes; a tight
        // threshold would quarantine the whole flood fleet. The flood
        // service therefore tolerates chaos noise, and phase 4 proves
        // quarantine on a dedicated instance with the default threshold.
        quarantine_threshold: u32::MAX,
        retry: Some(dscts_core::RecoveryPolicy::new()),
        signoff_corners: Some(CornerSet::asap7_pvt(&tech)),
    };
    let retry = cfg.retry.clone();
    let service = CtsService::start(base.clone(), cfg);

    // ---- Phase 1: register C1–C5 + a scaled design. --------------------
    println!("phase 1: register designs");
    let mut designs: Vec<Design> = BenchmarkSpec::all().iter().map(|s| s.generate()).collect();
    let scaled_sinks = if args.quick { 20_000 } else { 60_000 };
    designs.push(BenchmarkSpec::scaled(scaled_sinks, 11).generate());
    let mut keys: Vec<DesignKey> = Vec::new();
    let t_reg = Instant::now();
    for d in &designs {
        let (key, hit) = service
            .register_design(d)
            .unwrap_or_else(|e| die(&format!("routing {} failed: {e}", d.name)));
        check(
            !hit,
            &format!("first registration of {} routes ({key})", d.name),
        );
        keys.push(key);
    }
    for (d, &key) in designs.iter().zip(&keys) {
        let (key2, hit) = service
            .register_design(d)
            .unwrap_or_else(|e| die(&format!("re-registering {} failed: {e}", d.name)));
        check(
            hit && key2 == key,
            &format!("re-registration of {} hits the cache", d.name),
        );
    }
    let register_s = t_reg.elapsed().as_secs_f64();

    // ---- Phase 2: cache-hit results ≡ direct staged-driver calls. ------
    println!("phase 2: bit-identity vs direct DsCts staged drivers");
    let kinds = [
        JobKind::Score,
        JobKind::SweepPoint { threshold: 24 },
        JobKind::Sizing { moves: 64 },
        JobKind::CornerSignoff,
    ];
    let identity_designs: &[usize] = if args.quick {
        &[0, 3]
    } else {
        &[0, 1, 2, 3, 4]
    };
    for &di in identity_designs {
        for kind in kinds {
            let ticket = service
                .submit(JobRequest {
                    tenant: "identity".into(),
                    design: keys[di],
                    kind,
                    deadline: None,
                })
                .unwrap_or_else(|r| die(&format!("identity submit rejected: {r}")));
            let response = ticket.wait();
            // The oracle mirrors the service's full per-job execution,
            // including the recovery ladder: corner sign-off can find a
            // nominal-chosen pattern overloaded at the derated SS corner
            // (a typed, data-dependent infeasibility), and the service
            // then relaxes and re-attempts exactly like `DsCts::try_run`.
            let (want, want_rungs) = direct_oracle(&base, &designs[di], kind, retry.as_ref());
            match (response, want) {
                (Some(JobResponse::Completed(got)), Ok((metrics, robust))) => check(
                    got.metrics == metrics
                        && got.robust == robust
                        && got.recovery.len() == want_rungs,
                    &format!(
                        "{} job on cached {} ≡ direct staged drivers{}",
                        kind.label(),
                        designs[di].name,
                        if want_rungs > 0 {
                            " (after an identical recovery ladder)"
                        } else {
                            ""
                        }
                    ),
                ),
                (Some(JobResponse::Failed { error, .. }), Err(want_err)) => check(
                    error == want_err,
                    &format!(
                        "{} job on cached {} fails typed ≡ direct staged drivers",
                        kind.label(),
                        designs[di].name
                    ),
                ),
                (other, want) => die(&format!(
                    "identity job {} on {} diverged from the direct oracle: service {} vs direct {}",
                    kind.label(),
                    designs[di].name,
                    match &other {
                        Some(JobResponse::Completed(_)) => "completed".to_owned(),
                        Some(JobResponse::Failed { error, .. }) => format!("failed ({error})"),
                        Some(JobResponse::Cancelled(_)) => "cancelled".to_owned(),
                        None => "lost".to_owned(),
                    },
                    match &want {
                        Ok(_) => "completed".to_owned(),
                        Err(e) => format!("failed ({e})"),
                    }
                )),
            }
        }
    }

    // ---- Phase 3: flood (chaos controller armed mid-run). --------------
    println!(
        "phase 3: flood {} jobs across {} workers{}",
        args.jobs,
        args.workers,
        if chaos { " (chaos armed)" } else { "" }
    );
    #[cfg(feature = "fault-inject")]
    let chaos_handle = chaos.then(|| {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let stop = std::sync::Arc::clone(&flag);
        let handle = std::thread::spawn(move || {
            use dscts_core::resilience::fault::*;
            let mut fired_total = 0usize;
            let mut round = 0u64;
            while stop.load(std::sync::atomic::Ordering::Relaxed) {
                // Rotate kinds and skip counts so faults land at varied
                // depths of whatever jobs are running right now.
                let skips = round % 5;
                let guard = FaultPlan::new()
                    .arm_after(SITE_DP, FaultKind::Panic, skips)
                    .arm_after(SITE_SYNTH, FaultKind::Panic, skips / 2)
                    .arm_after(SITE_EVAL, FaultKind::Error, skips)
                    .arm_after(SITE_INCREMENTAL, FaultKind::Infeasible, skips)
                    .arm_after(SITE_MCMM, FaultKind::Infeasible, skips / 2)
                    .install();
                std::thread::sleep(Duration::from_millis(25));
                fired_total += 5usize.saturating_sub(guard.unfired());
                drop(guard);
                round += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            fired_total
        });
        (flag, handle)
    });

    let tenants = 8usize;
    let mut tickets = Vec::with_capacity(args.jobs);
    let mut rejected_retries = 0u64;
    let t_flood = Instant::now();
    for i in 0..args.jobs {
        let mut req = JobRequest {
            tenant: format!("tenant-{}", i % tenants),
            design: keys[i % keys.len()],
            kind: kinds[i % kinds.len()],
            // A slice of jobs carries a tight deadline: under load these
            // must fail typed (or complete degraded), never hang or
            // vanish.
            deadline: (i % 37 == 0).then(|| Duration::from_millis(30)),
        };
        let mut design_bump = 0usize;
        loop {
            match service.submit(req.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(Rejected::QueueFull { .. }) | Err(Rejected::Backpressure { .. }) => {
                    rejected_retries += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(Rejected::Quarantined { .. }) => {
                    // Chaos strikes can quarantine a flood design
                    // mid-run; a real tenant would fail over to other
                    // work, and so does the flood.
                    design_bump += 1;
                    if design_bump >= keys.len() {
                        die("every flood design got quarantined");
                    }
                    req.design = keys[(i + design_bump) % keys.len()];
                }
                Err(r) => die(&format!("flood submit rejected hard: {r}")),
            }
        }
    }
    let submitted = tickets.len();
    let mut completed = 0u64;
    let mut degraded = 0u64;
    let mut failed = 0u64;
    let mut failed_by: HashMap<&'static str, u64> = HashMap::new();
    let mut lost = 0u64;
    for ticket in tickets {
        match ticket.wait() {
            Some(JobResponse::Completed(o)) => {
                completed += 1;
                if o.degraded {
                    degraded += 1;
                }
            }
            Some(JobResponse::Failed { error, .. }) => {
                failed += 1;
                *failed_by.entry(error_label(&error)).or_insert(0) += 1;
            }
            Some(JobResponse::Cancelled(_)) => {
                failed += 1; // terminal, just not executed
            }
            None => lost += 1,
        }
    }
    let flood_s = t_flood.elapsed().as_secs_f64();
    let throughput = completed as f64 / flood_s;
    println!(
        "  {submitted} jobs in {flood_s:.2}s → {throughput:.1} completed jobs/s \
         ({completed} completed / {degraded} degraded / {failed} failed, \
         {rejected_retries} admission bounces)"
    );
    if !failed_by.is_empty() {
        let mut kinds: Vec<_> = failed_by.iter().collect();
        kinds.sort();
        for (k, n) in kinds {
            println!("    failed[{k}]: {n}");
        }
    }
    check(lost == 0, "zero lost jobs in the flood");
    check(
        completed + failed == submitted as u64,
        "every flood submission reached exactly one terminal response",
    );
    check(
        service.live_workers() == args.workers,
        "no worker died during the flood",
    );

    #[cfg(feature = "fault-inject")]
    let chaos_fired = chaos_handle.map(|(flag, handle)| {
        flag.store(false, std::sync::atomic::Ordering::Relaxed);
        handle.join().unwrap_or(0)
    });
    #[cfg(not(feature = "fault-inject"))]
    let chaos_fired: Option<usize> = None;
    if let Some(fired) = chaos_fired {
        println!("  chaos: {fired} faults fired mid-run");
        check(fired > 0, "chaos mode actually fired faults into the pool");
    }

    // ---- Phase 4 (chaos): quarantine the poisoned design. --------------
    // The quarantine proof runs on a second service instance whose jobs
    // also land in the process-global telemetry counters, so its final
    // stats are kept for phase 6's exact cross-check.
    #[cfg(feature = "fault-inject")]
    let aux_stats: Option<ServiceStats> = if chaos {
        use dscts_core::resilience::fault::*;
        println!("phase 4: poison one design until quarantine engages");
        // A dedicated instance with the default (tight) strike threshold:
        // the flood service deliberately tolerates chaos noise, so the
        // quarantine proof runs where two strikes are decisive.
        let quarantine_svc = CtsService::start(
            base.clone(),
            ServiceConfig {
                workers: 2,
                quarantine_threshold: 2,
                ..ServiceConfig::default()
            },
        );
        let poison = BenchmarkSpec::scaled(2_000, 99).generate();
        let (poison_key, _) = quarantine_svc
            .register_design(&poison)
            .unwrap_or_else(|e| die(&format!("routing poison design failed: {e}")));
        let mut internal_failures = 0u32;
        for _ in 0..8 {
            // Flood is drained, so the armed panic can only be consumed
            // by this job.
            let guard = FaultPlan::new().arm(SITE_DP, FaultKind::Panic).install();
            let submitted = quarantine_svc.submit(JobRequest {
                tenant: "poison".into(),
                design: poison_key,
                kind: JobKind::Score,
                deadline: None,
            });
            match submitted {
                Ok(ticket) => match ticket.wait() {
                    Some(JobResponse::Failed { .. }) => internal_failures += 1,
                    Some(_) => {}
                    None => check(false, "poison job got a terminal response"),
                },
                Err(Rejected::Quarantined { .. }) => {
                    drop(guard);
                    break;
                }
                Err(r) => die(&format!("poison submit rejected unexpectedly: {r}")),
            }
            drop(guard);
        }
        check(
            internal_failures >= 2,
            "poison jobs failed typed (panics isolated, workers alive)",
        );
        check(
            quarantine_svc.quarantined().contains(&poison_key),
            "quarantine engaged for the poisoned design",
        );
        check(
            matches!(
                quarantine_svc.submit(JobRequest {
                    tenant: "poison".into(),
                    design: poison_key,
                    kind: JobKind::Score,
                    deadline: None,
                }),
                Err(Rejected::Quarantined { .. })
            ),
            "quarantined design is rejected at admission",
        );
        check(
            quarantine_svc.live_workers() == 2,
            "no quarantine-service worker died absorbing the panics",
        );
        let quarantine_stats = quarantine_svc.shutdown(DrainMode::Graceful).stats;
        // The pool must still do clean work afterwards.
        let ticket = service
            .submit(JobRequest {
                tenant: "post-chaos".into(),
                design: keys[0],
                kind: JobKind::Score,
                deadline: None,
            })
            .unwrap_or_else(|r| die(&format!("post-chaos submit rejected: {r}")));
        check(
            matches!(ticket.wait(), Some(JobResponse::Completed(_))),
            "service completes clean jobs after chaos",
        );
        check(
            service.live_workers() == args.workers,
            "no worker died across the chaos phase",
        );
        Some(quarantine_stats)
    } else {
        None
    };
    #[cfg(not(feature = "fault-inject"))]
    let aux_stats: Option<ServiceStats> = None;

    // ---- Phase 5: graceful drain cancels queued jobs typed. ------------
    println!("phase 5: drain");
    let scaled_key = keys[keys.len() - 1];
    let burst: Vec<_> = (0..32)
        .filter_map(|i| {
            service
                .submit(JobRequest {
                    tenant: format!("drain-{}", i % 4),
                    design: scaled_key,
                    kind: JobKind::Score,
                    deadline: None,
                })
                .ok()
        })
        .collect();
    let burst_n = burst.len();
    let report = service.shutdown(DrainMode::Graceful);
    let mut drained_cancelled = 0u64;
    let mut drained_terminal = 0u64;
    for ticket in burst {
        match ticket.wait() {
            Some(JobResponse::Cancelled(_)) => {
                drained_cancelled += 1;
                drained_terminal += 1;
            }
            Some(_) => drained_terminal += 1,
            None => {}
        }
    }
    check(
        drained_terminal == burst_n as u64,
        "every drain-burst job got a terminal response through shutdown",
    );
    check(
        drained_cancelled > 0,
        "graceful drain cancelled still-queued jobs typed",
    );
    check(
        report.stats.terminal() == report.stats.accepted,
        "lifetime: accepted == completed + failed + cancelled",
    );
    println!(
        "  lifetime: {} accepted / {} completed / {} failed / {} cancelled / {} panics caught / {} cache hits",
        report.stats.accepted,
        report.stats.completed,
        report.stats.failed,
        report.stats.cancelled,
        report.stats.panics_caught,
        report.stats.cache_hits,
    );

    // ---- Phase 6: telemetry snapshot validation. -----------------------
    println!("phase 6: telemetry snapshot validation");
    let snap = collector.snapshot();
    let jsonl = snap.to_jsonl();
    let mut record_counts: HashMap<&'static str, u64> = HashMap::new();
    for line in jsonl.lines() {
        let v = telemetry::parse_json(line)
            .unwrap_or_else(|e| die(&format!("telemetry line failed to parse ({e}): {line}")));
        let kind = v
            .get("record")
            .and_then(telemetry::Json::as_str)
            .unwrap_or_else(|| die(&format!("telemetry line lacks a record kind: {line}")));
        // Canonical kind plus the fields its schema requires.
        let (kind, fields): (&'static str, &[&str]) = match kind {
            "meta" => ("meta", &["schema", "version"]),
            "counter" => ("counter", &["name", "value"]),
            "gauge" => ("gauge", &["name", "value"]),
            "histogram" => (
                "histogram",
                &[
                    "name", "count", "sum_s", "p50_s", "p95_s", "p99_s", "le", "counts",
                ],
            ),
            "sweep" => (
                "sweep",
                &[
                    "schema_version",
                    "design",
                    "sinks",
                    "distinct_fanouts",
                    "mode_class",
                    "threshold_lo",
                    "threshold_hi",
                    "intra_nodes",
                    "stars",
                    "sink_spread_nm",
                    "fanout_hist",
                    "latency_ps",
                    "skew_ps",
                    "buffers",
                    "ntsvs",
                    "trunk_wirelength_nm",
                    "switched_cap_ff",
                ],
            ),
            other => die(&format!("unknown telemetry record kind {other:?}: {line}")),
        };
        for field in fields {
            if v.get(field).is_none() {
                die(&format!("telemetry {kind} record lacks {field:?}: {line}"));
            }
        }
        // Forward-compat contract for the dataset ingester: every sweep
        // record this build exports carries the current schema version.
        if kind == "sweep" {
            let version = v.get("schema_version").and_then(telemetry::Json::as_u64);
            if version != Some(u64::from(telemetry::SWEEP_SCHEMA_VERSION)) {
                die(&format!(
                    "telemetry sweep record schema_version {version:?} != {}: {line}",
                    telemetry::SWEEP_SCHEMA_VERSION
                ));
            }
        }
        if kind == "histogram" {
            let le = v
                .get("le")
                .and_then(telemetry::Json::as_array)
                .map(Vec::len);
            let counts = v
                .get("counts")
                .and_then(telemetry::Json::as_array)
                .map(Vec::len);
            if le != counts {
                die(&format!("telemetry histogram le/counts diverge: {line}"));
            }
        }
        *record_counts.entry(kind).or_insert(0) += 1;
    }
    let n_of = |kind: &str| record_counts.get(kind).copied().unwrap_or(0);
    check(
        ["meta", "counter", "gauge", "histogram", "sweep"]
            .iter()
            .all(|k| n_of(k) > 0),
        &format!(
            "every JSONL line parses in-process ({} counters / {} gauges / {} histograms / {} sweep records)",
            n_of("counter"),
            n_of("gauge"),
            n_of("histogram"),
            n_of("sweep"),
        ),
    );

    // The telemetry counters are process-global; the expected values are
    // the flood service's lifetime stats plus the chaos quarantine
    // instance's (phase 4), when it ran.
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let expected = |field: fn(&ServiceStats) -> u64| {
        field(&report.stats) + aux_stats.as_ref().map_or(0, field)
    };
    check(
        counter("service.accepted")
            == counter("service.completed")
                + counter("service.failed")
                + counter("service.cancelled"),
        "telemetry: accepted == completed + failed + cancelled",
    );
    type StatField = fn(&ServiceStats) -> u64;
    let pairs: [(&str, StatField); 11] = [
        ("service.accepted", |s| s.accepted),
        ("service.completed", |s| s.completed),
        ("service.failed", |s| s.failed),
        ("service.cancelled", |s| s.cancelled),
        ("service.panics_caught", |s| s.panics_caught),
        ("service.rejected.queue_full", |s| s.rejected_queue_full),
        ("service.rejected.backpressure", |s| s.rejected_backpressure),
        ("service.rejected.quarantined", |s| s.rejected_quarantined),
        ("service.rejected.shutting_down", |s| s.rejected_shutdown),
        ("cache.hits", |s| s.cache_hits),
        ("cache.misses", |s| s.cache_misses),
    ];
    for (name, field) in pairs {
        check(
            counter(name) == expected(field),
            &format!(
                "telemetry counter {name} ({}) matches lifetime ServiceStats",
                counter(name)
            ),
        );
    }
    check(
        counter("service.rejected.unknown_design") + counter("service.rejected.missing_corners")
            == expected(|s| s.rejected_other),
        "telemetry rejection counters cover the stats' other bucket",
    );
    // Every climb of the service-side recovery ladder counts one
    // `service.recovery.<rung>`; the rung labels are Relaxation::label's
    // closed set, so the sum must equal the stats' retry counter.
    let recovery_total: u64 = ["widen_pattern_set", "raise_max_candidates", "single_side"]
        .iter()
        .map(|rung| counter(&format!("service.recovery.{rung}")))
        .sum();
    check(
        recovery_total == expected(|s| s.retries),
        &format!("telemetry recovery-rung counters ({recovery_total}) sum to the stats' retries"),
    );
    if chaos {
        check(
            counter("service.panics_caught") > 0,
            "chaos run surfaced caught panics in the snapshot",
        );
    }

    let wall = snap
        .histogram("job.wall_s")
        .cloned()
        .unwrap_or_else(|| die("snapshot lacks the job.wall_s histogram"));
    println!(
        "  job latency: p50 {:.1} ms / p95 {:.1} ms / p99 {:.1} ms over {} jobs",
        wall.p50_s * 1e3,
        wall.p95_s * 1e3,
        wall.p99_s * 1e3,
        wall.count,
    );
    check(
        wall.count > 0 && wall.p50_s <= wall.p95_s && wall.p95_s <= wall.p99_s,
        "job.wall_s histogram populated with monotone quantiles",
    );
    check(
        snap.histogram("job.queue_wait_s")
            .is_some_and(|h| h.count > 0),
        "job.queue_wait_s histogram populated",
    );
    // Completed jobs feed their stage rows into per-stage span
    // histograms; every pipeline job runs insertion and evaluate, so
    // those must be present and as populated as the completion count.
    for stage in ["insertion", "evaluate"] {
        check(
            snap.histogram(&format!("span.{stage}"))
                .is_some_and(|h| h.count > 0),
            &format!("per-job stage breakdown exported (span.{stage} histogram)"),
        );
    }
    check(
        snap.gauge("service.queue_depth").is_some(),
        "queue-depth gauge exported",
    );
    check(
        snap.sweeps.iter().any(|s| s.sinks > 0),
        "sweep-point jobs logged sweep-outcome training records",
    );
    if let Some(path) = &args.telemetry {
        match std::fs::write(path, jsonl.as_bytes()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }

    // ---- Snapshot. -----------------------------------------------------
    let out = args
        .out
        .unwrap_or_else(|| workspace_root().join("BENCH_pr9.json"));
    let mut body = String::new();
    body.push_str("{\n  \"flow\": \"service_loadtest\",\n");
    body.push_str(&format!(
        "  \"workers\": {}, \"queue_capacity\": 96, \"chaos\": {},\n",
        args.workers, chaos
    ));
    body.push_str("  \"records\": [\n");
    body.push_str(&format!(
        "    {{\"design\": \"svc-flood-{}jobs\", \"runtime_s\": {:.6}, \"jobs\": {}, \"completed\": {}, \"degraded\": {}, \"failed\": {}, \"throughput_jobs_per_s\": {:.3}, \"admission_bounces\": {}}},\n",
        submitted, flood_s, submitted, completed, degraded, failed, throughput, rejected_retries
    ));
    body.push_str(&format!(
        "    {{\"design\": \"svc-latency-{}jobs\", \"runtime_s\": {:.6}, \"jobs\": {}, \"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}}},\n",
        wall.count, wall.sum_s, wall.count, wall.p50_s, wall.p95_s, wall.p99_s
    ));
    body.push_str(&format!(
        "    {{\"design\": \"svc-register-{}designs\", \"runtime_s\": {:.6}, \"cache_hits\": {}, \"cache_misses\": {}}}\n",
        designs.len(),
        register_s,
        report.stats.cache_hits,
        report.stats.cache_misses
    ));
    body.push_str("  ]\n}\n");
    match std::fs::File::create(&out).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => die(&format!("writing {}: {e}", out.display())),
    }
    println!("loadtest: all invariants held");
}

type OracleResult = Result<
    (
        dscts_core::TreeMetrics,
        Option<dscts_core::mcmm::RobustMetrics>,
    ),
    dscts_core::CtsError,
>;

/// The direct (uncached) oracle for one job kind, mirroring the
/// service's full per-job execution: the same staged-driver composition
/// on a freshly routed topology, plus the same recovery ladder the
/// service climbs on recoverable errors. Returns the terminal result and
/// the number of ladder rungs climbed (which must equal the service
/// job's recorded `recovery` steps).
fn direct_oracle(
    base: &DsCts,
    design: &Design,
    kind: JobKind,
    retry: Option<&dscts_core::RecoveryPolicy>,
) -> (OracleResult, usize) {
    use dscts_core::RecoveryPolicy;
    let mut pipe = job_pipeline(base, &kind);
    let mut result = direct_attempt(&pipe, design, kind);
    let mut rungs = 0;
    if let (Err(first), Some(policy)) = (&result, retry) {
        if RecoveryPolicy::recoverable(first) {
            for &rung in policy.ladder() {
                rungs += 1;
                pipe = pipe.with_relaxation(rung);
                match direct_attempt(&pipe, design, kind) {
                    Ok(ok) => {
                        result = Ok(ok);
                        break;
                    }
                    Err(e) if RecoveryPolicy::recoverable(&e) => result = Err(e),
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
        }
    }
    (result, rungs)
}

/// One direct staged-driver attempt under `pipe` — the composition the
/// service's per-attempt body runs. Corner evaluation is fallible: a
/// derated corner can overload a pattern buffer chosen at nominal.
fn direct_attempt(pipe: &DsCts, design: &Design, kind: JobKind) -> OracleResult {
    use dscts_core::mcmm::CornerReport;
    use dscts_core::{mode_vector, ModeRule};
    let topo = pipe.route(design)?;
    let (mut tree, _dp) = match kind {
        JobKind::SweepPoint { threshold } => {
            let modes = mode_vector(&topo, ModeRule::FanoutThreshold(threshold));
            pipe.insert_with_modes(topo, &modes)?
        }
        _ => pipe.insert(topo)?,
    };
    pipe.optimize_tree(&mut tree);
    let metrics = pipe.evaluate_tree(&tree);
    let robust = match kind {
        JobKind::CornerSignoff => Some(
            CornerReport::try_evaluate(
                &tree,
                &CornerSet::asap7_pvt(pipe.technology()),
                pipe.delay_model(),
            )?
            .robust,
        ),
        _ => match pipe.corner_set() {
            Some(c) => Some(CornerReport::try_evaluate(&tree, c, pipe.delay_model())?.robust),
            None => None,
        },
    };
    Ok((metrics, robust))
}

/// Stable bucket label for a terminal error, for the failure breakdown.
fn error_label(e: &dscts_core::CtsError) -> &'static str {
    use dscts_core::CtsError;
    match e {
        CtsError::Internal { .. } => "internal",
        CtsError::Cancelled { .. } => "cancelled",
        CtsError::NoFeasiblePattern { .. } => "no-feasible-pattern",
        CtsError::NoRootCandidate => "no-root-candidate",
        CtsError::IllegalSides(_) => "illegal-sides",
        CtsError::InvalidTopology(_) => "invalid-topology",
        CtsError::MalformedTrunk { .. } => "malformed-trunk",
        CtsError::EmptyDesign => "empty-design",
    }
}

/// The workspace root, resolved from this crate's manifest directory
/// (crates/service → two levels up).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
