//! Content-addressed design cache: route once, score many times.
//!
//! A design registered with the service is routed exactly once; the
//! routed [`ClockTopo`] (with its `TreeCsr` adjacency pre-warmed)
//! becomes an immutable [`CachedDesign`] artifact
//! keyed by a content hash of the placement — not the design *name* —
//! so two tenants submitting byte-identical placements under different
//! names share one routed artifact. Jobs borrow the artifact read-only;
//! the insertion/optimization stages clone the topology per job, exactly
//! as the batched DSE engine does, which is what keeps cached-design job
//! results bit-identical to direct [`DsCts`] staged-driver calls.
//!
//! The cache is scoped to one service instance (one routing
//! configuration), so the key does not need to mix in pipeline config:
//! within a service, identical placements always route identically.

use dscts_core::{ClockTopo, CtsError, DsCts};
use dscts_netlist::Design;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Content hash identifying a routed design artifact within one service.
///
/// Derived from the placement content (die/core boxes, clock root, sink
/// positions and pin caps, macro keep-outs, cell count, utilization) —
/// deliberately *not* from [`Design::name`], so renamed but identical
/// placements deduplicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DesignKey(u64);

impl DesignKey {
    /// The content hash of `design`'s placement.
    pub fn of(design: &Design) -> DesignKey {
        let mut h = Fnv1a::new();
        for r in [&design.die, &design.core] {
            h.write_i64(r.xlo);
            h.write_i64(r.ylo);
            h.write_i64(r.xhi);
            h.write_i64(r.yhi);
        }
        h.write_i64(design.clock_root.x);
        h.write_i64(design.clock_root.y);
        h.write_u64(design.sinks.len() as u64);
        for s in &design.sinks {
            h.write_i64(s.pos.x);
            h.write_i64(s.pos.y);
            h.write_u64(s.cap_ff.to_bits());
        }
        h.write_u64(design.macros.len() as u64);
        for m in &design.macros {
            h.write_i64(m.rect.xlo);
            h.write_i64(m.rect.ylo);
            h.write_i64(m.rect.xhi);
            h.write_i64(m.rect.yhi);
        }
        h.write_u64(design.num_cells as u64);
        h.write_u64(design.utilization.to_bits());
        DesignKey(h.finish())
    }

    /// The raw 64-bit hash value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for DesignKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a, 64-bit. Hand-rolled: `std`'s hasher is not stable across
/// releases and the workspace adds no external dependencies.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// An immutable routed-design artifact shared read-only by every job
/// scoring the design.
#[derive(Debug)]
pub struct CachedDesign {
    /// The content key this artifact is cached under.
    pub key: DesignKey,
    /// Name of the design that first populated the entry (diagnostic
    /// only — the key is content-addressed).
    pub name: String,
    /// Sink count, for capacity planning and reporting.
    pub sinks: usize,
    /// The routed (and subdivided) topology, CSR adjacency pre-warmed.
    pub topo: ClockTopo,
    /// Wall clock the one routing run cost (seconds).
    pub route_s: f64,
}

/// Route-once cache over [`CachedDesign`] artifacts.
///
/// Each key maps to a `OnceLock` slot: concurrent registrations of the
/// same placement race to one slot, exactly one performs the routing
/// run (the others block on `get_or_init` and then share the artifact).
/// Routing *failures* are reported to every waiter but not cached — the
/// slot is removed so a later registration retries (a transient injected
/// fault must not poison a design forever).
pub(crate) struct DesignCache {
    slots: Mutex<HashMap<DesignKey, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// One cache slot: concurrent registrants race to initialize it once.
type Slot = OnceLock<Result<Arc<CachedDesign>, CtsError>>;

impl DesignCache {
    pub(crate) fn new() -> Self {
        DesignCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up (or routes and inserts) the artifact for `design`.
    /// Returns the artifact and whether this was a cache hit.
    pub(crate) fn get_or_route(
        &self,
        base: &DsCts,
        design: &Design,
    ) -> (Result<Arc<CachedDesign>, CtsError>, bool) {
        let key = DesignKey::of(design);
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(slots.entry(key).or_default())
        };
        let mut routed_here = false;
        let result = slot
            .get_or_init(|| {
                routed_here = true;
                let t0 = Instant::now();
                base.route(design).map(|topo| {
                    // Warm the CSR adjacency while the artifact is still
                    // exclusively ours; every job thereafter borrows it.
                    let _ = topo.csr();
                    Arc::new(CachedDesign {
                        key,
                        name: design.name.clone(),
                        sinks: design.sinks.len(),
                        topo,
                        route_s: t0.elapsed().as_secs_f64(),
                    })
                })
            })
            .clone();
        if routed_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
            dscts_telemetry::count("cache.misses", 1);
            if let Ok(artifact) = &result {
                dscts_telemetry::observe("span.register_route", artifact.route_s);
            }
            if result.is_err() {
                // Do not cache failures: drop the slot so a later
                // registration retries the routing run.
                let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
                if slots.get(&key).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                    slots.remove(&key);
                }
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            dscts_telemetry::count("cache.hits", 1);
        }
        (result, !routed_here)
    }

    /// The cached artifact for `key`, when present and successfully
    /// routed.
    pub(crate) fn get(&self, key: DesignKey) -> Option<Arc<CachedDesign>> {
        let slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        let slot = slots.get(&key)?;
        match slot.get() {
            Some(Ok(artifact)) => Some(Arc::clone(artifact)),
            _ => None,
        }
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
