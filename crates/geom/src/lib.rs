//! Manhattan-plane geometry primitives for clock tree synthesis.
//!
//! Clock routing algorithms such as deferred-merge embedding (DME) operate in
//! the rectilinear (Manhattan, L1) plane. This crate provides the small set
//! of exact integer-geometry types they need:
//!
//! * [`Point`] — a lattice point in database units (this workspace uses
//!   1 dbu = 1 nm).
//! * [`Rect`] — an axis-aligned rectangle (die area, macro keep-outs).
//! * [`TiltedRect`] — a *tilted rectangle region* (TRR): the Minkowski
//!   expansion of a 45°-sloped "Manhattan arc" by an L1 radius. Merging
//!   segments in DME are Manhattan arcs, and all TRR arithmetic (distance,
//!   intersection, nearest point) becomes axis-aligned rectangle arithmetic
//!   in the *tilted coordinate system* `(u, v) = (x + y, x − y)`.
//!
//! It also hosts [`TreeCsr`], the shared flat (CSR) child adjacency used by
//! every rooted-tree structure in the workspace (clock topologies, routed
//! DME trees, buffering instances) in place of per-call `Vec<Vec<u32>>`
//! rebuilds.
//!
//! # Example
//!
//! ```
//! use dscts_geom::{Point, TiltedRect};
//!
//! let a = TiltedRect::from_point(Point::new(0, 0));
//! let b = TiltedRect::from_point(Point::new(10, 6));
//! // L1 distance between the two regions:
//! assert_eq!(a.dist(&b), 16);
//! // DME merge: expand each region by its edge length; the intersection is
//! // the locus of merge points.
//! let ms = a.expanded(9).intersect(&b.expanded(7)).unwrap();
//! assert!(ms.contains(Point::new(5, 4)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod point;
mod rect;
mod tilted;

pub use csr::TreeCsr;
pub use point::{manhattan, Point};
pub use rect::Rect;
pub use tilted::TiltedRect;

/// Total Manhattan length of a path given as a sequence of points.
///
/// Returns 0 for paths with fewer than two points.
///
/// ```
/// use dscts_geom::{path_length, Point};
/// let p = [Point::new(0, 0), Point::new(3, 0), Point::new(3, 4)];
/// assert_eq!(path_length(&p), 7);
/// ```
pub fn path_length(points: &[Point]) -> i64 {
    points.windows(2).map(|w| manhattan(w[0], w[1])).sum()
}

/// Axis-aligned bounding box of a non-empty set of points.
///
/// Returns `None` for an empty iterator.
///
/// ```
/// use dscts_geom::{bounding_box, Point, Rect};
/// let pts = [Point::new(1, 5), Point::new(-2, 3)];
/// assert_eq!(bounding_box(pts).unwrap(), Rect::new(-2, 3, 1, 5));
/// ```
pub fn bounding_box<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
    let mut it = points.into_iter();
    let first = it.next()?;
    let mut r = Rect::new(first.x, first.y, first.x, first.y);
    for p in it {
        r = r.union_point(p);
    }
    Some(r)
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn path_length_empty_and_single() {
        assert_eq!(path_length(&[]), 0);
        assert_eq!(path_length(&[Point::new(9, 9)]), 0);
    }

    #[test]
    fn bounding_box_empty() {
        assert!(bounding_box(std::iter::empty::<Point>()).is_none());
    }

    #[test]
    fn bounding_box_covers_all() {
        let pts = [
            Point::new(0, 0),
            Point::new(10, -5),
            Point::new(-3, 8),
            Point::new(4, 4),
        ];
        let bb = bounding_box(pts).unwrap();
        for p in pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb, Rect::new(-3, -5, 10, 8));
    }
}
