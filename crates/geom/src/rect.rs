use crate::Point;
use std::fmt;

/// An axis-aligned rectangle with inclusive integer bounds.
///
/// Used for die areas, core boxes, and macro keep-out regions. A `Rect` with
/// `xlo == xhi` or `ylo == yhi` is degenerate (a segment or point) but still
/// valid.
///
/// ```
/// use dscts_geom::{Point, Rect};
/// let die = Rect::new(0, 0, 1000, 800);
/// assert!(die.contains(Point::new(500, 400)));
/// assert_eq!(die.width(), 1000);
/// assert_eq!(die.area(), 800_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Lower x bound (inclusive).
    pub xlo: i64,
    /// Lower y bound (inclusive).
    pub ylo: i64,
    /// Upper x bound (inclusive).
    pub xhi: i64,
    /// Upper y bound (inclusive).
    pub yhi: i64,
}

impl Rect {
    /// Creates a rectangle from its bounds.
    ///
    /// # Panics
    ///
    /// Panics if `xlo > xhi` or `ylo > yhi`.
    pub fn new(xlo: i64, ylo: i64, xhi: i64, yhi: i64) -> Self {
        assert!(xlo <= xhi && ylo <= yhi, "malformed rect bounds");
        Rect { xlo, ylo, xhi, yhi }
    }

    /// Rectangle covering exactly one point.
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// Width along x.
    pub fn width(&self) -> i64 {
        self.xhi - self.xlo
    }

    /// Height along y.
    pub fn height(&self) -> i64 {
        self.yhi - self.ylo
    }

    /// Area (`width × height`), computed in 128-bit to avoid overflow and
    /// saturated back to `i64::MAX` if necessary.
    pub fn area(&self) -> i64 {
        let a = self.width() as i128 * self.height() as i128;
        a.min(i64::MAX as i128) as i64
    }

    /// Center point (rounded toward negative infinity).
    pub fn center(&self) -> Point {
        Point::new(
            (self.xlo + self.xhi).div_euclid(2),
            (self.ylo + self.yhi).div_euclid(2),
        )
    }

    /// Whether `p` lies inside (bounds inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.xlo && p.x <= self.xhi && p.y >= self.ylo && p.y <= self.yhi
    }

    /// Whether the two rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xlo <= other.xhi
            && other.xlo <= self.xhi
            && self.ylo <= other.yhi
            && other.ylo <= self.yhi
    }

    /// Smallest rectangle containing both `self` and `p`.
    pub fn union_point(&self, p: Point) -> Rect {
        Rect {
            xlo: self.xlo.min(p.x),
            ylo: self.ylo.min(p.y),
            xhi: self.xhi.max(p.x),
            yhi: self.yhi.max(p.y),
        }
    }

    /// Smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xlo: self.xlo.min(other.xlo),
            ylo: self.ylo.min(other.ylo),
            xhi: self.xhi.max(other.xhi),
            yhi: self.yhi.max(other.yhi),
        }
    }

    /// Rectangle grown by `margin` on every side (shrunk if negative).
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the bounds.
    pub fn expanded(&self, margin: i64) -> Rect {
        Rect::new(
            self.xlo - margin,
            self.ylo - margin,
            self.xhi + margin,
            self.yhi + margin,
        )
    }

    /// The point inside `self` closest (in L1) to `p`; `p` itself when
    /// contained.
    ///
    /// ```
    /// use dscts_geom::{Point, Rect};
    /// let r = Rect::new(0, 0, 10, 10);
    /// assert_eq!(r.clamp_point(Point::new(15, -3)), Point::new(10, 0));
    /// ```
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.xlo, self.xhi), p.y.clamp(self.ylo, self.yhi))
    }

    /// L1 distance from `p` to the rectangle (0 when contained).
    pub fn dist_to_point(&self, p: Point) -> i64 {
        p.manhattan(self.clamp_point(p))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}] x [{}, {}]",
            self.xlo, self.xhi, self.ylo, self.yhi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "malformed")]
    fn rejects_inverted_bounds() {
        let _ = Rect::new(5, 0, 0, 5);
    }

    #[test]
    fn degenerate_rect_is_ok() {
        let r = Rect::from_point(Point::new(3, 3));
        assert_eq!(r.area(), 0);
        assert!(r.contains(Point::new(3, 3)));
        assert!(!r.contains(Point::new(3, 4)));
    }

    #[test]
    fn union_and_intersects() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(3, 3, 9, 9);
        let c = Rect::new(7, 0, 9, 2);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.union(&c), Rect::new(0, 0, 9, 5));
    }

    #[test]
    fn clamp_and_dist() {
        let r = Rect::new(-5, -5, 5, 5);
        assert_eq!(r.dist_to_point(Point::new(0, 0)), 0);
        assert_eq!(r.dist_to_point(Point::new(8, 9)), 3 + 4);
    }

    #[test]
    fn center_of_odd_rect() {
        let r = Rect::new(0, 0, 5, 3);
        assert_eq!(r.center(), Point::new(2, 1));
    }
}
