use std::fmt;
use std::ops::{Add, Sub};

/// A lattice point in database units (1 dbu = 1 nm in this workspace).
///
/// `Point` is a plain value type: `Copy`, ordered lexicographically
/// (x first), hashable, and usable as a map key.
///
/// ```
/// use dscts_geom::Point;
/// let p = Point::new(3, 4) + Point::new(1, -1);
/// assert_eq!(p, Point::new(4, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate (dbu).
    pub x: i64,
    /// Vertical coordinate (dbu).
    pub y: i64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use dscts_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Tilted coordinate `u = x + y`.
    pub fn u(self) -> i64 {
        self.x + self.y
    }

    /// Tilted coordinate `v = x − y`.
    pub fn v(self) -> i64 {
        self.x - self.y
    }

    /// Reconstructs a point from tilted coordinates, rounding to the nearest
    /// lattice point when `(u + v)` is odd (the true pre-image then lies on a
    /// half-integer coordinate; the rounded point is within 1 dbu in L1).
    pub fn from_tilted(u: i64, v: i64) -> Point {
        // x = (u + v) / 2, y = (u - v) / 2 with floor-consistent rounding.
        let x2 = u + v;
        let y2 = u - v;
        Point::new(x2.div_euclid(2), y2.div_euclid(2))
    }

    /// Component-wise midpoint (rounded toward negative infinity).
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(
            (self.x + other.x).div_euclid(2),
            (self.y + other.y).div_euclid(2),
        )
    }

    /// Returns the point on the rectilinear segment `self -> other` at
    /// Manhattan distance `d` from `self`, walking the L-shaped path that
    /// first moves in x then in y.
    ///
    /// `d` is clamped to `[0, manhattan(self, other)]`.
    ///
    /// ```
    /// use dscts_geom::Point;
    /// let a = Point::new(0, 0);
    /// let b = Point::new(3, 4);
    /// assert_eq!(a.walk_toward(b, 0), a);
    /// assert_eq!(a.walk_toward(b, 3), Point::new(3, 0));
    /// assert_eq!(a.walk_toward(b, 5), Point::new(3, 2));
    /// assert_eq!(a.walk_toward(b, 99), b);
    /// ```
    pub fn walk_toward(self, other: Point, d: i64) -> Point {
        let total = self.manhattan(other);
        let d = d.clamp(0, total);
        let dx = other.x - self.x;
        let step_x = d.min(dx.abs());
        let x = self.x + step_x * dx.signum();
        let rem = d - step_x;
        let dy = other.y - self.y;
        let y = self.y + rem.min(dy.abs()) * dy.signum();
        Point::new(x, y)
    }
}

/// Manhattan (L1) distance between two points (free-function form).
///
/// ```
/// use dscts_geom::{manhattan, Point};
/// assert_eq!(manhattan(Point::new(1, 1), Point::new(4, 5)), 7);
/// ```
pub fn manhattan(a: Point, b: Point) -> i64 {
    a.manhattan(b)
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric() {
        let a = Point::new(-3, 9);
        let b = Point::new(14, -2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn tilted_roundtrip_even_parity() {
        let p = Point::new(7, 3); // u + v = 14 even
        assert_eq!(Point::from_tilted(p.u(), p.v()), p);
    }

    #[test]
    fn tilted_distance_is_chebyshev() {
        let a = Point::new(2, 5);
        let b = Point::new(-4, 9);
        let cheb = (a.u() - b.u()).abs().max((a.v() - b.v()).abs());
        assert_eq!(a.manhattan(b), cheb);
    }

    #[test]
    fn walk_toward_endpoints() {
        let a = Point::new(5, 5);
        let b = Point::new(-2, 8);
        let total = a.manhattan(b);
        assert_eq!(a.walk_toward(b, total), b);
        assert_eq!(a.walk_toward(b, 0), a);
        let mid = a.walk_toward(b, total / 2);
        assert_eq!(a.manhattan(mid) + mid.manhattan(b), total);
    }

    #[test]
    fn display_and_from_tuple() {
        let p: Point = (1, 2).into();
        assert_eq!(p.to_string(), "(1, 2)");
    }
}
