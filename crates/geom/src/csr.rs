//! Flat (CSR) adjacency for rooted trees.
//!
//! Every tree-shaped structure in this workspace — the clock topology, the
//! DME routed tree, the van Ginneken buffering instance — stores nodes with
//! parent pointers and repeatedly needs child lists plus a root-first
//! traversal order. Rebuilding a `Vec<Vec<u32>>` adjacency per call is both
//! an allocation storm (one heap vector per node) and a cache hazard; this
//! module provides the shared flat alternative: child lists packed into a
//! single `child_list` array addressed through `child_index` offsets, plus
//! a precomputed topological (preorder) walk from node 0.

/// Compressed-sparse-row child adjacency of a tree rooted at node 0,
/// with a cached root-first topological order.
///
/// Construction is a counting sort over the parent pointers: children of a
/// node appear in increasing node-index order, matching the push order of
/// the nested `Vec<Vec<u32>>` representation it replaces.
///
/// ```
/// use dscts_geom::TreeCsr;
/// // 0 -> 1 -> {2, 3}
/// let csr = TreeCsr::from_parents([None, Some(0), Some(1), Some(1)]);
/// assert_eq!(csr.children(1), &[2, 3]);
/// assert!(csr.children(2).is_empty());
/// assert_eq!(csr.order()[0], 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeCsr {
    /// Offsets into `child_list`; node `v`'s children occupy
    /// `child_list[child_index[v]..child_index[v + 1]]`.
    child_index: Vec<u32>,
    /// Concatenated child lists, grouped by parent.
    child_list: Vec<u32>,
    /// Root-first topological order (DFS preorder from node 0). Contains
    /// only nodes reachable from the root.
    order: Vec<u32>,
}

impl TreeCsr {
    /// Builds the adjacency from per-node parent pointers (`None` marks a
    /// root). Node indices are implicit in iteration order.
    ///
    /// # Panics
    ///
    /// Panics if a parent index is out of range.
    pub fn from_parents<I>(parents: I) -> Self
    where
        I: IntoIterator<Item = Option<u32>>,
    {
        let parents: Vec<Option<u32>> = parents.into_iter().collect();
        let n = parents.len();
        let mut child_index = vec![0u32; n + 1];
        for p in parents.iter().flatten() {
            assert!((*p as usize) < n, "parent {p} out of range (n = {n})");
            child_index[*p as usize + 1] += 1;
        }
        for i in 0..n {
            child_index[i + 1] += child_index[i];
        }
        let mut cursor: Vec<u32> = child_index[..n].to_vec();
        // invariant: child_index has n + 1 >= 1 entries, so last() exists.
        let total_children = child_index.last().copied().unwrap_or(0);
        let mut child_list = vec![0u32; total_children as usize];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                child_list[cursor[*p as usize] as usize] = i as u32;
                cursor[*p as usize] += 1;
            }
        }
        // DFS preorder from node 0 (parents always precede children).
        let mut order = Vec::with_capacity(n);
        if n > 0 {
            let mut stack = vec![0u32];
            while let Some(v) = stack.pop() {
                order.push(v);
                let lo = child_index[v as usize] as usize;
                let hi = child_index[v as usize + 1] as usize;
                stack.extend_from_slice(&child_list[lo..hi]);
            }
        }
        TreeCsr {
            child_index,
            child_list,
            order,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.child_index.len() - 1
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Children of `v`, in increasing node-index order.
    pub fn children(&self, v: u32) -> &[u32] {
        let lo = self.child_index[v as usize] as usize;
        let hi = self.child_index[v as usize + 1] as usize;
        &self.child_list[lo..hi]
    }

    /// Root-first topological order (every parent precedes its children);
    /// iterate in reverse for bottom-up passes. Shorter than [`len`] when
    /// nodes are unreachable from node 0.
    ///
    /// [`len`]: TreeCsr::len
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The nested `Vec<Vec<u32>>` form, for callers that still need owned
    /// child lists. Prefer [`TreeCsr::children`].
    pub fn to_nested(&self) -> Vec<Vec<u32>> {
        (0..self.len() as u32)
            .map(|v| self.children(v).to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let csr = TreeCsr::from_parents(std::iter::empty());
        assert!(csr.is_empty());
        assert!(csr.order().is_empty());
    }

    #[test]
    fn single_node() {
        let csr = TreeCsr::from_parents([None]);
        assert_eq!(csr.len(), 1);
        assert!(csr.children(0).is_empty());
        assert_eq!(csr.order(), &[0]);
    }

    #[test]
    fn children_preserve_index_order() {
        // 0 -> {2, 1 -> {3}}; children listed by increasing index.
        let csr = TreeCsr::from_parents([None, Some(0), Some(0), Some(1)]);
        assert_eq!(csr.children(0), &[1, 2]);
        assert_eq!(csr.children(1), &[3]);
        assert_eq!(csr.to_nested(), vec![vec![1, 2], vec![3], vec![], vec![]]);
    }

    #[test]
    fn order_is_parent_first() {
        // Parent pointers may refer forward or backward.
        let parents = [Some(3), Some(0), Some(1), None, Some(1)];
        let csr = TreeCsr::from_parents(parents);
        // Node 3 is unreachable from node 0; the order covers 0's subtree.
        let mut rank = [usize::MAX; 5];
        for (k, &v) in csr.order().iter().enumerate() {
            rank[v as usize] = k;
        }
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                if rank[i] != usize::MAX && rank[*p as usize] != usize::MAX {
                    assert!(rank[*p as usize] < rank[i], "child {i} before parent {p}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_parent() {
        let _ = TreeCsr::from_parents([None, Some(9)]);
    }
}
