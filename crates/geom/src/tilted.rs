use crate::Point;
use std::fmt;

/// A *tilted rectangle region* (TRR): a rectangle whose sides have slope ±1
/// in the Manhattan plane.
///
/// TRRs are the fundamental regions of DME clock routing:
///
/// * a sink location is a degenerate TRR (a point);
/// * a *merging segment* is a degenerate TRR (a Manhattan arc — a segment of
///   slope +1 or −1);
/// * the locus of points within L1 distance `r` of a merging segment is the
///   TRR obtained by [`TiltedRect::expanded`] with radius `r`.
///
/// Internally a TRR is stored as an axis-aligned box in the tilted coordinate
/// system `(u, v) = (x + y, x − y)`, where L1 distance becomes L∞ distance,
/// so region intersection and distance reduce to interval arithmetic.
///
/// Note that not every tilted box corresponds to a set of lattice points with
/// consistent parity; conversions back to [`Point`] round to the nearest
/// lattice point (≤ 1 dbu error, negligible at nanometre resolution).
///
/// ```
/// use dscts_geom::{Point, TiltedRect};
/// let s = TiltedRect::from_point(Point::new(0, 0)).expanded(4);
/// // The diamond of radius 4 contains (2, 2) but not (3, 2):
/// assert!(s.contains(Point::new(2, 2)));
/// assert!(!s.contains(Point::new(3, 2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TiltedRect {
    ulo: i64,
    uhi: i64,
    vlo: i64,
    vhi: i64,
}

impl TiltedRect {
    /// Creates a TRR directly from tilted-space bounds.
    ///
    /// # Panics
    ///
    /// Panics if `ulo > uhi` or `vlo > vhi`.
    pub fn from_tilted_bounds(ulo: i64, uhi: i64, vlo: i64, vhi: i64) -> Self {
        assert!(ulo <= uhi && vlo <= vhi, "malformed tilted bounds");
        TiltedRect { ulo, uhi, vlo, vhi }
    }

    /// Degenerate TRR covering a single point.
    pub fn from_point(p: Point) -> Self {
        TiltedRect {
            ulo: p.u(),
            uhi: p.u(),
            vlo: p.v(),
            vhi: p.v(),
        }
    }

    /// TRR covering a Manhattan arc (segment of slope ±1), or a degenerate
    /// point segment.
    ///
    /// # Panics
    ///
    /// Panics if `a -> b` is neither a point nor a ±1-sloped segment.
    pub fn from_arc(a: Point, b: Point) -> Self {
        let du = (a.u() - b.u()).abs();
        let dv = (a.v() - b.v()).abs();
        assert!(
            du == 0 || dv == 0,
            "merging segment must be a Manhattan arc: {a} -> {b}"
        );
        TiltedRect {
            ulo: a.u().min(b.u()),
            uhi: a.u().max(b.u()),
            vlo: a.v().min(b.v()),
            vhi: a.v().max(b.v()),
        }
    }

    /// Tilted-space bounds `(ulo, uhi, vlo, vhi)`.
    pub fn tilted_bounds(&self) -> (i64, i64, i64, i64) {
        (self.ulo, self.uhi, self.vlo, self.vhi)
    }

    /// Whether this region is a single point in tilted space.
    pub fn is_point(&self) -> bool {
        self.ulo == self.uhi && self.vlo == self.vhi
    }

    /// Whether this region is a Manhattan arc (degenerate in one tilted axis).
    pub fn is_arc(&self) -> bool {
        self.ulo == self.uhi || self.vlo == self.vhi
    }

    /// Minkowski expansion by L1 radius `r ≥ 0`: every point within distance
    /// `r` of the region.
    ///
    /// # Panics
    ///
    /// Panics if `r < 0`.
    pub fn expanded(&self, r: i64) -> TiltedRect {
        assert!(r >= 0, "expansion radius must be non-negative");
        TiltedRect {
            ulo: self.ulo - r,
            uhi: self.uhi + r,
            vlo: self.vlo - r,
            vhi: self.vhi + r,
        }
    }

    /// Region intersection, `None` when disjoint.
    pub fn intersect(&self, other: &TiltedRect) -> Option<TiltedRect> {
        let ulo = self.ulo.max(other.ulo);
        let uhi = self.uhi.min(other.uhi);
        let vlo = self.vlo.max(other.vlo);
        let vhi = self.vhi.min(other.vhi);
        if ulo <= uhi && vlo <= vhi {
            Some(TiltedRect { ulo, uhi, vlo, vhi })
        } else {
            None
        }
    }

    /// Minimum L1 distance between the two regions (0 when they intersect).
    ///
    /// In tilted space this is the Chebyshev gap
    /// `max(gap_u, gap_v)`.
    pub fn dist(&self, other: &TiltedRect) -> i64 {
        let gap = |alo: i64, ahi: i64, blo: i64, bhi: i64| (blo - ahi).max(alo - bhi).max(0);
        let gu = gap(self.ulo, self.uhi, other.ulo, other.uhi);
        let gv = gap(self.vlo, self.vhi, other.vlo, other.vhi);
        gu.max(gv)
    }

    /// Whether `p` lies inside the region.
    pub fn contains(&self, p: Point) -> bool {
        let (u, v) = (p.u(), p.v());
        u >= self.ulo && u <= self.uhi && v >= self.vlo && v <= self.vhi
    }

    /// L1 distance from `p` to the region (0 when contained).
    pub fn dist_to_point(&self, p: Point) -> i64 {
        self.dist(&TiltedRect::from_point(p))
    }

    /// A representative point of the region (its tilted-space center,
    /// rounded to a lattice point).
    pub fn center(&self) -> Point {
        Point::from_tilted(
            (self.ulo + self.uhi).div_euclid(2),
            (self.vlo + self.vhi).div_euclid(2),
        )
    }

    /// The point of `self` nearest (in L1) to the point `p`.
    ///
    /// Used by top-down DME embedding: the parent picks its location, then
    /// each child is placed at the point of its merging segment nearest to
    /// the parent.
    ///
    /// The result is snapped to a lattice point with consistent parity,
    /// nudging by 1 dbu inside the region when needed, so the returned point
    /// is contained in the region whenever the region holds any lattice
    /// point.
    pub fn nearest_point(&self, p: Point) -> Point {
        let mut u = p.u().clamp(self.ulo, self.uhi);
        let mut v = p.v().clamp(self.vlo, self.vhi);
        if (u + v).rem_euclid(2) != 0 {
            // (u + v) odd means the pre-image is a half-integer point; nudge
            // one tilted coordinate toward the interior to restore parity.
            if u < self.uhi {
                u += 1;
            } else if u > self.ulo {
                u -= 1;
            } else if v < self.vhi {
                v += 1;
            } else if v > self.vlo {
                v -= 1;
            }
        }
        Point::from_tilted(u, v)
    }

    /// The four corner points (rounded to lattice points). Degenerate
    /// regions repeat corners.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::from_tilted(self.ulo, self.vlo),
            Point::from_tilted(self.ulo, self.vhi),
            Point::from_tilted(self.uhi, self.vlo),
            Point::from_tilted(self.uhi, self.vhi),
        ]
    }
}

impl fmt::Display for TiltedRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TRR(u: [{}, {}], v: [{}, {}])",
            self.ulo, self.uhi, self.vlo, self.vhi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_trr_roundtrip() {
        let p = Point::new(12, 7);
        let t = TiltedRect::from_point(p);
        assert!(t.is_point());
        assert!(t.contains(p));
        assert_eq!(t.dist_to_point(p), 0);
    }

    #[test]
    fn dist_matches_manhattan_for_points() {
        let a = Point::new(-4, 2);
        let b = Point::new(9, -6);
        let ta = TiltedRect::from_point(a);
        let tb = TiltedRect::from_point(b);
        assert_eq!(ta.dist(&tb), a.manhattan(b));
    }

    #[test]
    fn merge_intersection_exists_when_radii_cover_distance() {
        let a = TiltedRect::from_point(Point::new(0, 0));
        let b = TiltedRect::from_point(Point::new(20, 10));
        let d = a.dist(&b);
        for ea in 0..=d {
            let eb = d - ea;
            let ms = a.expanded(ea).intersect(&b.expanded(eb));
            assert!(ms.is_some(), "radii {ea}+{eb} must meet");
            let ms = ms.unwrap();
            // Every merge point is at distance <= ea from a and <= eb from b.
            assert!(ms.dist(&a) <= ea && ms.dist(&b) <= eb);
        }
    }

    #[test]
    fn disjoint_when_radii_fall_short() {
        let a = TiltedRect::from_point(Point::new(0, 0));
        let b = TiltedRect::from_point(Point::new(100, 0));
        assert!(a.expanded(40).intersect(&b.expanded(40)).is_none());
    }

    #[test]
    fn arc_constructor_accepts_slope_one() {
        // (0,0) -> (5,5) has v constant: a Manhattan arc.
        let t = TiltedRect::from_arc(Point::new(0, 0), Point::new(5, 5));
        assert!(t.is_arc());
        assert!(t.contains(Point::new(3, 3)));
    }

    #[test]
    #[should_panic(expected = "Manhattan arc")]
    fn arc_constructor_rejects_axis_segment() {
        // (0,0) -> (4,0) changes both u and v: not an arc.
        let _ = TiltedRect::from_arc(Point::new(0, 0), Point::new(4, 0));
    }

    #[test]
    fn nearest_point_is_contained_and_closest_among_corners() {
        let t = TiltedRect::from_point(Point::new(0, 0)).expanded(10);
        let p = Point::new(30, 2);
        let n = t.nearest_point(p);
        assert!(t.contains(n));
        assert_eq!(n.manhattan(p), t.dist_to_point(p));
    }

    #[test]
    fn expanded_contains_original() {
        let t = TiltedRect::from_arc(Point::new(2, 0), Point::new(6, 4));
        let e = t.expanded(3);
        for c in t.corners() {
            assert!(e.contains(c));
        }
    }
}
