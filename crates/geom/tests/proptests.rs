//! Property-based tests for the geometry substrate.

use dscts_geom::{bounding_box, manhattan, path_length, Point, Rect, TiltedRect};
use proptest::prelude::*;

const C: i64 = 1_000_000; // coordinate magnitude bound (1 mm in nm)

fn pt() -> impl Strategy<Value = Point> {
    (-C..C, -C..C).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn manhattan_symmetric_nonneg(a in pt(), b in pt()) {
        prop_assert_eq!(manhattan(a, b), manhattan(b, a));
        prop_assert!(manhattan(a, b) >= 0);
    }

    #[test]
    fn manhattan_triangle_inequality(a in pt(), b in pt(), c in pt()) {
        prop_assert!(manhattan(a, c) <= manhattan(a, b) + manhattan(b, c));
    }

    #[test]
    fn walk_toward_preserves_total_distance(a in pt(), b in pt(), frac in 0.0f64..=1.0) {
        let total = manhattan(a, b);
        let d = (total as f64 * frac) as i64;
        let m = a.walk_toward(b, d);
        prop_assert_eq!(manhattan(a, m), d);
        prop_assert_eq!(manhattan(a, m) + manhattan(m, b), total);
    }

    #[test]
    fn tilted_point_distance_equals_manhattan(a in pt(), b in pt()) {
        let ta = TiltedRect::from_point(a);
        let tb = TiltedRect::from_point(b);
        prop_assert_eq!(ta.dist(&tb), manhattan(a, b));
    }

    #[test]
    fn trr_merge_invariant(a in pt(), b in pt(), split in 0.0f64..=1.0) {
        // The DME core invariant: if ea + eb = dist(A, B), the expanded
        // regions intersect, and every point in the intersection is within
        // ea of A and eb of B.
        let ta = TiltedRect::from_point(a);
        let tb = TiltedRect::from_point(b);
        let d = ta.dist(&tb);
        let ea = (d as f64 * split) as i64;
        let eb = d - ea;
        let ms = ta.expanded(ea).intersect(&tb.expanded(eb));
        prop_assert!(ms.is_some());
        let ms = ms.unwrap();
        prop_assert!(ms.dist(&ta) <= ea);
        prop_assert!(ms.dist(&tb) <= eb);
        // Center point of merging region respects both radii (rounding slack 1).
        let c = ms.center();
        prop_assert!(manhattan(c, a) <= ea + 1);
        prop_assert!(manhattan(c, b) <= eb + 1);
    }

    #[test]
    fn trr_nearest_point_is_optimal(a in pt(), r in 0i64..100_000, q in pt()) {
        let t = TiltedRect::from_point(a).expanded(r);
        let n = t.nearest_point(q);
        prop_assert!(t.contains(n));
        // Within rounding slack of the true region distance.
        prop_assert!((n.manhattan(q) - t.dist_to_point(q)).abs() <= 1);
    }

    #[test]
    fn trr_expansion_monotone(a in pt(), b in pt(), r1 in 0i64..50_000, r2 in 0i64..50_000) {
        let (rs, rl) = (r1.min(r2), r1.max(r2));
        let t = TiltedRect::from_point(a);
        let small = t.expanded(rs);
        let large = t.expanded(rl);
        if small.contains(b) {
            prop_assert!(large.contains(b));
        }
        prop_assert!(large.dist_to_point(b) <= small.dist_to_point(b));
    }

    #[test]
    fn rect_clamp_is_nearest(xlo in -C..0i64, ylo in -C..0i64, w in 0i64..C, h in 0i64..C, p in pt()) {
        let r = Rect::new(xlo, ylo, xlo + w, ylo + h);
        let c = r.clamp_point(p);
        prop_assert!(r.contains(c));
        // Clamped point achieves the rect distance exactly.
        prop_assert_eq!(c.manhattan(p), r.dist_to_point(p));
    }

    #[test]
    fn bounding_box_is_tight(pts in prop::collection::vec(pt(), 1..50)) {
        let bb = bounding_box(pts.iter().copied()).unwrap();
        for &p in &pts {
            prop_assert!(bb.contains(p));
        }
        let xs: Vec<i64> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<i64> = pts.iter().map(|p| p.y).collect();
        prop_assert_eq!(bb.xlo, *xs.iter().min().unwrap());
        prop_assert_eq!(bb.xhi, *xs.iter().max().unwrap());
        prop_assert_eq!(bb.ylo, *ys.iter().min().unwrap());
        prop_assert_eq!(bb.yhi, *ys.iter().max().unwrap());
    }

    #[test]
    fn path_length_additive(pts in prop::collection::vec(pt(), 2..20)) {
        let total = path_length(&pts);
        let split = pts.len() / 2;
        let first = path_length(&pts[..=split]);
        let second = path_length(&pts[split..]);
        prop_assert_eq!(total, first + second);
    }
}
