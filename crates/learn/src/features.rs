//! The canonical feature vector learned DSE models consume.
//!
//! One function ([`FeatureExtractor::vector`]) maps the engine's cheap
//! pre-DP [`ClassFeatures`] to a fixed-width `[f64; DIM]` row. Both the
//! training path (telemetry sweep records → [`crate::Dataset`]) and the
//! prediction path (`SweepEngine::sweep_fanout_learned`) go through it,
//! so a trained model can never see a differently-shaped row than it was
//! fit on.

use dscts_core::dse::ClassFeatures;

/// Width of the canonical feature vector.
pub const DIM: usize = 18;

/// Stateless featurizer: raw class features → the canonical model row.
///
/// The derived columns (logs, ratios) are redundant encodings of the raw
/// counts that linear models need to capture the strongly sub-linear
/// scaling of latency with design size; the tree model simply ignores
/// whichever columns never win a split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeatureExtractor;

impl FeatureExtractor {
    /// Column names, index-aligned with [`FeatureExtractor::vector`].
    pub const NAMES: [&'static str; DIM] = [
        "sinks",
        "ln1p_sinks",
        "distinct_fanouts",
        "mode_class",
        "mode_class_frac",
        "ln1p_threshold_lo",
        "ln1p_threshold_hi",
        "intra_nodes",
        "ln1p_intra_nodes",
        "intra_frac",
        "stars",
        "sinks_per_star",
        "sink_spread_mm",
        "trunk_wirelength_mm",
        "fanout_hist0",
        "fanout_hist1",
        "fanout_hist2",
        "fanout_hist3",
    ];

    /// The canonical feature row of one mode class.
    pub fn vector(f: &ClassFeatures) -> [f64; DIM] {
        let sinks = f.sinks as f64;
        let intra = f.intra_nodes as f64;
        [
            sinks,
            sinks.ln_1p(),
            f.distinct_fanouts as f64,
            f.mode_class as f64,
            f.mode_class as f64 / f.distinct_fanouts.max(1) as f64,
            f64::from(f.threshold_lo).ln_1p(),
            f64::from(f.threshold_hi).ln_1p(),
            intra,
            intra.ln_1p(),
            intra / (1.0 + sinks),
            f.stars as f64,
            sinks / f.stars.max(1) as f64,
            f.sink_spread_nm as f64 * 1e-6,
            f.trunk_wirelength_nm as f64 * 1e-6,
            f.fanout_hist[0] as f64,
            f.fanout_hist[1] as f64,
            f.fanout_hist[2] as f64,
            f.fanout_hist[3] as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClassFeatures {
        ClassFeatures {
            sinks: 100,
            distinct_fanouts: 5,
            mode_class: 2,
            threshold_lo: 20,
            threshold_hi: 60,
            intra_nodes: 7,
            stars: 12,
            sink_spread_nm: 2_000_000,
            trunk_wirelength_nm: 5_000_000,
            fanout_hist: [3, 1, 1, 0],
        }
    }

    #[test]
    fn vector_is_finite_and_name_aligned() {
        let v = FeatureExtractor::vector(&sample());
        assert_eq!(v.len(), FeatureExtractor::NAMES.len());
        assert!(v.iter().all(|x| x.is_finite()));
        assert_eq!(v[0], 100.0);
        assert_eq!(v[4], 2.0 / 5.0);
        assert_eq!(v[12], 2.0);
        assert_eq!(v[17], 0.0);
    }

    #[test]
    fn degenerate_counts_do_not_divide_by_zero() {
        let mut f = sample();
        f.distinct_fanouts = 0;
        f.stars = 0;
        f.sinks = 0;
        let v = FeatureExtractor::vector(&f);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn extreme_threshold_stays_finite() {
        let mut f = sample();
        f.threshold_hi = u32::MAX;
        let v = FeatureExtractor::vector(&f);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
