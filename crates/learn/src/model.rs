//! Model files: hand-rolled JSON (de)serialization for trained models.
//!
//! One-object-per-file format, dispatched on the `"model"` member
//! (`"ridge"` / `"gbdt"`). Floats are written in Rust's shortest
//! round-trip form (`format!("{v}")`), so `from_json(to_json(m)) == m`
//! bit-for-bit — property-tested in `learn_proptests`. Parsing reuses
//! the telemetry crate's JSON parser; the loader re-validates structural
//! invariants (array widths, tree-node child ordering) so a hand-edited
//! file cannot make prediction loop or index out of bounds.

use crate::dataset::TARGETS;
use crate::features::DIM;
use crate::gbdt::{GbdtConfig, GbdtPredictor, Node, Tree};
use crate::ridge::RidgePredictor;
use dscts_core::dse::{ClassFeatures, MetricPredictor, PredictedMetrics};
use dscts_telemetry::{parse_json, Json};

/// A trained model of either family, as stored in a model file.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnedModel {
    /// Closed-form linear model (boxed: the inline weight/scale arrays
    /// would otherwise dwarf the `Gbdt` variant).
    Ridge(Box<RidgePredictor>),
    /// Gradient-boosted trees.
    Gbdt(GbdtPredictor),
}

impl MetricPredictor for LearnedModel {
    fn predict(&self, features: &ClassFeatures) -> PredictedMetrics {
        match self {
            LearnedModel::Ridge(m) => m.predict(features),
            LearnedModel::Gbdt(m) => m.predict(features),
        }
    }
}

impl LearnedModel {
    /// The model-family tag written to the file (`"ridge"` / `"gbdt"`).
    pub fn kind(&self) -> &'static str {
        match self {
            LearnedModel::Ridge(_) => "ridge",
            LearnedModel::Gbdt(_) => "gbdt",
        }
    }

    /// Serialize to the single-object JSON model format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        match self {
            LearnedModel::Ridge(m) => {
                out.push_str("{\"model\":\"ridge\",\"lambda\":");
                push_f64(&mut out, m.lambda);
                out.push_str(",\"seed\":");
                out.push_str(&m.seed.to_string());
                out.push_str(",\"mean\":");
                push_f64_array(&mut out, &m.mean);
                out.push_str(",\"std\":");
                push_f64_array(&mut out, &m.std);
                out.push_str(",\"bias\":");
                push_f64_array(&mut out, &m.bias);
                out.push_str(",\"weights\":[");
                for (t, w) in m.weights.iter().enumerate() {
                    if t > 0 {
                        out.push(',');
                    }
                    push_f64_array(&mut out, w);
                }
                out.push_str("]}");
            }
            LearnedModel::Gbdt(m) => {
                out.push_str("{\"model\":\"gbdt\",\"trees\":");
                out.push_str(&m.cfg.trees.to_string());
                out.push_str(",\"depth\":");
                out.push_str(&m.cfg.depth.to_string());
                out.push_str(",\"learning_rate\":");
                push_f64(&mut out, m.cfg.learning_rate);
                out.push_str(",\"subsample\":");
                push_f64(&mut out, m.cfg.subsample);
                out.push_str(",\"seed\":");
                out.push_str(&m.cfg.seed.to_string());
                out.push_str(",\"base\":");
                push_f64_array(&mut out, &m.base);
                out.push_str(",\"ensembles\":[");
                for (t, forest) in m.ensembles.iter().enumerate() {
                    if t > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (k, tree) in forest.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        push_tree(&mut out, tree);
                    }
                    out.push(']');
                }
                out.push_str("]}");
            }
        }
        out
    }

    /// Parse a model file produced by [`LearnedModel::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse_json(text)?;
        match v.get("model").and_then(Json::as_str) {
            Some("ridge") => ridge_from_json(&v).map(Box::new).map(LearnedModel::Ridge),
            Some("gbdt") => gbdt_from_json(&v).map(LearnedModel::Gbdt),
            Some(other) => Err(format!("unknown model family `{other}`")),
            None => Err("missing or non-string `model` field".into()),
        }
    }
}

/// Each node serializes as the 5-tuple `[feature, threshold, left,
/// right, value]`; leaves carry `feature = -1` with zeroed links.
fn push_tree(out: &mut String, tree: &Tree) {
    out.push('[');
    for (i, n) in tree.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&n.feature.to_string());
        out.push(',');
        push_f64(out, n.threshold);
        out.push(',');
        out.push_str(&n.left.to_string());
        out.push(',');
        out.push_str(&n.right.to_string());
        out.push(',');
        push_f64(out, n.value);
        out.push(']');
    }
    out.push(']');
}

/// Shortest round-trip float repr; trained models only contain finite
/// values (asserted here rather than silently corrupting the file).
fn push_f64(out: &mut String, v: f64) {
    assert!(
        v.is_finite(),
        "model files only hold finite floats, got {v}"
    );
    let s = format!("{v}");
    out.push_str(&s);
    // `{}` prints integral floats without a decimal point; the JSON
    // number grammar allows that, and the parser reads it back as f64.
}

fn push_f64_array(out: &mut String, vals: &[f64]) {
    out.push('[');
    for (i, &v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, v);
    }
    out.push(']');
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn f64_array<const N: usize>(v: &Json, key: &str) -> Result<[f64; N], String> {
    let arr = v
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing or non-array field `{key}`"))?;
    if arr.len() != N {
        return Err(format!(
            "field `{key}` must have {N} entries, got {}",
            arr.len()
        ));
    }
    let mut out = [0.0f64; N];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = item
            .as_f64()
            .ok_or_else(|| format!("non-numeric entry in `{key}`"))?;
    }
    Ok(out)
}

fn ridge_from_json(v: &Json) -> Result<RidgePredictor, String> {
    let weights_arr = v
        .get("weights")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing or non-array field `weights`".to_string())?;
    if weights_arr.len() != TARGETS {
        return Err(format!(
            "`weights` must have {TARGETS} rows, got {}",
            weights_arr.len()
        ));
    }
    let mut weights = [[0.0f64; DIM]; TARGETS];
    for (row, item) in weights_arr.iter().enumerate() {
        let cols = item
            .as_array()
            .ok_or_else(|| format!("`weights[{row}]` is not an array"))?;
        if cols.len() != DIM {
            return Err(format!(
                "`weights[{row}]` must have {DIM} entries, got {}",
                cols.len()
            ));
        }
        for (slot, col) in weights[row].iter_mut().zip(cols) {
            *slot = col
                .as_f64()
                .ok_or_else(|| format!("non-numeric entry in `weights[{row}]`"))?;
        }
    }
    Ok(RidgePredictor {
        lambda: req_f64(v, "lambda")?,
        seed: req_u64(v, "seed")?,
        mean: f64_array::<DIM>(v, "mean")?,
        std: f64_array::<DIM>(v, "std")?,
        bias: f64_array::<TARGETS>(v, "bias")?,
        weights,
    })
}

fn gbdt_from_json(v: &Json) -> Result<GbdtPredictor, String> {
    let cfg = GbdtConfig {
        trees: req_u64(v, "trees")? as usize,
        depth: req_u64(v, "depth")? as usize,
        learning_rate: req_f64(v, "learning_rate")?,
        subsample: req_f64(v, "subsample")?,
        seed: req_u64(v, "seed")?,
    };
    let ensembles_arr = v
        .get("ensembles")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing or non-array field `ensembles`".to_string())?;
    if ensembles_arr.len() != TARGETS {
        return Err(format!(
            "`ensembles` must have {TARGETS} forests, got {}",
            ensembles_arr.len()
        ));
    }
    let mut ensembles: [Vec<Tree>; TARGETS] = Default::default();
    for (t, forest_json) in ensembles_arr.iter().enumerate() {
        let trees = forest_json
            .as_array()
            .ok_or_else(|| format!("`ensembles[{t}]` is not an array"))?;
        let mut forest = Vec::with_capacity(trees.len());
        for (k, tree_json) in trees.iter().enumerate() {
            forest.push(
                tree_from_json(tree_json).map_err(|e| format!("`ensembles[{t}]` tree {k}: {e}"))?,
            );
        }
        ensembles[t] = forest;
    }
    Ok(GbdtPredictor {
        cfg,
        base: f64_array::<TARGETS>(v, "base")?,
        ensembles,
    })
}

fn tree_from_json(v: &Json) -> Result<Tree, String> {
    let nodes = v
        .as_array()
        .ok_or_else(|| "tree is not an array".to_string())?;
    if nodes.is_empty() {
        return Err("tree has no nodes".into());
    }
    let mut tree = Tree::with_capacity(nodes.len());
    for (i, node_json) in nodes.iter().enumerate() {
        let tup = node_json
            .as_array()
            .ok_or_else(|| format!("node {i} is not an array"))?;
        if tup.len() != 5 {
            return Err(format!("node {i} must be a 5-tuple, got {}", tup.len()));
        }
        let feature = tup[0]
            .as_f64()
            .filter(|f| f.fract() == 0.0 && (-1.0..DIM as f64).contains(f))
            .ok_or_else(|| format!("node {i}: feature index out of range"))?
            as i32;
        let left = tup[2]
            .as_u64()
            .ok_or_else(|| format!("node {i}: non-integer left link"))?;
        let right = tup[3]
            .as_u64()
            .ok_or_else(|| format!("node {i}: non-integer right link"))?;
        if feature >= 0 {
            // Parent-before-children ordering makes evaluation provably
            // terminate; enforce it on load, not just at build time.
            let (lo, hi) = (i as u64 + 1, nodes.len() as u64);
            if !(lo..hi).contains(&left) || !(lo..hi).contains(&right) {
                return Err(format!("node {i}: child links must point past the node"));
            }
        }
        tree.push(Node {
            feature,
            threshold: tup[1]
                .as_f64()
                .ok_or_else(|| format!("node {i}: non-numeric threshold"))?,
            left: left as u32,
            right: right as u32,
            value: tup[4]
                .as_f64()
                .ok_or_else(|| format!("node {i}: non-numeric value"))?,
        });
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::new();
        for c in 0..10u64 {
            let mut f = [0.0f64; DIM];
            f[3] = c as f64;
            f[7] = (10 - c) as f64;
            ds.features.push(f);
            ds.targets.push([
                300.0 - 7.5 * c as f64,
                2.0 + 0.1 * c as f64,
                30.0 + c as f64,
                5.0,
            ]);
            ds.designs.push("toy".to_owned());
        }
        ds
    }

    #[test]
    fn ridge_round_trips_bit_identically() {
        let m = LearnedModel::Ridge(Box::new(
            RidgePredictor::train(&toy_dataset(), 0.1, 42).unwrap(),
        ));
        let parsed = LearnedModel::from_json(&m.to_json()).expect("own output parses");
        assert_eq!(parsed, m);
        assert_eq!(parsed.kind(), "ridge");
    }

    #[test]
    fn gbdt_round_trips_bit_identically() {
        let cfg = GbdtConfig {
            trees: 12,
            depth: 3,
            subsample: 0.8,
            ..GbdtConfig::default()
        };
        let m = LearnedModel::Gbdt(GbdtPredictor::train(&toy_dataset(), &cfg).unwrap());
        let parsed = LearnedModel::from_json(&m.to_json()).expect("own output parses");
        assert_eq!(parsed, m);
        assert_eq!(parsed.kind(), "gbdt");
    }

    #[test]
    fn rejects_corrupt_model_files() {
        assert!(LearnedModel::from_json("{}").is_err());
        assert!(LearnedModel::from_json("{\"model\":\"svm\"}").is_err());
        assert!(LearnedModel::from_json("not json").is_err());
        // A tree whose child link points backwards (would loop) is
        // rejected even though it is syntactically valid.
        let evil = "{\"model\":\"gbdt\",\"trees\":1,\"depth\":1,\
                    \"learning_rate\":0.5,\"subsample\":1,\"seed\":0,\
                    \"base\":[0,0,0,0],\
                    \"ensembles\":[[[[0,1.0,0,0,0.0]]],[],[],[]]}";
        let err = LearnedModel::from_json(evil).unwrap_err();
        assert!(err.contains("child links"), "got: {err}");
    }
}
