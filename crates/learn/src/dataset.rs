//! Training datasets ingested from telemetry sweep records.
//!
//! Two ingestion paths, both landing in the same [`Dataset`]:
//!
//! - **In-process**: hand the sweep records of a live collector snapshot
//!   to [`Dataset::from_records`] (e.g. right after a
//!   `SweepEngine::try_sweep` ran under an installed collector).
//! - **From exported logs**: [`Dataset::from_jsonl`] parses the
//!   JSON-lines a `TelemetrySnapshot::to_jsonl` export produced, keeping
//!   only `"record":"sweep"` lines. Because the exporter writes floats
//!   in shortest round-trip form, a record that goes through JSONL and
//!   back featurizes to the bit-identical row the in-process path
//!   produces — property-tested in `learn_proptests`.
//!
//! Records newer than [`SWEEP_SCHEMA_VERSION`] are skipped (never
//! guessed at); version-1 records (which predate the `schema_version`,
//! `stars`, `sink_spread_nm` and `fanout_hist` fields) load with those
//! features zeroed.

use crate::features::{FeatureExtractor, DIM};
use dscts_core::dse::ClassFeatures;
use dscts_telemetry::{self as telemetry, Json, SweepRecord, SWEEP_SCHEMA_VERSION};

/// Number of regression targets: latency, skew, buffers, nTSVs — the
/// four components of `dscts_core::dse::PredictedMetrics`.
pub const TARGETS: usize = 4;

/// A training set: one canonical feature row and one target tuple per
/// ingested sweep record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Feature rows ([`FeatureExtractor::vector`] of each record).
    pub features: Vec<[f64; DIM]>,
    /// Target tuples: `[latency_ps, skew_ps, buffers, ntsvs]`.
    pub targets: Vec<[f64; TARGETS]>,
    /// Source design name per row (for grouping / leave-one-out splits).
    pub designs: Vec<String>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` iff no rows were ingested.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Ingest one record. Returns `false` (and ingests nothing) when the
    /// record's schema version is newer than this build understands.
    pub fn push_record(&mut self, r: &SweepRecord) -> bool {
        if r.schema_version > SWEEP_SCHEMA_VERSION {
            return false;
        }
        self.features
            .push(FeatureExtractor::vector(&ClassFeatures::from_sweep_record(
                r,
            )));
        self.targets
            .push([r.latency_ps, r.skew_ps, r.buffers as f64, r.ntsvs as f64]);
        self.designs.push(r.design.clone());
        true
    }

    /// Build a dataset from in-process records (a collector snapshot's
    /// `sweeps`), skipping unknown-version records.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a SweepRecord>) -> Self {
        let mut ds = Self::new();
        for r in records {
            ds.push_record(r);
        }
        ds
    }

    /// Parse a telemetry JSONL export, ingesting every `sweep` record.
    ///
    /// Non-sweep lines (meta, counters, gauges, histograms) are ignored;
    /// blank lines are skipped; sweep records from a newer schema are
    /// skipped. A line that fails to parse, or a sweep record missing a
    /// known-required field, is an error (the log is corrupt — training
    /// on a silently truncated set would be worse than failing).
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut ds = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = telemetry::parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if v.get("record").and_then(Json::as_str) != Some("sweep") {
                continue;
            }
            let r = sweep_from_json(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            ds.push_record(&r);
        }
        Ok(ds)
    }
}

/// Decode one parsed `"record":"sweep"` object back into a
/// [`SweepRecord`]. The inverse of the telemetry exporter's sweep
/// serialization; v2 fields are optional with zero defaults so v1 logs
/// stay loadable.
fn sweep_from_json(v: &Json) -> Result<SweepRecord, String> {
    let req_u = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{k}`"))
    };
    let req_f = |k: &str| {
        v.get(k)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field `{k}`"))
    };
    let schema_version = match v.get("schema_version") {
        // v1 records predate the field itself.
        None => 1,
        Some(x) => x
            .as_u64()
            .ok_or_else(|| "non-integer `schema_version`".to_string())? as u32,
    };
    let mut fanout_hist = [0u64; 4];
    if let Some(arr) = v.get("fanout_hist").and_then(Json::as_array) {
        if arr.len() != fanout_hist.len() {
            return Err(format!(
                "`fanout_hist` must have {} buckets, got {}",
                fanout_hist.len(),
                arr.len()
            ));
        }
        for (slot, item) in fanout_hist.iter_mut().zip(arr) {
            *slot = item
                .as_u64()
                .ok_or_else(|| "non-integer `fanout_hist` entry".to_string())?;
        }
    }
    Ok(SweepRecord {
        schema_version,
        design: v
            .get("design")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing or non-string field `design`".to_string())?
            .to_owned(),
        sinks: req_u("sinks")?,
        distinct_fanouts: req_u("distinct_fanouts")?,
        mode_class: req_u("mode_class")?,
        threshold_lo: req_u("threshold_lo")? as u32,
        threshold_hi: req_u("threshold_hi")? as u32,
        intra_nodes: req_u("intra_nodes")?,
        stars: v.get("stars").and_then(Json::as_u64).unwrap_or(0),
        sink_spread_nm: v.get("sink_spread_nm").and_then(Json::as_u64).unwrap_or(0),
        fanout_hist,
        latency_ps: req_f("latency_ps")?,
        skew_ps: req_f("skew_ps")?,
        buffers: req_u("buffers")?,
        ntsvs: req_u("ntsvs")?,
        trunk_wirelength_nm: req_u("trunk_wirelength_nm")?,
        switched_cap_ff: req_f("switched_cap_ff")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn record(design: &str, class: u64, latency: f64) -> SweepRecord {
        SweepRecord {
            schema_version: SWEEP_SCHEMA_VERSION,
            design: design.to_owned(),
            sinks: 200,
            distinct_fanouts: 6,
            mode_class: class,
            threshold_lo: 10 + class as u32,
            threshold_hi: 20 + class as u32,
            intra_nodes: 12 - class,
            stars: 9,
            sink_spread_nm: 1_500_000,
            fanout_hist: [4, 1, 1, 0],
            latency_ps: latency,
            skew_ps: 2.5,
            buffers: 40 + class,
            ntsvs: 3 + class,
            trunk_wirelength_nm: 7_777_777,
            switched_cap_ff: 123.456,
        }
    }

    #[test]
    fn jsonl_round_trip_matches_in_process_ingest() {
        let records = vec![
            record("a", 0, 310.5),
            record("a", 1, 300.25),
            record("b", 0, 99.0),
        ];
        let direct = Dataset::from_records(&records);

        let tel = telemetry::Telemetry::new();
        for r in &records {
            tel.record_sweep(r.clone());
        }
        let jsonl = tel.snapshot().to_jsonl();
        let parsed = Dataset::from_jsonl(&jsonl).expect("export parses");
        assert_eq!(parsed, direct);
    }

    #[test]
    fn newer_schema_records_are_skipped_not_guessed() {
        let mut newer = record("future", 0, 1.0);
        newer.schema_version = SWEEP_SCHEMA_VERSION + 1;
        let ds = Dataset::from_records([&newer, &record("now", 0, 2.0)].map(|r| r.clone()).iter());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.designs, vec!["now".to_owned()]);
    }

    #[test]
    fn v1_lines_load_with_zeroed_new_features() {
        // A pre-PR10 export line: no schema_version/stars/spread/hist.
        let line = "{\"record\":\"sweep\",\"design\":\"old\",\"sinks\":50,\
                    \"distinct_fanouts\":3,\"mode_class\":1,\"threshold_lo\":5,\
                    \"threshold_hi\":9,\"intra_nodes\":4,\"latency_ps\":120.5,\
                    \"skew_ps\":1.25,\"buffers\":11,\"ntsvs\":2,\
                    \"trunk_wirelength_nm\":500,\"switched_cap_ff\":7.5}";
        let ds = Dataset::from_jsonl(line).expect("v1 line loads");
        assert_eq!(ds.len(), 1);
        // stars / spread / hist columns featurize as zeros.
        assert_eq!(ds.features[0][10], 0.0);
        assert_eq!(ds.features[0][12], 0.0);
        assert_eq!(ds.targets[0], [120.5, 1.25, 11.0, 2.0]);
    }

    #[test]
    fn corrupt_sweep_line_is_an_error() {
        assert!(Dataset::from_jsonl("{\"record\":\"sweep\",\"design\":\"x\"}").is_err());
        assert!(Dataset::from_jsonl("not json at all").is_err());
        // Non-sweep garbage-free lines are ignored.
        let ds = Dataset::from_jsonl("{\"record\":\"counter\",\"name\":\"n\",\"value\":1}\n\n")
            .expect("non-sweep lines ignored");
        assert!(ds.is_empty());
    }
}
