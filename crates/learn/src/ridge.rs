//! Closed-form ridge regression, one linear model per metric target.
//!
//! Features are z-score normalized, targets centered; the regularized
//! normal equations `(ZᵀZ + λI) w = Zᵀ(y − ȳ)` are solved exactly by
//! Gaussian elimination with partial pivoting. Everything is sequential
//! floating-point arithmetic in a fixed order, so training is
//! bit-identical run-to-run and thread-count invariant by construction.

use crate::dataset::{Dataset, TARGETS};
use crate::features::{FeatureExtractor, DIM};
use dscts_core::dse::{ClassFeatures, MetricPredictor, PredictedMetrics};

/// A trained ridge regressor.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgePredictor {
    /// L2 regularization strength used at fit time.
    pub(crate) lambda: f64,
    /// Provenance only: ridge training is deterministic with no random
    /// choices, but the seed rides along in the model file so a training
    /// pipeline can be replayed exactly as configured.
    pub(crate) seed: u64,
    pub(crate) mean: [f64; DIM],
    pub(crate) std: [f64; DIM],
    pub(crate) bias: [f64; TARGETS],
    pub(crate) weights: [[f64; DIM]; TARGETS],
}

impl RidgePredictor {
    /// Fit on `data` with regularization `lambda` (> 0).
    pub fn train(data: &Dataset, lambda: f64, seed: u64) -> Result<Self, String> {
        let n = data.len();
        if n == 0 {
            return Err("cannot train a ridge model on an empty dataset".into());
        }
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(format!(
                "ridge lambda must be positive and finite, got {lambda}"
            ));
        }

        let mut mean = [0.0f64; DIM];
        for x in &data.features {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut std = [0.0f64; DIM];
        for x in &data.features {
            for d in 0..DIM {
                let c = x[d] - mean[d];
                std[d] += c * c;
            }
        }
        for s in &mut std {
            *s = (*s / n as f64).sqrt();
            // Constant columns carry no signal; a unit scale keeps their
            // z-scores at exactly 0 instead of dividing by ~0.
            if *s < 1e-12 {
                *s = 1.0;
            }
        }

        let z: Vec<[f64; DIM]> = data
            .features
            .iter()
            .map(|x| {
                let mut zx = [0.0f64; DIM];
                for d in 0..DIM {
                    zx[d] = (x[d] - mean[d]) / std[d];
                }
                zx
            })
            .collect();
        let mut gram = [[0.0f64; DIM]; DIM];
        for zx in &z {
            for a in 0..DIM {
                for b in 0..DIM {
                    gram[a][b] += zx[a] * zx[b];
                }
            }
        }
        for (d, row) in gram.iter_mut().enumerate() {
            row[d] += lambda;
        }

        let mut bias = [0.0f64; TARGETS];
        let mut weights = [[0.0f64; DIM]; TARGETS];
        for t in 0..TARGETS {
            let ymean = data.targets.iter().map(|y| y[t]).sum::<f64>() / n as f64;
            bias[t] = ymean;
            let mut rhs = [0.0f64; DIM];
            for (zx, y) in z.iter().zip(&data.targets) {
                let yc = y[t] - ymean;
                for d in 0..DIM {
                    rhs[d] += zx[d] * yc;
                }
            }
            weights[t] = solve(gram, rhs)?;
        }
        Ok(RidgePredictor {
            lambda,
            seed,
            mean,
            std,
            bias,
            weights,
        })
    }

    /// The regularization strength this model was fit with.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The provenance seed recorded at fit time.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub(crate) fn predict_row(&self, x: &[f64; DIM]) -> [f64; TARGETS] {
        let mut out = self.bias;
        for (o, w) in out.iter_mut().zip(&self.weights) {
            for (((wv, xv), m), s) in w.iter().zip(x).zip(&self.mean).zip(&self.std) {
                *o += wv * (xv - m) / s;
            }
        }
        out
    }
}

/// Solve `a · x = b` by Gaussian elimination with partial pivoting. The
/// ridge term makes the system symmetric positive definite, so a
/// vanishing pivot can only mean non-finite inputs.
fn solve(mut a: [[f64; DIM]; DIM], mut b: [f64; DIM]) -> Result<[f64; DIM], String> {
    for col in 0..DIM {
        let piv = (col..DIM)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty pivot range");
        let pivot = a[piv][col].abs();
        if !pivot.is_finite() || pivot <= 1e-12 {
            return Err("singular ridge system: non-finite feature or target values".into());
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for row in col + 1..DIM {
            let (upper, lower) = a.split_at_mut(row);
            let (prow, crow) = (&upper[col], &mut lower[0]);
            let f = crow[col] / prow[col];
            if f == 0.0 {
                continue;
            }
            for (cv, pv) in crow[col..].iter_mut().zip(&prow[col..]) {
                *cv -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; DIM];
    for col in (0..DIM).rev() {
        let mut acc = b[col];
        for k in col + 1..DIM {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Ok(x)
}

impl MetricPredictor for RidgePredictor {
    fn predict(&self, features: &ClassFeatures) -> PredictedMetrics {
        let y = self.predict_row(&FeatureExtractor::vector(features));
        PredictedMetrics {
            latency_ps: y[0],
            skew_ps: y[1],
            buffers: y[2].max(0.0),
            ntsvs: y[3].max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dataset whose latency is an exact linear function of the
    /// `mode_class` column — ridge with tiny lambda must recover it.
    fn linear_dataset() -> Dataset {
        let mut ds = Dataset::new();
        for c in 0..12u64 {
            let mut f = [0.0f64; DIM];
            f[3] = c as f64; // mode_class column
            f[0] = 100.0; // constant sinks column
            ds.features.push(f);
            ds.targets
                .push([500.0 - 10.0 * c as f64, 3.0, 20.0 + c as f64, 4.0]);
            ds.designs.push("lin".to_owned());
        }
        ds
    }

    #[test]
    fn recovers_exact_linear_relation() {
        let model = RidgePredictor::train(&linear_dataset(), 1e-6, 1).expect("trainable");
        for c in [0u64, 5, 11] {
            let mut x = [0.0f64; DIM];
            x[3] = c as f64;
            x[0] = 100.0;
            let y = model.predict_row(&x);
            // Tolerance budgets the lambda-induced shrinkage, not FP noise.
            assert!(
                (y[0] - (500.0 - 10.0 * c as f64)).abs() < 1e-3,
                "latency at {c}: {}",
                y[0]
            );
            assert!((y[2] - (20.0 + c as f64)).abs() < 1e-3);
        }
    }

    #[test]
    fn training_is_bit_identical() {
        let a = RidgePredictor::train(&linear_dataset(), 0.5, 7).unwrap();
        let b = RidgePredictor::train(&linear_dataset(), 0.5, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_bad_lambda_are_errors() {
        assert!(RidgePredictor::train(&Dataset::new(), 1.0, 0).is_err());
        assert!(RidgePredictor::train(&linear_dataset(), 0.0, 0).is_err());
        assert!(RidgePredictor::train(&linear_dataset(), f64::NAN, 0).is_err());
    }
}
