//! Hand-rolled gradient-boosted decision trees (squared loss).
//!
//! One ensemble per metric target. Each boosting round fits a small
//! regression tree to the current residuals with **exact greedy**
//! variance-reduction splits (no histogram binning): candidates are every
//! midpoint between adjacent distinct feature values, scanned in
//! ascending `(feature, threshold)` order with a strict-improvement
//! tie-break, so the chosen split — and therefore the whole model — is a
//! pure function of the dataset and [`GbdtConfig`]. Training is fully
//! sequential; nothing reads thread state, so models are bit-identical
//! across `RAYON_NUM_THREADS` settings (property-tested in
//! `learn_proptests`). Optional row subsampling draws from a hand-rolled
//! splitmix64 stream seeded by [`GbdtConfig::seed`].

use crate::dataset::{Dataset, TARGETS};
use crate::features::{FeatureExtractor, DIM};
use dscts_core::dse::{ClassFeatures, MetricPredictor, PredictedMetrics};

/// GBDT hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Boosting rounds per target ensemble.
    pub trees: usize,
    /// Maximum tree depth (1 = stumps).
    pub depth: usize,
    /// Shrinkage applied to every leaf contribution.
    pub learning_rate: f64,
    /// Row subsampling fraction per round, in `(0, 1]`; `1.0` uses every
    /// row (and never touches the RNG stream).
    pub subsample: f64,
    /// Seed of the subsampling RNG stream.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            trees: 150,
            depth: 4,
            learning_rate: 0.3,
            subsample: 1.0,
            seed: 7,
        }
    }
}

/// Fewest rows either side of a split may hold.
const MIN_LEAF: usize = 2;

/// One flat-array tree node. `feature < 0` marks a leaf; internal nodes
/// route `x[feature] <= threshold` left. Children always have larger
/// indices than their parent (the builder emits parents first), which
/// the model loader re-checks so evaluation provably terminates.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub(crate) feature: i32,
    pub(crate) threshold: f64,
    pub(crate) left: u32,
    pub(crate) right: u32,
    pub(crate) value: f64,
}

pub(crate) type Tree = Vec<Node>;

/// Evaluate one tree on one feature row.
pub(crate) fn eval_tree(tree: &Tree, x: &[f64; DIM]) -> f64 {
    let mut i = 0usize;
    loop {
        let node = &tree[i];
        if node.feature < 0 {
            return node.value;
        }
        i = if x[node.feature as usize] <= node.threshold {
            node.left as usize
        } else {
            node.right as usize
        };
    }
}

/// A trained GBDT model.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtPredictor {
    pub(crate) cfg: GbdtConfig,
    /// Per-target prior: the training-set target mean.
    pub(crate) base: [f64; TARGETS],
    pub(crate) ensembles: [Vec<Tree>; TARGETS],
}

impl GbdtPredictor {
    /// Fit on `data` with hyperparameters `cfg`.
    pub fn train(data: &Dataset, cfg: &GbdtConfig) -> Result<Self, String> {
        let n = data.len();
        if n == 0 {
            return Err("cannot train a GBDT model on an empty dataset".into());
        }
        if cfg.trees == 0 || cfg.depth == 0 {
            return Err("GBDT needs at least one tree of depth >= 1".into());
        }
        if !(cfg.learning_rate > 0.0 && cfg.learning_rate <= 1.0) {
            return Err(format!(
                "GBDT learning rate must be in (0, 1], got {}",
                cfg.learning_rate
            ));
        }
        if !(cfg.subsample > 0.0 && cfg.subsample <= 1.0) {
            return Err(format!(
                "GBDT subsample must be in (0, 1], got {}",
                cfg.subsample
            ));
        }

        let mut base = [0.0f64; TARGETS];
        for (t, b) in base.iter_mut().enumerate() {
            *b = data.targets.iter().map(|y| y[t]).sum::<f64>() / n as f64;
        }

        let mut ensembles: [Vec<Tree>; TARGETS] = Default::default();
        for t in 0..TARGETS {
            // Independent deterministic stream per target, so adding a
            // target never perturbs another target's subsampling.
            let mut rng = cfg.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut pred = vec![base[t]; n];
            let mut forest: Vec<Tree> = Vec::with_capacity(cfg.trees);
            for _ in 0..cfg.trees {
                let rows: Vec<usize> = if cfg.subsample >= 1.0 {
                    (0..n).collect()
                } else {
                    let sampled: Vec<usize> = (0..n)
                        .filter(|_| next_f64(&mut rng) < cfg.subsample)
                        .collect();
                    if sampled.is_empty() {
                        (0..n).collect()
                    } else {
                        sampled
                    }
                };
                let residual: Vec<f64> = (0..n).map(|i| data.targets[i][t] - pred[i]).collect();
                let mut tree = Tree::new();
                build(&data.features, &residual, &rows, cfg.depth, &mut tree);
                for (i, p) in pred.iter_mut().enumerate() {
                    *p += cfg.learning_rate * eval_tree(&tree, &data.features[i]);
                }
                forest.push(tree);
            }
            ensembles[t] = forest;
        }
        Ok(GbdtPredictor {
            cfg: *cfg,
            base,
            ensembles,
        })
    }

    /// The hyperparameters this model was fit with.
    pub fn config(&self) -> &GbdtConfig {
        &self.cfg
    }

    pub(crate) fn predict_row(&self, x: &[f64; DIM]) -> [f64; TARGETS] {
        let mut out = self.base;
        for (o, trees) in out.iter_mut().zip(&self.ensembles) {
            for tree in trees {
                *o += self.cfg.learning_rate * eval_tree(tree, x);
            }
        }
        out
    }
}

/// Recursively build one regression tree over `rows`, appending nodes to
/// `tree` (parent before children) and returning the new node's index.
fn build(xs: &[[f64; DIM]], y: &[f64], rows: &[usize], depth: usize, tree: &mut Tree) -> u32 {
    let idx = tree.len() as u32;
    let mean = rows.iter().map(|&i| y[i]).sum::<f64>() / rows.len() as f64;
    tree.push(Node {
        feature: -1,
        threshold: 0.0,
        left: 0,
        right: 0,
        value: mean,
    });
    if depth == 0 || rows.len() < 2 * MIN_LEAF {
        return idx;
    }
    let Some((feat, thr)) = best_split(xs, y, rows) else {
        return idx;
    };
    let (lrows, rrows): (Vec<usize>, Vec<usize>) = rows.iter().partition(|&&i| xs[i][feat] <= thr);
    let left = build(xs, y, &lrows, depth - 1, tree);
    let right = build(xs, y, &rrows, depth - 1, tree);
    tree[idx as usize] = Node {
        feature: feat as i32,
        threshold: thr,
        left,
        right,
        value: mean,
    };
    idx
}

/// Exact greedy split search: maximize the variance-reduction surrogate
/// `Σ_left²/n_left + Σ_right²/n_right` over every (feature, midpoint)
/// candidate. Strict improvement (beyond 1e-12) is required to replace
/// the incumbent, so the lowest feature index and lowest threshold win
/// ties deterministically. Returns `None` when no split beats keeping
/// the node whole.
fn best_split(xs: &[[f64; DIM]], y: &[f64], rows: &[usize]) -> Option<(usize, f64)> {
    let total: f64 = rows.iter().map(|&i| y[i]).sum();
    let no_split = total * total / rows.len() as f64;
    let mut best: Option<(f64, usize, f64)> = None;
    let mut sorted = rows.to_vec();
    // `d` walks the feature axis of the row-major `xs` matrix, so there is
    // no slice to iterate directly.
    #[allow(clippy::needless_range_loop)]
    for d in 0..DIM {
        sorted.sort_by(|&a, &b| xs[a][d].total_cmp(&xs[b][d]).then(a.cmp(&b)));
        let mut lsum = 0.0f64;
        for (k, &i) in sorted[..sorted.len() - 1].iter().enumerate() {
            lsum += y[i];
            let lcnt = k + 1;
            let rcnt = sorted.len() - lcnt;
            let lo = xs[i][d];
            let hi = xs[sorted[k + 1]][d];
            if lo == hi || lcnt < MIN_LEAF || rcnt < MIN_LEAF {
                continue;
            }
            let rsum = total - lsum;
            let score = lsum * lsum / lcnt as f64 + rsum * rsum / rcnt as f64;
            let incumbent = best.map_or(no_split, |(s, _, _)| s);
            if score > incumbent + 1e-12 {
                // The midpoint can round up to `hi` when the two values
                // are adjacent floats; snap to `lo` so `x <= thr` always
                // leaves both sides non-empty.
                let mut thr = 0.5 * (lo + hi);
                if thr >= hi {
                    thr = lo;
                }
                best = Some((score, d, thr));
            }
        }
    }
    best.map(|(_, d, thr)| (d, thr))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn next_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl MetricPredictor for GbdtPredictor {
    fn predict(&self, features: &ClassFeatures) -> PredictedMetrics {
        let y = self.predict_row(&FeatureExtractor::vector(features));
        PredictedMetrics {
            latency_ps: y[0],
            skew_ps: y[1],
            buffers: y[2].max(0.0),
            ntsvs: y[3].max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Step-function dataset: latency depends only on whether the
    /// mode_class column crosses 6 — a single stump must capture it.
    fn step_dataset() -> Dataset {
        let mut ds = Dataset::new();
        for c in 0..16u64 {
            let mut f = [0.0f64; DIM];
            f[3] = c as f64;
            ds.features.push(f);
            let lat = if c < 6 { 400.0 } else { 250.0 };
            ds.targets.push([lat, 1.0, 10.0, 2.0]);
            ds.designs.push("step".to_owned());
        }
        ds
    }

    #[test]
    fn learns_a_step_function() {
        let cfg = GbdtConfig {
            trees: 20,
            depth: 2,
            learning_rate: 0.5,
            ..GbdtConfig::default()
        };
        let model = GbdtPredictor::train(&step_dataset(), &cfg).expect("trainable");
        let mut low = [0.0f64; DIM];
        low[3] = 2.0;
        let mut high = [0.0f64; DIM];
        high[3] = 10.0;
        let yl = model.predict_row(&low)[0];
        let yh = model.predict_row(&high)[0];
        assert!((yl - 400.0).abs() < 1.0, "low side: {yl}");
        assert!((yh - 250.0).abs() < 1.0, "high side: {yh}");
    }

    #[test]
    fn training_is_bit_identical_per_seed() {
        let cfg = GbdtConfig {
            trees: 10,
            subsample: 0.7,
            ..GbdtConfig::default()
        };
        let a = GbdtPredictor::train(&step_dataset(), &cfg).unwrap();
        let b = GbdtPredictor::train(&step_dataset(), &cfg).unwrap();
        assert_eq!(a, b);
        let other = GbdtPredictor::train(&step_dataset(), &GbdtConfig { seed: 99, ..cfg }).unwrap();
        // Different subsampling stream → (almost surely) different trees.
        assert_ne!(a, other);
    }

    #[test]
    fn rejects_degenerate_configs() {
        let ds = step_dataset();
        assert!(GbdtPredictor::train(&Dataset::new(), &GbdtConfig::default()).is_err());
        assert!(GbdtPredictor::train(
            &ds,
            &GbdtConfig {
                trees: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(GbdtPredictor::train(
            &ds,
            &GbdtConfig {
                learning_rate: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(GbdtPredictor::train(
            &ds,
            &GbdtConfig {
                subsample: 1.5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn children_always_follow_parents() {
        let model = GbdtPredictor::train(&step_dataset(), &GbdtConfig::default()).unwrap();
        for forest in &model.ensembles {
            for tree in forest {
                for (i, node) in tree.iter().enumerate() {
                    if node.feature >= 0 {
                        assert!(node.left as usize > i && node.right as usize > i);
                        assert!((node.left as usize) < tree.len());
                        assert!((node.right as usize) < tree.len());
                    }
                }
            }
        }
    }
}
