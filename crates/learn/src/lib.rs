//! Learned design-space exploration for dscts (SwiftCTS-style).
//!
//! A fanout-threshold sweep evaluates one route + DP + refinement run
//! per mode-equivalence class; on large grids most classes turn out
//! Pareto-dominated and their exact evaluation is wasted work. This
//! crate supplies the *learning* half of the pruned sweep the core
//! engine exposes as `SweepEngine::sweep_fanout_learned`:
//!
//! - [`Dataset`] — training rows ingested from telemetry sweep records,
//!   either in-process (a live collector's snapshot) or from exported
//!   JSONL logs ([`Dataset::from_jsonl`]). Both paths featurize through
//!   the one canonical [`FeatureExtractor`], which itself wraps the core
//!   engine's pre-DP `ClassFeatures`, so training rows and
//!   prediction-time inputs cannot drift.
//! - Two pure-Rust regressors implementing the core
//!   `dse::MetricPredictor` trait: [`RidgePredictor`] (closed-form
//!   normal equations) and [`GbdtPredictor`] (hand-rolled
//!   gradient-boosted trees with exact greedy splits). Both train
//!   bit-identically per seed at any thread count — training is
//!   sequential fixed-order float arithmetic by design.
//! - [`LearnedModel`] — the on-disk model format: hand-rolled JSON with
//!   shortest-round-trip floats, so `from_json(to_json(m)) == m`
//!   bit-for-bit and model files survive CLI → CI → CLI trips exactly.
//!
//! # Learned DSE
//!
//! The intended loop (`dscts --train` / `--predict` drive it from the
//! CLI, the `learned-dse-smoke` CI job gates it):
//!
//! 1. Run exact sweeps under an installed telemetry collector; export
//!    the snapshot as JSONL (each sweep record carries the features
//!    *and* the exact metrics of one mode class).
//! 2. Train: `Dataset::from_jsonl` → [`GbdtPredictor::train`] (or
//!    [`RidgePredictor::train`]) → [`LearnedModel::to_json`].
//! 3. Predict: hand the model to `SweepEngine::sweep_fanout_learned`,
//!    which evaluates only the predicted Pareto band exactly and reports
//!    how many classes it skipped plus the `guaranteed_vs_predicted`
//!    frontier distance (the model's own claimed risk of having pruned a
//!    true frontier point).
//!
//! Predictions only ever *rank* classes — every reported sweep point is
//! still computed exactly, so a bad model costs coverage (or speed),
//! never correctness of reported numbers.
//!
//! ```
//! use dscts_learn::{Dataset, GbdtConfig, GbdtPredictor, LearnedModel};
//!
//! # fn main() -> Result<(), String> {
//! // One exported telemetry line per evaluated mode class.
//! let log = "{\"record\":\"sweep\",\"schema_version\":2,\"design\":\"c1\",\
//!            \"sinks\":64,\"distinct_fanouts\":3,\"mode_class\":0,\
//!            \"threshold_lo\":20,\"threshold_hi\":40,\"intra_nodes\":5,\
//!            \"stars\":8,\"sink_spread_nm\":90000,\"fanout_hist\":[2,1,0,0],\
//!            \"latency_ps\":310.5,\"skew_ps\":2.25,\"buffers\":17,\
//!            \"ntsvs\":4,\"trunk_wirelength_nm\":123456,\
//!            \"switched_cap_ff\":88.5}";
//! let data = Dataset::from_jsonl(log)?;
//! let model = GbdtPredictor::train(&data, &GbdtConfig { trees: 4, ..Default::default() })?;
//! let file = LearnedModel::Gbdt(model).to_json();
//! assert_eq!(LearnedModel::from_json(&file)?.kind(), "gbdt");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod features;
mod gbdt;
mod model;
mod ridge;

pub use dataset::{Dataset, TARGETS};
pub use features::{FeatureExtractor, DIM};
pub use gbdt::{GbdtConfig, GbdtPredictor};
pub use model::LearnedModel;
pub use ridge::RidgePredictor;
