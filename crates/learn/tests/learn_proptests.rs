//! Property tests for the learned-DSE data path and trainers.
//!
//! Three claims, each over random records with arbitrary (not just
//! round) floating-point values:
//!
//! 1. **JSONL losslessness** — sweep records exported through
//!    `TelemetrySnapshot::to_jsonl` and re-ingested by
//!    [`Dataset::from_jsonl`] featurize to the bit-identical dataset the
//!    in-process path builds (the exporter writes shortest round-trip
//!    float reprs, so nothing is lost in text).
//! 2. **Deterministic training** — ridge and GBDT training are
//!    bit-identical per seed at any `RAYON_NUM_THREADS` (training is
//!    sequential by design; this guards against parallelism sneaking in
//!    later and breaking reproducible model files).
//! 3. **Model-file round trip** — `from_json(to_json(m)) == m` exactly,
//!    for both families, including every tree node and weight.

use dscts_learn::{Dataset, GbdtConfig, GbdtPredictor, LearnedModel, RidgePredictor};
use dscts_telemetry::{SweepRecord, Telemetry, SWEEP_SCHEMA_VERSION};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = SweepRecord> {
    (
        (
            0u64..100_000,       // sinks
            0u64..64,            // distinct_fanouts
            0u64..64,            // mode_class
            0u32..10_000,        // threshold_lo
            0u32..10_000,        // threshold_hi
            0u64..10_000,        // intra_nodes
            0u64..10_000,        // stars
            0u64..1_000_000_000, // sink_spread_nm
        ),
        (
            prop::collection::vec(0u64..100, 4..5), // fanout_hist
            0.0f64..5_000.0,                        // latency_ps
            0.0f64..500.0,                          // skew_ps
            0u64..10_000,                           // buffers
            0u64..1_000,                            // ntsvs
            0u64..1_000_000_000,                    // trunk_wirelength_nm
            0.0f64..10_000.0,                       // switched_cap_ff
            0usize..4,                              // design name pick
        ),
    )
        .prop_map(
            |(
                (sinks, distinct, class, tlo, thi, intra, stars, spread),
                (hist, lat, skew, bufs, ntsvs, trunk, cap, name),
            )| SweepRecord {
                schema_version: SWEEP_SCHEMA_VERSION,
                design: ["c1", "c2", "c3", "c4"][name].to_owned(),
                sinks,
                distinct_fanouts: distinct,
                mode_class: class,
                threshold_lo: tlo,
                threshold_hi: thi,
                intra_nodes: intra,
                stars,
                sink_spread_nm: spread,
                fanout_hist: [hist[0], hist[1], hist[2], hist[3]],
                latency_ps: lat,
                skew_ps: skew,
                buffers: bufs,
                ntsvs,
                trunk_wirelength_nm: trunk,
                switched_cap_ff: cap,
            },
        )
}

/// Serializes `RAYON_NUM_THREADS` manipulation across the test binary.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn jsonl_round_trip_is_lossless(
        records in prop::collection::vec(arb_record(), 1..24),
    ) {
        let direct = Dataset::from_records(&records);
        let tel = Telemetry::new();
        for r in &records {
            tel.record_sweep(r.clone());
        }
        let jsonl = tel.snapshot().to_jsonl();
        let parsed = Dataset::from_jsonl(&jsonl).expect("own export parses");
        prop_assert_eq!(parsed, direct);
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts(
        records in prop::collection::vec(arb_record(), 8..32),
        seed in 0u64..1_000,
    ) {
        let data = Dataset::from_records(&records);
        let gbdt_cfg = GbdtConfig {
            trees: 8,
            depth: 3,
            subsample: 0.8,
            seed,
            ..GbdtConfig::default()
        };
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ridge_ref = RidgePredictor::train(&data, 0.5, seed).expect("trainable");
        let gbdt_ref = GbdtPredictor::train(&data, &gbdt_cfg).expect("trainable");
        for threads in ["1", "2", "4"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let ridge = RidgePredictor::train(&data, 0.5, seed).expect("trainable");
            let gbdt = GbdtPredictor::train(&data, &gbdt_cfg).expect("trainable");
            std::env::remove_var("RAYON_NUM_THREADS");
            prop_assert_eq!(&ridge, &ridge_ref, "ridge diverged at {} threads", threads);
            prop_assert_eq!(&gbdt, &gbdt_ref, "gbdt diverged at {} threads", threads);
        }
    }

    #[test]
    fn model_files_round_trip_bit_identically(
        records in prop::collection::vec(arb_record(), 4..24),
        seed in 0u64..1_000,
        lambda in 0.001f64..10.0,
    ) {
        let data = Dataset::from_records(&records);
        let ridge = LearnedModel::Ridge(Box::new(
            RidgePredictor::train(&data, lambda, seed).expect("trainable"),
        ));
        prop_assert_eq!(
            LearnedModel::from_json(&ridge.to_json()).expect("parses"),
            ridge
        );
        let gbdt = LearnedModel::Gbdt(
            GbdtPredictor::train(
                &data,
                &GbdtConfig { trees: 6, depth: 3, seed, ..GbdtConfig::default() },
            )
            .expect("trainable"),
        );
        prop_assert_eq!(
            LearnedModel::from_json(&gbdt.to_json()).expect("parses"),
            gbdt
        );
    }
}
