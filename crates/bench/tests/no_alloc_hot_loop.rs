//! The sizing micro-bench hot loop must not touch the heap per move.
//!
//! The incremental evaluators own grow-only scratch (journal vectors, the
//! arrival DFS stack, per-corner repair buffers), so after a short
//! warm-up a steady-state mutate → commit cycle should run entirely out
//! of retained capacity. A counting global allocator makes that a hard
//! assertion instead of a profiler anecdote.
//!
//! This file holds exactly one `#[test]`: the counter is process-global,
//! and a concurrently running sibling test would charge its allocations
//! to the measured window.
//!
//! The test also pins the telemetry layer's no-collector contract: a
//! collector is installed and uninstalled *before* the evaluators are
//! built, so every pre-resolved metric handle lands on its `None`
//! branch and the measured windows prove the disabled instrumentation
//! costs zero allocations per move.

use dscts_bench::sizing_workload;
use dscts_core::mcmm::MultiCornerEval;
use dscts_core::{EvalModel, IncrementalEval};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::CornerSet;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// Passes everything through to the system allocator, counting calls
/// that hand out fresh memory (alloc and growing reallocs).
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WARMUP_MOVES: usize = 16;
const MEASURED_MOVES: usize = 256;

#[test]
fn steady_state_sizing_moves_do_not_allocate() {
    // Install-then-uninstall a telemetry collector up front: the hot
    // loops below must behave exactly as if it never existed (handles
    // resolved after the drop are `None`, entry points are one relaxed
    // atomic load), which this test's zero-allocation windows enforce.
    {
        let collector = std::sync::Arc::new(dscts_core::telemetry::Telemetry::new());
        let guard = dscts_core::telemetry::install(std::sync::Arc::clone(&collector));
        drop(guard);
        assert!(!dscts_core::telemetry::enabled());
        std::hint::black_box(collector);
    }

    let (tree, tech) = sizing_workload(&BenchmarkSpec::c4_riscv32i());
    let edge = (1..tree.topo.nodes.len())
        .find(|&i| tree.patterns[i].is_some_and(|p| p.buffers() > 0))
        .expect("latency-greedy workload has buffered edges");

    // Single-evaluator loop: the `opt_passes` / sizing micro-bench path.
    let mut t = tree.clone();
    let mut inc = IncrementalEval::new(&mut t, &tech, EvalModel::Elmore);
    let mut flip = false;
    let toggle = |inc: &mut IncrementalEval, flip: &mut bool| {
        *flip = !*flip;
        assert!(inc.set_buffer_scale(edge, if *flip { 2.0 } else { 1.0 }));
        inc.commit();
        std::hint::black_box(inc.latency_skew_ps());
    };
    for _ in 0..WARMUP_MOVES {
        toggle(&mut inc, &mut flip);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED_MOVES {
        toggle(&mut inc, &mut flip);
    }
    let grew = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        grew, 0,
        "IncrementalEval hot loop allocated {grew} times over {MEASURED_MOVES} moves"
    );
    drop(inc);

    // Multi-corner fan-out on the serial path: the `mcmm_eval`
    // criterion loop. (The parallel path spawns scoped threads, which
    // allocate by design; it is gated to huge trees.)
    let corners = CornerSet::nominal_only(&tech);
    let mut t = tree.clone();
    let mut mc =
        MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore).with_parallel(Some(false));
    let mut flip = false;
    let toggle = |mc: &mut MultiCornerEval, flip: &mut bool| {
        *flip = !*flip;
        assert!(mc.set_buffer_scale(edge, if *flip { 2.0 } else { 1.0 }));
        mc.commit();
        std::hint::black_box(mc.worst_latency_skew_ps());
    };
    for _ in 0..WARMUP_MOVES {
        toggle(&mut mc, &mut flip);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED_MOVES {
        toggle(&mut mc, &mut flip);
    }
    let grew = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        grew, 0,
        "MultiCornerEval hot loop allocated {grew} times over {MEASURED_MOVES} moves"
    );
}
