//! Criterion benchmarks for the runtime (RT) columns of Table III:
//! our full flow versus the conventional OpenROAD-like + [2] flow, per
//! design. The paper reports a 6.9x geometric-mean speed-up of `Ours` over
//! `OpenROAD + [2]`; here both substrates are ours, so the comparison
//! isolates the algorithmic cost of concurrent insertion versus
//! synthesize-then-flip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dscts_core::baseline::{flip_backside, FlipMethod, HTreeCts};
use dscts_core::DsCts;
use dscts_netlist::BenchmarkSpec;
use dscts_tech::Technology;
use std::hint::black_box;

fn bench_flows(c: &mut Criterion) {
    let tech = Technology::asap7();
    // C4 and C5 keep bench wall-time reasonable; table3 reports wall-clock
    // for all five designs.
    let designs = [
        ("C4_riscv32i", BenchmarkSpec::c4_riscv32i().generate()),
        ("C5_aes", BenchmarkSpec::c5_aes().generate()),
    ];

    let mut group = c.benchmark_group("cts_runtime");
    group.sample_size(10);
    for (id, design) in &designs {
        group.bench_with_input(BenchmarkId::new("ours_full_flow", id), design, |b, d| {
            let pipe = DsCts::new(tech.clone());
            b.iter(|| black_box(pipe.run(d).metrics.latency_ps));
        });
        group.bench_with_input(
            BenchmarkId::new("openroad_like_plus_flip2", id),
            design,
            |b, d| {
                b.iter(|| {
                    let tree = HTreeCts::default().synthesize(d, &tech);
                    let flipped = flip_backside(&tree, &tech, FlipMethod::Latency);
                    black_box(
                        flipped
                            .tree
                            .evaluate(&tech, dscts_core::EvalModel::Elmore)
                            .latency_ps,
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("our_bct_front_only", id),
            design,
            |b, d| {
                let pipe = DsCts::new(tech.clone()).single_side(true);
                b.iter(|| black_box(pipe.run(d).metrics.latency_ps));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
