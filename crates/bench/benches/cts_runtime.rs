//! Criterion benchmarks for the runtime (RT) columns of Table III:
//! our full flow versus the conventional OpenROAD-like + \[2\] flow, per
//! design. The paper reports a 6.9x geometric-mean speed-up of `Ours` over
//! `OpenROAD + [2]`; here both substrates are ours, so the comparison
//! isolates the algorithmic cost of concurrent insertion versus
//! synthesize-then-flip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dscts_bench::{c2_sizing_workload, fig12_thresholds, forced_refine_config, sizing_workload};
use dscts_core::baseline::{flip_backside, FlipMethod, HTreeCts};
use dscts_core::dse;
use dscts_core::mcmm::MultiCornerEval;
use dscts_core::opt::{AnnealConfig, AnnealedSizingPass, OptSchedule, PassManager};
use dscts_core::sizing::{resize_for_skew, SizingConfig, SizingPass};
use dscts_core::skew::{refine, EndpointRefinePass};
use dscts_core::{DsCts, EvalModel};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::{CornerSet, Technology};
use std::hint::black_box;

fn bench_flows(c: &mut Criterion) {
    let tech = Technology::asap7();
    // C4 and C5 keep bench wall-time reasonable; table3 reports wall-clock
    // for all five designs.
    let designs = [
        ("C4_riscv32i", BenchmarkSpec::c4_riscv32i().generate()),
        ("C5_aes", BenchmarkSpec::c5_aes().generate()),
    ];

    let mut group = c.benchmark_group("cts_runtime");
    group.sample_size(10);
    for (id, design) in &designs {
        group.bench_with_input(BenchmarkId::new("ours_full_flow", id), design, |b, d| {
            let pipe = DsCts::new(tech.clone());
            b.iter(|| black_box(pipe.run(d).metrics.latency_ps));
        });
        group.bench_with_input(
            BenchmarkId::new("openroad_like_plus_flip2", id),
            design,
            |b, d| {
                b.iter(|| {
                    let tree = HTreeCts::default().synthesize(d, &tech);
                    let flipped = flip_backside(&tree, &tech, FlipMethod::Latency);
                    black_box(
                        flipped
                            .tree
                            .evaluate(&tech, dscts_core::EvalModel::Elmore)
                            .latency_ps,
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("our_bct_front_only", id),
            design,
            |b, d| {
                let pipe = DsCts::new(tech.clone()).single_side(true);
                b.iter(|| black_box(pipe.run(d).metrics.latency_ps));
            },
        );
    }
    group.finish();
}

/// Post-CTS optimization micro-benches on the shared C2-sized workload
/// (14 338 sinks): the loops rewired onto the incremental evaluator. Each
/// iteration starts from a fresh clone of the routed + DP-assigned tree,
/// so the numbers isolate the optimization passes themselves.
fn bench_opt_passes(c: &mut Criterion) {
    let (tree, tech) = c2_sizing_workload();

    let mut group = c.benchmark_group("opt_passes");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("resize_for_skew", "C2"), &tree, |b, t| {
        b.iter(|| {
            let mut t = t.clone();
            let rep = resize_for_skew(&mut t, &tech, EvalModel::Elmore, &SizingConfig::default());
            black_box(rep.after.skew_ps)
        });
    });
    group.bench_with_input(BenchmarkId::new("refine", "C2"), &tree, |b, t| {
        b.iter(|| {
            let mut t = t.clone();
            let rep = refine(&mut t, &tech, EvalModel::Elmore, &forced_refine_config());
            black_box(rep.after.skew_ps)
        });
    });
    group.finish();
}

/// The pass-manager layer itself on the same C2-sized workload: the
/// legacy free-function chain versus the identical schedule through the
/// `PassManager` (same arithmetic, one shared evaluator instead of two —
/// the manager should be at least as fast), plus the annealed sizing
/// pass at a bench-sized move budget.
fn bench_opt_schedule(c: &mut Criterion) {
    let (tree, tech) = c2_sizing_workload();

    let mut group = c.benchmark_group("opt_schedule");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("legacy_sizing_then_refine", "C2"),
        &tree,
        |b, t| {
            b.iter(|| {
                let mut t = t.clone();
                let _ = resize_for_skew(&mut t, &tech, EvalModel::Elmore, &SizingConfig::default());
                let rep = refine(&mut t, &tech, EvalModel::Elmore, &forced_refine_config());
                black_box(rep.after.skew_ps)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("pass_manager_sizing_then_refine", "C2"),
        &tree,
        |b, t| {
            let schedule = OptSchedule::new()
                .with(SizingPass::new(SizingConfig::default()))
                .with(EndpointRefinePass::new(forced_refine_config()));
            b.iter(|| {
                let mut t = t.clone();
                let rep = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
                black_box(rep.after.skew_ps)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("annealed_sizing_1k_moves", "C2"),
        &tree,
        |b, t| {
            let schedule = OptSchedule::new()
                .seed(7)
                .with(AnnealedSizingPass::new(AnnealConfig {
                    moves: 1_000,
                    ..AnnealConfig::default()
                }));
            b.iter(|| {
                let mut t = t.clone();
                let rep = PassManager::new(&schedule).run(&mut t, &tech, EvalModel::Elmore);
                black_box(rep.after.skew_ps)
            });
        },
    );
    group.finish();
}

/// DSE threshold sweeps, naive (one full pipeline per threshold) versus
/// the batched [`dse::SweepEngine`] (route once, one DP per
/// mode-equivalence class). C4 over a coarsened Fig. 12 grid keeps the
/// naive arm affordable; the `baseline --pr3` snapshot records the full
/// 99-threshold C3 sweep.
fn bench_dse_sweep(c: &mut Criterion) {
    let tech = Technology::asap7();
    let design = BenchmarkSpec::c4_riscv32i().generate();
    let base = DsCts::new(tech);
    let thresholds = fig12_thresholds(50);
    let id = format!("C4x{}", thresholds.len());

    let mut group = c.benchmark_group("dse_sweep");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("naive", &id), &design, |b, d| {
        b.iter(|| black_box(dse::sweep_fanout_naive(&base, d, thresholds.iter().copied()).len()));
    });
    group.bench_with_input(BenchmarkId::new("batched", &id), &design, |b, d| {
        b.iter(|| black_box(dse::sweep_fanout(&base, d, thresholds.iter().copied()).len()));
    });
    group.finish();
}

/// MCMM fan-out evaluation on the C4 workload with the three-corner
/// ASAP7 SS/TT/FF set: the marginal cost of keeping K corners signed
/// off per trial move. `fanout_mutation` pays K dirty ancestor paths +
/// subtrees through the resident `MultiCornerEval`; `k_full_evaluates`
/// is what a non-incremental MCMM loop would pay — K from-scratch
/// `evaluate()` calls after the same knob write.
fn bench_mcmm_eval(c: &mut Criterion) {
    let (tree, tech) = sizing_workload(&BenchmarkSpec::c4_riscv32i());
    let corners = CornerSet::asap7_pvt(&tech);
    // The edge a sizing move would touch: the last buffer above a leaf
    // star, whose dirty region is a path + small subtree (a root-side
    // buffer would re-time the whole tree and measure construction, not
    // the dirty-path win).
    let edge = {
        let mut v = tree.topo.stars[0].node;
        loop {
            if tree.patterns[v as usize].is_some_and(|p| p.buffers() > 0) {
                break v as usize;
            }
            v = tree.topo.nodes[v as usize]
                .parent
                .expect("buffered ancestor");
        }
    };

    let mut group = c.benchmark_group("mcmm_eval");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("fanout_mutation", "C4x3"),
        &tree,
        |b, t| {
            let mut t = t.clone();
            let mut mc = MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore);
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let ok = mc.set_buffer_scale(edge, if flip { 2.0 } else { 1.0 });
                assert!(ok, "scale toggle stays feasible");
                mc.commit();
                black_box(mc.worst_latency_skew_ps())
            });
        },
    );
    // Same toggle with the corner fan-out forced onto the rayon path:
    // each of the K=3 per-corner repairs runs on its own thread, journals
    // into per-corner scratch, and merges in corner order (bit-identical
    // to the serial arm). On a single-core container the shim degrades to
    // the serial loop, so expect parity there and a speed-up at ≥2 cores.
    group.bench_with_input(
        BenchmarkId::new("fanout_mutation_parallel", "C4x3"),
        &tree,
        |b, t| {
            let mut t = t.clone();
            let mut mc =
                MultiCornerEval::new(&mut t, &corners, EvalModel::Elmore).with_parallel(Some(true));
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let ok = mc.set_buffer_scale(edge, if flip { 2.0 } else { 1.0 });
                assert!(ok, "scale toggle stays feasible");
                mc.commit();
                black_box(mc.worst_latency_skew_ps())
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("k_full_evaluates", "C4x3"),
        &tree,
        |b, t| {
            let mut t = t.clone();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                t.buffer_scales[edge] = if flip { 2.0 } else { 1.0 };
                let mut worst = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for corner_tech in corners.techs() {
                    let m = t.evaluate(corner_tech, EvalModel::Elmore);
                    worst.0 = worst.0.max(m.latency_ps);
                    worst.1 = worst.1.max(m.skew_ps);
                }
                black_box(worst)
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_flows,
    bench_opt_passes,
    bench_opt_schedule,
    bench_dse_sweep,
    bench_mcmm_eval
);
criterion_main!(benches);
