//! Microbenchmarks of the substrate algorithms: dual-level clustering,
//! zero-skew DME, the concurrent DP, and the post-CTS flipper. These track
//! where the pipeline's runtime goes and guard against regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dscts_cluster::DualHierarchy;
use dscts_core::baseline::{flip_backside, FlipMethod};
use dscts_core::{run_dp, DpConfig, DsCts, HierarchicalRouter};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::Technology;
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let tech = Technology::asap7();
    let design = BenchmarkSpec::c4_riscv32i().generate();
    let sinks = design.sink_positions();

    c.bench_function("cluster/dual_level_1056_sinks", |b| {
        b.iter(|| black_box(DualHierarchy::build(&sinks, 3000, 30, 7).sink_count()))
    });

    c.bench_function("dme/hierarchical_route_1056_sinks", |b| {
        let router = HierarchicalRouter::new();
        b.iter(|| black_box(router.route(&design, &tech).total_wirelength()))
    });

    let mut topo = HierarchicalRouter::new().route(&design, &tech);
    topo.subdivide(40_000);
    let mut group = c.benchmark_group("dp");
    group.sample_size(20);
    for (name, cfg) in [
        ("latency_only", DpConfig::default()),
        (
            "multi_objective",
            DpConfig {
                prune: dscts_core::PruneMode::MultiObjective,
                ..DpConfig::default()
            },
        ),
        (
            "single_side",
            DpConfig {
                single_side: true,
                ..DpConfig::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("run", name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_dp(&topo, &tech, cfg).root_candidates.len()))
        });
    }
    group.finish();

    let bct = DsCts::new(tech.clone()).single_side(true).run(&design);
    c.bench_function("flip/latency_driven", |b| {
        b.iter(|| {
            black_box(
                flip_backside(&bct.tree, &tech, FlipMethod::Latency)
                    .tree
                    .inserted_ntsvs(),
            )
        })
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
