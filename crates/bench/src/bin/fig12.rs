//! Regenerates **Fig. 12**: DSE comparison of latency/skew versus
//! insertion resources (#buffers + #nTSVs) on C3 (ethmac).
//!
//! Series:
//! * **Our DSE flow** — fanout threshold swept 20..=1000 step 10 (§III-E);
//! * **Our BCT + \[7\]** — the fanout-driven flipper swept over the same
//!   thresholds on our front-side buffered tree;
//! * **Our BCT + \[6\]** — the criticality-driven flipper swept q = 0.2..=0.9
//!   step 0.05;
//! * **Our BCT + \[2\]** and **Ours (Table III)** — single points.
//!
//! The DSE series runs on the batched [`dse::SweepEngine`]: the design is
//! routed once and the DP runs once per mode-equivalence class of the
//! threshold grid; the dedup ratio is reported alongside the frontier
//! summary.
//!
//! Pass `--quick` to coarsen **both** sweep axes by the same 4× factor
//! (fanout step 10 → 40, criticality step 0.05 → 0.2) for a fast look.
//!
//! Run with `cargo run --release -p dscts-bench --bin fig12`.

use dscts_bench::{fig12_thresholds, write_csv, TextTable};
use dscts_core::baseline::{flip_backside, FlipMethod};
use dscts_core::{dse, DsCts, EvalModel};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::Technology;

/// How much `--quick` coarsens each sweep axis (applied to both, so a
/// quick run is a uniformly subsampled view of the full figure).
const QUICK_FACTOR: usize = 4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tech = Technology::asap7();
    let design = BenchmarkSpec::c3_ethmac().generate();
    let model = EvalModel::Elmore;
    let coarsen = if quick { QUICK_FACTOR } else { 1 };
    let fan_step = 10 * coarsen;
    let q_step = 0.05 * coarsen as f64;

    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut push = |series: &str, x: u32, lat: f64, skew: f64| {
        csv.push(vec![
            series.to_owned(),
            x.to_string(),
            format!("{lat:.3}"),
            format!("{skew:.3}"),
        ]);
    };

    // --- Our DSE flow (batched engine: route once, DP per class). ---
    let base = DsCts::new(tech.clone());
    let thresholds = fig12_thresholds(fan_step);
    eprintln!("sweeping {} DSE configurations...", thresholds.len());
    let sweep = dse::SweepEngine::new(&base)
        .try_sweep(&design, thresholds.iter().copied())
        .expect("C3 is sweepable");
    for p in &sweep.points {
        push("our_dse", p.resources(), p.latency_ps, p.skew_ps);
    }

    // --- Reference flows on our buffered clock tree. ---
    let bct = DsCts::new(tech.clone()).single_side(true).run(&design);
    let bm = &bct.metrics;
    push("our_bct", bm.buffers + bm.ntsvs, bm.latency_ps, bm.skew_ps);

    for t in fig12_thresholds(fan_step) {
        let f = flip_backside(&bct.tree, &tech, FlipMethod::Fanout { threshold: t });
        let m = f.tree.evaluate(&tech, model);
        push("bct_fanout7", m.buffers + m.ntsvs, m.latency_ps, m.skew_ps);
    }
    let mut q = 0.2;
    while q <= 0.9 + 1e-9 {
        let f = flip_backside(&bct.tree, &tech, FlipMethod::Criticality { fraction: q });
        let m = f.tree.evaluate(&tech, model);
        push("bct_crit6", m.buffers + m.ntsvs, m.latency_ps, m.skew_ps);
        q += q_step;
    }
    let f2 = flip_backside(&bct.tree, &tech, FlipMethod::Latency);
    let m2 = f2.tree.evaluate(&tech, model);
    push(
        "bct_latency2",
        m2.buffers + m2.ntsvs,
        m2.latency_ps,
        m2.skew_ps,
    );

    let table3 = DsCts::new(tech.clone()).run(&design);
    let tm = &table3.metrics;
    push(
        "ours_table3",
        tm.buffers + tm.ntsvs,
        tm.latency_ps,
        tm.skew_ps,
    );

    // --- Frontier summary. ---
    let mut t = TextTable::new([
        "Series",
        "Points",
        "Res range",
        "Lat range (ps)",
        "Skew range (ps)",
        "Frontier pts (lat)",
    ]);
    for series in [
        "our_dse",
        "bct_fanout7",
        "bct_crit6",
        "bct_latency2",
        "our_bct",
        "ours_table3",
    ] {
        let pts: Vec<(f64, f64, f64)> = csv
            .iter()
            .filter(|r| r[0] == series)
            .map(|r| {
                (
                    r[1].parse::<f64>().unwrap(),
                    r[2].parse::<f64>().unwrap(),
                    r[3].parse::<f64>().unwrap(),
                )
            })
            .collect();
        if pts.is_empty() {
            continue;
        }
        let range = |f: &dyn Fn(&(f64, f64, f64)) -> f64| {
            let lo = pts.iter().map(f).fold(f64::INFINITY, f64::min);
            let hi = pts.iter().map(f).fold(f64::NEG_INFINITY, f64::max);
            format!("{lo:.1}..{hi:.1}")
        };
        let frontier = dse::pareto_frontier(&pts, |p| (p.0, p.1));
        t.row([
            series.to_owned(),
            pts.len().to_string(),
            range(&|p: &(f64, f64, f64)| p.0),
            range(&|p: &(f64, f64, f64)| p.1),
            range(&|p: &(f64, f64, f64)| p.2),
            frontier.len().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "DSE dedup: {} requested thresholds collapsed into {} mode-equivalence \
         classes ({:.0} % of the naive DP work; routing ran once).",
        sweep.points.len(),
        sweep.classes.len(),
        100.0 * sweep.classes.len() as f64 / sweep.points.len() as f64,
    );
    println!(
        "Fig. 12 shape: the flipper sweeps stay pinned near the buffered tree's\n\
         latency/skew, while the DSE sweep reaches far lower latency by trading\n\
         resources — only concurrent insertion opens that region.\n"
    );
    let path = write_csv(
        "fig12.csv",
        &["series", "resources", "latency_ps", "skew_ps"],
        &csv,
    );
    println!("Series written to {}", path.display());
}
