//! Regenerates **Fig. 10**: effectiveness of the MOES on C3 (ethmac).
//!
//! For both `Ours` (double side) and `Our Buffered Clock Tree` (front side)
//! the DP is run with the diversity-preserving multi-objective pruning so
//! the root candidate cloud is visible, then two points are highlighted per
//! flow: the MOES pick (α, β, γ = 1, 10, 1) and the minimum-latency pick
//! ("w/o MOES"). The paper's observation — the two coincide in the
//! single-side space but deviate in the double-side space — is printed as
//! the gap between the two picks.
//!
//! Run with `cargo run --release -p dscts-bench --bin fig10`.

use dscts_bench::{write_csv, TextTable};
use dscts_core::{DsCts, MoesWeights, PruneMode, RootCand};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::Technology;

fn main() {
    let tech = Technology::asap7();
    let design = BenchmarkSpec::c3_ethmac().generate();
    let weights = MoesWeights::default();

    let mut csv = Vec::new();
    let mut summary = TextTable::new([
        "Flow",
        "Cloud",
        "MOES pick (lat/buf/ntsv)",
        "Min-latency pick (lat/buf/ntsv)",
        "Resource gap",
    ]);

    for (flow, single) in [("Ours", false), ("Our Buffered Clock Tree", true)] {
        let outcome = DsCts::new(tech.clone())
            .single_side(single)
            .prune(PruneMode::MultiObjective)
            .max_candidates(128)
            .skew_refinement(None)
            .run(&design);
        let cloud = &outcome.root_candidates;
        for c in cloud {
            csv.push(vec![
                flow.to_owned(),
                format!("{:.3}", c.latency_ps),
                c.buffers.to_string(),
                c.ntsvs.to_string(),
            ]);
        }
        let moes_pick = cloud
            .iter()
            .min_by(|a, b| weights.score(a).total_cmp(&weights.score(b)))
            .expect("non-empty cloud");
        let lat_pick = cloud
            .iter()
            .min_by(|a, b| a.latency_ps.total_cmp(&b.latency_ps))
            .expect("non-empty cloud");
        let gap = (moes_pick.buffers + moes_pick.ntsvs) as i64
            - (lat_pick.buffers + lat_pick.ntsvs) as i64;
        let fmt = |c: &RootCand| format!("{:.1}/{}/{}", c.latency_ps, c.buffers, c.ntsvs);
        summary.row([
            flow.to_owned(),
            format!("{} candidates", cloud.len()),
            fmt(moes_pick),
            fmt(lat_pick),
            format!("{gap:+}"),
        ]);
    }
    println!("{}", summary.render());
    println!(
        "Paper's Fig. 10 shape: the two picks nearly coincide in the single-side\n\
         cloud but deviate in the double-side cloud, because concurrent nTSV\n\
         insertion preserves many more buffer/nTSV combinations at the root.\n"
    );
    let path = write_csv(
        "fig10.csv",
        &["flow", "latency_ps", "buffers", "ntsvs"],
        &csv,
    );
    println!("Candidate clouds written to {}", path.display());
}
