//! Design-choice ablations beyond the paper's figures (DESIGN.md E-A1):
//!
//! 1. **Pruning discipline** — the paper's latency-optimal rule versus the
//!    4-D multi-objective rule, at several candidate caps;
//! 2. **Pattern alphabet** — base P1–P6 versus the extended buffered-nTSV
//!    patterns P7/P8 (a future-work direction of §V);
//! 3. **MOES skew term** — adding δ·skew to Eq. (3);
//! 4. **DP granularity** — the trunk segmentation length;
//! 5. **Routing style** — hierarchical DME versus flat matching DME
//!    (the Fig. 5 wirelength argument).
//!
//! Run with `cargo run --release -p dscts-bench --bin ablations`.

use dscts_bench::{fmt_ps, fmt_wl, write_csv, TextTable};
use dscts_core::{DsCts, MoesWeights, PatternSet, PruneMode, RoutingStyle};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::Technology;

fn main() {
    let tech = Technology::asap7();
    let design = BenchmarkSpec::c3_ethmac().generate();
    let mut csv = Vec::new();

    let mut table = TextTable::new([
        "Ablation",
        "Config",
        "Latency(ps)",
        "Skew(ps)",
        "Buffers",
        "nTSVs",
        "WL(e6)",
        "RT(s)",
    ]);
    let mut run = |ablation: &str, config: &str, pipe: DsCts| {
        let o = pipe.run(&design);
        let m = &o.metrics;
        let row = vec![
            ablation.to_owned(),
            config.to_owned(),
            fmt_ps(m.latency_ps),
            fmt_ps(m.skew_ps),
            m.buffers.to_string(),
            m.ntsvs.to_string(),
            fmt_wl(m.wirelength_nm),
            format!("{:.3}", o.runtime_s),
        ];
        table.row(row.clone());
        csv.push(row);
    };

    // 1. Pruning discipline.
    for (name, prune, k) in [
        ("latency-only k=64", PruneMode::LatencyOnly, 64),
        ("multi-objective k=64", PruneMode::MultiObjective, 64),
        ("multi-objective k=16", PruneMode::MultiObjective, 16),
        ("multi-objective k=128", PruneMode::MultiObjective, 128),
    ] {
        run(
            "pruning",
            name,
            DsCts::new(tech.clone()).prune(prune).max_candidates(k),
        );
    }

    // 2. Pattern alphabet.
    run("patterns", "base P1-P6", DsCts::new(tech.clone()));
    run(
        "patterns",
        "extended +P7/P8",
        DsCts::new(tech.clone()).patterns(PatternSet::Extended),
    );

    // 3. MOES skew term.
    for delta in [0.0, 1.0, 5.0] {
        run(
            "moes-skew",
            &format!("delta={delta}"),
            DsCts::new(tech.clone()).moes(MoesWeights {
                delta,
                ..MoesWeights::default()
            }),
        );
    }

    // 4. DP granularity.
    for seg in [20_000i64, 40_000, 80_000] {
        run(
            "segmentation",
            &format!("{} um", seg / 1000),
            DsCts::new(tech.clone()).max_segment(seg),
        );
    }

    // 5. Routing style.
    run(
        "routing",
        "hierarchical",
        DsCts::new(tech.clone()).routing_style(RoutingStyle::Hierarchical),
    );
    run(
        "routing",
        "flat matching",
        DsCts::new(tech.clone()).routing_style(RoutingStyle::FlatMatching),
    );

    println!("{}", table.render());
    let path = write_csv(
        "ablations.csv",
        &[
            "ablation",
            "config",
            "latency_ps",
            "skew_ps",
            "buffers",
            "ntsvs",
            "wl_e6nm",
            "rt_s",
        ],
        &csv,
    );
    println!("CSV written to {}", path.display());
}
