//! Micro-benchmark of the post-CTS optimization passes.
//!
//! Times `sizing::resize_for_skew`, `skew::refine` and the annealed
//! sizing pass in isolation on the shared C2-sized workload (14 338
//! sinks, see [`dscts_bench::c2_sizing_workload`]), printing wall-clock
//! per pass. The routed + DP-assigned tree is built once; each timed pass
//! starts from a fresh clone, so the numbers isolate the optimization
//! loops themselves — the workloads the incremental evaluator
//! accelerates.
//!
//! Run with `cargo run --release -p dscts-bench --bin opt_micro`.

use dscts_bench::{c2_sizing_workload, forced_refine_config};
use dscts_core::opt::{AnnealedSizingPass, OptSchedule, PassManager};
use dscts_core::sizing::{resize_for_skew, SizingConfig};
use dscts_core::skew::refine;
use dscts_core::EvalModel;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let (tree, tech) = c2_sizing_workload();
    println!(
        "setup (route + DP, {} sinks, {} trunk nodes): {:.1} ms",
        tree.topo.sink_pos.len(),
        tree.topo.nodes.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    for model in [EvalModel::Elmore, EvalModel::Nldm] {
        let mut t = tree.clone();
        let t0 = Instant::now();
        let rep = resize_for_skew(&mut t, &tech, model, &SizingConfig::default());
        println!(
            "resize_for_skew [{model:?}]: {:.1} ms ({} resized, skew {:.3} -> {:.3} ps)",
            t0.elapsed().as_secs_f64() * 1e3,
            rep.resized,
            rep.before.skew_ps,
            rep.after.skew_ps
        );

        let mut t = tree.clone();
        let t0 = Instant::now();
        let rep = refine(&mut t, &tech, model, &forced_refine_config());
        println!(
            "refine [{model:?}]: {:.1} ms ({} buffers added, skew {:.3} -> {:.3} ps)",
            t0.elapsed().as_secs_f64() * 1e3,
            rep.buffers_added,
            rep.before.skew_ps,
            rep.after.skew_ps
        );

        let mut t = tree.clone();
        let schedule = OptSchedule::new()
            .seed(7)
            .with(AnnealedSizingPass::default());
        let t0 = Instant::now();
        let rep = PassManager::new(&schedule).run(&mut t, &tech, model);
        println!(
            "annealed-sizing [{model:?}]: {:.1} ms ({}/{} moves accepted, skew {:.3} -> {:.3} ps, latency {:.3} -> {:.3} ps)",
            t0.elapsed().as_secs_f64() * 1e3,
            rep.passes[0].accepted,
            rep.passes[0].attempted,
            rep.before.skew_ps,
            rep.after.skew_ps,
            rep.before.latency_ps,
            rep.after.latency_ps
        );
    }
}
