//! Regenerates **Table III**: the main comparison against recent studies.
//!
//! Upper block: the OpenROAD-like buffered clock tree, that tree with the
//! latency-driven back-side flip of \[2\], and our full flow. Lower block:
//! our front-side buffered tree and the three post-CTS flipping methods
//! (\[2\], \[7\] fanout = 100, \[6\] q = 0.5) applied to it. The final row of
//! each block is the geometric-mean ratio versus `Ours`, matching the
//! paper's "Ratio" row.
//!
//! `Ours` and `Our BCT` differ only in the DP (the routing stage ignores
//! `single_side`), so the regenerator drives the pipeline through its
//! staged API: each design is routed **once** and the shared topology
//! feeds both insertion flows. Reported runtimes charge the shared
//! routing time to every flow, keeping them comparable to end-to-end
//! runs.
//!
//! Run with `cargo run --release -p dscts-bench --bin table3`.

use dscts_bench::{all_designs, fmt_ps, fmt_wl, geomean, write_csv, TextTable, DESIGN_IDS};
use dscts_core::baseline::{flip_backside, FlipMethod, HTreeCts};
use dscts_core::{DsCts, EvalModel, TreeMetrics};
use dscts_tech::Technology;
use std::time::Instant;

struct FlowRow {
    metrics: TreeMetrics,
    runtime_s: f64,
}

fn main() {
    let tech = Technology::asap7();
    let designs = all_designs();
    let model = EvalModel::Elmore;

    println!("Reproducing Table III (5 designs x 7 flows); this takes a minute in --release...\n");

    let mut openroad = Vec::new();
    let mut openroad2 = Vec::new();
    let mut ours = Vec::new();
    let mut our_bct = Vec::new();
    let mut bct2 = Vec::new();
    let mut bct7 = Vec::new();
    let mut bct6 = Vec::new();

    for d in &designs {
        // OpenROAD-like buffered clock tree (front side).
        let t0 = Instant::now();
        let htree = HTreeCts::default().synthesize(d, &tech);
        let htree_rt = t0.elapsed().as_secs_f64();
        openroad.push(FlowRow {
            metrics: htree.evaluate(&tech, model),
            runtime_s: htree_rt,
        });
        // + [2] latency-driven flip.
        let t0 = Instant::now();
        let flip = flip_backside(&htree, &tech, FlipMethod::Latency);
        openroad2.push(FlowRow {
            metrics: flip.tree.evaluate(&tech, model),
            runtime_s: htree_rt + t0.elapsed().as_secs_f64(),
        });
        // Shared routing for both of our flows: `single_side` only enters
        // at the DP, so one routed topology serves `Ours` and `Our BCT`.
        let ours_pipe = DsCts::new(tech.clone());
        let bct_pipe = DsCts::new(tech.clone()).single_side(true);
        let t0 = Instant::now();
        let topo = ours_pipe.route(d).expect("Table II designs route");
        let route_s = t0.elapsed().as_secs_f64();
        // Ours (all edges full mode, Table III configuration). The topo
        // clone is bench bookkeeping, not pipeline work: keep it outside
        // the timed window so both flows charge the same stages
        // (insert + optimize + evaluate) on top of the shared routing.
        let ours_topo = topo.clone();
        let t0 = Instant::now();
        let (mut tree, _) = ours_pipe.insert(ours_topo).expect("feasible DP");
        ours_pipe.optimize_tree(&mut tree);
        let ours_metrics = ours_pipe.evaluate_tree(&tree);
        ours.push(FlowRow {
            metrics: ours_metrics,
            runtime_s: route_s + t0.elapsed().as_secs_f64(),
        });
        // Our buffered clock tree (front side only).
        let t0 = Instant::now();
        let (mut bct_tree, _) = bct_pipe.insert(topo).expect("feasible DP");
        bct_pipe.optimize_tree(&mut bct_tree);
        let bct_metrics = bct_pipe.evaluate_tree(&bct_tree);
        let bct_rt = route_s + t0.elapsed().as_secs_f64();
        our_bct.push(FlowRow {
            metrics: bct_metrics,
            runtime_s: bct_rt,
        });
        for (method, bucket) in [
            (FlipMethod::Latency, &mut bct2),
            (FlipMethod::Fanout { threshold: 100 }, &mut bct7),
            (FlipMethod::Criticality { fraction: 0.5 }, &mut bct6),
        ] {
            let t0 = Instant::now();
            let f = flip_backside(&bct_tree, &tech, method);
            bucket.push(FlowRow {
                metrics: f.tree.evaluate(&tech, model),
                runtime_s: bct_rt + t0.elapsed().as_secs_f64(),
            });
        }
    }

    // ---- Upper block. ----
    let mut t = TextTable::new([
        "Design",
        "Flow",
        "Latency(ps)",
        "Skew(ps)",
        "Buffers",
        "ClkWL(e6)",
        "nTSVs",
        "RT(s)",
    ]);
    let mut csv_rows = Vec::new();
    for (i, id) in DESIGN_IDS.iter().enumerate() {
        for (name, row) in [
            ("OpenROAD BCT", &openroad[i]),
            ("OpenROAD+[2]", &openroad2[i]),
            ("Ours", &ours[i]),
        ] {
            push_row(&mut t, &mut csv_rows, id, name, row);
        }
    }
    ratio_rows(
        &mut t,
        &[("OpenROAD BCT", &openroad), ("OpenROAD+[2]", &openroad2)],
        &ours,
    );
    println!("{}", t.render());

    // ---- Lower block. ----
    let mut t = TextTable::new([
        "Design",
        "Flow",
        "Latency(ps)",
        "Skew(ps)",
        "Buffers",
        "ClkWL(e6)",
        "nTSVs",
        "RT(s)",
    ]);
    for (i, id) in DESIGN_IDS.iter().enumerate() {
        for (name, row) in [
            ("Our BCT", &our_bct[i]),
            ("Our BCT+[2]", &bct2[i]),
            ("Our BCT+[7]", &bct7[i]),
            ("Our BCT+[6]", &bct6[i]),
        ] {
            push_row(&mut t, &mut csv_rows, id, name, row);
        }
    }
    ratio_rows(
        &mut t,
        &[
            ("Our BCT", &our_bct),
            ("Our BCT+[2]", &bct2),
            ("Our BCT+[7]", &bct7),
            ("Our BCT+[6]", &bct6),
        ],
        &ours,
    );
    println!("{}", t.render());

    let path = write_csv(
        "table3.csv",
        &[
            "design",
            "flow",
            "latency_ps",
            "skew_ps",
            "buffers",
            "clk_wl_e6nm",
            "ntsvs",
            "rt_s",
        ],
        &csv_rows,
    );
    println!("CSV written to {}", path.display());
}

fn push_row(t: &mut TextTable, csv: &mut Vec<Vec<String>>, id: &str, flow: &str, row: &FlowRow) {
    let m = &row.metrics;
    t.row([
        id.to_owned(),
        flow.to_owned(),
        fmt_ps(m.latency_ps),
        fmt_ps(m.skew_ps),
        m.buffers.to_string(),
        fmt_wl(m.trunk_wirelength_nm),
        m.ntsvs.to_string(),
        format!("{:.3}", row.runtime_s),
    ]);
    csv.push(vec![
        id.to_owned(),
        flow.to_owned(),
        fmt_ps(m.latency_ps),
        fmt_ps(m.skew_ps),
        m.buffers.to_string(),
        fmt_wl(m.trunk_wirelength_nm),
        m.ntsvs.to_string(),
        format!("{:.4}", row.runtime_s),
    ]);
}

/// Appends geometric-mean ratio rows (flow / ours), the paper's last row.
fn ratio_rows(t: &mut TextTable, flows: &[(&str, &[FlowRow])], ours: &[FlowRow]) {
    for (name, rows) in flows {
        let r = |f: &dyn Fn(&TreeMetrics) -> f64| {
            geomean(
                rows.iter()
                    .zip(ours.iter())
                    .map(|(a, b)| (f(&a.metrics).max(1e-9)) / (f(&b.metrics).max(1e-9))),
            )
        };
        let rt = geomean(
            rows.iter()
                .zip(ours.iter())
                .map(|(a, b)| (a.runtime_s.max(1e-6)) / (b.runtime_s.max(1e-6))),
        );
        t.row([
            "Ratio".to_owned(),
            format!("{name}/Ours"),
            format!("{:.3}", r(&|m| m.latency_ps)),
            format!("{:.3}", r(&|m| m.skew_ps)),
            format!("{:.3}", r(&|m| m.buffers as f64)),
            format!("{:.3}", r(&|m| m.trunk_wirelength_nm as f64)),
            {
                let has_ntsvs = rows.iter().all(|x| x.metrics.ntsvs > 0);
                if has_ntsvs {
                    format!("{:.3}", r(&|m| m.ntsvs as f64))
                } else {
                    "-".to_owned()
                }
            },
            format!("{rt:.3}"),
        ]);
    }
}
