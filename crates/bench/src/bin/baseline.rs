//! Records a performance + quality baseline for the C1–C5 designs.
//!
//! Runs the full staged pipeline (paper defaults) on every Table II
//! design and writes a JSON snapshot at the workspace root: one record
//! per design with per-stage wall clocks from
//! [`dscts_core::Outcome::stages`] and the headline quality metrics.
//! Subsequent PRs diff against the committed files to catch runtime or
//! quality regressions per stage rather than per whole run.
//!
//! Modes:
//!
//! * `baseline` — run at the ambient thread count, write
//!   `BENCH_baseline.json` (the CI smoke default);
//! * `baseline --pr2` — run the suite twice, pinned to 1 thread and at
//!   the ambient thread count, and write both runs to `BENCH_pr2.json`;
//! * `baseline --pr3` — run the C3 Fig. 12 threshold sweep (99
//!   configurations) naive vs batched, pinned to 1 thread and at the
//!   ambient thread count, verify the points are bit-identical, and
//!   write both runs to `BENCH_pr3.json`;
//! * `baseline --pr4` — run the post-CTS buffer-sizing comparison on all
//!   five latency-greedy workloads: the greedy `SizingPass` fixed point
//!   versus the `AnnealedSizingPass` at equal resource bounds (same scale
//!   alphabet, no star toggles), verify the annealer beats greedy on skew
//!   or latency on at least one design, and write quality + runtime per
//!   record to `BENCH_pr4.json`;
//! * `baseline --pr5` — run the MCMM robust-vs-nominal comparison on the
//!   C1/C4/C5 latency-greedy workloads: the default-plus-annealed
//!   schedule optimized against the nominal objective versus the same
//!   schedule fanned out over the ASAP7 SS/TT/FF corner set with the
//!   worst-corner objective, verify the robust run improves worst-corner
//!   skew at equal resource bounds on at least one design, and write
//!   per-corner + robust metrics per record to `BENCH_pr5.json`;
//! * `baseline --pr7` — run the budgeted-degradation comparison on the
//!   C1/C4 anneal-heavy workloads: time the unbudgeted run, re-run the
//!   identical pipeline under a wall-clock deadline at half that time,
//!   and verify the budgeted run still completes (valid tree, full
//!   metrics, `degraded` flag raised) inside the unbudgeted wall clock;
//!   write both arms to `BENCH_pr7.json`;
//! * `baseline --pr10` — run the learned-DSE comparison on all five
//!   designs: exact Fig. 12 threshold sweeps feeding a telemetry
//!   training corpus, a fixed-seed GBDT trained on it, then the
//!   predictor-pruned `sweep_fanout_learned` under the default band;
//!   assert in-process that every evaluated point and the whole Pareto
//!   frontier match the exact sweep bit-for-bit on every design and
//!   that at least half of all mode classes are skipped in aggregate;
//!   write both arms to `BENCH_pr10.json`;
//! * `baseline --scaling [--quick]` — run the full default pipeline on
//!   the reproducible `BenchmarkSpec::scaled` fixtures (100k under
//!   `--quick`; 100k/250k/1M otherwise), record per-stage wall clock +
//!   peak RSS to `BENCH_pr6.json`, and assert the scaling gates
//!   in-process: no stage grows worse than O(n log n) across sizes, the
//!   DP frontier cap shrinks the candidate arena on the largest fixture,
//!   and the cap is quality-neutral on C1–C5;
//! * `baseline --check <file>` — re-run the snapshot's workload (the
//!   design suite, the DSE sweep pair for a `--pr3`-style snapshot, or
//!   the sizing comparison for a `--pr4`-style one; scaling snapshots
//!   re-run the quick subset) and exit non-zero if
//!   any record's `runtime_s` regresses more than 25 % against the
//!   committed snapshot (per record, compared to the most lenient
//!   committed run). Wall-clock-relative snapshots (`BENCH_pr7.json`'s
//!   deadline-halving arms, the `BENCH_pr8/pr9.json` service loadtests) are
//!   skipped with a message and exit 0 — their runtimes are only
//!   meaningful on the recording machine. The fresh measurements are
//!   written to `BENCH_check_*.json` so CI can archive runtime
//!   trajectories.
//!
//! Run with `cargo run --release -p dscts-bench --bin baseline [-- FLAGS]`.

use dscts_bench::{all_designs, fig12_thresholds, sizing_workload, DESIGN_IDS};
use dscts_core::mcmm::{CornerReport, RobustObjective};
use dscts_core::opt::{AnnealConfig, AnnealedSizingPass, OptSchedule, PassManager};
use dscts_core::sizing::{resize_for_skew, SizingConfig};
use dscts_core::skew::SkewConfig;
use dscts_core::{dse, run_dp, DpConfig, DsCts, EvalModel, Outcome, RunBudget, TreeMetrics};
use dscts_netlist::{BenchmarkSpec, Design};
use dscts_tech::{CornerSet, Technology};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Allowed per-design wall-clock regression in `--check` mode.
const MAX_RUNTIME_REGRESSION: f64 = 0.25;

/// Absolute grace added on top of the relative budget in `--check` mode.
/// The committed snapshot comes from a different machine than the CI
/// runner and the designs finish in milliseconds, so a pure ratio would
/// trip on hardware noise; the gate targets algorithmic regressions
/// (an accidentally quadratic loop turns milliseconds into seconds),
/// which sail past any constant this size.
const RUNTIME_GRACE_S: f64 = 0.1;

struct Record {
    design: String,
    outcome: Outcome,
}

/// One timed DSE sweep measurement (the `--pr3` workload).
struct SweepRecord {
    name: &'static str,
    runtime_s: f64,
    /// Requested thresholds.
    points: usize,
    /// DP runs actually executed (`points` for the naive path,
    /// mode-equivalence classes for the batched engine).
    dp_runs: usize,
}

/// Times the C3 Fig. 12 threshold sweep on both paths and asserts the
/// batched engine is bit-identical to the naive reference.
fn run_sweep_pair(design: &Design, tech: &Technology) -> Vec<SweepRecord> {
    let base = DsCts::new(tech.clone());
    let thresholds = fig12_thresholds(10);
    println!(
        "C3 Fig. 12 sweep: {} thresholds (fanout 20..=1000 step 10)",
        thresholds.len()
    );
    let t0 = Instant::now();
    let naive = dse::sweep_fanout_naive(&base, design, thresholds.iter().copied());
    let naive_s = t0.elapsed().as_secs_f64();
    println!(
        "  naive   {naive_s:8.3} s ({} full pipeline runs)",
        naive.len()
    );
    let t0 = Instant::now();
    let sweep = dse::SweepEngine::new(&base)
        .try_sweep(design, thresholds.iter().copied())
        .expect("C3 is sweepable");
    let batched_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        sweep.points, naive,
        "batched sweep diverged from the naive reference"
    );
    println!(
        "  batched {batched_s:8.3} s (1 route + {} class DP runs) — {:.1}x, points bit-identical",
        sweep.classes.len(),
        naive_s / batched_s.max(1e-9),
    );
    vec![
        SweepRecord {
            name: "C3-fig12-sweep-naive",
            runtime_s: naive_s,
            points: naive.len(),
            dp_runs: naive.len(),
        },
        SweepRecord {
            name: "C3-fig12-sweep-batched",
            runtime_s: batched_s,
            points: sweep.points.len(),
            dp_runs: sweep.classes.len(),
        },
    ]
}

fn sweep_records_json(records: &[SweepRecord]) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"design\": {:?}, \"thresholds\": {}, \"dp_runs\": {}, \"runtime_s\": {:.6}}}",
                r.name, r.points, r.dp_runs, r.runtime_s
            )
        })
        .collect();
    rows.join(",\n")
}

/// One timed learned-DSE measurement (the `--pr10` workload): the exact
/// batched sweep or its predictor-pruned counterpart.
struct LearnedRecord {
    /// `"<design>-learned-exact"` or `"<design>-learned-pruned"`.
    name: String,
    runtime_s: f64,
    /// Mode classes evaluated exactly (DP runs paid for).
    dp_runs: usize,
    /// Mode classes skipped on the predictor's advice.
    skipped: usize,
    /// Points on the exact Pareto frontier of the arm's sweep.
    frontier_points: usize,
    /// `guaranteed_vs_predicted` frontier distance (`0` for the exact arm).
    frontier_distance: f64,
}

/// Runs the learned-DSE comparison on all five designs: exact Fig. 12
/// threshold sweeps collected into a telemetry training corpus, a GBDT
/// trained on that corpus at a fixed seed, then
/// [`dse::SweepEngine::sweep_fanout_learned`] under the default
/// [`dse::PruneConfig`]. The PR 10 gates are asserted in-process — so
/// the CI `--check BENCH_pr10.json` re-run gates quality, not just
/// runtime: every evaluated point and the whole Pareto frontier are
/// bit-identical to the exact sweep on every design, and at least half
/// of all mode classes are skipped in aggregate.
fn run_learned_pair(tech: &Technology) -> Vec<LearnedRecord> {
    use dscts_learn::{Dataset, GbdtConfig, GbdtPredictor};
    use std::sync::Arc;

    let thresholds = fig12_thresholds(10);
    let designs = all_designs();
    let mut out = Vec::new();

    // Phase 1: exact sweeps with a telemetry collector installed — the
    // engine's per-class sweep records become the training corpus.
    let collector = Arc::new(dscts_telemetry::Telemetry::new());
    let mut exact_sweeps = Vec::new();
    {
        let _guard = dscts_telemetry::install(collector.clone());
        for (id, design) in DESIGN_IDS.iter().zip(&designs) {
            let base = DsCts::new(tech.clone());
            let t0 = Instant::now();
            let sweep = dse::SweepEngine::new(&base)
                .try_sweep(design, thresholds.iter().copied())
                .unwrap_or_else(|e| panic!("{id}: exact sweep failed: {e}"));
            out.push(LearnedRecord {
                name: format!("{id}-learned-exact"),
                runtime_s: t0.elapsed().as_secs_f64(),
                dp_runs: sweep.classes.len(),
                skipped: 0,
                frontier_points: dse::frontier_pairs(&sweep.points).len(),
                frontier_distance: 0.0,
            });
            exact_sweeps.push(sweep);
        }
    }
    let cfg = GbdtConfig {
        depth: 6,
        ..GbdtConfig::default()
    };
    let data = Dataset::from_records(&collector.snapshot().sweeps);
    let model = GbdtPredictor::train(&data, &cfg).expect("sweep corpus is trainable");
    println!(
        "trained GBDT ({} trees, seed {}) on {} sweep records from {} designs",
        cfg.trees,
        cfg.seed,
        data.len(),
        DESIGN_IDS.len()
    );

    // Phase 2: predictor-pruned sweeps, gated against the exact arms.
    let prune = dse::PruneConfig::default();
    let (mut total, mut total_skipped) = (0usize, 0usize);
    println!("design  time(ms)  classes  dp_runs  skipped  frontier  distance");
    for ((id, design), exact) in DESIGN_IDS.iter().zip(&designs).zip(&exact_sweeps) {
        let base = DsCts::new(tech.clone());
        let t0 = Instant::now();
        let learned = dse::SweepEngine::new(&base)
            .sweep_fanout_learned(design, thresholds.iter().copied(), &model, &prune)
            .unwrap_or_else(|e| panic!("{id}: learned sweep failed: {e}"));
        let runtime_s = t0.elapsed().as_secs_f64();
        // Gate 1: every evaluated point is bit-identical to its exact twin.
        for p in &learned.points {
            let twin = exact
                .points
                .iter()
                .find(|q| q.threshold == p.threshold)
                .unwrap_or_else(|| panic!("{id}: exact sweep lacks threshold {}", p.threshold));
            assert_eq!(
                p, twin,
                "{id}: learned point diverged at threshold {}",
                p.threshold
            );
        }
        // Gate 2: zero Pareto-frontier loss at the default band width.
        let frontier = dse::frontier_pairs(&learned.points);
        assert_eq!(
            frontier,
            dse::frontier_pairs(&exact.points),
            "{id}: pruning lost part of the exact Pareto frontier"
        );
        total += learned.classes.len();
        total_skipped += learned.classes_skipped;
        println!(
            "{id:<7} {:>8.1} {:>8} {:>8} {:>8} {:>9} {:>9.4}",
            runtime_s * 1e3,
            learned.classes.len(),
            learned.classes.len() - learned.classes_skipped,
            learned.classes_skipped,
            frontier.len(),
            learned.guaranteed_vs_predicted,
        );
        out.push(LearnedRecord {
            name: format!("{id}-learned-pruned"),
            runtime_s,
            dp_runs: learned.classes.len() - learned.classes_skipped,
            skipped: learned.classes_skipped,
            frontier_points: frontier.len(),
            frontier_distance: learned.guaranteed_vs_predicted,
        });
    }
    // Gate 3: the predictor must pay for itself — at least half of all
    // mode classes skipped across the suite.
    assert!(
        total_skipped * 2 >= total,
        "predictor skipped only {total_skipped}/{total} classes (< 50 %)"
    );
    println!("aggregate: skipped {total_skipped}/{total} mode classes");
    out
}

fn learned_records_json(records: &[LearnedRecord]) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"design\": {:?}, \"dp_runs\": {}, \"classes_skipped\": {}, \"frontier_points\": {}, \"frontier_distance\": {:.6}, \"runtime_s\": {:.6}}}",
                r.name, r.dp_runs, r.skipped, r.frontier_points, r.frontier_distance, r.runtime_s
            )
        })
        .collect();
    rows.join(",\n")
}

/// One timed sizing-optimizer measurement (the `--pr4` workload):
/// greedy `SizingPass` or `AnnealedSizingPass` on a latency-greedy tree.
struct SizingRecord {
    /// `"<design>-sizing-greedy"` or `"<design>-sizing-annealed"`.
    name: String,
    runtime_s: f64,
    before: TreeMetrics,
    after: TreeMetrics,
}

/// Runs the greedy-vs-annealed buffer-sizing comparison on all five
/// latency-greedy workloads, at equal resource bounds (identical scale
/// alphabet, no star-buffer toggles — the annealer's default).
fn run_sizing_pair() -> Vec<SizingRecord> {
    let mut out = Vec::new();
    println!("design  pass       time(ms)   skew(ps) before->after   latency(ps) before->after");
    for (id, spec) in DESIGN_IDS.iter().zip(BenchmarkSpec::all()) {
        let (tree, tech) = sizing_workload(&spec);
        let mut record = |name: &str, runtime_s: f64, before: &TreeMetrics, after: &TreeMetrics| {
            println!(
                "{id:<7} {name:<9} {:>9.1} {:>10.3} -> {:<10.3} {:>12.3} -> {:<10.3}",
                runtime_s * 1e3,
                before.skew_ps,
                after.skew_ps,
                before.latency_ps,
                after.latency_ps,
            );
            out.push(SizingRecord {
                name: format!("{id}-sizing-{name}"),
                runtime_s,
                before: before.clone(),
                after: after.clone(),
            });
        };

        let mut greedy = tree.clone();
        let t0 = Instant::now();
        let rep = resize_for_skew(
            &mut greedy,
            &tech,
            EvalModel::Elmore,
            &SizingConfig::default(),
        );
        record(
            "greedy",
            t0.elapsed().as_secs_f64(),
            &rep.before,
            &rep.after,
        );

        let mut annealed = tree.clone();
        let schedule = OptSchedule::new()
            .seed(7)
            .with(AnnealedSizingPass::default());
        let t0 = Instant::now();
        let rep = PassManager::new(&schedule).run(&mut annealed, &tech, EvalModel::Elmore);
        record(
            "annealed",
            t0.elapsed().as_secs_f64(),
            &rep.before,
            &rep.after,
        );

        // Equal resource bounds: the comparison is meaningless otherwise.
        let (g, a) = (&out[out.len() - 2].after, &out[out.len() - 1].after);
        assert_eq!(g.buffers, a.buffers, "{id}: resource bounds diverged");
        assert_eq!(g.ntsvs, a.ntsvs, "{id}: resource bounds diverged");
    }
    // The annealer must beat the greedy fixed point on skew or latency
    // somewhere — that is the point of paying for the moves. Asserted
    // here (not only under --pr4) so the CI `--check BENCH_pr4.json`
    // re-run gates quality as well as runtime.
    let improved_on = improved_designs(&out);
    assert!(
        !improved_on.is_empty(),
        "annealed sizing improved neither skew nor latency on any design"
    );
    println!("\nannealed beats greedy (skew or latency) on: {improved_on:?}");
    out
}

/// Designs where the annealed pass beat greedy on skew or latency.
/// Pairs records by the names they carry rather than by position, so a
/// skipped design or an added variant fails loudly instead of silently
/// misattributing wins.
fn improved_designs(records: &[SizingRecord]) -> Vec<&'static str> {
    let by_name = |name: String| {
        records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing sizing record {name}"))
    };
    DESIGN_IDS
        .into_iter()
        .filter(|id| {
            let g = &by_name(format!("{id}-sizing-greedy")).after;
            let a = &by_name(format!("{id}-sizing-annealed")).after;
            a.skew_ps < g.skew_ps - 1e-9 || a.latency_ps < g.latency_ps - 1e-9
        })
        .collect()
}

fn sizing_records_json(records: &[SizingRecord]) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"design\": {:?}, \"runtime_s\": {:.6}, \
                 \"skew_before_ps\": {:.6}, \"skew_after_ps\": {:.6}, \
                 \"latency_before_ps\": {:.6}, \"latency_after_ps\": {:.6}, \
                 \"buffers\": {}, \"ntsvs\": {}}}",
                r.name,
                r.runtime_s,
                r.before.skew_ps,
                r.after.skew_ps,
                r.before.latency_ps,
                r.after.latency_ps,
                r.after.buffers,
                r.after.ntsvs,
            )
        })
        .collect();
    rows.join(",\n")
}

/// One timed MCMM measurement (the `--pr5` workload): the
/// default-plus-annealed schedule run nominally or fanned out over the
/// SS/TT/FF corner set with the worst-corner objective, then signed off
/// in every corner.
struct McmmRecord {
    /// `"<design>-mcmm-nominal"` or `"<design>-mcmm-robust"`.
    name: String,
    runtime_s: f64,
    /// Per-corner + robust sign-off of the optimized tree.
    report: CornerReport,
}

/// The `--pr5` designs: a small / medium / large slice of Table II (C2
/// and C3 are the expensive DSE/sizing snapshots' territory).
const MCMM_IDS: [&str; 3] = ["C1", "C4", "C5"];

fn mcmm_specs() -> [BenchmarkSpec; 3] {
    [
        BenchmarkSpec::c1_jpeg(),
        BenchmarkSpec::c4_riscv32i(),
        BenchmarkSpec::c5_aes(),
    ]
}

/// Runs the robust-vs-nominal MCMM comparison on the C1/C4/C5
/// latency-greedy workloads: the identical default-plus-annealed
/// schedule (seed 7), once scored on the nominal objective and once
/// fanned out over the ASAP7 SS/TT/FF corners with the worst-corner
/// objective. Asserts the robust run improves worst-corner skew at
/// equal resource bounds on at least one design — the PR 5 quality
/// gate, re-checked by `--check BENCH_pr5.json` in CI.
fn run_mcmm_pair() -> Vec<McmmRecord> {
    let mut out = Vec::new();
    println!(
        "design  arm        time(ms)   worst skew(ps)   worst lat(ps)   spread(ps)   bufs  nTSVs"
    );
    for (id, spec) in MCMM_IDS.iter().zip(mcmm_specs()) {
        let (tree, tech) = sizing_workload(&spec);
        let corners = CornerSet::asap7_pvt(&tech);
        let schedule = OptSchedule::default_post_cts(SkewConfig::default())
            .with(AnnealedSizingPass::default())
            .seed(7);
        let manager = PassManager::new(&schedule);
        let mut record = |name: &str, runtime_s: f64, report: CornerReport| {
            let r = &report.robust;
            let m = &report.per_corner[0];
            println!(
                "{id:<7} {name:<9} {:>9.1} {:>16.3} {:>15.3} {:>12.3} {:>6} {:>6}",
                runtime_s * 1e3,
                r.worst_skew_ps,
                r.worst_latency_ps,
                r.arrival_spread_ps,
                m.buffers,
                m.ntsvs,
            );
            out.push(McmmRecord {
                name: format!("{id}-mcmm-{name}"),
                runtime_s,
                report,
            });
        };

        let mut nominal = tree.clone();
        let t0 = Instant::now();
        let _ = manager.run(&mut nominal, &tech, EvalModel::Elmore);
        let dt = t0.elapsed().as_secs_f64();
        record(
            "nominal",
            dt,
            CornerReport::evaluate(&nominal, &corners, EvalModel::Elmore),
        );

        let mut robust = tree.clone();
        let t0 = Instant::now();
        let _ = manager.run_corners(
            &mut robust,
            &corners,
            EvalModel::Elmore,
            RobustObjective::WorstCorner,
        );
        let dt = t0.elapsed().as_secs_f64();
        record(
            "robust",
            dt,
            CornerReport::evaluate(&robust, &corners, EvalModel::Elmore),
        );
    }
    // The robust schedule must beat the nominal one on worst-corner skew
    // at equal resource bounds somewhere — the point of paying K dirty
    // paths per move. Asserted here (not only under --pr5) so the CI
    // `--check BENCH_pr5.json` re-run gates quality as well as runtime.
    let improved_on = mcmm_improved_designs(&out);
    assert!(
        !improved_on.is_empty(),
        "robust optimization improved worst-corner skew nowhere at equal resources"
    );
    println!("\nrobust beats nominal on worst-corner skew (equal resources) on: {improved_on:?}");
    out
}

/// Designs where the robust arm improved worst-corner skew over the
/// nominal arm *at equal resource bounds*. Pairs records by name so a
/// skipped design fails loudly instead of silently misattributing wins.
fn mcmm_improved_designs(records: &[McmmRecord]) -> Vec<&'static str> {
    let by_name = |name: String| {
        records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing mcmm record {name}"))
    };
    MCMM_IDS
        .into_iter()
        .filter(|id| {
            let n = &by_name(format!("{id}-mcmm-nominal")).report;
            let r = &by_name(format!("{id}-mcmm-robust")).report;
            n.per_corner[0].buffers == r.per_corner[0].buffers
                && n.per_corner[0].ntsvs == r.per_corner[0].ntsvs
                && r.robust.worst_skew_ps < n.robust.worst_skew_ps - 1e-9
        })
        .collect()
}

fn mcmm_records_json(records: &[McmmRecord]) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            let corners: Vec<String> = r
                .report
                .corner_names
                .iter()
                .zip(&r.report.per_corner)
                .map(|(name, m)| {
                    format!(
                        "{{\"corner\": {name:?}, \"latency_ps\": {:.6}, \"skew_ps\": {:.6}}}",
                        m.latency_ps, m.skew_ps
                    )
                })
                .collect();
            format!(
                "    {{\"design\": {:?}, \"runtime_s\": {:.6}, \
                 \"worst_skew_ps\": {:.6}, \"worst_latency_ps\": {:.6}, \
                 \"arrival_spread_ps\": {:.6}, \"buffers\": {}, \"ntsvs\": {}, \
                 \"corners\": [{}]}}",
                r.name,
                r.runtime_s,
                r.report.robust.worst_skew_ps,
                r.report.robust.worst_latency_ps,
                r.report.robust.arrival_spread_ps,
                r.report.per_corner[0].buffers,
                r.report.per_corner[0].ntsvs,
                corners.join(", "),
            )
        })
        .collect();
    rows.join(",\n")
}

/// One timed budgeted-run measurement (the `--pr7` workload): the
/// anneal-heavy pipeline run to completion, or cut short by a
/// wall-clock deadline at half the unbudgeted time and salvaged as a
/// degraded-but-valid outcome.
struct BudgetRecord {
    /// `"<design>-budget-full"` or `"<design>-budget-deadline"`.
    name: String,
    runtime_s: f64,
    /// The deadline handed to the run (0 for the unbudgeted arm).
    deadline_s: f64,
    /// Whether the run budget truncated the optimization schedule.
    degraded: bool,
    metrics: TreeMetrics,
}

/// The `--pr7` designs: the small and medium anneal workloads (the
/// deadline lands inside the optimize stage on both).
const BUDGET_IDS: [&str; 2] = ["C1", "C4"];

fn budget_specs() -> [BenchmarkSpec; 2] {
    [BenchmarkSpec::c1_jpeg(), BenchmarkSpec::c4_riscv32i()]
}

/// Runs the budgeted-degradation comparison on the C1/C4 anneal-heavy
/// workloads: the identical pipeline (seed 7, 20k-move anneal so the
/// optimize stage dominates) unbudgeted, then under a wall-clock
/// deadline at half the measured unbudgeted time. Asserts the budgeted
/// run comes back degraded-but-valid — full metrics, validated sides —
/// without blowing past the unbudgeted wall clock. Wall-clock halving
/// is machine-dependent, so this snapshot has no CI `--check` gate; the
/// deterministic equivalent lives in the core `resilience` test suite.
fn run_budget_pair() -> Vec<BudgetRecord> {
    let mut out = Vec::new();
    println!("design  arm        time(ms)   deadline(ms)   degraded   skew(ps)   latency(ps)");
    for (id, spec) in BUDGET_IDS.iter().zip(budget_specs()) {
        let design = spec.generate();
        let pipeline = || {
            DsCts::new(Technology::asap7()).schedule(OptSchedule::new().seed(7).with(
                AnnealedSizingPass::new(AnnealConfig {
                    moves: 20_000,
                    ..AnnealConfig::default()
                }),
            ))
        };
        let mut record = |name: &str, runtime_s: f64, deadline_s: f64, o: &Outcome| {
            println!(
                "{id:<7} {name:<9} {:>9.1} {:>14.1} {:>10} {:>10.3} {:>13.3}",
                runtime_s * 1e3,
                deadline_s * 1e3,
                o.degraded,
                o.metrics.skew_ps,
                o.metrics.latency_ps,
            );
            out.push(BudgetRecord {
                name: format!("{id}-budget-{name}"),
                runtime_s,
                deadline_s,
                degraded: o.degraded,
                metrics: o.metrics.clone(),
            });
        };

        let t0 = Instant::now();
        let full = pipeline().run(&design);
        let full_s = t0.elapsed().as_secs_f64();
        record("full", full_s, 0.0, &full);

        let deadline = Duration::from_secs_f64(full_s * 0.5);
        let t0 = Instant::now();
        let budgeted = pipeline()
            .budget(RunBudget::new().with_deadline(deadline))
            .try_run(&design)
            .expect("mid-optimize deadline degrades, not fails");
        let budgeted_s = t0.elapsed().as_secs_f64();
        record("deadline", budgeted_s, deadline.as_secs_f64(), &budgeted);

        assert!(
            budgeted.degraded,
            "{id}: half-time deadline must truncate the anneal"
        );
        assert_eq!(budgeted.tree.validate_sides(), Ok(()));
        assert_eq!(
            budgeted.metrics.arrivals.len(),
            full.metrics.arrivals.len(),
            "{id}: degraded outcome must still carry full metrics"
        );
        assert!(
            budgeted_s < full_s,
            "{id}: budgeted {budgeted_s:.3}s vs full {full_s:.3}s"
        );
    }
    out
}

fn budget_records_json(records: &[BudgetRecord]) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"design\": {:?}, \"runtime_s\": {:.6}, \
                 \"deadline_s\": {:.6}, \"degraded\": {}, \
                 \"skew_ps\": {:.6}, \"latency_ps\": {:.6}, \
                 \"buffers\": {}, \"ntsvs\": {}}}",
                r.name,
                r.runtime_s,
                r.deadline_s,
                r.degraded,
                r.metrics.skew_ps,
                r.metrics.latency_ps,
                r.metrics.buffers,
                r.metrics.ntsvs,
            )
        })
        .collect();
    rows.join(",\n")
}

/// One scaling-tier measurement: the full default pipeline on a
/// `BenchmarkSpec::scaled` fixture, with per-stage wall clocks and the
/// process peak-RSS high-water mark after each stage.
struct ScalingRecord {
    /// `"scaled-<n_sinks>"`.
    name: String,
    sinks: usize,
    outcome: Outcome,
}

/// Sink counts of the scaling tier. `--quick` (the CI smoke subset) runs
/// only the first entry; the committed `BENCH_pr6.json` records all
/// three.
const SCALING_SINKS: [usize; 3] = [100_000, 250_000, 1_000_000];

/// Seed of the scaling fixtures — fixed so the committed snapshot and
/// every CI re-run measure bit-identical designs.
const SCALING_SEED: u64 = 1;

/// Frontier cap used by the scaling tier's memory gate. The cap only
/// engages beyond the DP's full-diversity depth (24 trunk levels), which
/// no Table II preset reaches — so 8 is tight enough to cut the 1M-sink
/// candidate arena by ~20 % while leaving C1–C5 bit-identical.
const SCALING_FRONTIER: usize = 8;

/// Allowed slack over the ideal `n log n` stage-time ratio in
/// [`assert_scaling_complexity`]. Covers cache effects and allocator
/// noise, not an extra complexity class: a quadratic stage overshoots
/// the budget ~280x at the 100k → 1M step.
const SCALING_SLACK: f64 = 3.0;

/// Stages faster than this on the *small* design are skipped by the
/// complexity gate — their ratios are timer noise, not scaling signal.
const SCALING_MIN_STAGE_S: f64 = 0.01;

fn fmt_rss(bytes: Option<u64>) -> String {
    match bytes {
        Some(b) => format!("{:.0} MiB", b as f64 / (1 << 20) as f64),
        None => "n/a".into(),
    }
}

/// Runs the scaled-design suite (100k only under `--quick`), then the
/// two in-process gates: the empirical O(n log n) check between the
/// smallest and largest design, and the DP frontier memory/quality
/// gates.
fn run_scaling(quick: bool, tech: &Technology) -> Vec<ScalingRecord> {
    let sizes: &[usize] = if quick {
        &SCALING_SINKS[..1]
    } else {
        &SCALING_SINKS
    };
    println!("design          sinks   route(s)  insert(s)  optimize(s)  eval(s)  total(s)  peak RSS   latency(ps)  skew(ps)");
    let mut out = Vec::new();
    for &n in sizes {
        let design = BenchmarkSpec::scaled(n, SCALING_SEED).generate();
        let o = DsCts::new(tech.clone()).run(&design);
        let s = |name: &str| o.stage_seconds(name).unwrap_or(0.0);
        println!(
            "{:<14} {:>7} {:>9.2} {:>10.2} {:>12.2} {:>8.2} {:>9.2} {:>9} {:>12.3} {:>9.3}",
            design.name,
            n,
            s("route"),
            s("insertion"),
            s("optimize"),
            s("evaluate"),
            o.runtime_s,
            fmt_rss(o.peak_rss_bytes),
            o.metrics.latency_ps,
            o.metrics.skew_ps,
        );
        out.push(ScalingRecord {
            name: design.name.clone(),
            sinks: n,
            outcome: o,
        });
    }
    assert_scaling_complexity(&out);
    run_frontier_gates(quick, tech);
    out
}

/// Empirical complexity gate: between the smallest and largest scaled
/// design, no stage's wall clock may grow faster than `n log n` (with
/// [`SCALING_SLACK`] headroom). Skipped when only one size ran.
fn assert_scaling_complexity(records: &[ScalingRecord]) {
    let (Some(small), Some(large)) = (records.first(), records.last()) else {
        return;
    };
    if small.sinks == large.sinks {
        return;
    }
    let nlogn = |n: usize| n as f64 * (n as f64).ln();
    let ideal = nlogn(large.sinks) / nlogn(small.sinks);
    let budget = ideal * SCALING_SLACK;
    println!(
        "\ncomplexity gate {} -> {} sinks: ideal n log n ratio {ideal:.1}x, budget {budget:.1}x",
        small.sinks, large.sinks
    );
    for st in &small.outcome.stages {
        let t_small = st.seconds;
        let Some(t_large) = large.outcome.stage_seconds(&st.name) else {
            continue;
        };
        if t_small < SCALING_MIN_STAGE_S {
            println!(
                "  {:<22} {t_small:.3}s -> {t_large:.3}s (below noise floor, skipped)",
                st.name
            );
            continue;
        }
        let ratio = t_large / t_small;
        println!(
            "  {:<22} {t_small:.3}s -> {t_large:.3}s ({ratio:.1}x)",
            st.name
        );
        assert!(
            ratio <= budget,
            "stage {:?} scales worse than n log n: {ratio:.1}x > {budget:.1}x budget",
            st.name
        );
    }
    let total_ratio = large.outcome.runtime_s / small.outcome.runtime_s.max(SCALING_MIN_STAGE_S);
    println!(
        "  {:<22} {:.3}s -> {:.3}s ({total_ratio:.1}x)",
        "total", small.outcome.runtime_s, large.outcome.runtime_s
    );
    assert!(
        total_ratio <= budget,
        "total runtime scales worse than n log n: {total_ratio:.1}x > {budget:.1}x budget"
    );
}

/// The DP frontier gates, asserted in-process like the PR 4/5 quality
/// gates so `--check BENCH_pr6.json` re-verifies them in CI:
///
/// * **memory** — on the largest scaled design the tier runs (100k under
///   `--quick`, 1M otherwise), capping the frontier at
///   [`SCALING_FRONTIER`] must shrink the stored-candidate arena;
/// * **quality** — on every Table II preset (C1–C5), the capped DP must
///   pick a root candidate with bit-identical latency/skew/resources.
fn run_frontier_gates(quick: bool, tech: &Technology) {
    let base = DsCts::new(tech.clone());
    let capped = DpConfig {
        frontier: Some(SCALING_FRONTIER),
        ..DpConfig::default()
    };

    let n = if quick {
        SCALING_SINKS[0]
    } else {
        SCALING_SINKS[SCALING_SINKS.len() - 1]
    };
    let design = BenchmarkSpec::scaled(n, SCALING_SEED).generate();
    let topo = base.route(&design).expect("scaled design routes");
    let unbounded = run_dp(&topo, tech, &DpConfig::default());
    let bounded = run_dp(&topo, tech, &capped);
    println!(
        "\nfrontier memory gate (scaled-{n}): stored candidates {} -> {} ({:.1} % of unbounded)",
        unbounded.stored_candidates,
        bounded.stored_candidates,
        100.0 * bounded.stored_candidates as f64 / unbounded.stored_candidates as f64,
    );
    assert!(
        bounded.stored_candidates < unbounded.stored_candidates,
        "frontier cap {SCALING_FRONTIER} did not shrink the candidate arena on scaled-{n}"
    );

    let mut checked = 0;
    for (id, spec) in DESIGN_IDS.iter().zip(BenchmarkSpec::all()) {
        let topo = base.route(&spec.generate()).expect("preset routes");
        let unbounded = run_dp(&topo, tech, &DpConfig::default());
        let bounded = run_dp(&topo, tech, &capped);
        let (u, b) = (
            unbounded.root_candidates[unbounded.chosen],
            bounded.root_candidates[bounded.chosen],
        );
        assert_eq!(
            (
                u.latency_ps.to_bits(),
                u.skew_ps.to_bits(),
                u.buffers,
                u.ntsvs
            ),
            (
                b.latency_ps.to_bits(),
                b.skew_ps.to_bits(),
                b.buffers,
                b.ntsvs
            ),
            "{id}: frontier cap {SCALING_FRONTIER} changed the chosen root candidate"
        );
        checked += 1;
    }
    println!("frontier quality gate: chosen candidate bit-identical on {checked} presets (C1–C5)");
}

fn scaling_records_json(records: &[ScalingRecord]) -> String {
    let rss = |b: Option<u64>| b.map_or("null".to_string(), |v| v.to_string());
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            let o = &r.outcome;
            let stages: Vec<String> = o
                .stages
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\": {:?}, \"seconds\": {:.6}, \"peak_rss_bytes\": {}}}",
                        s.name,
                        s.seconds,
                        rss(s.peak_rss_bytes)
                    )
                })
                .collect();
            format!(
                "    {{\"design\": {:?}, \"sinks\": {}, \"runtime_s\": {:.6}, \
                 \"peak_rss_bytes\": {}, \"latency_ps\": {:.6}, \"skew_ps\": {:.6}, \
                 \"buffers\": {}, \"ntsvs\": {}, \"stages\": [{}]}}",
                r.name,
                r.sinks,
                o.runtime_s,
                rss(o.peak_rss_bytes),
                o.metrics.latency_ps,
                o.metrics.skew_ps,
                o.metrics.buffers,
                o.metrics.ntsvs,
                stages.join(", "),
            )
        })
        .collect();
    rows.join(",\n")
}

fn run_suite(designs: &[Design], tech: &Technology) -> Vec<Record> {
    println!("design   sinks   route(ms)  insert(ms)  optimize(ms)  eval(ms)  total(ms)  latency(ps)  skew(ps)  bufs  nTSVs");
    designs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let o = DsCts::new(tech.clone()).run(d);
            let ms = |name: &str| o.stage_seconds(name).unwrap_or(0.0) * 1e3;
            println!(
                "C{:<7} {:>6} {:>10.1} {:>11.1} {:>13.1} {:>9.1} {:>10.1} {:>12.3} {:>9.3} {:>5} {:>6}",
                i + 1,
                d.sink_count(),
                ms("route"),
                ms("insertion"),
                ms("optimize"),
                ms("evaluate"),
                o.runtime_s * 1e3,
                o.metrics.latency_ps,
                o.metrics.skew_ps,
                o.metrics.buffers,
                o.metrics.ntsvs,
            );
            Record {
                design: format!("C{}", i + 1),
                outcome: o,
            }
        })
        .collect()
}

fn records_json(designs: &[Design], records: &[Record]) -> String {
    let mut out = String::new();
    for (i, (d, r)) in designs.iter().zip(records).enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let o = &r.outcome;
        let stages: Vec<String> = o
            .stages
            .iter()
            .map(|s| format!("{{\"name\": {:?}, \"seconds\": {:.6}}}", s.name, s.seconds))
            .collect();
        let _ = write!(
            out,
            "    {{\"design\": {:?}, \"name\": {:?}, \"sinks\": {}, \
             \"stages\": [{}], \"runtime_s\": {:.6}, \
             \"latency_ps\": {:.6}, \"skew_ps\": {:.6}, \"buffers\": {}, \
             \"ntsvs\": {}, \"wirelength_nm\": {}, \"trunk_wirelength_nm\": {}}}",
            r.design,
            d.name,
            d.sink_count(),
            stages.join(", "),
            o.runtime_s,
            o.metrics.latency_ps,
            o.metrics.skew_ps,
            o.metrics.buffers,
            o.metrics.ntsvs,
            o.metrics.wirelength_nm,
            o.metrics.trunk_wirelength_nm,
        );
    }
    out
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

/// Extracts `(design, runtime_s)` pairs from a committed snapshot. The
/// snapshots are written one record per line, so a line-oriented scan is
/// exact for our own output format (no external JSON parser available
/// offline).
fn parse_runtimes(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(dpos) = line.find("\"design\": \"") else {
            continue;
        };
        let rest = &line[dpos + 11..];
        let Some(dend) = rest.find('"') else { continue };
        let design = rest[..dend].to_string();
        let Some(rpos) = line.find("\"runtime_s\": ") else {
            continue;
        };
        let rest = &line[rpos + 13..];
        let end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if let Ok(rt) = rest[..end].parse::<f64>() {
            out.push((design, rt));
        }
    }
    out
}

fn write_snapshot(path: &Path, body: String) {
    std::fs::write(path, body).expect("write snapshot");
    println!("\nsnapshot written to {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tech = Technology::asap7();

    if args.first().map(String::as_str) == Some("--pr3") {
        // Naive vs batched sweep, pinned to 1 thread and at the ambient
        // thread count — the PR 3 wall-clock snapshot.
        let design = BenchmarkSpec::c3_ethmac().generate();
        let ambient = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        println!("== 1 thread ==");
        let serial = run_sweep_pair(&design, &tech);
        match &ambient {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        let threads = rayon::current_num_threads();
        println!("== {threads} threads ==");
        let parallel = run_sweep_pair(&design, &tech);
        let json = format!(
            "{{\n  \"flow\": \"dse_sweep_c3_fig12\",\n  \"runs\": [\n    {{\"threads\": 1, \"records\": [\n{}\n    ]}},\n    {{\"threads\": {threads}, \"records\": [\n{}\n    ]}}\n  ]\n}}\n",
            sweep_records_json(&serial),
            sweep_records_json(&parallel),
        );
        write_snapshot(&workspace_root().join("BENCH_pr3.json"), json);
        return;
    }

    if args.first().map(String::as_str) == Some("--pr4") {
        // Greedy vs annealed buffer sizing at equal resource bounds — the
        // PR 4 quality + wall-clock snapshot.
        let records = run_sizing_pair();
        let json = format!(
            "{{\n  \"flow\": \"post_cts_sizing_greedy_vs_annealed\",\n  \"threads\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
            rayon::current_num_threads(),
            sizing_records_json(&records),
        );
        write_snapshot(&workspace_root().join("BENCH_pr4.json"), json);
        return;
    }

    if args.first().map(String::as_str) == Some("--pr5") {
        // Nominal vs robust (worst-corner) optimization over the ASAP7
        // SS/TT/FF corner set — the PR 5 quality + wall-clock snapshot.
        let records = run_mcmm_pair();
        let json = format!(
            "{{\n  \"flow\": \"mcmm_nominal_vs_robust\",\n  \"corners\": [\"SS\", \"TT\", \"FF\"],\n  \"threads\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
            rayon::current_num_threads(),
            mcmm_records_json(&records),
        );
        write_snapshot(&workspace_root().join("BENCH_pr5.json"), json);
        return;
    }

    if args.first().map(String::as_str) == Some("--pr7") {
        // Unbudgeted vs half-time deadline on the anneal-heavy C1/C4
        // workloads — the PR 7 degraded-but-valid snapshot. No `--check`
        // gate: the halving is wall-clock-relative, machine-dependent by
        // construction.
        let records = run_budget_pair();
        let json = format!(
            "{{\n  \"flow\": \"budgeted_deadline_degradation\",\n  \"threads\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
            rayon::current_num_threads(),
            budget_records_json(&records),
        );
        write_snapshot(&workspace_root().join("BENCH_pr7.json"), json);
        return;
    }

    if args.first().map(String::as_str) == Some("--pr10") {
        // Exact vs predictor-pruned DSE sweeps on all five designs — the
        // PR 10 learned-DSE snapshot. The quality gates (point + frontier
        // parity, >= 50 % classes skipped) are asserted inside
        // `run_learned_pair`, so `--check BENCH_pr10.json` re-gates them.
        let records = run_learned_pair(&tech);
        let json = format!(
            "{{\n  \"flow\": \"learned_dse_exact_vs_pruned\",\n  \"threads\": {},\n  \"records\": [\n{}\n  ]}}\n",
            rayon::current_num_threads(),
            learned_records_json(&records),
        );
        write_snapshot(&workspace_root().join("BENCH_pr10.json"), json);
        return;
    }

    if args.first().map(String::as_str) == Some("--scaling") {
        // The million-sink scaling tier: full default pipeline on the
        // reproducible `scaled(n, seed)` fixtures, per-stage wall clock +
        // peak RSS, with the O(n log n) and DP-frontier gates asserted
        // in-process. `--quick` (the CI smoke subset) runs only the
        // smallest fixture and skips the cross-size complexity gate.
        let quick = args.iter().any(|a| a == "--quick");
        let records = run_scaling(quick, &tech);
        let json = format!(
            "{{\n  \"flow\": \"million_sink_scaling\",\n  \"quick\": {quick},\n  \"seed\": {SCALING_SEED},\n  \"threads\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
            rayon::current_num_threads(),
            scaling_records_json(&records),
        );
        write_snapshot(&workspace_root().join("BENCH_pr6.json"), json);
        return;
    }

    if args.first().map(String::as_str) == Some("--pr2") {
        let designs = all_designs();
        // Two pinned runs: serial, then the ambient thread count. The
        // vendored rayon shim re-reads RAYON_NUM_THREADS per parallel
        // call, so pinning via the environment takes effect immediately.
        let ambient = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        println!("== 1 thread ==");
        let serial = run_suite(&designs, &tech);
        match &ambient {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        let threads = rayon::current_num_threads();
        println!("== {threads} threads ==");
        let parallel = run_suite(&designs, &tech);
        let json = format!(
            "{{\n  \"flow\": \"ours_default\",\n  \"runs\": [\n    {{\"threads\": 1, \"designs\": [\n{}\n    ]}},\n    {{\"threads\": {threads}, \"designs\": [\n{}\n    ]}}\n  ]\n}}\n",
            records_json(&designs, &serial),
            records_json(&designs, &parallel),
        );
        write_snapshot(&workspace_root().join("BENCH_pr2.json"), json);
        return;
    }

    if args.first().map(String::as_str) == Some("--check") {
        let file = args.get(1).expect("--check needs a snapshot path");
        let path = workspace_root().join(file);
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let reference = parse_runtimes(&committed);
        assert!(!reference.is_empty(), "no runtime records in {file}");
        // Wall-clock-relative snapshots carry no machine-portable runtime
        // budget: the PR 7 deadline arms are defined relative to the
        // recording machine's unbudgeted wall clock, and the PR 8 service
        // loadtest records throughput of a chaos-perturbed worker pool.
        // Re-running the design suite against their unmatchable record
        // names would print "no committed reference, skipped" for every
        // row — detect them up front and say why there is nothing to
        // gate instead.
        let is_wallclock_relative = committed
            .contains("\"flow\": \"budgeted_deadline_degradation\"")
            || committed.contains("\"flow\": \"service_loadtest\"")
            || reference.iter().all(|(d, _)| d.contains("-budget-"))
            || reference.iter().all(|(d, _)| d.starts_with("svc-"));
        if is_wallclock_relative {
            println!(
                "{file}: wall-clock-relative snapshot — its runtimes are only meaningful \
                 on the machine that recorded them, so there is no runtime gate to \
                 re-check; skipping (the deterministic equivalents live in the test \
                 suites)"
            );
            return;
        }
        // Re-run whatever workload the snapshot recorded: sweep snapshots
        // (--pr3) hold sweep records, sizing snapshots (--pr4) hold the
        // greedy-vs-annealed pairs, MCMM snapshots (--pr5) the
        // nominal-vs-robust pairs, everything else the design suite.
        let is_sweep = reference.iter().all(|(d, _)| d.contains("sweep"));
        let is_sizing = reference.iter().all(|(d, _)| d.contains("-sizing-"));
        let is_mcmm = reference.iter().all(|(d, _)| d.contains("-mcmm-"));
        let is_scaling = reference.iter().all(|(d, _)| d.starts_with("scaled-"));
        let is_learned = reference.iter().all(|(d, _)| d.contains("-learned-"));
        let fresh: Vec<(String, f64)> = if is_learned {
            // Re-runs the full train + prune comparison; the frontier and
            // skip-rate gates are asserted inside.
            run_learned_pair(&tech)
                .into_iter()
                .map(|r| (r.name, r.runtime_s))
                .collect()
        } else if is_scaling {
            // Re-run only the quick (100k) subset: the committed snapshot
            // also holds the 250k/1M records, which stay un-checked in CI
            // — records without a fresh measurement are simply not
            // compared, and the quick run still asserts the frontier
            // gates in-process.
            run_scaling(true, &tech)
                .into_iter()
                .map(|r| (r.name, r.outcome.runtime_s))
                .collect()
        } else if is_sweep {
            let design = BenchmarkSpec::c3_ethmac().generate();
            run_sweep_pair(&design, &tech)
                .into_iter()
                .map(|r| (r.name.to_owned(), r.runtime_s))
                .collect()
        } else if is_sizing {
            run_sizing_pair()
                .into_iter()
                .map(|r| (r.name, r.runtime_s))
                .collect()
        } else if is_mcmm {
            run_mcmm_pair()
                .into_iter()
                .map(|r| (r.name, r.runtime_s))
                .collect()
        } else {
            run_suite(&all_designs(), &tech)
                .into_iter()
                .map(|r| (r.design, r.outcome.runtime_s))
                .collect()
        };
        let mut failed = false;
        println!();
        for (name, runtime_s) in &fresh {
            // Most lenient committed run for this record (e.g. the serial
            // one in a two-run snapshot): CI boxes are noisy, and a real
            // regression shows up against the slowest committed number.
            let budget = reference
                .iter()
                .filter(|(d, _)| d == name)
                .map(|(_, rt)| rt)
                .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            if budget <= 0.0 {
                println!("{name}: no committed reference, skipped");
                continue;
            }
            let limit = budget * (1.0 + MAX_RUNTIME_REGRESSION) + RUNTIME_GRACE_S;
            let ok = *runtime_s <= limit;
            println!(
                "{name}: {runtime_s:.3} s vs committed {budget:.3} s (limit {limit:.3} s) {}",
                if ok { "ok" } else { "REGRESSION" }
            );
            failed |= !ok;
        }
        // Archive the fresh measurements so CI uploads a per-PR runtime
        // trajectory next to the committed snapshots.
        let rows: Vec<String> = fresh
            .iter()
            .map(|(n, rt)| format!("    {{\"design\": {n:?}, \"runtime_s\": {rt:.6}}}"))
            .collect();
        // Derive from the file name only, so path-qualified arguments
        // (`--check ./BENCH_pr2.json`) archive next to the snapshots
        // instead of into a nonexistent "BENCH_check_./" directory.
        let base = Path::new(file)
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(file);
        let check_name = format!(
            "BENCH_check_{}",
            base.trim_start_matches("BENCH_").trim_start_matches('_')
        );
        let json = format!(
            "{{\n  \"checked_against\": {file:?},\n  \"threads\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
            rayon::current_num_threads(),
            rows.join(",\n")
        );
        write_snapshot(&workspace_root().join(check_name), json);
        if failed {
            eprintln!(
                "runtime regression > {:.0} % detected",
                MAX_RUNTIME_REGRESSION * 100.0
            );
            std::process::exit(1);
        }
        return;
    }

    let designs = all_designs();
    let threads = rayon::current_num_threads();
    let records = run_suite(&designs, &tech);
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"flow\": \"ours_default\",\n  \"designs\": [\n{}\n  ]\n}}\n",
        records_json(&designs, &records)
    );
    write_snapshot(&workspace_root().join("BENCH_baseline.json"), json);
}
