//! Records a performance + quality baseline for the C1–C5 designs.
//!
//! Runs the full staged pipeline (paper defaults) on every Table II
//! design and writes `BENCH_baseline.json` at the workspace root: one
//! record per design with per-stage wall clocks from
//! [`dscts_core::Outcome::stages`] and the headline quality metrics.
//! Subsequent PRs diff against this file to catch runtime or quality
//! regressions per stage rather than per whole run.
//!
//! Run with `cargo run --release -p dscts-bench --bin baseline`.

use dscts_bench::all_designs;
use dscts_core::DsCts;
use dscts_tech::Technology;
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let tech = Technology::asap7();
    let designs = all_designs();
    let threads = rayon::current_num_threads();

    let mut records = String::new();
    println!("design   sinks   route(ms)  insert(ms)  refine(ms)  eval(ms)  total(ms)  latency(ps)  skew(ps)  bufs  nTSVs");
    for (i, d) in designs.iter().enumerate() {
        let o = DsCts::new(tech.clone()).run(d);
        let ms = |name: &str| o.stage_seconds(name).unwrap_or(0.0) * 1e3;
        println!(
            "C{:<7} {:>6} {:>10.1} {:>11.1} {:>11.1} {:>9.1} {:>10.1} {:>12.3} {:>9.3} {:>5} {:>6}",
            i + 1,
            d.sink_count(),
            ms("route"),
            ms("insertion"),
            ms("refine"),
            ms("evaluate"),
            o.runtime_s * 1e3,
            o.metrics.latency_ps,
            o.metrics.skew_ps,
            o.metrics.buffers,
            o.metrics.ntsvs,
        );
        if i > 0 {
            records.push_str(",\n");
        }
        let stages: Vec<String> = o
            .stages
            .iter()
            .map(|s| format!("{{\"name\": {:?}, \"seconds\": {:.6}}}", s.name, s.seconds))
            .collect();
        let _ = write!(
            records,
            "    {{\"design\": \"C{}\", \"name\": {:?}, \"sinks\": {}, \
             \"stages\": [{}], \"runtime_s\": {:.6}, \
             \"latency_ps\": {:.6}, \"skew_ps\": {:.6}, \"buffers\": {}, \
             \"ntsvs\": {}, \"wirelength_nm\": {}, \"trunk_wirelength_nm\": {}}}",
            i + 1,
            d.name,
            d.sink_count(),
            stages.join(", "),
            o.runtime_s,
            o.metrics.latency_ps,
            o.metrics.skew_ps,
            o.metrics.buffers,
            o.metrics.ntsvs,
            o.metrics.wirelength_nm,
            o.metrics.trunk_wirelength_nm,
        );
    }

    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"flow\": \"ours_default\",\n  \"designs\": [\n{records}\n  ]\n}}\n"
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_baseline.json");
    std::fs::write(&path, json).expect("write baseline");
    println!("\nbaseline written to {}", path.display());
}
