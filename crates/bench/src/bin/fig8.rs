//! Regenerates **Fig. 8**: the adaptive scale factor `t` versus
//! `N / 10 000`, plus the resulting end-point budgets for the five
//! benchmark designs.
//!
//! Run with `cargo run -p dscts-bench --bin fig8`.

use dscts_bench::{write_csv, TextTable};
use dscts_core::skew::{endpoint_budget, scale_factor};
use dscts_netlist::BenchmarkSpec;

fn main() {
    let mut rows = Vec::new();
    let mut t = TextTable::new(["N/10000", "t"]);
    let mut x = 0.0f64;
    while x <= 1.2 + 1e-9 {
        let n = (x * 10_000.0).round() as usize;
        let tf = scale_factor(n);
        t.row([format!("{x:.2}"), format!("{tf:.4}")]);
        rows.push(vec![format!("{x:.2}"), format!("{tf:.6}")]);
        x += 0.05;
    }
    println!("{}", t.render());
    let path = write_csv("fig8.csv", &["n_over_10000", "t"], &rows);
    println!("CSV written to {}\n", path.display());

    let mut t = TextTable::new(["Design", "N", "t(N)", "n = min(N*t, 33)"]);
    for (id, spec) in ["C1", "C2", "C3", "C4", "C5"]
        .iter()
        .zip(BenchmarkSpec::all())
    {
        t.row([
            id.to_string(),
            spec.num_ffs.to_string(),
            format!("{:.4}", scale_factor(spec.num_ffs)),
            endpoint_budget(spec.num_ffs, 33).to_string(),
        ]);
    }
    println!("{}", t.render());
}
