//! Scaling study (beyond the paper): how latency, skew, resources, clock
//! power and runtime scale with sink count for the three principal flows.
//! Complements the RT columns of Table III by showing the near-linear
//! runtime growth of the concurrent DP.
//!
//! Run with `cargo run --release -p dscts-bench --bin scaling`.

use dscts_bench::{write_csv, TextTable};
use dscts_core::baseline::{flip_backside, FlipMethod, HTreeCts};
use dscts_core::{DsCts, EvalModel};
use dscts_netlist::BenchmarkSpec;
use dscts_tech::Technology;
use std::time::Instant;

fn main() {
    let tech = Technology::asap7();
    let mut table = TextTable::new([
        "Sinks",
        "Flow",
        "Latency(ps)",
        "Skew(ps)",
        "Buf+nTSV",
        "Power@2GHz(uW)",
        "RT(s)",
    ]);
    let mut csv = Vec::new();
    for ffs in [250usize, 1_000, 4_000, 16_000] {
        let mut spec = BenchmarkSpec::c4_riscv32i();
        spec.name = format!("scale-{ffs}");
        spec.num_ffs = ffs;
        spec.num_cells = ffs * 11;
        spec.seed = 42;
        let design = spec.generate();

        // Ours.
        let o = DsCts::new(tech.clone()).run(&design);
        let mut emit = |flow: &str, m: &dscts_core::TreeMetrics, rt: f64| {
            let row = vec![
                ffs.to_string(),
                flow.to_owned(),
                format!("{:.2}", m.latency_ps),
                format!("{:.2}", m.skew_ps),
                (m.buffers + m.ntsvs).to_string(),
                format!("{:.1}", m.clock_power_uw(0.7, 2.0)),
                format!("{rt:.4}"),
            ];
            table.row(row.clone());
            csv.push(row);
        };
        emit("ours", &o.metrics, o.runtime_s);

        // Front-only.
        let f = DsCts::new(tech.clone()).single_side(true).run(&design);
        emit("front-only", &f.metrics, f.runtime_s);

        // Conventional flow.
        let t0 = Instant::now();
        let htree = HTreeCts::default().synthesize(&design, &tech);
        let flipped = flip_backside(&htree, &tech, FlipMethod::Latency);
        let rt = t0.elapsed().as_secs_f64();
        emit(
            "openroad-like+[2]",
            &flipped.tree.evaluate(&tech, EvalModel::Elmore),
            rt,
        );
    }
    println!("{}", table.render());
    let path = write_csv(
        "scaling.csv",
        &[
            "sinks",
            "flow",
            "latency_ps",
            "skew_ps",
            "resources",
            "power_uw",
            "rt_s",
        ],
        &csv,
    );
    println!("CSV written to {}", path.display());
}
