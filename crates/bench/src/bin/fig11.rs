//! Regenerates **Fig. 11**: effectiveness of skew refinement (SR).
//!
//! Runs the full double-side flow on C1–C5 with and without the skew
//! refinement stage and reports latency / skew / buffer count for each —
//! the three bar groups of the figure. The expected shape: skew drops
//! substantially, latency and buffer count move negligibly.
//!
//! Run with `cargo run --release -p dscts-bench --bin fig11`.

use dscts_bench::{all_designs, fmt_ps, write_csv, TextTable, DESIGN_IDS};
use dscts_core::skew::SkewConfig;
use dscts_core::DsCts;
use dscts_tech::Technology;

fn main() {
    let tech = Technology::asap7();
    let mut t = TextTable::new([
        "Design",
        "Latency w/o SR",
        "Latency w/ SR",
        "Skew w/o SR",
        "Skew w/ SR",
        "Buffers w/o SR",
        "Buffers w/ SR",
    ]);
    let mut csv = Vec::new();
    for (id, d) in DESIGN_IDS.iter().zip(all_designs()) {
        let without = DsCts::new(tech.clone()).skew_refinement(None).run(&d);
        let with = DsCts::new(tech.clone())
            .skew_refinement(Some(SkewConfig {
                // Force the pass so the figure shows the effect on every
                // design (the paper's bars all change).
                trigger_percent: 0.0,
                ..SkewConfig::default()
            }))
            .run(&d);
        t.row([
            id.to_string(),
            fmt_ps(without.metrics.latency_ps),
            fmt_ps(with.metrics.latency_ps),
            fmt_ps(without.metrics.skew_ps),
            fmt_ps(with.metrics.skew_ps),
            without.metrics.buffers.to_string(),
            with.metrics.buffers.to_string(),
        ]);
        csv.push(vec![
            id.to_string(),
            fmt_ps(without.metrics.latency_ps),
            fmt_ps(with.metrics.latency_ps),
            fmt_ps(without.metrics.skew_ps),
            fmt_ps(with.metrics.skew_ps),
            without.metrics.buffers.to_string(),
            with.metrics.buffers.to_string(),
        ]);
    }
    println!("{}", t.render());
    let path = write_csv(
        "fig11.csv",
        &[
            "design",
            "latency_wo_sr",
            "latency_w_sr",
            "skew_wo_sr",
            "skew_w_sr",
            "buffers_wo_sr",
            "buffers_w_sr",
        ],
        &csv,
    );
    println!("CSV written to {}", path.display());
}
