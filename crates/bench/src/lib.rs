//! Shared harness utilities for the experiment regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the experiment index):
//!
//! | binary      | artifact  | what it reproduces                          |
//! |-------------|-----------|---------------------------------------------|
//! | `table3`    | Table III | main comparison across C1–C5 and all flows  |
//! | `fig8`      | Fig. 8    | adaptive scale factor t(N)                   |
//! | `fig10`     | Fig. 10   | MOES effectiveness on C3 (root clouds)       |
//! | `fig11`     | Fig. 11   | skew-refinement ablation                     |
//! | `fig12`     | Fig. 12   | DSE Pareto comparison on C3                  |
//! | `ablations` | —         | design-choice ablations (pruning, patterns…) |
//!
//! Binaries print human-readable tables and write CSV series under
//! `results/`.
//!
//! # Scaling methodology
//!
//! The scaling tier (`baseline --scaling`, snapshot `BENCH_pr6.json`)
//! measures the full default pipeline on the reproducible
//! `BenchmarkSpec::scaled(n_sinks, seed)` fixtures at 100k, 250k and 1M
//! sinks. For every stage it records two numbers:
//!
//! * **wall clock** — the per-stage timings from
//!   [`dscts_core::Outcome::stages`], gated in-process so no stage grows
//!   worse than O(n log n) between the smallest and largest fixture;
//! * **peak RSS** — the process high-water resident-set mark from
//!   [`rss::peak_rss_bytes`], sampled after each stage. The probe reads
//!   `VmHWM` from `/proc/self/status`, so the column is **Linux-only**:
//!   on other platforms it degrades to `null` in the snapshot and the
//!   tables print `n/a`. Because `VmHWM` is process-wide and monotone,
//!   per-stage values identify which stage first pushed the process to a
//!   given footprint, not each stage's isolated allocation.
//!
//! CI runs the quick subset (100k sinks) and diffs runtimes against the
//! committed snapshot via `baseline --check BENCH_pr6.json`.

use dscts_core::skew::SkewConfig;
use dscts_core::{run_dp, DpConfig, HierarchicalRouter, MoesWeights, SynthesizedTree};
use dscts_netlist::{BenchmarkSpec, Design};
use dscts_tech::Technology;
use rayon::prelude::*;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Peak-RSS measurement for the scaling tier — re-exported from the core
/// crate so bench binaries and external harnesses reach it as
/// `dscts_bench::rss::peak_rss_bytes()`. See the crate-level "Scaling
/// methodology" notes for what the number means and the Linux-only
/// caveat.
pub use dscts_core::rss;

/// Generates all five Table II designs (order C1..C5). Generation is
/// per-design deterministic and independent, so it fans out across
/// threads; the collect preserves C1..C5 order.
pub fn all_designs() -> Vec<Design> {
    let specs = BenchmarkSpec::all();
    specs.par_iter().map(|s| s.generate()).collect()
}

/// The design ids as used in the paper.
pub const DESIGN_IDS: [&str; 5] = ["C1", "C2", "C3", "C4", "C5"];

/// A post-CTS optimization workload: the given design routed and
/// DP-assigned with latency-greedy MOES weights, which leaves skew on the
/// table so the sizing and refinement passes do real work. Shared by the
/// `opt_micro` bin, the `opt_passes`/`opt_schedule` criterion groups and
/// the `baseline --pr4` greedy-vs-annealed snapshot so they all measure
/// the *same* workloads.
pub fn sizing_workload(spec: &BenchmarkSpec) -> (SynthesizedTree, Technology) {
    let tech = Technology::asap7();
    let design = spec.generate();
    let cfg = DpConfig {
        moes: MoesWeights {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            delta: 0.0,
        },
        ..DpConfig::default()
    };
    let mut topo = HierarchicalRouter::new().route(&design, &tech);
    topo.subdivide(40_000);
    let res = run_dp(&topo, &tech, &cfg);
    (SynthesizedTree::new(topo, res.assignment), tech)
}

/// [`sizing_workload`] on C2 (14 338 sinks), the micro-bench default.
pub fn c2_sizing_workload() -> (SynthesizedTree, Technology) {
    sizing_workload(&BenchmarkSpec::c2_swerv_wrapper())
}

/// The Fig. 12 fanout-threshold grid (20..=1000) at the given step. The
/// paper's sweep uses step 10 (99 configurations); `fig12 --quick` and the
/// criterion benches coarsen it. Shared by `fig12`, the `baseline --pr3`
/// snapshot and the `dse_sweep` criterion group so they all measure the
/// same workload.
pub fn fig12_thresholds(step: usize) -> Vec<u32> {
    (20..=1000).step_by(step).collect()
}

/// Refinement config that always fires (zero trigger, several rounds):
/// the forced-pass setting the optimization micro-benches time.
pub fn forced_refine_config() -> SkewConfig {
    SkewConfig {
        trigger_percent: 0.0,
        max_rounds: 8,
        ..SkewConfig::default()
    }
}

/// Returns (creating if needed) the `results/` output directory.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file under `results/`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut text = header.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    std::fs::write(&path, text).expect("write csv");
    path
}

/// A fixed-width text table for terminal output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity");
        self.rows.push(row);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * ncol;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }
}

/// Geometric mean of positive ratios (the paper's "Ratio" row style).
pub fn geomean(vals: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in vals {
        assert!(v > 0.0, "geomean needs positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

/// Formats picoseconds / counts / 1e6-nm consistently with the paper.
pub fn fmt_ps(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats wirelength as `×10^6` nm.
pub fn fmt_wl(nm: i64) -> String {
    format!("{:.3}", nm as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["a", "bb"]);
        t.row(["1", "22"]);
        let s = t.render();
        assert!(s.contains("a"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn all_designs_match_table2() {
        let d = all_designs();
        assert_eq!(d.len(), 5);
        assert_eq!(d[0].sink_count(), 4380);
        assert_eq!(d[1].sink_count(), 14338);
    }
}
