//! Writer/reader for the LEF subset describing the clock cells.
//!
//! The flow only needs macro footprints (buffer, nTSV, flip-flop) and the
//! routing-layer list; electrical data lives in [`dscts_tech`]. Sizes are
//! written in microns, as LEF requires.

use dscts_tech::Technology;
use std::collections::BTreeMap;
use std::fmt;

/// A macro (cell) footprint from a LEF file, in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LefMacro {
    /// Width (nm).
    pub width_nm: i64,
    /// Height (nm).
    pub height_nm: i64,
}

/// Error from [`parse_lef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LefError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LefError {}

/// Emits a LEF snippet with the technology's clock cells and layers.
pub fn write_lef(tech: &Technology) -> String {
    let mut s = String::new();
    s.push_str("VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n");
    s.push_str("UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n");
    for layer in tech.layers() {
        s.push_str(&format!(
            "LAYER {}\n  TYPE ROUTING ;\n  RESISTANCE RPERSQ {} ;\n  CAPACITANCE CPERSQDIST {} ;\nEND {}\n",
            layer.name(),
            layer.res_kohm_per_um(),
            layer.cap_ff_per_um(),
            layer.name()
        ));
    }
    let buf = tech.buffer();
    let (bw, bh) = buf.footprint_nm();
    s.push_str(&macro_block(buf.name(), bw, bh));
    let (vw, vh) = tech.ntsv().footprint_nm();
    s.push_str(&macro_block("NTSV", vw, vh));
    s.push_str(&macro_block("DFFHQNx1_ASAP7_75t_R", 560, 270));
    s.push_str("END LIBRARY\n");
    s
}

fn macro_block(name: &str, w_nm: i64, h_nm: i64) -> String {
    format!(
        "MACRO {name}\n  CLASS CORE ;\n  SIZE {} BY {} ;\nEND {name}\n",
        w_nm as f64 / 1000.0,
        h_nm as f64 / 1000.0
    )
}

/// Parses macro footprints from a LEF text.
///
/// # Errors
///
/// Returns [`LefError`] on malformed `SIZE` statements.
pub fn parse_lef(text: &str) -> Result<BTreeMap<String, LefMacro>, LefError> {
    let mut out = BTreeMap::new();
    let mut current: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.first() {
            Some(&"MACRO") => {
                current = toks.get(1).map(|s| s.to_string());
            }
            Some(&"SIZE") if current.is_some() => {
                // SIZE w BY h ;
                let parse_um = |t: Option<&&str>| -> Option<i64> {
                    t.and_then(|v| v.parse::<f64>().ok())
                        .map(|um| (um * 1000.0).round() as i64)
                };
                let w = parse_um(toks.get(1));
                let h = parse_um(toks.get(3));
                match (w, h) {
                    (Some(width_nm), Some(height_nm)) => {
                        out.insert(
                            current.clone().expect("inside MACRO"),
                            LefMacro {
                                width_nm,
                                height_nm,
                            },
                        );
                    }
                    _ => {
                        return Err(LefError {
                            line: idx + 1,
                            message: "malformed SIZE statement".to_owned(),
                        })
                    }
                }
            }
            Some(&"END") if toks.get(1).map(|s| s.to_string()) == current => {
                current = None;
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_footprints() {
        let tech = Technology::asap7();
        let text = write_lef(&tech);
        let macros = parse_lef(&text).unwrap();
        let buf = macros.get(tech.buffer().name()).unwrap();
        assert_eq!((buf.width_nm, buf.height_nm), tech.buffer().footprint_nm());
        let ntsv = macros.get("NTSV").unwrap();
        assert_eq!((ntsv.width_nm, ntsv.height_nm), tech.ntsv().footprint_nm());
        assert!(macros.contains_key("DFFHQNx1_ASAP7_75t_R"));
    }

    #[test]
    fn layers_are_emitted() {
        let text = write_lef(&Technology::asap7());
        assert!(text.contains("LAYER M3"));
        assert!(text.contains("LAYER BM1~BM3"));
    }

    #[test]
    fn malformed_size_reports_line() {
        let e = parse_lef("MACRO X\n SIZE nope BY 1 ;\nEND X\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn empty_lef_is_empty_map() {
        assert!(parse_lef("").unwrap().is_empty());
    }
}
