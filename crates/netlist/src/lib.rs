//! Design database, DEF/LEF subset I/O, and synthetic benchmark generation.
//!
//! The paper evaluates on five OpenROAD designs (Table II: `jpeg`,
//! `swerv_wrapper`, `ethmac`, `riscv32i`, `aes`), running the OpenROAD
//! backend to obtain placed DEF files. Those flows (and the designs'
//! RTL) are outside this repository, so `benchgen` synthesizes placed
//! designs with the **same statistics** — cell count, flip-flop count and
//! utilization — on an ASAP7-like floorplan. Every CTS algorithm in this
//! workspace consumes only the data modelled here: sink locations and
//! capacitances, the clock root, the die box, and macro keep-outs.
//!
//! A lightweight reader/writer for the placed-DEF subset ([`def`]) and a
//! LEF subset ([`lef`]) make the substrate round-trippable, mirroring how
//! the paper's flow passes `post-place`/`post-cts` DEFs between tools.
//!
//! # Example
//!
//! ```
//! use dscts_netlist::BenchmarkSpec;
//!
//! let design = BenchmarkSpec::c4_riscv32i().generate();
//! assert_eq!(design.sinks.len(), 1056); // #FFs from Table II
//! let def = dscts_netlist::def::write_def(&design);
//! let back = dscts_netlist::def::parse_def(&def).unwrap();
//! assert_eq!(back.sinks.len(), design.sinks.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchgen;
pub mod def;
mod design;
pub mod lef;

pub use benchgen::BenchmarkSpec;
pub use design::{Design, Macro, Sink};
