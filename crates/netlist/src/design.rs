use dscts_geom::{Point, Rect};

/// A clock sink: a flip-flop clock pin to be driven by the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Sink {
    /// Instance name (e.g. `"ff_01234"`).
    pub name: String,
    /// Placed location of the clock pin (nm).
    pub pos: Point,
    /// Clock-pin input capacitance (fF).
    pub cap_ff: f64,
}

/// A placed macro block; clock cells and sinks avoid its area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Macro {
    /// Instance name.
    pub name: String,
    /// Occupied area (nm).
    pub rect: Rect,
}

/// A placed design, as consumed by every CTS flow in this workspace.
///
/// This is the post-placement view: standard cells are summarised by count
/// (they matter only for floorplan sizing), while clock sinks are explicit.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Design name (e.g. `"jpeg"`).
    pub name: String,
    /// Die area (nm).
    pub die: Rect,
    /// Core placement area (nm).
    pub core: Rect,
    /// Location of the clock entry point (root driver output).
    pub clock_root: Point,
    /// All clock sinks.
    pub sinks: Vec<Sink>,
    /// Macro keep-outs.
    pub macros: Vec<Macro>,
    /// Total standard-cell count (Table II `#Cells`).
    pub num_cells: usize,
    /// Placement utilization (Table II `Util.`).
    pub utilization: f64,
}

impl Design {
    /// Positions of all sinks, in sink order.
    pub fn sink_positions(&self) -> Vec<Point> {
        self.sinks.iter().map(|s| s.pos).collect()
    }

    /// Number of clock sinks (Table II `#FFs`).
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// Validates structural invariants: sinks inside the core, macros
    /// inside the die, sinks outside macros. Returns the first violation
    /// as text.
    pub fn validate(&self) -> Result<(), String> {
        if !self.die.contains(self.clock_root) {
            return Err(format!("clock root {} outside die", self.clock_root));
        }
        for s in &self.sinks {
            if !self.core.contains(s.pos) {
                return Err(format!("sink {} at {} outside core", s.name, s.pos));
            }
            if s.cap_ff <= 0.0 {
                return Err(format!("sink {} has non-positive cap", s.name));
            }
            for m in &self.macros {
                if m.rect.contains(s.pos) {
                    return Err(format!(
                        "sink {} at {} inside macro {}",
                        s.name, s.pos, m.name
                    ));
                }
            }
        }
        for m in &self.macros {
            if !self.die.intersects(&m.rect) {
                return Err(format!("macro {} outside die", m.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Design {
        Design {
            name: "t".into(),
            die: Rect::new(0, 0, 1000, 1000),
            core: Rect::new(100, 100, 900, 900),
            clock_root: Point::new(500, 100),
            sinks: vec![Sink {
                name: "ff0".into(),
                pos: Point::new(400, 400),
                cap_ff: 1.0,
            }],
            macros: vec![],
            num_cells: 10,
            utilization: 0.5,
        }
    }

    #[test]
    fn valid_design_passes() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn sink_outside_core_fails() {
        let mut d = tiny();
        d.sinks[0].pos = Point::new(50, 50);
        assert!(d.validate().is_err());
    }

    #[test]
    fn sink_in_macro_fails() {
        let mut d = tiny();
        d.macros.push(Macro {
            name: "m".into(),
            rect: Rect::new(300, 300, 500, 500),
        });
        assert!(d.validate().unwrap_err().contains("inside macro"));
    }

    #[test]
    fn zero_cap_sink_fails() {
        let mut d = tiny();
        d.sinks[0].cap_ff = 0.0;
        assert!(d.validate().is_err());
    }
}
