use crate::{Design, Macro, Sink};
use dscts_geom::{Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Average standard-cell area assumed for floorplan sizing (nm²):
/// ASAP7 7.5-track row height (270 nm) × a 500 nm average cell width.
const AVG_CELL_AREA_NM2: f64 = 270.0 * 500.0;

/// Specification of a synthetic placed benchmark.
///
/// The five presets (`c1_jpeg` … `c5_aes`) carry the exact Table II
/// statistics; [`BenchmarkSpec::generate`] turns a spec into a placed
/// [`Design`] deterministically (same spec + seed ⇒ identical design).
///
/// Flip-flops are placed as a mixture of clustered "register banks"
/// (Gaussian blobs, like the post-placement FF distributions of real
/// designs) and a uniform background, dodging macro keep-outs — this is
/// precisely the imbalanced sink distribution that motivates the paper's
/// clustering-driven DME over matching-based DME (§III-B).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name.
    pub name: String,
    /// Total standard cells (Table II `#Cells`).
    pub num_cells: usize,
    /// Flip-flop count = clock sink count (Table II `#FFs`).
    pub num_ffs: usize,
    /// Placement utilization (Table II `Util.`).
    pub utilization: f64,
    /// RNG seed; presets use stable per-design seeds.
    pub seed: u64,
    /// Number of macro keep-outs to synthesize.
    pub macro_count: usize,
    /// Fraction of FFs placed in clustered register banks (rest uniform).
    pub bank_fraction: f64,
    /// Number of register banks.
    pub bank_count: usize,
    /// Sink clock-pin capacitance (fF).
    pub sink_cap_ff: f64,
    /// Left-to-right density ramp for the uniform background sinks: the
    /// placement density at the right core edge is `1 + density_gradient`
    /// times the density at the left edge (0 = flat, the Table II preset
    /// behaviour — bit-identical to the pre-gradient generator).
    pub density_gradient: f64,
}

impl BenchmarkSpec {
    /// C1 `jpeg`: 54 973 cells, 4 380 FFs, util 0.50.
    pub fn c1_jpeg() -> Self {
        Self::preset("jpeg", 54_973, 4_380, 0.50, 101, 2, 24)
    }

    /// C2 `swerv_wrapper`: 148 407 cells, 14 338 FFs, util 0.40.
    pub fn c2_swerv_wrapper() -> Self {
        Self::preset("swerv_wrapper", 148_407, 14_338, 0.40, 102, 3, 40)
    }

    /// C3 `ethmac`: 56 851 cells, 10 018 FFs, util 0.40.
    pub fn c3_ethmac() -> Self {
        Self::preset("ethmac", 56_851, 10_018, 0.40, 103, 2, 32)
    }

    /// C4 `riscv32i`: 11 579 cells, 1 056 FFs, util 0.50.
    pub fn c4_riscv32i() -> Self {
        Self::preset("riscv32i", 11_579, 1_056, 0.50, 104, 0, 8)
    }

    /// C5 `aes`: 29 306 cells, 2 072 FFs, util 0.50.
    pub fn c5_aes() -> Self {
        Self::preset("aes", 29_306, 2_072, 0.50, 105, 0, 12)
    }

    /// All five Table II benchmarks, in order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::c1_jpeg(),
            Self::c2_swerv_wrapper(),
            Self::c3_ethmac(),
            Self::c4_riscv32i(),
            Self::c5_aes(),
        ]
    }

    fn preset(
        name: &str,
        num_cells: usize,
        num_ffs: usize,
        utilization: f64,
        seed: u64,
        macro_count: usize,
        bank_count: usize,
    ) -> Self {
        BenchmarkSpec {
            name: name.to_owned(),
            num_cells,
            num_ffs,
            utilization,
            seed,
            macro_count,
            bank_fraction: 0.7,
            bank_count,
            sink_cap_ff: 1.1,
            density_gradient: 0.0,
        }
    }

    /// A member of the `scaled(n_sinks, seed)` scaling family: a
    /// reproducible 100k–1M-sink-class design with a clustered floorplan
    /// (bank count grows with the sink count), a left-to-right
    /// sink-density gradient, and macro keep-outs the sinks avoid.
    ///
    /// Same `(n_sinks, seed)` ⇒ bit-identical design; different seeds
    /// reshuffle bank centres and sink positions without changing the
    /// floorplan statistics. Names follow `scaled-{n_sinks}` so bench
    /// tooling can recognize the family.
    ///
    /// # Panics
    ///
    /// Panics if `n_sinks` is zero.
    pub fn scaled(n_sinks: usize, seed: u64) -> Self {
        assert!(n_sinks > 0, "scaling family needs at least one sink");
        BenchmarkSpec {
            name: format!("scaled-{n_sinks}"),
            // SoC-like ratio: ~12 standard cells per flip-flop.
            num_cells: n_sinks.saturating_mul(12),
            num_ffs: n_sinks,
            utilization: 0.55,
            seed: seed ^ (n_sinks as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            // A few large keep-outs; more on the bigger floorplans.
            macro_count: 2 + (n_sinks / 100_000).min(4),
            bank_fraction: 0.6,
            // Bank count grows with design size so the clustered fraction
            // stays clumpy instead of collapsing into a few huge blobs.
            bank_count: (n_sinks / 2_000).clamp(8, 512),
            sink_cap_ff: 1.1,
            density_gradient: 1.5,
        }
    }

    /// Synthesizes the placed design.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero FFs or non-positive
    /// utilization).
    pub fn generate(&self) -> Design {
        assert!(self.num_ffs > 0, "benchmark needs at least one FF");
        assert!(
            self.utilization > 0.0 && self.utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Core area from cell count and utilization; die adds a 2 µm halo.
        let core_area = self.num_cells as f64 * AVG_CELL_AREA_NM2 / self.utilization;
        let side = core_area.sqrt().round() as i64;
        let halo = 2_000;
        let core = Rect::new(0, 0, side, side);
        let die = core.expanded(halo);

        // Macros: tall blocks along the left/top edges, each ~8% of core.
        let mut macros = Vec::new();
        for m in 0..self.macro_count {
            let w = side / 5;
            let h = side / 3;
            let (x, y) = if m % 2 == 0 {
                (0, (m as i64 / 2) * (h + side / 10))
            } else {
                (side - w, side - h - (m as i64 / 2) * (h + side / 10))
            };
            let rect = Rect::new(
                x.clamp(0, side - w),
                y.clamp(0, side - h),
                (x + w).min(side),
                (y + h).min(side),
            );
            macros.push(Macro {
                name: format!("macro_{m}"),
                rect,
            });
        }

        let in_macro = |p: Point, macros: &[Macro]| macros.iter().any(|m| m.rect.contains(p));

        // Register banks: Gaussian blobs with σ ≈ 4 % of the core side.
        let n_banked = (self.num_ffs as f64 * self.bank_fraction) as usize;
        let banks: Vec<Point> = (0..self.bank_count.max(1))
            .map(|_| loop {
                let p = Point::new(rng.random_range(0..=side), rng.random_range(0..=side));
                if !in_macro(p, &macros) {
                    return p;
                }
            })
            .collect();
        let sigma = (side as f64 * 0.04).max(1.0);

        let mut sinks = Vec::with_capacity(self.num_ffs);
        let gradient = self.density_gradient;
        assert!(gradient >= 0.0, "density gradient must be non-negative");
        // Inverse-CDF sample of the linear density ramp f(t) ∝ 1 + g·t
        // over [0, 1]: F(t) = (t + g·t²/2) / (1 + g/2), solved for t.
        let ramp =
            |u: f64, g: f64| -> f64 { ((1.0 + 2.0 * g * u * (1.0 + g / 2.0)).sqrt() - 1.0) / g };
        let place = |rng: &mut SmallRng, banked: bool, idx: usize, banks: &[Point]| -> Point {
            loop {
                let p = if banked {
                    let b = banks[idx % banks.len()];
                    let gauss = |rng: &mut SmallRng| {
                        // Box–Muller from two uniforms.
                        let u1: f64 = rng.random_range(1e-9..1.0);
                        let u2: f64 = rng.random_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    };
                    Point::new(
                        (b.x as f64 + gauss(rng) * sigma).round() as i64,
                        (b.y as f64 + gauss(rng) * sigma).round() as i64,
                    )
                } else if gradient > 0.0 {
                    let u: f64 = rng.random_range(0.0..1.0);
                    let x = (ramp(u, gradient) * side as f64).round() as i64;
                    Point::new(x, rng.random_range(0..=side))
                } else {
                    Point::new(rng.random_range(0..=side), rng.random_range(0..=side))
                };
                let p = core.clamp_point(p);
                if !in_macro(p, &macros) {
                    return p;
                }
            }
        };
        for i in 0..self.num_ffs {
            let banked = i < n_banked;
            let pos = place(&mut rng, banked, i, &banks);
            sinks.push(Sink {
                name: format!("ff_{i:05}"),
                pos,
                cap_ff: self.sink_cap_ff,
            });
        }

        // Clock enters at the bottom-centre of the core, as typical for an
        // external clock pad.
        let clock_root = Point::new(side / 2, 0);

        let d = Design {
            name: self.name.clone(),
            die,
            core,
            clock_root,
            sinks,
            macros,
            num_cells: self.num_cells,
            utilization: self.utilization,
        };
        debug_assert_eq!(d.validate(), Ok(()));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_statistics_are_exact() {
        let specs = BenchmarkSpec::all();
        let expect = [
            ("jpeg", 54_973, 4_380, 0.50),
            ("swerv_wrapper", 148_407, 14_338, 0.40),
            ("ethmac", 56_851, 10_018, 0.40),
            ("riscv32i", 11_579, 1_056, 0.50),
            ("aes", 29_306, 2_072, 0.50),
        ];
        for (spec, (name, cells, ffs, util)) in specs.iter().zip(expect) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.num_cells, cells);
            assert_eq!(spec.num_ffs, ffs);
            assert_eq!(spec.utilization, util);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BenchmarkSpec::c4_riscv32i().generate();
        let b = BenchmarkSpec::c4_riscv32i().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn generated_designs_validate() {
        for spec in BenchmarkSpec::all() {
            let d = spec.generate();
            assert_eq!(d.validate(), Ok(()), "{} invalid", d.name);
            assert_eq!(d.sink_count(), spec.num_ffs);
        }
    }

    #[test]
    fn floorplan_size_is_plausible() {
        // C1 jpeg: ~55k cells at util 0.5 and 0.135 µm²/cell ≈ 122 µm side.
        let d = BenchmarkSpec::c1_jpeg().generate();
        let side_um = d.core.width() as f64 / 1000.0;
        assert!(
            (100.0..150.0).contains(&side_um),
            "unexpected core side {side_um} µm"
        );
    }

    #[test]
    fn sinks_avoid_macros() {
        let d = BenchmarkSpec::c1_jpeg().generate();
        assert!(!d.macros.is_empty());
        for s in &d.sinks {
            for m in &d.macros {
                assert!(!m.rect.contains(s.pos));
            }
        }
    }

    #[test]
    fn banked_placement_is_clumpy() {
        // The banked fraction should give a much smaller mean
        // nearest-bank distance than uniform would.
        let d = BenchmarkSpec::c3_ethmac().generate();
        let side = d.core.width() as f64;
        // Crude clumpiness signal: mean distance to design centroid should
        // be well below the uniform expectation (~0.52 * side for L1).
        let cx = d.sinks.iter().map(|s| s.pos.x).sum::<i64>() / d.sinks.len() as i64;
        let cy = d.sinks.iter().map(|s| s.pos.y).sum::<i64>() / d.sinks.len() as i64;
        let c = Point::new(cx, cy);
        let mean: f64 = d
            .sinks
            .iter()
            .map(|s| s.pos.manhattan(c) as f64)
            .sum::<f64>()
            / d.sinks.len() as f64;
        assert!(mean < 0.52 * side, "mean {mean} vs side {side}");
    }

    #[test]
    fn presets_are_unchanged_by_the_gradient_field() {
        // The gradient defaults to 0 for every preset, which must keep
        // the RNG stream — and therefore every Table II design —
        // bit-identical to the pre-gradient generator.
        for spec in BenchmarkSpec::all() {
            assert_eq!(spec.density_gradient, 0.0);
        }
    }

    #[test]
    fn scaled_family_is_deterministic_and_valid() {
        let a = BenchmarkSpec::scaled(20_000, 1).generate();
        let b = BenchmarkSpec::scaled(20_000, 1).generate();
        assert_eq!(a, b);
        assert_eq!(a.validate(), Ok(()));
        assert_eq!(a.sink_count(), 20_000);
        assert_eq!(a.name, "scaled-20000");
        assert!(!a.macros.is_empty());
        // A different seed reshuffles positions but keeps the statistics.
        let c = BenchmarkSpec::scaled(20_000, 2).generate();
        assert_ne!(a.sinks, c.sinks);
        assert_eq!(c.sink_count(), 20_000);
    }

    #[test]
    fn density_gradient_shifts_background_mass_rightward() {
        let mut flat = BenchmarkSpec::scaled(10_000, 3);
        flat.bank_fraction = 0.0;
        flat.density_gradient = 0.0;
        let mut ramped = flat.clone();
        ramped.density_gradient = 1.5;
        let mean_x = |d: &Design| {
            d.sinks.iter().map(|s| s.pos.x as f64).sum::<f64>()
                / (d.sinks.len() as f64 * d.core.width() as f64)
        };
        let (f, r) = (mean_x(&flat.generate()), mean_x(&ramped.generate()));
        // E[x/side] under f(t) ∝ 1 + 1.5·t is ≈ 0.571 vs 0.5 flat.
        assert!((f - 0.5).abs() < 0.02, "flat mean {f}");
        assert!(r > f + 0.04, "ramped mean {r} vs flat {f}");
    }

    #[test]
    #[should_panic(expected = "at least one FF")]
    fn zero_ffs_rejected() {
        let mut s = BenchmarkSpec::c5_aes();
        s.num_ffs = 0;
        let _ = s.generate();
    }
}
