//! Reader/writer for the placed-DEF subset used by this workspace.
//!
//! The paper's flow exchanges `post-place` and `post-cts` DEF files between
//! OpenROAD and the CTS tool (\[37\]). This module implements the subset those
//! steps need: `DESIGN`, `UNITS`, `DIEAREA`, `ROW` (core box), `COMPONENTS`
//! (flip-flops, and optionally inserted clock cells), and the clock `PINS`
//! entry. Workspace-specific metadata that stock DEF cannot carry (cell
//! count, utilization, macro outlines) travels in `# dscts ...` comment
//! lines, which standard tools ignore and [`parse_def`] understands.
//!
//! One database unit is one nanometre (`UNITS DISTANCE MICRONS 1000`).

use crate::{Design, Macro, Sink};
use dscts_geom::{Point, Rect};
use std::fmt;

/// Error from [`parse_def`], with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for DefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DefError {}

/// An extra placed component to emit (used for post-CTS DEFs carrying the
/// inserted buffers and nTSVs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtraComponent {
    /// Instance name.
    pub name: String,
    /// Cell (master) name.
    pub cell: String,
    /// Placement (nm).
    pub pos: Point,
}

/// Serializes a placed design to DEF.
pub fn write_def(design: &Design) -> String {
    write_def_with_extras(design, &[])
}

/// Serializes a placed design plus extra clock cells (post-CTS view).
pub fn write_def_with_extras(design: &Design, extras: &[ExtraComponent]) -> String {
    let mut s = String::with_capacity(64 * (design.sinks.len() + extras.len()) + 4096);
    s.push_str("VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n");
    s.push_str(&format!("DESIGN {} ;\n", design.name));
    s.push_str("UNITS DISTANCE MICRONS 1000 ;\n");
    s.push_str(&format!("# dscts numCells {}\n", design.num_cells));
    s.push_str(&format!("# dscts utilization {}\n", design.utilization));
    for m in &design.macros {
        s.push_str(&format!(
            "# dscts macro {} {} {} {} {}\n",
            m.name, m.rect.xlo, m.rect.ylo, m.rect.xhi, m.rect.yhi
        ));
    }
    s.push_str(&format!(
        "DIEAREA ( {} {} ) ( {} {} ) ;\n",
        design.die.xlo, design.die.ylo, design.die.xhi, design.die.yhi
    ));
    // Core rows (height 270 nm), from which the parser recovers the core box.
    let row_h = 270;
    let mut y = design.core.ylo;
    let mut row = 0usize;
    while y + row_h <= design.core.yhi {
        s.push_str(&format!(
            "ROW ROW_{row} coreSite {} {} N DO {} BY 1 STEP 270 0 ;\n",
            design.core.xlo,
            y,
            (design.core.width() / 270).max(1)
        ));
        y += row_h;
        row += 1;
    }
    let ncomp = design.sinks.len() + extras.len();
    s.push_str(&format!("COMPONENTS {ncomp} ;\n"));
    for sink in &design.sinks {
        s.push_str(&format!(
            "- {} DFFHQNx1_ASAP7_75t_R + PLACED ( {} {} ) N ;\n",
            sink.name, sink.pos.x, sink.pos.y
        ));
    }
    for e in extras {
        s.push_str(&format!(
            "- {} {} + PLACED ( {} {} ) N ;\n",
            e.name, e.cell, e.pos.x, e.pos.y
        ));
    }
    s.push_str("END COMPONENTS\n");
    s.push_str("PINS 1 ;\n");
    s.push_str(&format!(
        "- clk + NET clk + DIRECTION INPUT + USE CLOCK + PLACED ( {} {} ) N ;\n",
        design.clock_root.x, design.clock_root.y
    ));
    s.push_str("END PINS\n");
    s.push_str("END DESIGN\n");
    s
}

/// Parses the DEF subset produced by [`write_def`] (and by OpenROAD for the
/// constructs this subset covers).
///
/// # Errors
///
/// Returns [`DefError`] on malformed statements or when mandatory sections
/// (`DESIGN`, `DIEAREA`) are missing.
pub fn parse_def(text: &str) -> Result<Design, DefError> {
    let mut name = None;
    let mut die = None;
    let mut core: Option<Rect> = None;
    let mut clock_root = None;
    let mut sinks = Vec::new();
    let mut macros = Vec::new();
    let mut num_cells = 0usize;
    let mut utilization = 0.0f64;
    let mut in_components = false;
    let mut in_pins = false;

    let err = |line: usize, msg: &str| DefError {
        line,
        message: msg.to_owned(),
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if line.starts_with("# dscts ") {
            match toks.get(2) {
                Some(&"numCells") => {
                    num_cells = toks
                        .get(3)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(lineno, "bad numCells"))?;
                }
                Some(&"utilization") => {
                    utilization = toks
                        .get(3)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(lineno, "bad utilization"))?;
                }
                Some(&"macro") => {
                    if toks.len() < 8 {
                        return Err(err(lineno, "bad macro comment"));
                    }
                    let nums: Vec<i64> = toks[4..8]
                        .iter()
                        .map(|t| t.parse())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err(lineno, "bad macro coordinates"))?;
                    macros.push(Macro {
                        name: toks[3].to_owned(),
                        rect: Rect::new(nums[0], nums[1], nums[2], nums[3]),
                    });
                }
                _ => {}
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        match toks[0] {
            "DESIGN" => {
                name = Some(
                    toks.get(1)
                        .ok_or_else(|| err(lineno, "DESIGN missing name"))?
                        .to_string(),
                );
            }
            "DIEAREA" => {
                let nums: Vec<i64> = toks.iter().filter_map(|t| t.parse().ok()).collect();
                if nums.len() < 4 {
                    return Err(err(lineno, "DIEAREA needs two points"));
                }
                die = Some(Rect::new(
                    nums[0].min(nums[2]),
                    nums[1].min(nums[3]),
                    nums[0].max(nums[2]),
                    nums[1].max(nums[3]),
                ));
            }
            "ROW" => {
                // ROW name site x y N DO n BY 1 STEP sx sy ;
                if toks.len() < 9 {
                    return Err(err(lineno, "short ROW statement"));
                }
                let x: i64 = toks[3].parse().map_err(|_| err(lineno, "bad ROW x"))?;
                let y: i64 = toks[4].parse().map_err(|_| err(lineno, "bad ROW y"))?;
                let n: i64 = toks[7].parse().map_err(|_| err(lineno, "bad ROW count"))?;
                let step: i64 = toks.get(10).and_then(|t| t.parse().ok()).unwrap_or(270);
                let row = Rect::new(x, y, x + n * step, y + 270);
                core = Some(match core {
                    None => row,
                    Some(c) => c.union(&row),
                });
            }
            "COMPONENTS" => in_components = true,
            "PINS" => in_pins = true,
            "END" => match toks.get(1) {
                Some(&"COMPONENTS") => in_components = false,
                Some(&"PINS") => in_pins = false,
                _ => {}
            },
            "-" if in_components => {
                // - name cell + PLACED ( x y ) N ;
                let cell = *toks
                    .get(2)
                    .ok_or_else(|| err(lineno, "component missing cell"))?;
                let (x, y) =
                    parse_placed(&toks).ok_or_else(|| err(lineno, "component missing PLACED"))?;
                if cell.contains("DFF") {
                    sinks.push(Sink {
                        name: toks[1].to_owned(),
                        pos: Point::new(x, y),
                        cap_ff: 1.1,
                    });
                }
                // Buffers/nTSVs in post-CTS DEFs are accepted and skipped:
                // the tree structure itself is not representable in DEF.
            }
            "-" if in_pins && (toks.get(1) == Some(&"clk") || line.contains("USE CLOCK")) => {
                if let Some((x, y)) = parse_placed(&toks) {
                    clock_root = Some(Point::new(x, y));
                }
            }
            _ => {}
        }
    }

    let die = die.ok_or_else(|| err(0, "missing DIEAREA"))?;
    let name = name.ok_or_else(|| err(0, "missing DESIGN"))?;
    let core = core.unwrap_or(die);
    let clock_root = clock_root.unwrap_or_else(|| Point::new(core.center().x, core.ylo));
    Ok(Design {
        name,
        die,
        core,
        clock_root,
        sinks,
        macros,
        num_cells,
        utilization,
    })
}

fn parse_placed(toks: &[&str]) -> Option<(i64, i64)> {
    let i = toks.iter().position(|&t| t == "PLACED" || t == "FIXED")?;
    // ... PLACED ( x y ) ...
    let x = toks.get(i + 2)?.parse().ok()?;
    let y = toks.get(i + 3)?.parse().ok()?;
    Some((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchmarkSpec;

    #[test]
    fn roundtrip_preserves_everything_we_model() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let text = write_def(&d);
        let back = parse_def(&text).unwrap();
        assert_eq!(back.name, d.name);
        assert_eq!(back.die, d.die);
        assert_eq!(back.clock_root, d.clock_root);
        assert_eq!(back.sinks.len(), d.sinks.len());
        assert_eq!(back.num_cells, d.num_cells);
        assert_eq!(back.utilization, d.utilization);
        assert_eq!(back.macros, d.macros);
        for (a, b) in back.sinks.iter().zip(&d.sinks) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.pos, b.pos);
        }
        // Core box recovered from rows is within one row of the original.
        assert!((back.core.ylo - d.core.ylo).abs() <= 270);
        assert!((back.core.yhi - d.core.yhi).abs() <= 270);
    }

    #[test]
    fn extras_are_emitted_and_skipped_on_parse() {
        let d = BenchmarkSpec::c4_riscv32i().generate();
        let extras = vec![ExtraComponent {
            name: "clkbuf_0".into(),
            cell: "BUFx4_ASAP7_75t_R".into(),
            pos: Point::new(100, 200),
        }];
        let text = write_def_with_extras(&d, &extras);
        assert!(text.contains("clkbuf_0 BUFx4_ASAP7_75t_R"));
        let back = parse_def(&text).unwrap();
        assert_eq!(back.sinks.len(), d.sinks.len()); // buffer not a sink
    }

    #[test]
    fn missing_diearea_is_an_error() {
        let e = parse_def("DESIGN x ;\n").unwrap_err();
        assert!(e.message.contains("DIEAREA"));
    }

    #[test]
    fn missing_design_is_an_error() {
        let e = parse_def("DIEAREA ( 0 0 ) ( 5 5 ) ;\n").unwrap_err();
        assert!(e.message.contains("DESIGN"));
    }

    #[test]
    fn bad_component_line_reports_line_number() {
        let text = "DESIGN x ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\nCOMPONENTS 1 ;\n- ff1 DFF_X1 ;\nEND COMPONENTS\n";
        let e = parse_def(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn foreign_statements_are_ignored() {
        let text = "VERSION 5.8 ;\nDESIGN y ;\nTRACKS X 0 DO 10 STEP 100 LAYER M1 ;\nDIEAREA ( 0 0 ) ( 100 100 ) ;\nGCELLGRID X 0 DO 5 STEP 20 ;\n";
        let d = parse_def(text).unwrap();
        assert_eq!(d.name, "y");
        assert_eq!(d.sinks.len(), 0);
    }
}
