use crate::nldm::NldmTable;

/// The natural log of 9, relating the Elmore time constant of an RC stage to
/// its 10–90 % transition time (`slew ≈ ln(9)·RC`).
pub const LN9: f64 = 2.197_224_577_336_22;

/// A clock buffer model.
///
/// Two delay views are provided:
///
/// * the **linearised** view `d = d_intr + R_drv·C_load` used inside the
///   dynamic program (the paper's Eq. (1) constant `D_buf` is the
///   `R_drv = 0` special case — keeping `R_drv` makes load shielding
///   first-class, which §II-B calls out as the reason buffers beat nTSVs at
///   driving heavy loads);
/// * the **NLDM** view via 2-D slew × load table lookup, used by the final
///   evaluation pass, mirroring OpenROAD's use of ASAP7's Liberty data.
///
/// ```
/// use dscts_tech::BufferModel;
/// let buf = BufferModel::asap7_bufx4();
/// let d_light = buf.delay_ps(5.0);
/// let d_heavy = buf.delay_ps(60.0);
/// assert!(d_heavy > d_light);
/// // NLDM at nominal slew agrees with the linear model within 10 %:
/// let nldm = buf.delay_nldm_ps(buf.nominal_slew_ps(), 30.0);
/// assert!((nldm - buf.delay_ps(30.0)).abs() / buf.delay_ps(30.0) < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BufferModel {
    name: String,
    input_cap_ff: f64,
    drive_res_kohm: f64,
    intrinsic_delay_ps: f64,
    max_load_ff: f64,
    width_nm: i64,
    height_nm: i64,
    nominal_slew_ps: f64,
    delay_table: NldmTable,
    slew_table: NldmTable,
}

impl BufferModel {
    /// Builds a buffer model from its linearised electrical parameters; the
    /// NLDM tables are synthesized to match (see [`NldmTable`]).
    ///
    /// # Panics
    ///
    /// Panics if any electrical parameter is non-positive (zero drive
    /// resistance is allowed, giving the paper's constant-`D_buf` model).
    pub fn new(
        name: impl Into<String>,
        input_cap_ff: f64,
        drive_res_kohm: f64,
        intrinsic_delay_ps: f64,
        max_load_ff: f64,
        width_nm: i64,
        height_nm: i64,
    ) -> Self {
        assert!(input_cap_ff > 0.0, "input cap must be positive");
        assert!(drive_res_kohm >= 0.0, "drive resistance must be >= 0");
        assert!(intrinsic_delay_ps > 0.0, "intrinsic delay must be positive");
        assert!(max_load_ff > 0.0, "max load must be positive");
        let nominal_slew_ps = 20.0;
        // Synthetic NLDM: linear drive model at nominal slew plus a mild
        // input-slew sensitivity (~6 % of the slew excess), which is the
        // typical first-order behaviour of ASAP7 buffer tables.
        let slew_axis = vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0];
        let load_axis = vec![1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0];
        let d0 = intrinsic_delay_ps;
        let r = drive_res_kohm;
        let delay_table = NldmTable::from_fn(slew_axis.clone(), load_axis.clone(), |s, l| {
            d0 + r * l + 0.06 * (s - nominal_slew_ps)
        })
        .expect("synthetic delay table is well-formed");
        // Output slew: dominated by the drive RC stage, floored at a fast
        // intrinsic edge, with weak input-slew feed-through.
        let slew_table = NldmTable::from_fn(slew_axis, load_axis, |s, l| {
            (LN9 * r * l).max(8.0) + 0.05 * s
        })
        .expect("synthetic slew table is well-formed");
        BufferModel {
            name: name.into(),
            input_cap_ff,
            drive_res_kohm,
            intrinsic_delay_ps,
            max_load_ff,
            width_nm,
            height_nm,
            nominal_slew_ps,
            delay_table,
            slew_table,
        }
    }

    /// The `BUFx4_ASAP7_75t_R`-like buffer used by the paper (footprint
    /// 378 nm × 270 nm, aligned to the 7.5-track ASAP7 row). Drive
    /// parameters are calibrated to ASAP7 RVT x4 strength: ~0.28 kΩ
    /// effective drive and ~9 ps intrinsic delay, so a leaf stage driving
    /// 60 fF costs ≈ 26 ps — keeping trunk wire RC (the quantity back-side
    /// metal improves) a first-order term, as in the paper's evaluation.
    pub fn asap7_bufx4() -> Self {
        BufferModel::new("BUFx4_ASAP7_75t_R", 2.0, 0.28, 9.0, 80.0, 378, 270)
    }

    /// A copy of this buffer with its delay (and output-slew) behaviour
    /// scaled by `factor`, for PVT corner derating: the linearised view
    /// scales `d_intr` and `R_drv` (so `d = f·d_intr + f·R_drv·C_load`
    /// for every load) and the NLDM view scales both lookup tables via
    /// [`NldmTable::scaled`]. Input capacitance, maximum load and the
    /// footprint are corner-invariant, so a derated buffer presents the
    /// same electrical boundary to the DP and only times differently.
    ///
    /// `factor == 1.0` returns a bit-identical model.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn derated(&self, factor: f64) -> BufferModel {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "buffer derate factor must be positive and finite"
        );
        BufferModel {
            name: self.name.clone(),
            input_cap_ff: self.input_cap_ff,
            drive_res_kohm: self.drive_res_kohm * factor,
            intrinsic_delay_ps: self.intrinsic_delay_ps * factor,
            max_load_ff: self.max_load_ff,
            width_nm: self.width_nm,
            height_nm: self.height_nm,
            nominal_slew_ps: self.nominal_slew_ps,
            delay_table: self.delay_table.scaled(factor),
            slew_table: self.slew_table.scaled(factor),
        }
    }

    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input (clock pin) capacitance presented upstream (fF).
    pub fn input_cap_ff(&self) -> f64 {
        self.input_cap_ff
    }

    /// Linearised output drive resistance (kΩ).
    pub fn drive_res_kohm(&self) -> f64 {
        self.drive_res_kohm
    }

    /// Intrinsic (zero-load) delay (ps).
    pub fn intrinsic_delay_ps(&self) -> f64 {
        self.intrinsic_delay_ps
    }

    /// Maximum load this buffer may drive (fF).
    pub fn max_load_ff(&self) -> f64 {
        self.max_load_ff
    }

    /// Cell footprint (nm).
    pub fn footprint_nm(&self) -> (i64, i64) {
        (self.width_nm, self.height_nm)
    }

    /// The input slew at which the NLDM tables were calibrated (ps).
    pub fn nominal_slew_ps(&self) -> f64 {
        self.nominal_slew_ps
    }

    /// Linearised delay `d_intr + R_drv·C_load` (ps).
    pub fn delay_ps(&self, load_ff: f64) -> f64 {
        self.intrinsic_delay_ps + self.drive_res_kohm * load_ff
    }

    /// NLDM table delay lookup (ps).
    pub fn delay_nldm_ps(&self, input_slew_ps: f64, load_ff: f64) -> f64 {
        self.delay_table.lookup(input_slew_ps, load_ff)
    }

    /// NLDM table output-slew lookup (ps).
    pub fn output_slew_ps(&self, input_slew_ps: f64, load_ff: f64) -> f64 {
        self.slew_table.lookup(input_slew_ps, load_ff)
    }

    /// The raw delay table (for reporting).
    pub fn delay_table(&self) -> &NldmTable {
        &self.delay_table
    }

    /// The raw output-slew table (for reporting).
    pub fn slew_table(&self) -> &NldmTable {
        &self.slew_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_footprint() {
        // 0.378 µm x 0.27 µm per §IV-A.
        let b = BufferModel::asap7_bufx4();
        assert_eq!(b.footprint_nm(), (378, 270));
        assert_eq!(b.name(), "BUFx4_ASAP7_75t_R");
    }

    #[test]
    fn linear_delay_model() {
        let b = BufferModel::asap7_bufx4();
        let d0 = b.delay_ps(0.0);
        assert!((d0 - b.intrinsic_delay_ps()).abs() < 1e-12);
        let slope = (b.delay_ps(10.0) - d0) / 10.0;
        assert!((slope - b.drive_res_kohm()).abs() < 1e-12);
    }

    #[test]
    fn nldm_monotone_in_load() {
        let b = BufferModel::asap7_bufx4();
        let mut prev = 0.0;
        for load in [1.0, 5.0, 15.0, 40.0, 80.0] {
            let d = b.delay_nldm_ps(20.0, load);
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn slew_has_floor() {
        let b = BufferModel::asap7_bufx4();
        // Tiny loads still produce a non-zero output edge.
        assert!(b.output_slew_ps(20.0, 1.0) >= 8.0);
        // Heavy loads degrade slew.
        assert!(b.output_slew_ps(20.0, 80.0) > b.output_slew_ps(20.0, 5.0));
    }

    #[test]
    fn zero_drive_resistance_is_constant_dbuf() {
        // The paper's Eq. (1) model: constant buffer delay.
        let b = BufferModel::new("IDEAL", 1.0, 0.0, 10.0, 50.0, 100, 100);
        assert_eq!(b.delay_ps(0.0), b.delay_ps(49.0));
    }

    #[test]
    #[should_panic(expected = "input cap")]
    fn rejects_zero_input_cap() {
        let _ = BufferModel::new("bad", 0.0, 0.5, 10.0, 50.0, 1, 1);
    }

    #[test]
    fn derated_scales_both_delay_views() {
        let b = BufferModel::asap7_bufx4();
        let slow = b.derated(1.2);
        // Linearised view scales exactly.
        assert!((slow.delay_ps(30.0) - 1.2 * b.delay_ps(30.0)).abs() < 1e-12);
        // NLDM view scales exactly (uniform table scaling commutes with
        // bilinear interpolation).
        assert!((slow.delay_nldm_ps(20.0, 30.0) - 1.2 * b.delay_nldm_ps(20.0, 30.0)).abs() < 1e-12);
        assert!(
            (slow.output_slew_ps(20.0, 30.0) - 1.2 * b.output_slew_ps(20.0, 30.0)).abs() < 1e-12
        );
        // Electrical boundary is corner-invariant.
        assert_eq!(slow.input_cap_ff(), b.input_cap_ff());
        assert_eq!(slow.max_load_ff(), b.max_load_ff());
        assert_eq!(slow.footprint_nm(), b.footprint_nm());
    }

    #[test]
    fn nominal_derate_is_bit_identical() {
        let b = BufferModel::asap7_bufx4();
        assert_eq!(b.derated(1.0), b);
    }
}
