use std::fmt;

/// Per-nm wire parasitics of a routing layer.
///
/// The product `res_per_nm * cap_per_nm * L²` is the classic distributed-RC
/// figure of merit; the L-type Elmore model used throughout this workspace
/// charges the *full* segment capacitance through the full segment
/// resistance (see `dscts-timing`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRc {
    /// Wire resistance per nanometre (kΩ/nm).
    pub res_per_nm: f64,
    /// Wire capacitance per nanometre (fF/nm).
    pub cap_per_nm: f64,
}

impl WireRc {
    /// Resistance of a segment of `len_nm` nanometres (kΩ).
    pub fn res(&self, len_nm: i64) -> f64 {
        self.res_per_nm * len_nm as f64
    }

    /// Capacitance of a segment of `len_nm` nanometres (fF).
    pub fn cap(&self, len_nm: i64) -> f64 {
        self.cap_per_nm * len_nm as f64
    }
}

/// A metal routing layer with Table I unit parasitics (entered per µm).
///
/// ```
/// use dscts_tech::Layer;
/// let m3 = Layer::new("M3", 0.024222, 0.12918);
/// assert_eq!(m3.name(), "M3");
/// // Per-nm accessors divide by 1000:
/// assert!((m3.rc().res_per_nm - 0.024222e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    name: String,
    res_kohm_per_um: f64,
    cap_ff_per_um: f64,
}

impl Layer {
    /// Creates a layer from its Table-I-style unit parasitics.
    ///
    /// # Panics
    ///
    /// Panics if either parasitic is not positive and finite.
    pub fn new(name: impl Into<String>, res_kohm_per_um: f64, cap_ff_per_um: f64) -> Self {
        assert!(
            res_kohm_per_um > 0.0 && res_kohm_per_um.is_finite(),
            "unit resistance must be positive"
        );
        assert!(
            cap_ff_per_um > 0.0 && cap_ff_per_um.is_finite(),
            "unit capacitance must be positive"
        );
        Layer {
            name: name.into(),
            res_kohm_per_um,
            cap_ff_per_um,
        }
    }

    /// A copy of this layer with unit resistance and capacitance scaled
    /// by `res_factor` / `cap_factor`, for PVT corner derating. Factors of
    /// `1.0` return a bit-identical layer.
    ///
    /// # Panics
    ///
    /// Panics if either factor is not positive and finite (via
    /// [`Layer::new`]'s parasitic validation).
    pub fn derated(&self, res_factor: f64, cap_factor: f64) -> Layer {
        Layer::new(
            self.name.clone(),
            self.res_kohm_per_um * res_factor,
            self.cap_ff_per_um * cap_factor,
        )
    }

    /// Layer name (e.g. `"M3"`, `"BM1~BM3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit resistance as given in Table I (kΩ/µm).
    pub fn res_kohm_per_um(&self) -> f64 {
        self.res_kohm_per_um
    }

    /// Unit capacitance as given in Table I (fF/µm).
    pub fn cap_ff_per_um(&self) -> f64 {
        self.cap_ff_per_um
    }

    /// Per-nm parasitics used by the timing engine.
    pub fn rc(&self) -> WireRc {
        WireRc {
            res_per_nm: self.res_kohm_per_um * 1e-3,
            cap_per_nm: self.cap_ff_per_um * 1e-3,
        }
    }

    /// The full Table I of the paper: the ASAP7 front-side stack M1–M9 plus
    /// the merged back-side entry BM1~BM3 (Chen et al., IEDM 2021).
    pub fn asap7_table() -> Vec<Layer> {
        vec![
            Layer::new("M1", 0.138890, 0.11368),
            Layer::new("M2", 0.024222, 0.13426),
            Layer::new("M3", 0.024222, 0.12918),
            Layer::new("M4", 0.016778, 0.11396),
            Layer::new("M5", 0.014677, 0.13323),
            Layer::new("M6", 0.010371, 0.11575),
            Layer::new("M7", 0.009672, 0.13293),
            Layer::new("M8", 0.007431, 0.11822),
            Layer::new("M9", 0.006874, 0.13497),
            Layer::new("BM1~BM3", 0.000384, 0.116264),
        ]
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} kΩ/µm, {} fF/µm",
            self.name, self.res_kohm_per_um, self.cap_ff_per_um
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_parasitics_scale_linearly() {
        let rc = Layer::new("M3", 0.024222, 0.12918).rc();
        let r20 = rc.res(20_000); // 20 µm
        assert!((r20 - 0.024222 * 20.0).abs() < 1e-9);
        let c20 = rc.cap(20_000);
        assert!((c20 - 0.12918 * 20.0).abs() < 1e-9);
        assert_eq!(rc.res(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "unit resistance")]
    fn rejects_zero_resistance() {
        let _ = Layer::new("bad", 0.0, 0.1);
    }

    #[test]
    fn table_ordering_front_to_back() {
        let t = Layer::asap7_table();
        assert_eq!(t.first().unwrap().name(), "M1");
        assert_eq!(t.last().unwrap().name(), "BM1~BM3");
        // Back-side resistance is the lowest in the table.
        let min = t
            .iter()
            .map(|l| l.res_kohm_per_um())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, t.last().unwrap().res_kohm_per_um());
    }

    #[test]
    fn display_contains_name() {
        let l = Layer::new("M5", 0.014677, 0.13323);
        assert!(l.to_string().contains("M5"));
    }
}
