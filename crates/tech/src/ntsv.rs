/// A nano-Through-Silicon-Via model.
///
/// An nTSV connects a front-side wire to a back-side wire. Electrically it
/// is a series resistance with a lumped capacitance (evaluated with the same
/// L-type Elmore convention as wires — this reproduces the paper's Eq. (2)
/// exactly, see `dscts-timing`). Unlike a buffer it provides **no load
/// shielding**: all downstream capacitance remains visible upstream, which
/// is the core electrical trade-off the concurrent DP navigates.
///
/// ```
/// use dscts_tech::NtsvModel;
/// let v = NtsvModel::iedm21();
/// assert_eq!(v.res_kohm(), 0.020);
/// assert_eq!(v.cap_ff(), 0.004);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NtsvModel {
    res_kohm: f64,
    cap_ff: f64,
    width_nm: i64,
    height_nm: i64,
}

impl NtsvModel {
    /// Creates an nTSV model.
    ///
    /// # Panics
    ///
    /// Panics if resistance or capacitance is not positive.
    pub fn new(res_kohm: f64, cap_ff: f64, width_nm: i64, height_nm: i64) -> Self {
        assert!(res_kohm > 0.0, "nTSV resistance must be positive");
        assert!(cap_ff > 0.0, "nTSV capacitance must be positive");
        NtsvModel {
            res_kohm,
            cap_ff,
            width_nm,
            height_nm,
        }
    }

    /// The paper's nTSV: 0.020 kΩ, 0.004 fF, 270 nm × 270 nm footprint
    /// (values from Chen et al., IEDM 2021, quoted in §IV-A).
    pub fn iedm21() -> Self {
        NtsvModel::new(0.020, 0.004, 270, 270)
    }

    /// A copy of this nTSV with resistance and capacitance scaled by
    /// `res_factor` / `cap_factor`, for PVT corner derating (the footprint
    /// is corner-invariant). Factors of `1.0` return a bit-identical
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if either factor is not positive and finite.
    pub fn derated(&self, res_factor: f64, cap_factor: f64) -> NtsvModel {
        assert!(
            res_factor > 0.0 && res_factor.is_finite(),
            "nTSV resistance derate must be positive and finite"
        );
        assert!(
            cap_factor > 0.0 && cap_factor.is_finite(),
            "nTSV capacitance derate must be positive and finite"
        );
        NtsvModel {
            res_kohm: self.res_kohm * res_factor,
            cap_ff: self.cap_ff * cap_factor,
            width_nm: self.width_nm,
            height_nm: self.height_nm,
        }
    }

    /// Series resistance (kΩ).
    pub fn res_kohm(&self) -> f64 {
        self.res_kohm
    }

    /// Lumped capacitance (fF).
    pub fn cap_ff(&self) -> f64 {
        self.cap_ff
    }

    /// Cell footprint (nm).
    pub fn footprint_nm(&self) -> (i64, i64) {
        (self.width_nm, self.height_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let v = NtsvModel::iedm21();
        assert_eq!(v.footprint_nm(), (270, 270));
        // "The resistance and capacitance of one nTSV are 0.020 kΩ and
        // 0.004 fF" (§IV-A).
        assert_eq!(v.res_kohm(), 0.020);
        assert_eq!(v.cap_ff(), 0.004);
    }

    #[test]
    #[should_panic(expected = "resistance")]
    fn rejects_zero_resistance() {
        let _ = NtsvModel::new(0.0, 0.004, 270, 270);
    }

    #[test]
    fn derated_scales_rc_keeps_footprint() {
        let v = NtsvModel::iedm21();
        let slow = v.derated(1.25, 1.1);
        assert!((slow.res_kohm() - 0.020 * 1.25).abs() < 1e-15);
        assert!((slow.cap_ff() - 0.004 * 1.1).abs() < 1e-15);
        assert_eq!(slow.footprint_nm(), v.footprint_nm());
        assert_eq!(v.derated(1.0, 1.0), v);
    }
}
