/// A nano-Through-Silicon-Via model.
///
/// An nTSV connects a front-side wire to a back-side wire. Electrically it
/// is a series resistance with a lumped capacitance (evaluated with the same
/// L-type Elmore convention as wires — this reproduces the paper's Eq. (2)
/// exactly, see `dscts-timing`). Unlike a buffer it provides **no load
/// shielding**: all downstream capacitance remains visible upstream, which
/// is the core electrical trade-off the concurrent DP navigates.
///
/// ```
/// use dscts_tech::NtsvModel;
/// let v = NtsvModel::iedm21();
/// assert_eq!(v.res_kohm(), 0.020);
/// assert_eq!(v.cap_ff(), 0.004);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NtsvModel {
    res_kohm: f64,
    cap_ff: f64,
    width_nm: i64,
    height_nm: i64,
}

impl NtsvModel {
    /// Creates an nTSV model.
    ///
    /// # Panics
    ///
    /// Panics if resistance or capacitance is not positive.
    pub fn new(res_kohm: f64, cap_ff: f64, width_nm: i64, height_nm: i64) -> Self {
        assert!(res_kohm > 0.0, "nTSV resistance must be positive");
        assert!(cap_ff > 0.0, "nTSV capacitance must be positive");
        NtsvModel {
            res_kohm,
            cap_ff,
            width_nm,
            height_nm,
        }
    }

    /// The paper's nTSV: 0.020 kΩ, 0.004 fF, 270 nm × 270 nm footprint
    /// (values from Chen et al., IEDM 2021, quoted in §IV-A).
    pub fn iedm21() -> Self {
        NtsvModel::new(0.020, 0.004, 270, 270)
    }

    /// Series resistance (kΩ).
    pub fn res_kohm(&self) -> f64 {
        self.res_kohm
    }

    /// Lumped capacitance (fF).
    pub fn cap_ff(&self) -> f64 {
        self.cap_ff
    }

    /// Cell footprint (nm).
    pub fn footprint_nm(&self) -> (i64, i64) {
        (self.width_nm, self.height_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let v = NtsvModel::iedm21();
        assert_eq!(v.footprint_nm(), (270, 270));
        // "The resistance and capacitance of one nTSV are 0.020 kΩ and
        // 0.004 fF" (§IV-A).
        assert_eq!(v.res_kohm(), 0.020);
        assert_eq!(v.cap_ff(), 0.004);
    }

    #[test]
    #[should_panic(expected = "resistance")]
    fn rejects_zero_resistance() {
        let _ = NtsvModel::new(0.0, 0.004, 270, 270);
    }
}
