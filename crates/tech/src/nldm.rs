/// A two-dimensional non-linear delay model (NLDM) lookup table.
///
/// Liberty-style cell timing: rows indexed by input slew (ps), columns by
/// output load (fF), values in ps. Lookups bilinearly interpolate and clamp
/// to the table envelope (standard Liberty evaluation semantics).
///
/// The ASAP7 Liberty files themselves are not redistributable here, so
/// [`crate::BufferModel::asap7_bufx4`] synthesizes a table calibrated to the
/// linearised drive model `d = d_intr + R_drv·C_load` at nominal slew, with
/// a mild slew-dependent term — preserving the shape the DP and the final
/// evaluation care about.
///
/// ```
/// use dscts_tech::NldmTable;
/// let t = NldmTable::new(
///     vec![10.0, 50.0],
///     vec![5.0, 50.0],
///     vec![vec![10.0, 30.0], vec![14.0, 34.0]],
/// ).unwrap();
/// // Exact grid point:
/// assert_eq!(t.lookup(10.0, 5.0), 10.0);
/// // Interpolated midpoint:
/// assert!((t.lookup(30.0, 27.5) - 22.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NldmTable {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    values: Vec<Vec<f64>>, // [slew][load]
}

/// Error constructing an [`NldmTable`] from inconsistent data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NldmError {
    /// An axis is empty or not strictly increasing.
    BadAxis(&'static str),
    /// The value matrix shape does not match the axes.
    ShapeMismatch,
}

impl std::fmt::Display for NldmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NldmError::BadAxis(which) => {
                write!(
                    f,
                    "axis `{which}` must be non-empty and strictly increasing"
                )
            }
            NldmError::ShapeMismatch => write!(f, "value matrix shape does not match axes"),
        }
    }
}

impl std::error::Error for NldmError {}

impl NldmTable {
    /// Builds a table from its axes and value matrix (`values[i][j]` is the
    /// value at `slew_axis[i]`, `load_axis[j]`).
    ///
    /// # Errors
    ///
    /// Returns [`NldmError`] if an axis is empty or not strictly increasing,
    /// or if the matrix shape disagrees with the axes.
    pub fn new(
        slew_axis: Vec<f64>,
        load_axis: Vec<f64>,
        values: Vec<Vec<f64>>,
    ) -> Result<Self, NldmError> {
        fn increasing(a: &[f64]) -> bool {
            !a.is_empty() && a.windows(2).all(|w| w[0] < w[1])
        }
        if !increasing(&slew_axis) {
            return Err(NldmError::BadAxis("slew"));
        }
        if !increasing(&load_axis) {
            return Err(NldmError::BadAxis("load"));
        }
        if values.len() != slew_axis.len() || values.iter().any(|r| r.len() != load_axis.len()) {
            return Err(NldmError::ShapeMismatch);
        }
        Ok(NldmTable {
            slew_axis,
            load_axis,
            values,
        })
    }

    /// Synthesizes a table from a generator function `f(slew, load)`.
    pub fn from_fn(
        slew_axis: Vec<f64>,
        load_axis: Vec<f64>,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Self, NldmError> {
        let values = slew_axis
            .iter()
            .map(|&s| load_axis.iter().map(|&l| f(s, l)).collect())
            .collect();
        NldmTable::new(slew_axis, load_axis, values)
    }

    /// A copy of this table with every value multiplied by `factor` —
    /// the table-scaling constructor corner derating uses: a slow (SS)
    /// corner scales a cell's delay and output-slew surfaces up uniformly
    /// while the slew/load axes (the lookup coordinates) stay put, which
    /// is exactly how Liberty `k_factor` derates compose with NLDM data.
    ///
    /// Scaling by `1.0` returns a bit-identical table (`x * 1.0` preserves
    /// every finite `f64`), so a nominal corner built through the derating
    /// path evaluates exactly like the base technology.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> NldmTable {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "NLDM scale factor must be positive and finite"
        );
        NldmTable {
            slew_axis: self.slew_axis.clone(),
            load_axis: self.load_axis.clone(),
            values: self
                .values
                .iter()
                .map(|row| row.iter().map(|&v| v * factor).collect())
                .collect(),
        }
    }

    /// Bilinearly interpolated lookup, clamped to the table envelope.
    pub fn lookup(&self, slew_ps: f64, load_ff: f64) -> f64 {
        let (i0, i1, ft) = Self::bracket(&self.slew_axis, slew_ps);
        let (j0, j1, fl) = Self::bracket(&self.load_axis, load_ff);
        let v00 = self.values[i0][j0];
        let v01 = self.values[i0][j1];
        let v10 = self.values[i1][j0];
        let v11 = self.values[i1][j1];
        let a = v00 + (v01 - v00) * fl;
        let b = v10 + (v11 - v10) * fl;
        a + (b - a) * ft
    }

    /// Index axes for reporting.
    pub fn axes(&self) -> (&[f64], &[f64]) {
        (&self.slew_axis, &self.load_axis)
    }

    fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
        if axis.len() == 1 || x <= axis[0] {
            return (0, 0, 0.0);
        }
        let last = axis.len() - 1;
        if x >= axis[last] {
            return (last, last, 0.0);
        }
        let hi = axis.partition_point(|&a| a <= x);
        let lo = hi - 1;
        let frac = (x - axis[lo]) / (axis[hi] - axis[lo]);
        (lo, hi, frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> NldmTable {
        NldmTable::new(
            vec![5.0, 20.0, 80.0],
            vec![1.0, 10.0, 100.0],
            vec![
                vec![8.0, 12.0, 40.0],
                vec![9.0, 13.0, 41.0],
                vec![12.0, 16.0, 44.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn exact_grid_points() {
        let t = table();
        assert_eq!(t.lookup(5.0, 1.0), 8.0);
        assert_eq!(t.lookup(80.0, 100.0), 44.0);
        assert_eq!(t.lookup(20.0, 10.0), 13.0);
    }

    #[test]
    fn clamps_outside_envelope() {
        let t = table();
        assert_eq!(t.lookup(0.0, 0.0), 8.0);
        assert_eq!(t.lookup(1e9, 1e9), 44.0);
    }

    #[test]
    fn interpolation_is_monotone_for_monotone_table() {
        let t = table();
        let mut prev = f64::NEG_INFINITY;
        for load in [1.0, 3.0, 9.0, 30.0, 70.0, 100.0] {
            let v = t.lookup(20.0, load);
            assert!(v >= prev, "monotone in load");
            prev = v;
        }
    }

    #[test]
    fn rejects_non_increasing_axis() {
        let err = NldmTable::new(vec![1.0, 1.0], vec![1.0], vec![vec![0.0], vec![0.0]]);
        assert_eq!(err.unwrap_err(), NldmError::BadAxis("slew"));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let err = NldmTable::new(vec![1.0, 2.0], vec![1.0], vec![vec![0.0]]);
        assert_eq!(err.unwrap_err(), NldmError::ShapeMismatch);
    }

    #[test]
    fn from_fn_matches_generator_on_grid() {
        let t = NldmTable::from_fn(vec![1.0, 2.0], vec![3.0, 4.0], |s, l| s * 10.0 + l).unwrap();
        assert_eq!(t.lookup(2.0, 3.0), 23.0);
    }

    #[test]
    fn scaled_scales_values_not_axes() {
        let t = table();
        let s = t.scaled(1.25);
        assert_eq!(s.axes(), t.axes());
        assert_eq!(s.lookup(5.0, 1.0), 8.0 * 1.25);
        // Interpolation commutes with uniform value scaling.
        assert!((s.lookup(30.0, 27.5) - 1.25 * t.lookup(30.0, 27.5)).abs() < 1e-12);
    }

    #[test]
    fn unit_scale_is_bit_identical() {
        let t = table();
        assert_eq!(t.scaled(1.0), t);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn scaled_rejects_nan() {
        let _ = table().scaled(f64::NAN);
    }
}
