//! PVT corner modelling for multi-corner (MCMM) double-side CTS.
//!
//! The paper evaluates under a single nominal delay model, but sign-off
//! is multi-corner: front-side BEOL, back-side metal, nano-TSVs and
//! buffer cells all derate *differently* across process/voltage/
//! temperature corners, so a tree sized at nominal can be badly skewed
//! at SS. This module captures one corner as a set of validated
//! multiplicative derates over a base [`Technology`]:
//!
//! * [`WireDerate`] — per-side wire resistance/capacitance factors;
//! * [`DerateFactors`] — the full factor set of one corner (front wire,
//!   back wire, buffer delay, nTSV RC);
//! * [`Corner`] — a named, validated factor set, expanded into a derated
//!   [`Technology`] by [`Technology::derated`] (which also scales the
//!   buffer's NLDM tables, see [`crate::NldmTable::scaled`]);
//! * [`CornerSet`] — K corners expanded over one base technology, with
//!   a designated nominal corner; [`CornerSet::asap7_pvt`] builds the
//!   ASAP7-flavoured SS/TT/FF preset the MCMM engine and benches use.
//!
//! Derating by `1.0` everywhere is *bit-identical* to the base
//! technology (uniform `f64` scaling by one preserves every value), so a
//! single-nominal-corner MCMM evaluation reproduces the nominal engine
//! exactly — the invariant `dscts-core`'s `mcmm_proptests` enforce.

use crate::{TechError, Technology};
use std::fmt;

/// Multiplicative derates a corner applies to one wire stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireDerate {
    /// Unit-resistance factor.
    pub res: f64,
    /// Unit-capacitance factor.
    pub cap: f64,
}

impl WireDerate {
    /// The identity derate (factors of `1.0`).
    pub const NOMINAL: WireDerate = WireDerate { res: 1.0, cap: 1.0 };
}

/// The full multiplicative derate set of one PVT corner.
///
/// Front- and back-side wires derate independently (conventional BEOL
/// and backside metal are different process steps with different
/// variation), buffers derate through one delay factor applied to both
/// the linearised and the NLDM delay views, and nTSVs derate their
/// series resistance and lumped capacitance. Sink pin capacitances are
/// design data copied into the routed topology and are not corner-scaled
/// here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerateFactors {
    /// Front-side (BEOL) wire derates.
    pub front_wire: WireDerate,
    /// Back-side metal wire derates.
    pub back_wire: WireDerate,
    /// Buffer delay/slew factor (scales `d_intr`, `R_drv` and both NLDM
    /// tables, see [`crate::BufferModel::derated`]).
    pub buffer_delay: f64,
    /// nTSV series-resistance / lumped-capacitance derates.
    pub ntsv: WireDerate,
}

impl DerateFactors {
    /// The identity factor set (every factor `1.0`).
    pub fn nominal() -> DerateFactors {
        DerateFactors {
            front_wire: WireDerate::NOMINAL,
            back_wire: WireDerate::NOMINAL,
            buffer_delay: 1.0,
            ntsv: WireDerate::NOMINAL,
        }
    }

    /// Checks every factor is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::BadDerate`] naming the first offending
    /// factor (non-positive, NaN or infinite).
    pub fn validate(&self) -> Result<(), TechError> {
        let checks = [
            (self.front_wire.res, "front_wire.res"),
            (self.front_wire.cap, "front_wire.cap"),
            (self.back_wire.res, "back_wire.res"),
            (self.back_wire.cap, "back_wire.cap"),
            (self.buffer_delay, "buffer_delay"),
            (self.ntsv.res, "ntsv.res"),
            (self.ntsv.cap, "ntsv.cap"),
        ];
        for (v, what) in checks {
            if !(v > 0.0 && v.is_finite()) {
                return Err(TechError::BadDerate(what));
            }
        }
        Ok(())
    }
}

impl Default for DerateFactors {
    fn default() -> Self {
        DerateFactors::nominal()
    }
}

/// A named, validated PVT corner: a [`DerateFactors`] set plus the name
/// it reports under (`"SS"`, `"TT"`, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    name: String,
    derate: DerateFactors,
}

impl Corner {
    /// A corner from a name and a factor set.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::BadDerate`] when any factor is non-positive
    /// or not finite.
    pub fn new(name: impl Into<String>, derate: DerateFactors) -> Result<Corner, TechError> {
        derate.validate()?;
        Ok(Corner {
            name: name.into(),
            derate,
        })
    }

    /// The identity corner: every derate `1.0`, bit-identical timing to
    /// the base technology.
    pub fn nominal(name: impl Into<String>) -> Corner {
        Corner {
            name: name.into(),
            derate: DerateFactors::nominal(),
        }
    }

    /// ASAP7-flavoured slow corner (SSG-like, low V, high T): buffers
    /// slow down much more than wires, front-side BEOL derates more than
    /// the thick backside metal, and nTSV resistance degrades with them.
    pub fn asap7_ss() -> Corner {
        Corner {
            name: "SS".to_owned(),
            derate: DerateFactors {
                front_wire: WireDerate {
                    res: 1.14,
                    cap: 1.06,
                },
                back_wire: WireDerate {
                    res: 1.05,
                    cap: 1.03,
                },
                buffer_delay: 1.28,
                ntsv: WireDerate {
                    res: 1.22,
                    cap: 1.08,
                },
            },
        }
    }

    /// ASAP7-flavoured typical corner (the identity).
    pub fn asap7_tt() -> Corner {
        Corner::nominal("TT")
    }

    /// ASAP7-flavoured fast corner (FFG-like, high V, low T).
    pub fn asap7_ff() -> Corner {
        Corner {
            name: "FF".to_owned(),
            derate: DerateFactors {
                front_wire: WireDerate {
                    res: 0.92,
                    cap: 0.96,
                },
                back_wire: WireDerate {
                    res: 0.97,
                    cap: 0.98,
                },
                buffer_delay: 0.82,
                ntsv: WireDerate {
                    res: 0.85,
                    cap: 0.95,
                },
            },
        }
    }

    /// The corner's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The corner's factor set.
    pub fn derate(&self) -> &DerateFactors {
        &self.derate
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// K corners expanded over one base [`Technology`], with a designated
/// nominal corner.
///
/// Expansion happens once, up front: each corner's factor set is applied
/// to the base technology ([`Technology::derated`], including derated
/// NLDM tables), and the resulting per-corner technologies are owned by
/// the set — the MCMM evaluation engine borrows them for its resident
/// per-corner states.
///
/// ```
/// use dscts_tech::{CornerSet, Technology};
///
/// let set = CornerSet::asap7_pvt(&Technology::asap7());
/// assert_eq!(set.len(), 3);
/// assert_eq!(set.corner(set.nominal_index()).name(), "TT");
/// // SS wires are more resistive than TT wires:
/// let ss = set.tech(0).rc(dscts_tech::Side::Front);
/// let tt = set.nominal_tech().rc(dscts_tech::Side::Front);
/// assert!(ss.res_per_nm > tt.res_per_nm);
/// ```
#[derive(Debug, Clone)]
pub struct CornerSet {
    corners: Vec<Corner>,
    techs: Vec<Technology>,
    nominal: usize,
}

impl CornerSet {
    /// Expands `base` under each of `corners`, designating
    /// `corners[nominal]` as the nominal corner (the one single-corner
    /// flows and report baselines read).
    ///
    /// # Errors
    ///
    /// Returns [`TechError::NoCorners`] for an empty corner list,
    /// [`TechError::BadNominalCorner`] when `nominal` is out of range,
    /// or [`TechError::BadDerate`] when any corner's factors fail
    /// validation.
    pub fn expand(
        base: &Technology,
        corners: Vec<Corner>,
        nominal: usize,
    ) -> Result<CornerSet, TechError> {
        if corners.is_empty() {
            return Err(TechError::NoCorners);
        }
        if nominal >= corners.len() {
            return Err(TechError::BadNominalCorner);
        }
        let techs = corners
            .iter()
            .map(|c| base.derated(c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CornerSet {
            corners,
            techs,
            nominal,
        })
    }

    /// The ASAP7-flavoured three-corner preset: SS / TT / FF, with TT
    /// (index 1) nominal.
    pub fn asap7_pvt(base: &Technology) -> CornerSet {
        CornerSet::expand(
            base,
            vec![Corner::asap7_ss(), Corner::asap7_tt(), Corner::asap7_ff()],
            1,
        )
        .expect("preset corners are valid")
    }

    /// A single-corner set holding only the identity corner — timing is
    /// bit-identical to `base`; used to cross-check the MCMM engine
    /// against the nominal engine.
    pub fn nominal_only(base: &Technology) -> CornerSet {
        CornerSet::expand(base, vec![Corner::nominal("TT")], 0).expect("identity corner is valid")
    }

    /// Number of corners.
    pub fn len(&self) -> usize {
        self.corners.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.corners.is_empty()
    }

    /// The `k`-th corner.
    pub fn corner(&self, k: usize) -> &Corner {
        &self.corners[k]
    }

    /// All corners, in index order.
    pub fn corners(&self) -> &[Corner] {
        &self.corners
    }

    /// The `k`-th corner's expanded technology.
    pub fn tech(&self, k: usize) -> &Technology {
        &self.techs[k]
    }

    /// All expanded technologies, in corner order.
    pub fn techs(&self) -> &[Technology] {
        &self.techs
    }

    /// Index of the nominal corner.
    pub fn nominal_index(&self) -> usize {
        self.nominal
    }

    /// The nominal corner's expanded technology.
    pub fn nominal_tech(&self) -> &Technology {
        &self.techs[self.nominal]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Side;

    #[test]
    fn validate_rejects_each_bad_factor() {
        for (bad, what) in [
            (f64::NAN, "buffer_delay"),
            (0.0, "buffer_delay"),
            (-1.0, "buffer_delay"),
            (f64::INFINITY, "buffer_delay"),
        ] {
            let d = DerateFactors {
                buffer_delay: bad,
                ..DerateFactors::nominal()
            };
            assert_eq!(d.validate(), Err(TechError::BadDerate(what)));
        }
        let d = DerateFactors {
            front_wire: WireDerate {
                res: f64::NAN,
                cap: 1.0,
            },
            ..DerateFactors::nominal()
        };
        assert_eq!(d.validate(), Err(TechError::BadDerate("front_wire.res")));
        let d = DerateFactors {
            ntsv: WireDerate { res: 1.0, cap: 0.0 },
            ..DerateFactors::nominal()
        };
        assert_eq!(d.validate(), Err(TechError::BadDerate("ntsv.cap")));
        assert!(DerateFactors::nominal().validate().is_ok());
    }

    #[test]
    fn corner_new_validates() {
        let err = Corner::new(
            "bad",
            DerateFactors {
                back_wire: WireDerate {
                    res: -2.0,
                    cap: 1.0,
                },
                ..DerateFactors::nominal()
            },
        )
        .unwrap_err();
        assert_eq!(err, TechError::BadDerate("back_wire.res"));
        assert!(err.to_string().contains("back_wire.res"));
    }

    #[test]
    fn derated_technology_scales_per_side() {
        let base = Technology::asap7();
        let ss = base.derated(&Corner::asap7_ss()).unwrap();
        let d = Corner::asap7_ss();
        let f = d.derate();
        let (bf, bb) = (base.rc(Side::Front), base.rc(Side::Back));
        let (sf, sb) = (ss.rc(Side::Front), ss.rc(Side::Back));
        assert!((sf.res_per_nm - bf.res_per_nm * f.front_wire.res).abs() < 1e-15);
        assert!((sf.cap_per_nm - bf.cap_per_nm * f.front_wire.cap).abs() < 1e-15);
        assert!((sb.res_per_nm - bb.res_per_nm * f.back_wire.res).abs() < 1e-15);
        assert!((sb.cap_per_nm - bb.cap_per_nm * f.back_wire.cap).abs() < 1e-15);
        assert!((ss.ntsv().res_kohm() - base.ntsv().res_kohm() * f.ntsv.res).abs() < 1e-15);
        assert!(
            (ss.buffer().delay_ps(10.0) - base.buffer().delay_ps(10.0) * f.buffer_delay).abs()
                < 1e-12
        );
        // Corner-invariant knobs.
        assert_eq!(ss.max_load_ff(), base.max_load_ff());
        assert_eq!(ss.sink_cap_ff(), base.sink_cap_ff());
        assert_eq!(ss.name(), "asap7-backside@SS");
    }

    #[test]
    fn nominal_corner_is_bit_identical_except_name() {
        let base = Technology::asap7();
        let tt = base.derated(&Corner::asap7_tt()).unwrap();
        assert_eq!(tt.buffer(), base.buffer());
        assert_eq!(tt.ntsv(), base.ntsv());
        assert_eq!(tt.layers(), base.layers());
        assert_eq!(tt.name(), "asap7-backside@TT");
    }

    #[test]
    fn corner_set_expands_and_designates_nominal() {
        let base = Technology::asap7();
        let set = CornerSet::asap7_pvt(&base);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.nominal_index(), 1);
        assert_eq!(set.corner(0).name(), "SS");
        assert_eq!(set.corner(1).to_string(), "TT");
        assert_eq!(set.corner(2).name(), "FF");
        assert_eq!(set.techs().len(), 3);
        assert_eq!(set.nominal_tech().buffer(), base.buffer());
        // SS slower than TT slower than FF on the buffer.
        let d = |k: usize| set.tech(k).buffer().delay_ps(30.0);
        assert!(d(0) > d(1) && d(1) > d(2));
    }

    #[test]
    fn corner_set_rejects_bad_inputs() {
        let base = Technology::asap7();
        assert_eq!(
            CornerSet::expand(&base, vec![], 0).unwrap_err(),
            TechError::NoCorners
        );
        assert_eq!(
            CornerSet::expand(&base, vec![Corner::nominal("TT")], 1).unwrap_err(),
            TechError::BadNominalCorner
        );
    }

    #[test]
    fn nominal_only_set_is_single_identity() {
        let base = Technology::asap7();
        let set = CornerSet::nominal_only(&base);
        assert_eq!(set.len(), 1);
        assert_eq!(set.nominal_index(), 0);
        assert_eq!(set.tech(0).buffer(), base.buffer());
    }
}
